"""Columnar RecordBatch v2: struct-of-arrays layout and its kernels.

The column view is a second *physical* representation of the same
logical chunk, and every property here holds it to the row
representation bit for bit: strict column typing (bool never coerces,
64-bit overflow demotes), lazy row materialization for column-born
batches, column-wise split/merge, the wire-frame codec, and the
column-at-a-time hash scatter checked against the row append loop as
oracle.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import columns as columns_mod
from repro.common.batch import RecordBatch


class TestColumnTyping:
    def test_ints_build_a_fixed_width_column(self):
        typecode, data = columns_mod.build_column([1, -2, 3])
        assert typecode == "q"
        assert list(data) == [1, -2, 3]

    def test_floats_build_a_fixed_width_column(self):
        typecode, data = columns_mod.build_column([1.5, -0.0])
        assert typecode == "d"
        assert list(data) == [1.5, -0.0]

    def test_bools_stay_objects(self):
        # array('q') would coerce True -> 1 and break round-tripping
        typecode, data = columns_mod.build_column([True, False])
        assert typecode == columns_mod.OBJECT
        assert data == [True, False]

    def test_mixed_int_and_bool_stays_objects(self):
        typecode, _data = columns_mod.build_column([1, True, 2])
        assert typecode == columns_mod.OBJECT

    def test_int64_overflow_demotes_to_objects(self):
        typecode, data = columns_mod.build_column([1, 1 << 70])
        assert typecode == columns_mod.OBJECT
        assert data == [1, 1 << 70]

    def test_strings_stay_objects(self):
        typecode, _data = columns_mod.build_column(["a", "b"])
        assert typecode == columns_mod.OBJECT

    def test_irregular_arity_refuses_to_columnarize(self):
        assert columns_mod.columnarize([(1,), (1, 2)]) is None

    def test_non_tuple_records_refuse_to_columnarize(self):
        assert columns_mod.columnarize([(1, 2), [3, 4]]) is None


# records mixing fixed-width and object columns: an int key plus a
# value column whose per-record draws may be int, float, str, bool, or
# a nested tuple (mixed draws demote the whole column to objects)
mixed_values = st.one_of(
    st.integers(min_value=-(1 << 66), max_value=1 << 66),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=4),
    st.booleans(),
    st.tuples(st.integers(0, 9)),
)
mixed_records = st.lists(
    st.tuples(st.integers(-1000, 1000), mixed_values), max_size=50
)
int_records = st.lists(
    st.tuples(
        st.integers(min_value=-(1 << 62), max_value=1 << 62),
        st.integers(min_value=-(1 << 62), max_value=1 << 62),
    ),
    min_size=1, max_size=60,
)


class TestRoundTrips:
    @given(mixed_records)
    @settings(max_examples=100)
    def test_columnarize_materialize_is_identity(self, recs):
        layout = columns_mod.columnarize(list(recs))
        assert layout is not None
        _arity, cols = layout
        rows = columns_mod.materialize_rows(cols, len(recs))
        assert rows == recs
        # bitwise fidelity includes types: True must come back as bool,
        # 1 as int, 1.0 as float
        for row, expect in zip(rows, recs):
            assert list(map(type, row)) == list(map(type, expect))

    @given(mixed_records)
    @settings(max_examples=60)
    def test_wire_frame_codec_is_identity(self, recs):
        layout = columns_mod.columnarize(list(recs))
        _arity, cols = layout
        header, buffers = columns_mod.encode_frame(cols, len(recs), (0,))
        length, out_cols, key_fields = columns_mod.decode_frame(
            bytes(header), [bytes(b) for b in buffers]
        )
        assert length == len(recs)
        assert key_fields == (0,)
        assert columns_mod.materialize_rows(out_cols, length) == recs

    @given(int_records)
    @settings(max_examples=50)
    def test_column_born_batch_pickles_to_its_rows(self, recs):
        _arity, cols = columns_mod.columnarize(list(recs))
        batch = RecordBatch.from_columns(len(recs), cols, (0,))
        clone = pickle.loads(pickle.dumps(batch))
        assert clone.records == recs
        assert clone.key_fields == (0,)


class TestColumnBornLaziness:
    def test_keys_come_from_the_key_column_without_rows(self):
        recs = [(3, 10), (1, 20), (2, 30)]
        _arity, cols = columns_mod.columnarize(recs)
        batch = RecordBatch.from_columns(len(recs), cols, (0,))
        assert batch.keys == [3, 1, 2]
        assert batch._records is None  # no row ever materialized
        assert batch.records == recs   # and rows still come out right

    def test_nbytes_is_exact_for_fixed_width_columns(self):
        recs = [(1, 2.5), (3, 4.5)]
        _arity, cols = columns_mod.columnarize(recs)
        batch = RecordBatch.from_columns(len(recs), cols, (0,))
        assert batch.nbytes() == 2 * 16

    def test_split_keeps_chunks_column_born(self):
        recs = [(i, i * i) for i in range(10)]
        _arity, cols = columns_mod.columnarize(recs)
        batch = RecordBatch.from_columns(len(recs), cols, (0,))
        chunks = batch.split(3)
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        assert all(c._records is None for c in chunks)
        assert batch._records is None
        flattened = [r for c in chunks for r in c.records]
        assert flattened == recs

    def test_merge_of_column_born_chunks_stays_column_born(self):
        recs = [(i, float(i)) for i in range(8)]
        _arity, cols = columns_mod.columnarize(recs)
        batch = RecordBatch.from_columns(len(recs), cols, (0,))
        merged = RecordBatch.merge(batch.split(3))
        assert merged._records is None
        assert merged.records == recs


@pytest.mark.skipif(not columns_mod.HAVE_NUMPY, reason="needs numpy")
class TestScatter:
    @staticmethod
    def _column_born(recs, key_fields=(0,)):
        _arity, cols = columns_mod.columnarize(list(recs))
        return RecordBatch.from_columns(len(recs), cols, key_fields)

    @given(int_records, st.integers(min_value=1, max_value=6))
    @settings(max_examples=100)
    def test_scatter_matches_the_row_append_loop(self, recs, parallelism):
        batch = self._column_born(recs)
        groups = batch.scatter(parallelism)
        assert groups is not None
        expect = [[] for _ in range(parallelism)]
        for record in recs:
            expect[record[0] % parallelism].append(record)
        assert [g.records for g in groups] == expect
        # the scatter itself never materialized a row anywhere
        assert batch._records is None

    @given(int_records, st.integers(min_value=1, max_value=6))
    @settings(max_examples=50)
    def test_scatter_outputs_are_column_born(self, recs, parallelism):
        groups = self._column_born(recs).scatter(parallelism)
        assert all(g._records is None and g.has_columns() for g in groups)
        assert sum(len(g) for g in groups) == len(recs)

    def test_object_columns_fall_back(self):
        batch = self._column_born([(1, "a"), (2, "b")])
        assert batch.scatter(2) is None

    def test_row_born_batches_fall_back(self):
        batch = RecordBatch.wrap([(1, 2), (3, 4)], (0,))
        assert batch.scatter(2) is None

    def test_materialized_column_born_batches_fall_back(self):
        batch = self._column_born([(1, 2), (3, 4)])
        batch.records  # rows now exist: caches could go stale
        assert batch.scatter(2) is None

    @given(int_records, st.integers(min_value=1, max_value=6))
    @settings(max_examples=50)
    def test_partition_targets_agree_across_modes(self, recs, parallelism):
        columnar_targets = self._column_born(recs).partition_targets(
            parallelism, columnar_mode=True
        )
        row_targets = RecordBatch.wrap(
            list(recs), (0,)
        ).partition_targets(parallelism)
        assert columnar_targets == row_targets
