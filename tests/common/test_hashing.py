"""Determinism and distribution tests for the stable partitioner hash."""

import subprocess
import sys

from hypothesis import given
from hypothesis import strategies as st

from repro.common.hashing import partition_index, stable_hash


class TestStableHash:
    def test_int_identity(self):
        assert stable_hash(42) == 42
        assert stable_hash(0) == 0

    def test_bool_is_not_int_path(self):
        assert stable_hash(True) == 1
        assert stable_hash(False) == 0

    def test_string_deterministic_within_process(self):
        assert stable_hash("hello") == stable_hash("hello")
        assert stable_hash("hello") != stable_hash("world")

    def test_string_deterministic_across_processes(self):
        # Python's str hash is salted per process; ours must not be.
        code = "from repro.common.hashing import stable_hash; print(stable_hash('repro'))"
        outs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
            ).stdout.strip()
            for _ in range(2)
        }
        assert len(outs) == 1
        assert outs.pop() == str(stable_hash("repro"))

    def test_tuple_combines_elements(self):
        assert stable_hash((1, 2)) != stable_hash((2, 1))
        assert stable_hash((1, 2)) == stable_hash((1, 2))

    def test_bytes(self):
        assert stable_hash(b"abc") == stable_hash(b"abc")

    @given(st.one_of(st.integers(), st.text(), st.tuples(st.integers(),
                                                         st.text())))
    def test_hash_is_pure(self, value):
        assert stable_hash(value) == stable_hash(value)


class TestMixedTypeCollisionSemantics:
    """Numeric keys that compare equal must hash equal (the documented
    collision coincidence): the solution-set index stores records in
    dicts keyed by value, so partition routing has to agree with dict
    key equality or a delta record lands on a partition whose dict
    treats it as a different key."""

    def test_bool_int_float_coincide(self):
        assert stable_hash(True) == stable_hash(1) == stable_hash(1.0) == 1
        assert stable_hash(False) == stable_hash(0) == stable_hash(0.0) == 0

    def test_whole_floats_follow_int_values(self):
        for value in (2, 7, -5, 1000):
            assert stable_hash(float(value)) == stable_hash(value)

    @given(st.integers(min_value=-10**6, max_value=10**6),
           st.integers(min_value=1, max_value=16))
    def test_equal_values_land_on_one_partition(self, value, parallelism):
        owner = partition_index(value, parallelism)
        assert partition_index(float(value), parallelism) == owner
        if value in (0, 1):
            assert partition_index(bool(value), parallelism) == owner


class TestPinnedAssignments:
    """Regression pins: these exact assignments carry the repository's
    deterministic message counts.  If any pin moves, every recorded
    benchmark figure silently changes — treat a failure here as a
    partitioner change, not a test to update casually."""

    def test_int_keys_partition_by_value(self):
        assert [partition_index(i, 4) for i in range(8)] == \
            [0, 1, 2, 3, 0, 1, 2, 3]

    def test_negative_int_keys_stay_in_range(self):
        # Python's % is non-negative for positive modulus
        assert stable_hash(-3) == -3
        assert partition_index(-3, 4) == 1

    def test_string_keys_pin_crc32(self):
        assert stable_hash("repro") == 3711781998
        assert stable_hash("foaf") == 2763351381
        assert [partition_index("repro", p) for p in (2, 4, 8)] == [0, 2, 6]
        assert [partition_index("foaf", p) for p in (2, 4, 8)] == [1, 1, 5]

    def test_tuple_key_pin(self):
        assert stable_hash((1, "a")) == 1705942584
        assert partition_index((1, "a"), 4) == 0


class TestPartitionIndex:
    @given(st.integers(), st.integers(min_value=1, max_value=64))
    def test_in_range(self, key, parallelism):
        assert 0 <= partition_index(key, parallelism) < parallelism

    def test_spreads_sequential_ints(self):
        parallelism = 4
        counts = [0] * parallelism
        for i in range(1000):
            counts[partition_index(i, parallelism)] += 1
        assert all(c == 250 for c in counts)

    def test_spreads_strings(self):
        parallelism = 8
        counts = [0] * parallelism
        for i in range(4000):
            counts[partition_index(f"key-{i}", parallelism)] += 1
        assert min(counts) > 300  # roughly uniform
