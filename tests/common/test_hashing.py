"""Determinism and distribution tests for the stable partitioner hash."""

import subprocess
import sys

from hypothesis import given
from hypothesis import strategies as st

from repro.common.hashing import partition_index, stable_hash


class TestStableHash:
    def test_int_identity(self):
        assert stable_hash(42) == 42
        assert stable_hash(0) == 0

    def test_bool_is_not_int_path(self):
        assert stable_hash(True) == 1
        assert stable_hash(False) == 0

    def test_string_deterministic_within_process(self):
        assert stable_hash("hello") == stable_hash("hello")
        assert stable_hash("hello") != stable_hash("world")

    def test_string_deterministic_across_processes(self):
        # Python's str hash is salted per process; ours must not be.
        code = "from repro.common.hashing import stable_hash; print(stable_hash('repro'))"
        outs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
            ).stdout.strip()
            for _ in range(2)
        }
        assert len(outs) == 1
        assert outs.pop() == str(stable_hash("repro"))

    def test_tuple_combines_elements(self):
        assert stable_hash((1, 2)) != stable_hash((2, 1))
        assert stable_hash((1, 2)) == stable_hash((1, 2))

    def test_bytes(self):
        assert stable_hash(b"abc") == stable_hash(b"abc")

    @given(st.one_of(st.integers(), st.text(), st.tuples(st.integers(),
                                                         st.text())))
    def test_hash_is_pure(self, value):
        assert stable_hash(value) == stable_hash(value)


class TestPartitionIndex:
    @given(st.integers(), st.integers(min_value=1, max_value=64))
    def test_in_range(self, key, parallelism):
        assert 0 <= partition_index(key, parallelism) < parallelism

    def test_spreads_sequential_ints(self):
        parallelism = 4
        counts = [0] * parallelism
        for i in range(1000):
            counts[partition_index(i, parallelism)] += 1
        assert all(c == 250 for c in counts)

    def test_spreads_strings(self):
        parallelism = 8
        counts = [0] * parallelism
        for i in range(4000):
            counts[partition_index(f"key-{i}", parallelism)] += 1
        assert min(counts) > 300  # roughly uniform
