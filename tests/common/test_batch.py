"""RecordBatch: the data plane's buffer abstraction (hypothesis).

The batched hot paths are only sound if reframing a record stream —
splitting, merging, rechunking — never changes the stream or the cached
key/hash vectors.  These properties drive random records, key schemas,
and chunk bounds through every reshaping operation and hold the cached
vectors to a per-record recomputation (the same oracle the invariant
checker uses at runtime).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.batch import RecordBatch, iter_batches
from repro.common.hashing import stable_hash
from repro.common.keys import KeyExtractor

keys = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.booleans(),
    st.text(max_size=8),
)
records = st.lists(st.tuples(keys, st.integers()), max_size=60)
key_schemas = st.sampled_from([(0,), (1,), (0, 1)])
chunk_bounds = st.integers(min_value=1, max_value=70)


def _oracle(recs, key_fields):
    extract = KeyExtractor(key_fields)
    expect_keys = [extract(r) for r in recs]
    return expect_keys, [stable_hash(k) for k in expect_keys]


class TestCachedVectors:
    @given(records, key_schemas)
    @settings(max_examples=100)
    def test_vectors_match_per_record_recomputation(self, recs, fields):
        batch = RecordBatch.wrap(list(recs), fields)
        expect_keys, expect_hashes = _oracle(recs, fields)
        assert batch.keys == expect_keys
        assert batch.hashes == expect_hashes

    @given(records, key_schemas, st.integers(min_value=1, max_value=8))
    @settings(max_examples=100)
    def test_partition_targets_match_stable_hash_mod(
            self, recs, fields, parallelism):
        batch = RecordBatch.wrap(list(recs), fields)
        _, hashes = _oracle(recs, fields)
        assert batch.partition_targets(parallelism) == \
            [h % parallelism for h in hashes]

    def test_keys_require_a_schema(self):
        with pytest.raises(ValueError, match="no key fields"):
            RecordBatch.wrap([(1, 2)]).keys


class TestWrap:
    def test_wrap_is_idempotent(self):
        batch = RecordBatch.wrap([(1, 2)], (0,))
        assert RecordBatch.wrap(batch) is batch
        assert RecordBatch.wrap(batch, (0,)) is batch

    def test_rewrap_with_new_schema_drops_cached_vectors(self):
        batch = RecordBatch.wrap([(1, 2)], (0,))
        assert batch.keys == [1]
        rekeyed = RecordBatch.wrap(batch, (1,))
        assert rekeyed is not batch
        assert rekeyed.keys == [2]


class TestReshaping:
    @given(records, key_schemas, chunk_bounds)
    @settings(max_examples=100)
    def test_split_merge_round_trips(self, recs, fields, bound):
        batch = RecordBatch.wrap(list(recs), fields)
        chunks = batch.split(bound)
        assert all(1 <= len(c) <= bound for c in chunks) or not recs
        merged = RecordBatch.merge(chunks)
        assert merged.records == list(recs)
        assert merged.keys == batch.keys
        assert merged.hashes == batch.hashes

    @given(records, key_schemas, chunk_bounds, chunk_bounds)
    @settings(max_examples=100)
    def test_rechunk_preserves_the_record_stream(
            self, recs, fields, first, second):
        chunks = RecordBatch.wrap(list(recs), fields).split(first)
        rechunked = RecordBatch.rechunk(chunks, second)
        flattened = [r for c in rechunked for r in c.records]
        assert flattened == list(recs)
        assert all(len(c) <= second for c in rechunked)

    @given(records, key_schemas, chunk_bounds)
    @settings(max_examples=100)
    def test_split_slices_cached_vectors_without_recomputation(
            self, recs, fields, bound):
        batch = RecordBatch.wrap(list(recs), fields)
        batch.keys, batch.hashes  # force the caches
        for chunk in batch.split(bound):
            # sliced eagerly from the parent, not recomputed lazily
            assert chunk._keys is not None
            assert chunk._hashes is not None
            expect_keys, expect_hashes = _oracle(chunk.records, fields)
            assert chunk._keys == expect_keys
            assert chunk._hashes == expect_hashes

    def test_split_none_returns_self_uncopied(self):
        batch = RecordBatch.wrap([(1, 2), (3, 4)], (0,))
        assert batch.split(None) == [batch]
        assert batch.split(None)[0] is batch

    def test_split_rejects_non_positive_bounds(self):
        with pytest.raises(ValueError, match=">= 1"):
            RecordBatch.wrap([(1,), (2,)], (0,)).split(0)

    def test_merge_rejects_mismatched_key_schemas(self):
        a = RecordBatch.wrap([(1, 2)], (0,))
        b = RecordBatch.wrap([(3, 4)], (1,))
        with pytest.raises(ValueError, match="cannot merge"):
            RecordBatch.merge([a, b])

    def test_merge_nothing_is_an_empty_batch(self):
        assert RecordBatch.merge([]).records == []


class TestIterBatches:
    @given(records, key_schemas,
           st.one_of(st.none(), chunk_bounds))
    @settings(max_examples=100)
    def test_frames_cover_the_stream_in_order(self, recs, fields, bound):
        chunks = list(iter_batches(list(recs), fields, bound))
        assert [r for c in chunks for r in c.records] == list(recs)
        if bound is not None:
            assert all(len(c) <= bound for c in chunks)
