"""Exception hierarchy contracts."""

import pytest

from repro.common.errors import (
    DataflowError,
    InvalidPlanError,
    MicrostepViolation,
    NotConvergedError,
    OptimizerError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", [
        InvalidPlanError, OptimizerError, MicrostepViolation,
        NotConvergedError,
    ])
    def test_all_derive_from_dataflow_error(self, exc_type):
        assert issubclass(exc_type, DataflowError)

    def test_catching_the_base_catches_everything(self):
        with pytest.raises(DataflowError):
            raise MicrostepViolation("group-at-a-time operator")


class TestNotConverged:
    def test_carries_iteration_count(self):
        error = NotConvergedError(42)
        assert error.iterations == 42
        assert "42" in str(error)

    def test_custom_message(self):
        error = NotConvergedError(7, "custom text")
        assert str(error) == "custom text"
        assert error.iterations == 7
