"""Tests for the CPO helpers of Section 2.1."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.ordering import (
    ComponentOrder,
    PartialOrder,
    is_chain_descending,
)


class TestComponentOrder:
    def setup_method(self):
        self.order = ComponentOrder()

    def test_reflexive(self):
        s = {0: 1, 1: 2}
        assert self.order.precedes(s, s)

    def test_pointwise_dominance(self):
        earlier = {0: 5, 1: 7}
        later = {0: 3, 1: 7}
        assert self.order.precedes(later, earlier)
        assert not self.order.precedes(earlier, later)

    def test_incomparable_states(self):
        a = {0: 1, 1: 9}
        b = {0: 9, 1: 1}
        assert not self.order.comparable(a, b)

    def test_different_domains_never_precede(self):
        assert not self.order.precedes({0: 1}, {1: 1})

    def test_strictly_precedes(self):
        assert self.order.strictly_precedes({0: 1}, {0: 2})
        assert not self.order.strictly_precedes({0: 1}, {0: 1})

    @given(st.dictionaries(st.integers(0, 5), st.integers(0, 10),
                           min_size=1, max_size=6))
    def test_bottom_element(self, state):
        bottom = {k: 0 for k in state}
        assert self.order.precedes(bottom, state)


class TestChainChecking:
    def test_descending_chain(self):
        order = ComponentOrder()
        chain = [{0: 5}, {0: 3}, {0: 1}, {0: 1}]
        assert is_chain_descending(order, chain)

    def test_violating_chain(self):
        order = ComponentOrder()
        chain = [{0: 3}, {0: 5}]
        assert not is_chain_descending(order, chain)

    def test_trivial_chains(self):
        order = ComponentOrder()
        assert is_chain_descending(order, [])
        assert is_chain_descending(order, [{0: 1}])

    def test_abstract_order_requires_precedes(self):
        import pytest
        with pytest.raises(NotImplementedError):
            PartialOrder().precedes(1, 2)
