"""Unit tests for key normalization and extraction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.keys import KeyExtractor, normalize_key_fields


class TestNormalizeKeyFields:
    def test_single_int(self):
        assert normalize_key_fields(0) == (0,)
        assert normalize_key_fields(3) == (3,)

    def test_tuple(self):
        assert normalize_key_fields((1, 0)) == (1, 0)

    def test_list(self):
        assert normalize_key_fields([2, 4]) == (2, 4)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            normalize_key_fields(True)
        with pytest.raises(TypeError):
            normalize_key_fields((0, False))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            normalize_key_fields(())

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            normalize_key_fields(-1)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            normalize_key_fields((1, 1))

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            normalize_key_fields("a")
        with pytest.raises(TypeError):
            normalize_key_fields((0, "b"))


class TestKeyExtractor:
    def test_single_field_returns_bare_value(self):
        extract = KeyExtractor(1)
        assert extract((10, 20, 30)) == 20

    def test_composite_returns_tuple(self):
        extract = KeyExtractor((2, 0))
        assert extract((10, 20, 30)) == (30, 10)

    def test_arity(self):
        assert KeyExtractor(0).arity == 1
        assert KeyExtractor((0, 1, 2)).arity == 3

    def test_equality_and_hash(self):
        assert KeyExtractor(0) == KeyExtractor((0,))
        assert KeyExtractor(0) != KeyExtractor(1)
        assert hash(KeyExtractor((1, 2))) == hash(KeyExtractor([1, 2]))

    @given(st.lists(st.integers(), min_size=3, max_size=3))
    def test_extraction_matches_indexing(self, values):
        record = tuple(values)
        assert KeyExtractor(0)(record) == record[0]
        assert KeyExtractor((0, 2))(record) == (record[0], record[2])
