"""Zero-copy columnar framing: fixed-width frames never pickle payload.

The columnar data plane's wire contract: a frame whose columns are all
fixed-width crosses the shm ring as raw memcpys — only the small schema
header touches pickle — and the ``columns_zero_copied`` /
``bytes_zero_copied`` counters record exactly those buffers, from the
endpoint wire counters up through the job-level metrics of real pooled
workers.  Object columns and inline (below-threshold) frames are
serialized and must count nothing.
"""

import multiprocessing

import pytest

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.bench import audit
from repro.cluster.fabric import Fabric
from repro.common import columns as columns_mod
from repro.graphs import erdos_renyi
from repro.runtime.config import RuntimeConfig


@pytest.fixture
def fabric():
    ctx = multiprocessing.get_context("fork")
    fab = Fabric(size=2, mp_context=ctx, timeout=2.0)
    yield fab
    fab.close()


def _endpoints(fab, threshold=256):
    # drop the shm threshold so kilobyte-scale frames take the ring
    a, b = fab.endpoint(0), fab.endpoint(1)
    a.shm_threshold = b.shm_threshold = threshold
    return a, b


class TestEndpointZeroCopy:
    def test_fixed_width_frames_count_every_payload_byte(self, fabric):
        a, b = _endpoints(fabric)
        records = [(i, float(i)) for i in range(1000)]
        _arity, cols = columns_mod.columnarize(records)
        header, buffers = columns_mod.encode_frame(cols, len(records), (0,))
        payload_bytes = sum(len(buf) for buf in buffers)
        a.send_columns(1, tag="t", header=header, buffers=buffers)
        # both columns crossed as raw memoryviews: the counters prove
        # the payload path never entered pickle
        assert a.columns_zero_copied == 2
        assert a.bytes_zero_copied == payload_bytes == 1000 * 16
        kind_payload = b.recv(0, tag="t")
        assert kind_payload[0] == "cols"
        length, out_cols, key_fields = columns_mod.decode_frame(
            kind_payload[1], kind_payload[2]
        )
        assert key_fields == (0,)
        assert columns_mod.materialize_rows(out_cols, length) == records

    def test_object_columns_are_pickled_and_not_counted(self, fabric):
        a, b = _endpoints(fabric)
        records = [(i, "label-%d" % i) for i in range(1000)]
        _arity, cols = columns_mod.columnarize(records)
        header, buffers = columns_mod.encode_frame(cols, len(records), (0,))
        a.send_columns(1, tag="t", header=header, buffers=buffers)
        # only the int column is zero-copied; the string column arrives
        # at the fabric as an already-pickled blob
        assert a.columns_zero_copied == 1
        assert a.bytes_zero_copied == 1000 * 8
        kind_payload = b.recv(0, tag="t")
        length, out_cols, _fields = columns_mod.decode_frame(
            kind_payload[1], kind_payload[2]
        )
        assert columns_mod.materialize_rows(out_cols, length) == records

    def test_inline_fallback_counts_nothing(self, fabric):
        # default threshold: a small frame rides the control queue as
        # one pickled tuple, so the zero-copy counters stay untouched
        a, b = fabric.endpoint(0), fabric.endpoint(1)
        records = [(1, 2), (3, 4)]
        _arity, cols = columns_mod.columnarize(records)
        header, buffers = columns_mod.encode_frame(cols, len(records), None)
        a.send_columns(1, tag="t", header=header, buffers=buffers)
        assert a.columns_zero_copied == 0
        assert a.bytes_zero_copied == 0
        kind_payload = b.recv(0, tag="t")
        length, out_cols, _fields = columns_mod.decode_frame(
            kind_payload[1], kind_payload[2]
        )
        assert columns_mod.materialize_rows(out_cols, length) == records


class TestJobZeroCopy:
    """Job-level accounting on real forked workers."""

    @pytest.fixture(scope="class")
    def graph(self):
        # big enough that full batch-size chunks of two-int-column
        # frames (1024 rows x 16 bytes) clear the 16 KiB shm threshold
        return erdos_renyi(2000, 4.0, seed=23)

    def test_pool_job_counts_zero_copied_columns(self, graph):
        env = ExecutionEnvironment(2, backend="pool")
        result = cc.cc_bulk(env, graph)
        assert env.metrics.columns_zero_copied > 0
        assert env.metrics.bytes_zero_copied > 0
        # and the physical fast path changed nothing observable
        sim_env = ExecutionEnvironment(2)
        assert cc.cc_bulk(sim_env, graph) == result
        assert audit._comparable_counters(env.metrics) == \
            audit._comparable_counters(sim_env.metrics)

    def test_row_plane_never_zero_copies(self, graph):
        config = RuntimeConfig(columnar=False)
        env = ExecutionEnvironment(2, backend="pool", config=config)
        result = cc.cc_bulk(env, graph)
        assert env.metrics.columns_zero_copied == 0
        assert env.metrics.bytes_zero_copied == 0
        sim_env = ExecutionEnvironment(2, config=config)
        assert cc.cc_bulk(sim_env, graph) == result
