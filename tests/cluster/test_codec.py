"""The closure-capable job codec: functions cross by value.

Pool workers outlive any single job, so fork-inheritance cannot carry
job closures to them — the codec must round-trip lambdas, nested
closures, and default arguments that plain pickle rejects, while still
passing importable module-level functions through by reference.
"""

import pickle

import pytest

from repro.cluster import codec


def module_level(x):
    return x * 2


MODULE_CONSTANT = 17


def uses_module_global(x):
    return x + MODULE_CONSTANT


class TestRoundTrips:
    def test_lambda(self):
        fn = codec.loads(codec.dumps(lambda x: x + 1))
        assert fn(41) == 42

    def test_plain_pickle_rejects_what_the_codec_accepts(self):
        target = lambda x: x + 1  # noqa: E731
        with pytest.raises(Exception):
            pickle.dumps(target)
        assert codec.loads(codec.dumps(target))(1) == 2

    def test_module_level_function_passes_by_reference(self):
        fn = codec.loads(codec.dumps(module_level))
        assert fn is module_level

    def test_closure_cells(self):
        base = 100

        def add_base(x):
            return x + base

        fn = codec.loads(codec.dumps(add_base))
        assert fn(5) == 105

    def test_nested_closures(self):
        def outer(a):
            def middle(b):
                def inner(c):
                    return a + b + c
                return inner
            return middle

        fn = codec.loads(codec.dumps(outer(1)(2)))
        assert fn(3) == 6

    def test_defaults_and_kwdefaults(self):
        def fn(a, b=10, *, c=20):
            return a + b + c

        restored = codec.loads(codec.dumps(fn))
        assert restored(1) == 31
        assert restored(1, b=2, c=3) == 6

    def test_recursive_closure(self):
        def factorial(n):
            return 1 if n <= 1 else n * factorial(n - 1)

        fn = codec.loads(codec.dumps(factorial))
        assert fn(5) == 120

    def test_module_globals_resolve_in_the_restored_function(self):
        blob = codec.dumps(lambda x: uses_module_global(x))
        assert codec.loads(blob)(3) == 20

    def test_containers_of_closures(self):
        fns = codec.loads(codec.dumps({"double": lambda x: 2 * x,
                                       "ref": module_level}))
        assert fns["double"](4) == 8
        assert fns["ref"] is module_level

    def test_function_attributes_survive(self):
        def fn():
            return "tagged"

        fn.marker = "keep-me"
        restored = codec.loads(codec.dumps(fn))
        assert restored() == "tagged"
        assert restored.marker == "keep-me"

    def test_non_function_payloads_use_plain_pickle(self):
        payload = {"ints": list(range(5)), "text": "hello"}
        assert codec.loads(codec.dumps(payload)) == payload
