"""Worker heartbeats: the monitor's findings and their ordering.

The contract under test: a sick worker surfaces as a *structured
warning* (heartbeat loss, stall, straggler) while the job is still
running — strictly before the pool's gather deadline escalates the
situation to a :class:`WorkerCrash` — and healthy or idle ranks never
warn at all.
"""

import queue
import time
import warnings

import pytest

from repro.cluster.backends import WorkerCrash
from repro.cluster.pool import WorkerPool
from repro.observability.health import (
    HealthMonitor,
    HeartbeatLossWarning,
    HeartbeatSender,
    StallWarning,
    StragglerWarning,
    WorkerVitals,
)

def _beat(rank, job=1, superstep=0, progress_s=0.0, sent_s=0.0,
          interval=0.1, rss=1 << 20):
    return {
        "rank": rank, "pid": 1000 + rank, "job": job,
        "superstep": superstep, "rss_bytes": rss,
        "last_progress_s": progress_s, "sent_s": sent_s,
        "interval_s": interval,
    }


# ----------------------------------------------------------------------
# HealthMonitor unit behavior (synthetic clock)


def test_loss_raises_once_and_rearms_after_recovery():
    monitor = HealthMonitor(size=1)
    monitor.observe(_beat(0), now=0.0)
    assert monitor.check(now=0.2) == []  # within 4 intervals
    first = monitor.check(now=1.0)
    assert [type(w) for w in first] == [HeartbeatLossWarning]
    assert first[0].rank == 0
    assert monitor.check(now=2.0) == []  # raise-once while sick
    monitor.observe(_beat(0, progress_s=2.1), now=2.1)  # recovery
    assert monitor.check(now=2.15) == []
    rearmed = [type(w) for w in monitor.check(now=9.0)]
    assert HeartbeatLossWarning in rearmed  # re-armed after recovery


def test_stall_detected_by_progress_age():
    monitor = HealthMonitor(size=1, stall_after_s=2.0)
    monitor.observe(_beat(0, progress_s=0.0, sent_s=1.0, interval=1.0),
                    now=1.0)
    assert monitor.check(now=1.5) == []
    monitor.observe(_beat(0, progress_s=0.0, sent_s=2.2, interval=1.0),
                    now=2.2)
    findings = monitor.check(now=2.3)
    assert [type(w) for w in findings] == [StallWarning]
    assert "no progress" in str(findings[0])


def test_straggler_lags_the_front_runner():
    monitor = HealthMonitor(size=3, skew_threshold=4, skew_grace_s=0.5)
    monitor.observe(_beat(0, superstep=9, interval=1.0), now=0.0)
    monitor.observe(_beat(1, superstep=8, interval=1.0), now=0.0)
    monitor.observe(_beat(2, superstep=2, interval=1.0), now=0.0)
    # first sighting only starts the grace clock: one stale sample
    # between asynchronous beats is not evidence of a straggler
    assert monitor.check(now=0.1) == []
    # still behind once the grace period has elapsed — now it warns
    monitor.observe(_beat(2, superstep=2, progress_s=0.7, interval=1.0),
                    now=0.7)
    findings = monitor.check(now=0.8)
    assert [type(w) for w in findings] == [StragglerWarning]
    assert findings[0].rank == 2
    assert "lags the front runner" in str(findings[0])
    # catching up resolves it and restarts the grace clock
    monitor.observe(_beat(2, superstep=8, progress_s=0.9, interval=1.0),
                    now=0.9)
    assert monitor.check(now=1.0) == []


def test_idle_ranks_are_exempt():
    monitor = HealthMonitor(size=2)
    monitor.observe(_beat(0, superstep=9), now=0.0)
    monitor.observe(_beat(1, job=None, superstep=3), now=0.0)
    # rank 1 finished (farewell beat): hours of silence and a huge
    # superstep lag mean nothing, and it does not drag the front back
    findings = monitor.check(now=3600.0)
    assert all(w.rank == 0 for w in findings)
    rows = monitor.snapshot(now=3600.0)
    assert rows[1]["status"] == "idle"


def test_snapshot_before_any_heartbeat():
    monitor = HealthMonitor(size=2)
    rows = monitor.snapshot()
    assert [row["status"] for row in rows] == ["no heartbeat yet"] * 2
    assert monitor.heartbeats_seen is False
    assert monitor.context() == ""


def test_snapshot_carries_vitals_and_status():
    monitor = HealthMonitor(size=1, stall_after_s=1.0)
    monitor.observe(_beat(0, superstep=4, progress_s=0.0, sent_s=5.0),
                    now=5.0)
    monitor.check(now=5.05)
    rows = monitor.snapshot(now=5.05)
    assert rows[0]["superstep"] == 4
    assert rows[0]["rss_bytes"] == 1 << 20
    assert rows[0]["status"] == "stall"
    assert "rank 0" in monitor.context(now=5.05)


# ----------------------------------------------------------------------
# vitals + sender


def test_vitals_lifecycle():
    vitals = WorkerVitals()
    vitals.configure(7)
    vitals.begin_job(3)
    assert vitals.superstep == -1
    vitals.progress(2, rss_bytes=123)
    beat = vitals.heartbeat(0.25)
    assert beat["rank"] == 7 and beat["job"] == 3
    assert beat["superstep"] == 2 and beat["rss_bytes"] == 123
    assert beat["interval_s"] == 0.25
    vitals.end_job()
    assert vitals.heartbeat(0.25)["job"] is None


def test_sender_pause_resume():
    q = queue.Queue()
    vitals = WorkerVitals()
    vitals.configure(5)
    sender = HeartbeatSender(q, vitals, interval_s=0.02)
    try:
        sender.resume()
        deadline = time.monotonic() + 2.0
        beats = []
        while len(beats) < 3 and time.monotonic() < deadline:
            try:
                beats.append(q.get(timeout=0.1))
            except queue.Empty:
                pass
        assert len(beats) >= 3
        kind, jid, rank, body = beats[0]
        assert (kind, jid, rank) == ("hb", None, 5)
        assert body["rank"] == 5
        sender.pause()
        time.sleep(0.1)
        while not q.empty():
            q.get_nowait()
        time.sleep(0.1)
        assert q.empty()  # paused: no beats between jobs
    finally:
        sender.stop()


# ----------------------------------------------------------------------
# pool integration: warnings fire before (or instead of) the crash


class _HeartbeatJob:
    """Scriptable pool job body that heartbeats like a telemetry plan."""

    heartbeat_interval = 0.05

    def __init__(self, sick_rank=0, mode="none", sick_s=0.0, healthy_s=0.05):
        self.sick_rank = sick_rank
        self.mode = mode
        self.sick_s = sick_s
        self.healthy_s = healthy_s

    def __call__(self, cluster):
        from repro.cluster.pool import stop_heartbeats
        from repro.observability.health import VITALS
        if cluster.rank == self.sick_rank:
            if self.mode == "lose":
                time.sleep(0.3)  # let a few beats out first
                stop_heartbeats()
                time.sleep(self.sick_s)
            elif self.mode == "stall":
                time.sleep(self.sick_s)
            elif self.mode == "lag":
                VITALS.progress(0)
                time.sleep(self.sick_s)
        else:
            if self.mode == "lag":
                for step in range(10):
                    VITALS.progress(step)
                    time.sleep(self.healthy_s / 10)
            else:
                time.sleep(self.healthy_s)
        return {"rank": cluster.rank}


def _run_catching(pool, job):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        payloads = pool.run_job(job)
    return payloads, [w.message for w in caught]


def test_stall_warns_before_completion():
    pool = WorkerPool(2, timeout=30.0)
    try:
        pool.monitor.stall_after_s = 0.3
        payloads, caught = _run_catching(
            pool, _HeartbeatJob(sick_rank=0, mode="stall", sick_s=1.2)
        )
        # the job completed fine — yet the stall was already reported
        assert [p["rank"] for p in payloads] == [0, 1]
        stalls = [w for w in caught if isinstance(w, StallWarning)]
        assert stalls and all(w.rank == 0 for w in stalls)
        # the healthy rank finished, went idle, and never warned
        assert all(w.rank == 0 for w in caught)
    finally:
        pool.close()


def test_straggler_warns_on_superstep_skew():
    pool = WorkerPool(2, timeout=30.0)
    try:
        # the healthy rank must keep running past the skew grace
        # period, otherwise it goes idle and stops defining the front
        payloads, caught = _run_catching(
            pool,
            _HeartbeatJob(sick_rank=0, mode="lag", sick_s=2.0,
                          healthy_s=1.5),
        )
        assert [p["rank"] for p in payloads] == [0, 1]
        stragglers = [w for w in caught
                      if isinstance(w, StragglerWarning)]
        assert stragglers and all(w.rank == 0 for w in stragglers)
    finally:
        pool.close()


def test_heartbeat_loss_warns_before_deadline_crash():
    # gather deadline is timeout * 1.5 + 5.0; keep it tight
    pool = WorkerPool(2, timeout=0.2)
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with pytest.raises(WorkerCrash) as crash:
                pool.run_job(
                    _HeartbeatJob(sick_rank=0, mode="lose", sick_s=60.0)
                )
        losses = [w.message for w in caught
                  if isinstance(w.message, HeartbeatLossWarning)]
        # the loss was warned while waiting — before the escalation —
        # and the crash message carries the last-known health context
        assert losses and all(w.rank == 0 for w in losses)
        assert "gave up waiting" in str(crash.value)
        assert "last heartbeats" in str(crash.value)
        assert "rank 0" in str(crash.value)
    finally:
        pool.close(force=True)
