"""Failure paths on both SPMD backends: crashes bounded, never hung.

The regression fixed here: a worker that exits with code 0 *without*
posting a result used to never be counted as dead (the liveness check
required ``exitcode != 0``), so the parent's gather loop spun forever.
Every test in this file is bounded by wall clock — against the old
``_run_spmd`` logic the silent-exit cases hang instead of raising.
"""

import os
import time

import pytest

from repro.cluster import MultiprocessBackend, PoolBackend, WorkerCrash

#: generous bound for "raised promptly, did not sit out a fabric timeout"
PROMPT_S = 30.0


def _silent_exit(cluster):
    if cluster.rank == 1:
        os._exit(0)  # dies "successfully": exit code 0, no result posted
    return cluster.allgather(cluster.rank), None


def _crash_mid_superstep(cluster):
    # one collective completes, then a rank dies with a real traceback
    total = cluster.allreduce_sum(cluster.rank)
    if cluster.rank == 1:
        raise RuntimeError(f"rank 1 exploded mid-superstep (total={total})")
    return cluster.allgather(total), None


def _stall_peer(cluster):
    # rank 1 returns without ever participating; rank 0's recv must
    # time out instead of blocking forever
    if cluster.rank == 0:
        cluster.recv_from(1, tag="never-sent")
    return cluster.rank, None


class TestMultiprocessFailurePaths:
    def test_silent_exit_zero_raises_instead_of_hanging(self):
        backend = MultiprocessBackend(timeout=20.0)
        started = time.monotonic()
        with pytest.raises(WorkerCrash, match="died without"):
            backend.run_program(_silent_exit, 2)
        assert time.monotonic() - started < PROMPT_S

    def test_mid_superstep_crash_carries_remote_traceback(self):
        backend = MultiprocessBackend(timeout=20.0)
        with pytest.raises(WorkerCrash) as exc_info:
            backend.run_program(_crash_mid_superstep, 2)
        message = str(exc_info.value)
        assert "rank 1 exploded mid-superstep" in message
        assert "Traceback" in message

    def test_stalled_peer_surfaces_fabric_timeout(self):
        backend = MultiprocessBackend(timeout=2.0)
        started = time.monotonic()
        with pytest.raises(WorkerCrash, match="FabricTimeout"):
            backend.run_program(_stall_peer, 2)
        assert time.monotonic() - started < PROMPT_S


class TestPoolFailurePaths:
    def test_silent_exit_zero_raises_and_breaks_the_pool(self):
        backend = PoolBackend(timeout=20.0)
        try:
            started = time.monotonic()
            with pytest.raises(WorkerCrash, match="died without"):
                backend.run_program(_silent_exit, 2)
            assert time.monotonic() - started < PROMPT_S
            # a dead rank forces teardown; the next job re-forks cleanly
            result, _ = backend.run_program(
                lambda cluster: (cluster.allgather(cluster.rank), None), 2
            )
            assert result == [0, 1]
        finally:
            backend.close()

    def test_mid_superstep_crash_carries_remote_traceback(self):
        # short fabric timeout: the pool waits for *every* rank to
        # report, and rank 0 only reports after its collective times out
        backend = PoolBackend(timeout=3.0)
        try:
            with pytest.raises(WorkerCrash) as exc_info:
                backend.run_program(_crash_mid_superstep, 2)
            message = str(exc_info.value)
            assert "rank 1 exploded mid-superstep" in message
            assert "Traceback" in message
        finally:
            backend.close()

    def test_stalled_peer_times_out_and_pool_survives(self):
        backend = PoolBackend(timeout=2.0)
        try:
            with pytest.raises(WorkerCrash, match="FabricTimeout"):
                backend.run_program(_stall_peer, 2)
            # both ranks reported (one error, one ok): no process died,
            # so the SAME workers serve the next job without re-forking
            pids = backend.pool.worker_pids
            result, _ = backend.run_program(
                lambda cluster: (cluster.allreduce_sum(cluster.rank), None), 2
            )
            assert result == 1
            assert backend.pool.worker_pids == pids
        finally:
            backend.close()

    def test_gather_deadline_bounds_a_worker_that_never_reports(self):
        def sleepy(cluster):
            if cluster.rank == 1:
                time.sleep(60.0)  # alive, but will never report in time
            return cluster.rank, None

        backend = PoolBackend(timeout=1.0)
        try:
            started = time.monotonic()
            with pytest.raises(WorkerCrash, match="gave up waiting"):
                backend.run_program(sleepy, 2)
            assert time.monotonic() - started < PROMPT_S
        finally:
            backend.close()

    def test_no_zombie_workers_after_forced_teardown(self):
        backend = PoolBackend(timeout=20.0)
        with pytest.raises(WorkerCrash):
            backend.run_program(_silent_exit, 2)
        workers = list(backend.pool.workers) if backend.pool else []
        backend.close()
        for worker in workers:
            assert not worker.is_alive()
