"""The persistent pool: same answers as the simulator, same workers.

The pool exists so one set of forked workers serves many jobs.  These
tests pin the two halves of that claim: results and logical counters
stay bitwise-identical to the simulator (job after job, with no state
bleeding between them), and the worker PIDs genuinely persist.
"""

import pytest

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.algorithms import pagerank as pr
from repro.bench import audit
from repro.cluster import BACKENDS, PoolBackend, resolve_backend
from repro.graphs import erdos_renyi

pytestmark = pytest.mark.verify_invariants

PARALLELISM = 3


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 2.5, seed=19)


def _comparable(env):
    return audit._comparable_counters(env.metrics)


class TestPoolRegistration:
    def test_pool_is_registered_and_resolvable(self):
        assert BACKENDS["pool"] is PoolBackend
        backend = resolve_backend("pool")
        assert isinstance(backend, PoolBackend)
        backend.close()

    def test_environment_accepts_the_string_spelling(self, graph):
        env = ExecutionEnvironment(2, backend="pool")
        try:
            expected = cc.cc_bulk(ExecutionEnvironment(2), graph)
            assert cc.cc_bulk(env, graph) == expected
        finally:
            env.backend.close()


class TestPoolReuse:
    def test_three_consecutive_jobs_reuse_the_same_workers(self, graph):
        """≥3 jobs on one pool: PIDs persist, every job matches the
        simulator bitwise, and counters/traces reset between jobs."""
        backend = PoolBackend()
        try:
            jobs = [
                lambda env: cc.cc_bulk(env, graph),
                lambda env: pr.pagerank_bulk(env, graph, iterations=4,
                                             plan="partition"),
                lambda env: cc.cc_incremental(env, graph, variant="cogroup",
                                              mode="superstep"),
            ]
            pids = None
            for job in jobs:
                sim_env = ExecutionEnvironment(PARALLELISM)
                pool_env = ExecutionEnvironment(PARALLELISM, backend=backend)
                assert job(pool_env) == job(sim_env)
                # clean counter state: each job's merged collector equals
                # the simulator's for that job alone — nothing from the
                # previous job leaked into it
                assert _comparable(pool_env) == _comparable(sim_env)
                if pids is None:
                    pids = backend.pool.worker_pids
                else:
                    assert backend.pool.worker_pids == pids
            assert all(pid is not None for pid in pids)
        finally:
            backend.close()

    def test_pool_resizes_when_parallelism_changes(self, graph):
        backend = PoolBackend()
        try:
            expected2 = cc.cc_bulk(ExecutionEnvironment(2), graph)
            expected3 = cc.cc_bulk(ExecutionEnvironment(3), graph)
            assert cc.cc_bulk(
                ExecutionEnvironment(2, backend=backend), graph
            ) == expected2
            pids2 = backend.pool.worker_pids
            assert cc.cc_bulk(
                ExecutionEnvironment(3, backend=backend), graph
            ) == expected3
            assert len(backend.pool.worker_pids) == 3
            assert backend.pool.worker_pids != pids2
        finally:
            backend.close()

    def test_trace_state_resets_between_jobs(self, graph):
        from repro.runtime.config import RuntimeConfig

        backend = PoolBackend()
        config = RuntimeConfig(trace=True, trace_path=None)
        try:
            root_counts = []
            for _ in range(2):
                env = ExecutionEnvironment(2, backend=backend,
                                           config=config)
                cc.cc_bulk(env, graph)
                timelines = env.last_worker_traces
                assert timelines is not None and len(timelines) == 2
                assert [t.rank for t in timelines] == [0, 1]
                root_counts.append([len(t.roots) for t in timelines])
                assert all(count > 0 for count in root_counts[-1])
            # a fresh tracer per job: identical span trees both times,
            # not an accumulation of job 1's spans into job 2's timeline
            assert root_counts[0] == root_counts[1]
        finally:
            backend.close()

    def test_close_is_idempotent_and_pool_recreates(self, graph):
        backend = PoolBackend()
        try:
            expected = cc.cc_bulk(ExecutionEnvironment(2), graph)
            assert cc.cc_bulk(
                ExecutionEnvironment(2, backend=backend), graph
            ) == expected
            backend.close()
            backend.close()
            assert backend.pool is None
            # closed backend simply re-forks on the next job
            assert cc.cc_bulk(
                ExecutionEnvironment(2, backend=backend), graph
            ) == expected
        finally:
            backend.close()
