"""Chunked fabric frames: tiny batches over real workers change nothing.

The SPMD exchange splits every payload into size-bounded batch chunks
(``RuntimeConfig.batch_size`` records, ``max_frame_bytes`` serialized
bytes, recursive bisection past the byte bound).  Reassembly is
per-stream FIFO with a counted terminator, so even pathological bounds
— two-record chunks, 256-byte frames — must leave results and logical
counters bitwise-identical to the in-process simulator.  These tests
run real forked workers under exactly those bounds.
"""

import pytest

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.algorithms import pagerank as pr
from repro.bench import audit
from repro.graphs import erdos_renyi
from repro.runtime.config import RuntimeConfig

pytestmark = pytest.mark.verify_invariants

PARALLELISM = 3

#: pathological data-plane bounds: a handful of records per chunk and a
#: frame budget small enough to force byte-level bisection as well
TINY = dict(batch_size=2, max_frame_bytes=256)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(50, 2.5, seed=23)


def _env(backend, **overrides):
    config = RuntimeConfig(**overrides) if overrides else None
    return ExecutionEnvironment(PARALLELISM, backend=backend, config=config)


def _comparable(env):
    return audit._comparable_counters(env.metrics)


class TestChunkedExchange:
    def test_bulk_cc_is_chunking_invariant(self, graph):
        sim_env = _env("simulated")
        expected = cc.cc_bulk(sim_env, graph)
        mp_env = _env("multiprocess", **TINY)
        actual = cc.cc_bulk(mp_env, graph)
        assert actual == expected
        assert _comparable(mp_env) == _comparable(sim_env)

    def test_pagerank_floats_survive_byte_bisection(self, graph):
        """Bisection changes frame boundaries, never arrival order, so
        float summation stays bitwise-identical."""
        sim_env = _env("simulated")
        expected = pr.pagerank_bulk(sim_env, graph, iterations=3,
                                    plan="partition")
        mp_env = _env("multiprocess", **TINY)
        actual = pr.pagerank_bulk(mp_env, graph, iterations=3,
                                  plan="partition")
        assert actual == expected

    @pytest.mark.parametrize("mode", ["superstep", "async"])
    def test_delta_iterations_under_tiny_frames(self, graph, mode):
        sim_env = _env("simulated")
        expected = cc.cc_incremental(sim_env, graph, variant="match",
                                     mode=mode)
        mp_env = _env("multiprocess", **TINY)
        actual = cc.cc_incremental(mp_env, graph, variant="match", mode=mode)
        assert actual == expected
        assert _comparable(mp_env) == _comparable(sim_env)

    def test_record_at_a_time_backends_still_agree(self, graph):
        """batch_size=1 on BOTH backends: the degenerate framing the
        acceptance audit runs (REPRO_BATCH_SIZE=1)."""
        sim_env = _env("simulated", batch_size=1)
        expected = cc.cc_bulk(sim_env, graph)
        mp_env = _env("multiprocess", batch_size=1)
        actual = cc.cc_bulk(mp_env, graph)
        assert actual == expected
        assert _comparable(mp_env) == _comparable(sim_env)

    def test_chunking_does_not_leak_into_logical_counters(self, graph):
        """Tiny chunks multiply frames and batches, but the logical
        counters the audit compares must not move at all."""
        default_env = _env("multiprocess")
        expected = cc.cc_bulk(default_env, graph)
        tiny_env = _env("multiprocess", **TINY)
        actual = cc.cc_bulk(tiny_env, graph)
        assert actual == expected
        assert _comparable(tiny_env) == _comparable(default_env)
        # physical batch counts DO move — that's what makes them physical
        assert tiny_env.metrics.batches_shipped > \
            default_env.metrics.batches_shipped
