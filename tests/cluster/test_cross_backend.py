"""The multiprocess backend is bit-identical to the simulator.

These tests hold real forked workers to the simulator's exact results
and *logical* counters — the property the differential audit enforces
at scale (``python -m repro.bench audit --backends
simulated,multiprocess``).  Kept small here so CI stays quick.
"""

import pytest

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.algorithms import pagerank as pr
from repro.bench import audit
from repro.graphs import erdos_renyi

pytestmark = pytest.mark.verify_invariants

PARALLELISM = 3


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 2.5, seed=19)


def _env(backend):
    return ExecutionEnvironment(PARALLELISM, backend=backend)


def _comparable(env):
    return audit._comparable_counters(env.metrics)


class TestPlanBackendEquivalence:
    def test_bulk_cc_matches_bitwise(self, graph):
        sim_env = _env("simulated")
        expected = cc.cc_bulk(sim_env, graph)
        mp_env = _env("multiprocess")
        actual = cc.cc_bulk(mp_env, graph)
        assert actual == expected
        assert _comparable(mp_env) == _comparable(sim_env)

    @pytest.mark.parametrize("variant,mode", [
        ("cogroup", "superstep"),
        ("match", "microstep"),
        ("match", "async"),
    ])
    def test_delta_cc_matches_in_every_mode(self, graph, variant, mode):
        sim_env = _env("simulated")
        expected = cc.cc_incremental(sim_env, graph, variant=variant,
                                     mode=mode)
        mp_env = _env("multiprocess")
        actual = cc.cc_incremental(mp_env, graph, variant=variant, mode=mode)
        assert actual == expected
        assert _comparable(mp_env) == _comparable(sim_env)

    @pytest.mark.parametrize("plan", ["partition", "broadcast"])
    def test_pagerank_floats_are_bitwise_equal(self, graph, plan):
        """Frames concatenate in source-rank order = the simulator's
        partition scan, so even float summation orders coincide."""
        sim_env = _env("simulated")
        expected = pr.pagerank_bulk(sim_env, graph, iterations=4, plan=plan)
        mp_env = _env("multiprocess")
        actual = pr.pagerank_bulk(mp_env, graph, iterations=4, plan=plan)
        assert actual == expected  # exact, not approx
        assert _comparable(mp_env) == _comparable(sim_env)

    def test_multiprocess_counts_serialized_bytes(self, graph):
        mp_env = _env("multiprocess")
        cc.cc_bulk(mp_env, graph)
        assert mp_env.metrics.bytes_shipped > 0
        sim_env = _env("simulated")
        cc.cc_bulk(sim_env, graph)
        assert sim_env.metrics.bytes_shipped == 0


class TestAuditCrossBackend:
    def test_audit_runs_every_engine_on_both_backends(self):
        result = audit.run(seeds=(7,), num_vertices=40,
                           pagerank_iterations=4,
                           backends=("simulated", "multiprocess"))
        result.raise_on_failure()
        # 11 engine cells x 2 backends
        assert len(result.runs) == 22
        assert {run.backend for run in result.runs} == {
            "simulated", "multiprocess"
        }
        report = result.report()
        assert "identical logical counters" in report

    def test_audit_detects_a_backend_divergence(self):
        baselines = {}
        metrics = ExecutionEnvironment(2).metrics
        key = ("CC", "engine", "g")
        assert audit._cross_backend_check(
            "simulated", {1: 1}, metrics, key, baselines
        ) is None
        detail = audit._cross_backend_check(
            "multiprocess", {1: 2}, metrics, key, baselines
        )
        assert detail is not None and "results differ" in detail
