"""The pickled-frame transport: tagged streams, buffering, timeouts."""

import multiprocessing

import pytest

from repro.cluster.fabric import Fabric, FabricTimeout


@pytest.fixture
def fabric():
    ctx = multiprocessing.get_context("fork")
    fab = Fabric(size=2, mp_context=ctx, timeout=2.0)
    yield fab
    fab.close()


class TestEndpoint:
    def test_send_recv_round_trips_a_payload(self, fabric):
        a, b = fabric.endpoint(0), fabric.endpoint(1)
        a.send(1, tag=7, payload={"records": [1, 2, 3]})
        assert b.recv(0, tag=7) == {"records": [1, 2, 3]}

    def test_payloads_are_copies_not_references(self, fabric):
        a, b = fabric.endpoint(0), fabric.endpoint(1)
        payload = [1, 2]
        a.send(1, tag=1, payload=payload)
        received = b.recv(0, tag=1)
        payload.append(3)
        assert received == [1, 2]

    def test_fifo_within_one_stream(self, fabric):
        a, b = fabric.endpoint(0), fabric.endpoint(1)
        for i in range(5):
            a.send(1, tag="s", payload=i)
        assert [b.recv(0, tag="s") for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_out_of_order_tags_are_buffered_not_misdelivered(self, fabric):
        a, b = fabric.endpoint(0), fabric.endpoint(1)
        a.send(1, tag="late", payload="for later")
        a.send(1, tag="now", payload="for now")
        # asking for the second-sent tag first must skip (and keep) the
        # first frame
        assert b.recv(0, tag="now") == "for now"
        assert b.recv(0, tag="late") == "for later"

    def test_self_send_is_rejected(self, fabric):
        a = fabric.endpoint(0)
        with pytest.raises(ValueError):
            a.send(0, tag=1, payload="loop")

    def test_recv_times_out_when_no_peer_sends(self, fabric):
        b = fabric.endpoint(1)
        b.timeout = 0.1
        with pytest.raises(FabricTimeout):
            b.recv(0, tag="never")

    def test_byte_counters_track_serialized_traffic(self, fabric):
        a, b = fabric.endpoint(0), fabric.endpoint(1)
        a.send(1, tag=1, payload=list(range(100)))
        b.recv(0, tag=1)
        assert a.bytes_sent > 0
        assert b.bytes_received == a.bytes_sent
