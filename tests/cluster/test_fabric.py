"""The frame transport: tagged streams, buffering, timeouts, shm rings."""

import multiprocessing
import pickle
import time

import pytest

from repro.cluster.fabric import (
    SHM_THRESHOLD_BYTES,
    Fabric,
    FabricTimeout,
)


@pytest.fixture
def fabric():
    ctx = multiprocessing.get_context("fork")
    fab = Fabric(size=2, mp_context=ctx, timeout=2.0)
    yield fab
    fab.close()


class TestEndpoint:
    def test_send_recv_round_trips_a_payload(self, fabric):
        a, b = fabric.endpoint(0), fabric.endpoint(1)
        a.send(1, tag=7, payload={"records": [1, 2, 3]})
        assert b.recv(0, tag=7) == {"records": [1, 2, 3]}

    def test_payloads_are_copies_not_references(self, fabric):
        a, b = fabric.endpoint(0), fabric.endpoint(1)
        payload = [1, 2]
        a.send(1, tag=1, payload=payload)
        received = b.recv(0, tag=1)
        payload.append(3)
        assert received == [1, 2]

    def test_fifo_within_one_stream(self, fabric):
        a, b = fabric.endpoint(0), fabric.endpoint(1)
        for i in range(5):
            a.send(1, tag="s", payload=i)
        assert [b.recv(0, tag="s") for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_out_of_order_tags_are_buffered_not_misdelivered(self, fabric):
        a, b = fabric.endpoint(0), fabric.endpoint(1)
        a.send(1, tag="late", payload="for later")
        a.send(1, tag="now", payload="for now")
        # asking for the second-sent tag first must skip (and keep) the
        # first frame
        assert b.recv(0, tag="now") == "for now"
        assert b.recv(0, tag="late") == "for later"

    def test_self_send_is_rejected(self, fabric):
        a = fabric.endpoint(0)
        with pytest.raises(ValueError):
            a.send(0, tag=1, payload="loop")

    def test_recv_times_out_when_no_peer_sends(self, fabric):
        b = fabric.endpoint(1)
        b.timeout = 0.1
        with pytest.raises(FabricTimeout):
            b.recv(0, tag="never")

    def test_byte_counters_track_serialized_traffic(self, fabric):
        a, b = fabric.endpoint(0), fabric.endpoint(1)
        a.send(1, tag=1, payload=list(range(100)))
        b.recv(0, tag=1)
        assert a.bytes_sent > 0
        assert b.bytes_received == a.bytes_sent


class TestSharedMemoryRings:
    """Frames above the threshold travel through shared-memory slots."""

    @pytest.fixture
    def small_fabric(self):
        # tiny slots so modest payloads exercise multi-slot spanning
        ctx = multiprocessing.get_context("fork")
        fab = Fabric(size=2, mp_context=ctx, timeout=2.0,
                     slot_bytes=4096, slots_per_worker=4)
        yield fab
        fab.close()

    @staticmethod
    def _endpoints(fab):
        # drop the shm threshold so the kilobyte-scale payloads these
        # tests use take the shared-memory path, not the inline one
        a, b = fab.endpoint(0), fab.endpoint(1)
        a.shm_threshold = b.shm_threshold = 1024
        return a, b

    def test_big_payload_round_trips_through_shm(self, fabric):
        a, b = fabric.endpoint(0), fabric.endpoint(1)
        payload = list(range(50_000))  # pickles well past the threshold
        assert len(pickle.dumps(payload)) >= SHM_THRESHOLD_BYTES
        before = a._ring.free_slots
        a.send(1, tag="big", payload=payload)
        assert a._ring.free_slots < before  # slots in flight
        assert b.recv(0, tag="big") == payload
        assert b.bytes_received == a.bytes_sent

    def test_small_payload_stays_inline(self, fabric):
        a, b = fabric.endpoint(0), fabric.endpoint(1)
        before = a._ring.free_slots
        a.send(1, tag="small", payload=[1, 2, 3])
        assert a._ring.free_slots == before  # no slot touched
        assert b.recv(0, tag="small") == [1, 2, 3]

    def test_frame_spans_multiple_slots(self, small_fabric):
        a, b = self._endpoints(small_fabric)
        payload = bytes(range(256)) * 50  # ~12.8 KB over 4 KB slots
        before = a._ring.free_slots
        a.send(1, tag="span", payload=payload)
        assert before - a._ring.free_slots >= 3
        assert b.recv(0, tag="span") == payload

    def test_oversize_frame_falls_back_inline(self, small_fabric):
        a, b = self._endpoints(small_fabric)
        payload = bytes(64 << 10)  # larger than the whole 4-slot ring
        before = a._ring.free_slots
        a.send(1, tag="huge", payload=payload)
        assert a._ring.free_slots == before  # inline path, no slots
        assert b.recv(0, tag="huge") == payload

    def test_acks_recycle_slots_across_repeated_sends(self, small_fabric):
        # 8 sends through a 4-slot ring only work if receiving acks the
        # slots back; the interleaved recv drives that recycling
        a, b = self._endpoints(small_fabric)
        payload = bytes(6000)  # 2 slots per frame
        for i in range(8):
            a.send(1, tag=i, payload=payload)
            assert b.recv(0, tag=i) == payload
        # after rank 0 drains its inbox, every ack has come home; the
        # acks ride a queue with a feeder thread, so allow them a
        # moment to arrive before the drain sees them
        deadline = time.monotonic() + 5.0
        while (
            a._ring.free_slots < len(a._ring)
            and time.monotonic() < deadline
        ):
            a._drain(a._mailboxes[0])
            time.sleep(0.01)
        assert a._ring.free_slots == len(a._ring)

    def test_sender_blocks_then_raises_when_no_acks_return(self,
                                                           small_fabric):
        a, _ = self._endpoints(small_fabric)
        a.timeout = 0.2
        payload = bytes(12_000)  # 3 of the 4 slots
        a.send(1, tag=0, payload=payload)
        # nobody is receiving, so no acks: the second send cannot get
        # slots and must time out rather than deadlock silently
        with pytest.raises(FabricTimeout):
            a.send(1, tag=1, payload=payload)

    def test_stale_epoch_frames_are_dropped_but_acked(self, small_fabric):
        a, b = self._endpoints(small_fabric)
        a.begin_job(1)
        b.begin_job(1)
        a.send(1, tag="old", payload=bytes(6000))  # epoch-1 frame, shm path
        b.begin_job(2)  # receiver moves on before the frame lands
        with pytest.raises(FabricTimeout):
            b.timeout = 0.2
            b.recv(0, tag="old")
        assert b.frames_received == 0  # dropped, not misdelivered
        # ...but the slots were still acked back to the sender
        a._drain(a._mailboxes[0])
        assert a._ring.free_slots == len(a._ring)

    def test_stale_inline_frames_are_dropped_too(self, fabric):
        a, b = fabric.endpoint(0), fabric.endpoint(1)
        a.begin_job(1)
        b.begin_job(1)
        a.send(1, tag="old", payload="leftover")
        b.begin_job(2)
        a.begin_job(2)
        a.send(1, tag="fresh", payload="current")
        assert b.recv(0, tag="fresh") == "current"
        assert b.frames_received == 1

    def test_begin_job_resets_counters_and_pending(self, fabric):
        a, b = fabric.endpoint(0), fabric.endpoint(1)
        a.send(1, tag="x", payload="y")
        b.recv(0, tag="x")
        assert b.bytes_received > 0
        b.begin_job(5)
        assert (b.bytes_received, b.frames_received, b.bytes_sent,
                b.frames_sent) == (0, 0, 0, 0)
        assert not b._pending

    def test_shared_memory_can_be_disabled(self):
        ctx = multiprocessing.get_context("fork")
        fab = Fabric(size=2, mp_context=ctx, timeout=2.0,
                     use_shared_memory=False)
        try:
            a, b = fab.endpoint(0), fab.endpoint(1)
            assert a._ring is None
            payload = list(range(50_000))
            a.send(1, tag="big", payload=payload)
            assert b.recv(0, tag="big") == payload
        finally:
            fab.close()

    def test_close_is_idempotent_and_safe_after_partial_use(self,
                                                            small_fabric):
        a, _ = self._endpoints(small_fabric)
        a.send(1, tag="orphan", payload=bytes(6000))  # never received
        small_fabric.close()
        small_fabric.close()  # second close: no-op, no raise
