"""Backend resolution, SPMD collectives, and worker-crash reporting."""

import pytest

from repro.cluster import (
    LOCAL,
    MultiprocessBackend,
    SimulatedBackend,
    WorkerCrash,
    resolve_backend,
)


class TestResolveBackend:
    def test_none_is_the_simulator(self):
        assert isinstance(resolve_backend(None), SimulatedBackend)

    def test_names_hit_the_registry(self):
        assert isinstance(resolve_backend("simulated"), SimulatedBackend)
        assert isinstance(
            resolve_backend("multiprocess"), MultiprocessBackend
        )

    def test_instances_pass_through(self):
        backend = MultiprocessBackend(timeout=5.0)
        assert resolve_backend(backend) is backend

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="multiprocess"):
            resolve_backend("gpu")


class TestRunProgram:
    def test_simulated_runs_inline_with_local_cluster(self):
        seen = []

        def program(cluster):
            seen.append(cluster)
            return "result", None

        result, _metrics = SimulatedBackend().run_program(program, 4)
        assert result == "result"
        assert seen == [LOCAL]

    def test_multiprocess_workers_see_their_rank_and_peers(self):
        def program(cluster):
            # every worker contributes its rank; the collectives must
            # agree on the totals across all four processes
            total = cluster.allreduce_sum(cluster.rank)
            gathered = cluster.allgather(cluster.rank * 10)
            return {"total": total, "gathered": gathered, "size": cluster.size}, None

        result, _metrics = MultiprocessBackend(timeout=30.0).run_program(
            program, 4
        )
        assert result == {
            "total": 0 + 1 + 2 + 3,
            "gathered": [0, 10, 20, 30],
            "size": 4,
        }

    def test_exchange_routes_frames_by_source_rank(self):
        def program(cluster):
            frames = [
                [(cluster.rank, target)] if target != cluster.rank
                else [(cluster.rank, cluster.rank)]
                for target in range(cluster.size)
            ]
            received = cluster.exchange(frames)
            return received, None

        result, _metrics = MultiprocessBackend(timeout=30.0).run_program(
            program, 3
        )
        # coordinator's view: frame i came from source rank i, addressed
        # to rank 0
        assert result == [[(0, 0)], [(1, 0)], [(2, 0)]]

    def test_worker_exception_surfaces_as_crash_with_traceback(self):
        def program(cluster):
            if cluster.rank == 1:
                raise RuntimeError("worker 1 exploded")
            return None, None

        with pytest.raises(WorkerCrash, match="worker 1 exploded"):
            MultiprocessBackend(timeout=30.0).run_program(program, 2)
