"""Shipping channel semantics and network accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.hashing import partition_index
from repro.runtime import channels
from repro.runtime.metrics import MetricsCollector
from repro.runtime.plan import (
    BROADCAST,
    FORWARD,
    GATHER,
    ShipKind,
    ShipStrategy,
    partition_on,
)

RECORDS = [(i, i * 10) for i in range(20)]


def spread(records, parallelism=4):
    return channels.round_robin(records, parallelism)


class TestForward:
    def test_identity(self):
        parts = spread(RECORDS)
        out = channels.ship(parts, FORWARD, 4)
        assert out == parts

    def test_counts_all_local(self):
        metrics = MetricsCollector()
        channels.ship(spread(RECORDS), FORWARD, 4, metrics)
        assert metrics.records_shipped_local == len(RECORDS)
        assert metrics.records_shipped_remote == 0

    def test_rejects_partition_count_change(self):
        with pytest.raises(ValueError):
            channels.ship(spread(RECORDS, 2), FORWARD, 4)

    def test_output_is_a_copy(self):
        parts = spread(RECORDS)
        out = channels.ship(parts, FORWARD, 4)
        out[0].append(("extra",))
        assert len(parts[0]) == len(RECORDS) // 4


class TestHashPartition:
    def test_routes_by_key(self):
        out = channels.ship(spread(RECORDS), partition_on((0,)), 4)
        for p, part in enumerate(out):
            for record in part:
                assert partition_index(record[0], 4) == p

    def test_preserves_multiset(self):
        out = channels.ship(spread(RECORDS), partition_on((0,)), 4)
        assert sorted(channels.merge(out)) == sorted(RECORDS)

    def test_local_plus_remote_equals_total(self):
        metrics = MetricsCollector()
        channels.ship(spread(RECORDS), partition_on((1,)), 4, metrics)
        total = metrics.records_shipped_local + metrics.records_shipped_remote
        assert total == len(RECORDS)

    def test_requires_key_fields(self):
        with pytest.raises(ValueError):
            ShipStrategy(ShipKind.PARTITION_HASH)

    @given(st.lists(st.tuples(st.integers(), st.integers()), max_size=50),
           st.integers(min_value=1, max_value=8))
    def test_never_loses_records(self, records, parallelism):
        parts = channels.round_robin(records, parallelism)
        out = channels.ship(parts, partition_on((0,)), parallelism)
        assert sorted(channels.merge(out)) == sorted(records)


class TestBroadcast:
    def test_every_partition_gets_everything(self):
        out = channels.ship(spread(RECORDS), BROADCAST, 4)
        for part in out:
            assert sorted(part) == sorted(RECORDS)

    def test_network_cost(self):
        metrics = MetricsCollector()
        channels.ship(spread(RECORDS), BROADCAST, 4, metrics)
        assert metrics.records_shipped_remote == len(RECORDS) * 3
        assert metrics.records_shipped_local == len(RECORDS)


class TestGather:
    def test_everything_in_partition_zero(self):
        out = channels.ship(spread(RECORDS), GATHER, 4)
        assert sorted(out[0]) == sorted(RECORDS)
        assert all(not part for part in out[1:])

    def test_cost_excludes_partition_zero(self):
        metrics = MetricsCollector()
        parts = spread(RECORDS)
        channels.ship(parts, GATHER, 4, metrics)
        assert metrics.records_shipped_local == len(parts[0])
        assert metrics.records_shipped_remote == (
            len(RECORDS) - len(parts[0])
        )


class TestPartitionCountContract:
    """Every ship requires exactly ``parallelism`` input partitions —
    the contract that makes ``target == source_index`` a valid locality
    test (a 2-partition input shipped on a 4-way cluster used to be
    silently mislabelled local/remote)."""

    @pytest.mark.parametrize(
        "strategy", [FORWARD, partition_on((0,)), BROADCAST, GATHER],
        ids=["forward", "hash", "broadcast", "gather"],
    )
    @pytest.mark.parametrize("wrong_count", [1, 2, 6])
    def test_rejects_mismatched_partition_count(self, strategy, wrong_count):
        with pytest.raises(ValueError, match="partition-count contract"):
            channels.ship(spread(RECORDS, wrong_count), strategy, 4)

    def test_accepts_empty_partitions_at_right_count(self):
        parts = [[], [], [], list(RECORDS)]
        metrics = MetricsCollector()
        out = channels.ship(parts, partition_on((0,)), 4, metrics)
        assert sorted(channels.merge(out)) == sorted(RECORDS)


class TestLoaders:
    def test_round_robin_balance(self):
        parts = channels.round_robin(RECORDS, 4)
        assert all(len(p) == 5 for p in parts)

    def test_partition_records_routing(self):
        parts = channels.partition_records(RECORDS, (0,), 4)
        for p, part in enumerate(parts):
            for record in part:
                assert partition_index(record[0], 4) == p

    def test_merge_flattens(self):
        assert channels.merge([[1, 2], [], [3]]) == [1, 2, 3]
