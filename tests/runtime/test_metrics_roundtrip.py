"""Snapshot/reset round-trips and the new physical counters."""

from repro.runtime.metrics import IterationStats, MetricsCollector


def _logical(snapshot):
    """The snapshot minus wall-clock durations (never reproducible)."""
    out = dict(snapshot)
    out["iteration_log"] = [
        {k: v for k, v in entry.items() if k != "duration_s"}
        for entry in snapshot["iteration_log"]
    ]
    return out


def _populate(metrics):
    metrics.begin_superstep(1)
    metrics.add_processed("join", 10)
    metrics.add_shipped(local=4, remote=6)
    metrics.add_bytes_shipped(128)
    metrics.add_cache_build()
    metrics.end_superstep(workset_size=10, delta_size=3)
    metrics.begin_superstep(2)
    metrics.add_processed("join", 5)
    metrics.add_cache_hit()
    metrics.end_superstep(workset_size=3, delta_size=1)
    return metrics


class TestSnapshot:
    def test_snapshot_reports_new_counters(self):
        snap = _populate(MetricsCollector()).snapshot()
        assert snap["bytes_shipped"] == 128
        assert snap["cache_hits"] == 1
        assert snap["cache_builds"] == 1
        assert snap["supersteps"] == 2

    def test_superstep_scoping_lands_in_iteration_log(self):
        snap = _populate(MetricsCollector()).snapshot()
        first, second = snap["iteration_log"]
        assert first["bytes_shipped"] == 128
        assert first["cache_builds"] == 1
        assert second["cache_hits"] == 1
        assert second["bytes_shipped"] == 0

    def test_snapshot_is_detached(self):
        metrics = _populate(MetricsCollector())
        snap = metrics.snapshot()
        metrics.add_processed("join", 99)
        assert snap["total_processed"] == 15

    def test_stats_as_dict_round_trips(self):
        stats = IterationStats(superstep=3)
        stats.bytes_shipped = 7
        stats.cache_hits = 2
        stats.cache_builds = 1
        as_dict = stats.as_dict()
        assert as_dict["bytes_shipped"] == 7
        assert as_dict["cache_hits"] == 2
        assert as_dict["cache_builds"] == 1


class TestResetRoundTrip:
    def test_reset_restores_pristine_snapshot(self):
        metrics = _populate(MetricsCollector())
        metrics.reset()
        assert metrics.snapshot() == MetricsCollector().snapshot()

    def test_populate_after_reset_matches_first_run(self):
        metrics = _populate(MetricsCollector())
        first = metrics.snapshot()
        metrics.reset()
        second = _populate(metrics).snapshot()
        assert _logical(first) == _logical(second)


class TestMergeNewCounters:
    def test_aligned_merge_sums_physical_counters(self):
        lhs = _populate(MetricsCollector())
        rhs = _populate(MetricsCollector())
        merged = lhs.merge(rhs, align_supersteps=True).snapshot()
        assert merged["bytes_shipped"] == 256
        assert merged["cache_hits"] == 2
        assert merged["cache_builds"] == 2
        first, second = merged["iteration_log"]
        assert first["bytes_shipped"] == 256
        assert second["cache_hits"] == 2
