"""Failure injection and checkpoint recovery (Section 4.2)."""

import pytest

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.graphs import erdos_renyi
from repro.runtime.recovery import (
    CheckpointStore,
    FailureInjector,
    SimulatedFailure,
)


class TestCheckpointStore:
    def test_due_every_interval(self):
        store = CheckpointStore(interval=3)
        assert [s for s in range(1, 10) if store.due(s)] == [1, 4, 7]

    def test_snapshots_are_deep_copies(self):
        store = CheckpointStore(interval=1)
        state = [{1: "a"}]
        store.take(1, state, [])
        state[0][1] = "mutated"
        restored = store.restore(failed_superstep=3)
        assert restored.state == [{1: "a"}]
        assert store.supersteps_replayed == 2

    def test_restore_without_snapshot_fails(self):
        store = CheckpointStore(interval=1)
        with pytest.raises(RuntimeError):
            store.restore(1)

    def test_restored_state_is_itself_a_copy(self):
        store = CheckpointStore(interval=1)
        store.take(1, {"x": 1}, [])
        first = store.restore(2)
        first.state["x"] = 99
        second = store.restore(2)
        assert second.state == {"x": 1}


class TestFailureInjector:
    def test_fires_once(self):
        injector = FailureInjector(fail_at_superstep=3)
        injector(1)
        injector(2)
        with pytest.raises(SimulatedFailure):
            injector(3)
        injector(3)  # second pass over the same superstep: no failure

    def test_failure_carries_superstep(self):
        injector = FailureInjector(5)
        with pytest.raises(SimulatedFailure) as excinfo:
            injector(5)
        assert excinfo.value.superstep == 5


class TestEndToEndRecovery:
    @pytest.fixture
    def graph(self):
        return erdos_renyi(150, 3.0, seed=77)

    def _run(self, graph, fail_at=None, interval=0):
        env = ExecutionEnvironment(4)
        env.checkpoint_interval = interval
        if fail_at is not None:
            env.failure_injector = FailureInjector(fail_at)
        result = cc.cc_incremental(env, graph, variant="cogroup",
                                   mode="superstep")
        return env, result

    def test_recovered_run_matches_failure_free_run(self, graph):
        _env_ok, expected = self._run(graph)
        # checkpoints land on supersteps 1, 3, 5, ...; failing at 4 forces
        # a genuine replay of superstep 3
        env, recovered = self._run(graph, fail_at=4, interval=2)
        assert recovered == expected
        store = env.last_checkpoint_store
        assert store.recoveries == 1
        assert store.supersteps_replayed >= 1

    def test_failure_at_first_checkpointed_superstep(self, graph):
        _env_ok, expected = self._run(graph)
        env, recovered = self._run(graph, fail_at=1, interval=1)
        assert recovered == expected
        assert env.last_checkpoint_store.recoveries == 1

    def test_no_failure_means_no_recovery(self, graph):
        env, _result = self._run(graph, fail_at=None, interval=2)
        store = env.last_checkpoint_store
        assert store.recoveries == 0
        assert store.snapshots_taken >= 1

    def test_failure_without_checkpointing_propagates(self, graph):
        env = ExecutionEnvironment(4)
        env.failure_injector = FailureInjector(2)
        with pytest.raises((SimulatedFailure, RuntimeError)):
            cc.cc_incremental(env, graph, variant="cogroup",
                              mode="superstep")

    def test_bulk_iteration_recovers_too(self, graph):
        """Section 4.2's logging applies to bulk iterations as well."""
        from repro.algorithms import pagerank as pr

        env_ok = ExecutionEnvironment(4)
        expected = pr.pagerank_bulk(env_ok, graph, iterations=8)

        env = ExecutionEnvironment(4)
        env.checkpoint_interval = 3
        env.failure_injector = FailureInjector(5)
        recovered = pr.pagerank_bulk(env, graph, iterations=8)
        assert all(
            abs(recovered[k] - expected[k]) < 1e-12 for k in expected
        )
        assert env.last_checkpoint_store.recoveries == 1

    def test_checkpoint_interval_trades_replay_for_snapshots(self, graph):
        env_fine, _r1 = self._run(graph, fail_at=4, interval=1)
        env_coarse, _r2 = self._run(graph, fail_at=4, interval=3)
        assert (env_fine.last_checkpoint_store.supersteps_replayed
                <= env_coarse.last_checkpoint_store.supersteps_replayed)
        assert (env_fine.last_checkpoint_store.snapshots_taken
                >= env_coarse.last_checkpoint_store.snapshots_taken)


class TestPickledCheckpoints:
    """The log is a serialization round-trip, not an in-memory copy."""

    def test_take_pays_and_records_serialization_cost(self):
        store = CheckpointStore(interval=1)
        store.take(1, {"v": list(range(50))}, [(1, 2)])
        first = store.checkpoint_bytes
        assert first > 0
        store.take(2, {"v": list(range(500))}, [(1, 2)])
        assert store.checkpoint_bytes > first
        assert store.total_bytes == first + store.checkpoint_bytes

    def test_unpicklable_state_is_rejected_at_take_time(self):
        store = CheckpointStore(interval=1)
        with pytest.raises(TypeError, match="picklable"):
            store.take(1, {"udf": lambda x: x}, [])

    def test_latest_reconstructs_an_independent_copy(self):
        store = CheckpointStore(interval=1)
        store.take(3, [{0: 0}], [])
        a, b = store.latest, store.latest
        assert a.state == b.state and a.state is not b.state
        assert a.superstep == 3
        assert CheckpointStore(interval=1).latest is None


class TestRecoveryInEveryDeltaMode:
    """Satellite check: failure + restore works in all three execution
    modes of a delta iteration, replaying exactly the supersteps between
    the latest checkpoint and the failure."""

    @pytest.fixture
    def graph(self):
        return erdos_renyi(120, 3.0, seed=41)

    def _run(self, graph, mode, variant, fail_at=None, interval=0):
        env = ExecutionEnvironment(4)
        env.checkpoint_interval = interval
        if fail_at is not None:
            env.failure_injector = FailureInjector(fail_at)
        result = cc.cc_incremental(env, graph, variant=variant, mode=mode)
        return env, result

    @pytest.mark.parametrize("mode,variant", [
        ("superstep", "cogroup"),
        ("microstep", "match"),
        ("async", "match"),
    ])
    def test_recovered_run_matches_and_replays_the_gap(self, graph, mode,
                                                       variant):
        _env, expected = self._run(graph, mode, variant)
        # checkpoints land on supersteps 1, 3, 5, ...; failing at 4
        # replays supersteps 3 and 4
        env, recovered = self._run(graph, mode, variant, fail_at=4,
                                   interval=2)
        assert recovered == expected
        store = env.last_checkpoint_store
        assert store.recoveries == 1
        assert store.supersteps_replayed == 4 - 3

    @pytest.mark.parametrize("mode,variant", [
        ("superstep", "cogroup"),
        ("microstep", "match"),
        ("async", "match"),
    ])
    def test_counters_after_recovery_include_replayed_work(self, graph,
                                                           mode, variant):
        env_ok, _expected = self._run(graph, mode, variant)
        env, _recovered = self._run(graph, mode, variant, fail_at=4,
                                    interval=2)
        # the recovered run redoes supersteps 3-4, so it logs strictly
        # more superstep entries than the failure-free run
        assert env.metrics.supersteps > env_ok.metrics.supersteps