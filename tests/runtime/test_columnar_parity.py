"""Hypothesis parity: the columnar plane is bitwise-invisible.

For random record schemas mixing fixed-width (int, float) and object
(str, bool, nested-tuple) columns, every keyed driver, fused pipelines,
and the delta-iteration solution set must produce identical results,
identical logical counters, and identical span-counter totals whether
the data plane runs columnar, row-chunk, or degenerate ``batch_size=1``
framing — on the in-process simulator and on real pooled workers.  The
columnar kernels are *fast paths*, never semantics: any divergence here
means a kernel reordered, dropped, or retyped a record.
"""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.bench.audit import _comparable_counters
from repro.graphs import erdos_renyi
from repro.observability import LOGICAL_SPAN_COUNTERS
from repro.runtime import drivers
from repro.runtime.config import RuntimeConfig
from repro.runtime.metrics import MetricsCollector

# value columns: the draws deliberately mix types within one column so
# some examples columnarize fully, some demote to object columns, and
# some (negative, huge, or non-int keys) defeat the int64 fast path
mixed_values = st.one_of(
    st.integers(min_value=-(1 << 66), max_value=1 << 66),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=4),
    st.booleans(),
    st.tuples(st.integers(0, 5), st.integers(0, 5)),
)
# small key range: multi-match joins and multi-record groups are common
keys = st.integers(min_value=-6, max_value=6)
keyed_records = st.lists(st.tuples(keys, mixed_values), max_size=40)


class _Node:
    def __init__(self, name, key_fields, udf, flat=False):
        self.name = name
        self.key_fields = key_fields
        self.udf = udf
        self.flat = flat


def _run(driver, node, inputs, batch_size, columnar):
    metrics = MetricsCollector()
    kwargs = {"batch_size": batch_size}
    if driver is not drivers.run_hash_aggregate:
        kwargs["columnar"] = columnar
    if driver is drivers.run_hash_join:
        kwargs["build_left"] = True
    result = driver(node, [list(part) for part in inputs], metrics,
                    **kwargs)
    return result, _comparable_counters(metrics)


JOIN = _Node("parity:join", ((0,), (0,)),
             lambda a, b: (a[0], a[1], b[1]))
AGG = _Node("parity:agg", ((0,),),
            lambda a, b: a if repr(a) <= repr(b) else b)


@pytest.mark.parametrize("driver", [
    drivers.run_hash_join,
    drivers.run_sort_merge_join,
])
@given(left=keyed_records, right=keyed_records)
@settings(max_examples=60, deadline=None)
def test_join_drivers_are_layout_invariant(driver, left, right):
    node = JOIN
    expect, expect_counters = _run(driver, node, [left, right], 1024, False)
    for batch_size, columnar in [(1024, True), (1, True), (1, False)]:
        result, counters = _run(driver, node, [left, right],
                                batch_size, columnar)
        assert result == expect
        assert counters == expect_counters


@pytest.mark.parametrize("driver", [
    drivers.run_hash_aggregate,
    drivers.run_sort_aggregate,
])
@given(records=keyed_records)
@settings(max_examples=60, deadline=None)
def test_aggregate_drivers_are_layout_invariant(driver, records):
    node = AGG
    expect, expect_counters = _run(driver, node, [records], 1024, False)
    for batch_size, columnar in [(1024, True), (1, True), (1, False)]:
        result, counters = _run(driver, node, [records],
                                batch_size, columnar)
        assert result == expect
        assert counters == expect_counters


# ----------------------------------------------------------------------
# whole pipelines: fused chains + ship + join + aggregate


def _pipeline_env(columnar, batch_size, backend=None, parallelism=3):
    return ExecutionEnvironment(
        parallelism=parallelism, backend=backend,
        config=RuntimeConfig(columnar=columnar, batch_size=batch_size,
                             trace=True),
    )


def _run_pipeline(env, left, right):
    ds = env.from_iterable(left).map(lambda r: (r[0], r[1]))
    other = env.from_iterable(right).filter(lambda r: r[0] % 5 != 3)
    joined = ds.join(other, (0,), (0,), lambda a, b: (a[0], a[1], b[1]))
    reduced = joined.reduce_by_key(
        0, lambda a, b: a if repr(a) <= repr(b) else b
    )
    result = sorted(env.collect(reduced), key=repr)
    return result, env


def _span_totals(env):
    return {
        counter: sum(
            root.counters.get(counter, 0) for root in env.tracer.roots
        )
        for counter in LOGICAL_SPAN_COUNTERS
    }


@given(left=keyed_records, right=keyed_records)
@settings(max_examples=25, deadline=None)
@example(left=[(i % 7, float(i)) for i in range(30)],
         right=[(i % 5, "v%d" % i) for i in range(20)])
def test_pipelines_are_layout_invariant_simulated(left, right):
    expect, row_env = _run_pipeline(
        _pipeline_env(columnar=False, batch_size=1024), left, right
    )
    for columnar, batch_size in [(True, 1024), (True, 1), (False, 1)]:
        result, env = _run_pipeline(
            _pipeline_env(columnar=columnar, batch_size=batch_size),
            left, right,
        )
        assert result == expect
        assert _comparable_counters(env.metrics) == \
            _comparable_counters(row_env.metrics)
        assert _span_totals(env) == _span_totals(row_env)


def test_pipelines_are_layout_invariant_on_pool_workers():
    left = [(i % 11 - 5, v) for i, v in enumerate(
        [1, 2.5, "x", True, (1, 2)] * 12
    )]
    right = [(i % 7 - 3, i * 1.5) for i in range(40)]
    expect, sim_env = _run_pipeline(
        _pipeline_env(columnar=True, batch_size=1024), left, right
    )
    for columnar in (True, False):
        result, env = _run_pipeline(
            _pipeline_env(columnar=columnar, batch_size=1024,
                          backend="pool"),
            left, right,
        )
        assert result == expect
        assert _comparable_counters(env.metrics) == \
            _comparable_counters(sim_env.metrics)
        assert _span_totals(env) == _span_totals(sim_env)


# ----------------------------------------------------------------------
# the solution set: delta iterations under every layout


@given(seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=10, deadline=None)
def test_solution_set_is_layout_invariant(seed):
    graph = erdos_renyi(40, 2.0, seed=seed)
    expect_env = ExecutionEnvironment(
        3, config=RuntimeConfig(columnar=False, batch_size=1024)
    )
    expect = cc.cc_incremental(expect_env, graph, variant="match")
    for columnar, batch_size in [(True, 1024), (True, 1), (False, 1)]:
        env = ExecutionEnvironment(
            3, config=RuntimeConfig(columnar=columnar,
                                    batch_size=batch_size)
        )
        assert cc.cc_incremental(env, graph, variant="match") == expect
        assert _comparable_counters(env.metrics) == \
            _comparable_counters(expect_env.metrics)


def test_solution_set_is_layout_invariant_on_pool_workers():
    graph = erdos_renyi(60, 2.5, seed=23)
    sim_env = ExecutionEnvironment(2, config=RuntimeConfig(columnar=True))
    expect = cc.cc_incremental(sim_env, graph, variant="match")
    for columnar in (True, False):
        env = ExecutionEnvironment(
            2, backend="pool", config=RuntimeConfig(columnar=columnar)
        )
        assert cc.cc_incremental(env, graph, variant="match") == expect
        assert _comparable_counters(env.metrics) == \
            _comparable_counters(sim_env.metrics)
