"""Batch framing never changes results: drivers and channels agree at
every ``batch_size``.

The batched data plane's contract is that chunking is invisible —
``batch_size=1`` (record-at-a-time), tiny odd chunks, and
whole-partition batches must produce bitwise-identical outputs and
identical shipping counters.  Each test runs the same driver or channel
across the spectrum and compares against the unframed (``None``) run.
"""

import pytest

from repro.runtime import channels, drivers
from repro.runtime.config import RuntimeConfig
from repro.runtime.metrics import MetricsCollector
from repro.runtime.plan import BROADCAST, GATHER, partition_on

BATCH_SIZES = [1, 2, 3, 7, 64]

LEFT = [(k % 5, k) for k in range(23)]
RIGHT = [(k % 7, -k) for k in range(31)]


class _Node:
    def __init__(self, name, key_fields, udf, flat=False):
        self.name = name
        self.key_fields = key_fields
        self.udf = udf
        self.flat = flat


def _metrics():
    return MetricsCollector()


class TestDriverEquivalence:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("build_left", [True, False])
    def test_hash_join(self, batch_size, build_left):
        node = _Node("join", ((0,), (0,)), lambda a, b: (a, b))
        expected = drivers.run_hash_join(
            node, [LEFT, RIGHT], _metrics(), build_left=build_left
        )
        actual = drivers.run_hash_join(
            node, [LEFT, RIGHT], _metrics(), build_left=build_left,
            batch_size=batch_size,
        )
        assert actual == expected

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_sort_merge_join(self, batch_size):
        node = _Node("smj", ((0,), (0,)), lambda a, b: (a, b))
        expected = drivers.run_sort_merge_join(node, [LEFT, RIGHT],
                                               _metrics())
        actual = drivers.run_sort_merge_join(
            node, [LEFT, RIGHT], _metrics(), batch_size=batch_size
        )
        assert actual == expected

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_hash_and_sort_aggregate(self, batch_size):
        node = _Node("agg", ((0,),),
                     lambda a, b: (a[0], a[1] + b[1]))
        for run in (drivers.run_hash_aggregate, drivers.run_sort_aggregate):
            expected = run(node, [LEFT], _metrics())
            actual = run(node, [LEFT], _metrics(), batch_size=batch_size)
            assert actual == expected, run.__name__

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_reduce_group(self, batch_size):
        node = _Node("group", ((0,),),
                     lambda k, group: [(k, len(group))])
        expected = drivers.run_reduce_group(node, [LEFT], _metrics())
        actual = drivers.run_reduce_group(node, [LEFT], _metrics(),
                                          batch_size=batch_size)
        assert actual == expected

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("inner", [True, False])
    def test_cogroup(self, batch_size, inner):
        node = _Node("cogroup", ((0,), (0,)),
                     lambda k, ls, rs: [(k, len(ls), len(rs))])
        expected = drivers.run_cogroup(node, [LEFT, RIGHT], _metrics(),
                                       inner=inner)
        actual = drivers.run_cogroup(node, [LEFT, RIGHT], _metrics(),
                                     inner=inner, batch_size=batch_size)
        assert sorted(actual) == sorted(expected)

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_apply_combiner(self, batch_size):
        node = _Node("combine", ((0,),),
                     lambda a, b: (a[0], min(a[1], b[1])))
        parts = [LEFT[:11], LEFT[11:], []]
        expected = drivers.apply_combiner(node, parts, _metrics())
        actual = drivers.apply_combiner(node, parts, _metrics(),
                                        batch_size=batch_size)
        assert actual == expected


class TestShipEquivalence:
    @pytest.mark.parametrize("batch_size", [None] + BATCH_SIZES)
    def test_hash_ship_is_framing_invariant(self, batch_size):
        parallelism = 4
        parts = channels.round_robin(LEFT + RIGHT, parallelism)
        baseline = channels.ship(parts, partition_on((0,)), parallelism)
        metrics = _metrics()
        out = channels.ship(parts, partition_on((0,)), parallelism,
                            metrics, batch_size=batch_size)
        assert out == baseline
        assert len(out) == parallelism  # the partition-count contract
        assert metrics.records_shipped_local + \
            metrics.records_shipped_remote == len(LEFT + RIGHT)

    @pytest.mark.parametrize("strategy,factor", [
        (BROADCAST, 4), (GATHER, 1),
    ])
    def test_replicating_ships_count_chunks(self, strategy, factor):
        parallelism = 4
        parts = channels.round_robin(LEFT, parallelism)
        metrics = _metrics()
        channels.ship(parts, strategy, parallelism, metrics, batch_size=2)
        expected_chunks = sum(-(-len(p) // 2) for p in parts) * factor
        assert metrics.batches_shipped == expected_chunks

    def test_unframed_ship_counts_one_batch_per_partition(self):
        parallelism = 3
        parts = channels.round_robin(LEFT, parallelism)
        metrics = _metrics()
        channels.ship(parts, partition_on((0,)), parallelism, metrics)
        assert metrics.batches_shipped == parallelism


class TestConfigValidation:
    def test_batch_size_must_be_positive(self):
        with pytest.raises(ValueError):
            RuntimeConfig(batch_size=0)

    def test_max_frame_bytes_must_be_positive(self):
        with pytest.raises(ValueError):
            RuntimeConfig(max_frame_bytes=-1)

    def test_async_poll_batch_rejects_bools_and_non_ints(self):
        with pytest.raises(TypeError):
            RuntimeConfig(async_poll_batch=True)
        with pytest.raises(TypeError):
            RuntimeConfig(batch_size="1024")

    def test_env_async_poll_batch_is_config_backed(self):
        from repro import ExecutionEnvironment
        env = ExecutionEnvironment(2)
        assert env.async_poll_batch == env.config.async_poll_batch
        original = env.config
        env.async_poll_batch = 5
        assert env.config.async_poll_batch == 5
        assert env.config is not original  # replaced, never mutated
        with pytest.raises(TypeError):
            env.async_poll_batch = True
