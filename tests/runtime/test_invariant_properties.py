"""Property tests for the counter conservation laws (hypothesis).

Rather than hand-picked inputs, these drive the audited code paths with
random records, keys, parallelism, and comparators and assert the
invariant checker stays silent — any counterexample hypothesis finds is
a real accounting bug in a channel or the ∪̇ operator.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import channels
from repro.runtime.invariants import attach_checker
from repro.runtime.metrics import MetricsCollector
from repro.runtime.plan import BROADCAST, FORWARD, GATHER, partition_on

# keys mix ints, bools, and strings; bool/int coincidence is deliberate
# (see stable_hash's collision semantics)
keys = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.booleans(),
    st.text(max_size=8),
)
records = st.lists(st.tuples(keys, st.integers()), max_size=60)
parallelisms = st.integers(min_value=1, max_value=8)


def checked_metrics():
    metrics = MetricsCollector()
    attach_checker(metrics)
    return metrics


class TestChannelConservation:
    @given(records, parallelisms,
           st.sampled_from(["forward", "hash", "broadcast", "gather"]))
    @settings(max_examples=150)
    def test_every_ship_satisfies_its_conservation_law(
            self, recs, parallelism, kind):
        """No random input makes an audited ship raise, and the record
        multiset is preserved (expanded ``parallelism``-fold for
        broadcast)."""
        strategy = {
            "forward": FORWARD,
            "hash": partition_on((0,)),
            "broadcast": BROADCAST,
            "gather": GATHER,
        }[kind]
        parts = channels.round_robin(recs, parallelism)
        metrics = checked_metrics()
        out = channels.ship(parts, strategy, parallelism, metrics)
        assert metrics.invariants.ship_checks == 1
        factor = parallelism if kind == "broadcast" else 1
        assert sorted(map(repr, channels.merge(out))) == \
            sorted(map(repr, recs * factor))

    @given(records, parallelisms)
    @settings(max_examples=150)
    def test_local_plus_remote_is_total(self, recs, parallelism):
        metrics = checked_metrics()
        channels.ship(channels.round_robin(recs, parallelism),
                      partition_on((0,)), parallelism, metrics)
        assert (metrics.records_shipped_local
                + metrics.records_shipped_remote) == len(recs)


class TestDeltaUnionAccounting:
    @given(records, records, parallelisms,
           st.sampled_from(["always", "smaller", "larger"]))
    @settings(max_examples=150)
    def test_size_moves_by_accepted_minus_replaced(
            self, base, delta, parallelism, policy):
        """∪̇ under a random CPO comparator keeps |S| consistent with
        the accepted/replaced audit — the checker inside apply_delta
        would raise on any drift."""
        from repro.iterations.solution_set import SolutionSetIndex

        comparator = {
            "always": None,
            "smaller": lambda new, old: new[1] < old[1],
            "larger": lambda new, old: new[1] > old[1],
        }[policy]
        metrics = checked_metrics()
        index = SolutionSetIndex.build(
            base, (0,), parallelism, metrics, should_replace=comparator
        )
        size_before = len(index)
        accesses_before = metrics.solution_accesses
        accepted = index.apply_delta(delta)

        assert metrics.invariants.delta_checks == 1
        # every delta record probed the index exactly once
        assert metrics.solution_accesses - accesses_before == len(delta)
        new_keys = {
            index.key(r) for r in accepted if not any(
                index.key(b) == index.key(r) for b in base
            )
        }
        assert len(index) == size_before + len(new_keys)
        # accepted records are all present verbatim unless a later delta
        # record for the same key superseded them
        latest = {}
        for record in accepted:
            latest[index.key(record)] = record
        for k, record in latest.items():
            assert index.lookup_global(k) == record
