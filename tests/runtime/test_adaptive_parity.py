"""Parity: adaptive mid-iteration plan switches are observationally invisible.

A switch may change only *physical* counters (bytes, batches,
``plan_switches``).  With ``RuntimeConfig.adaptive`` on vs off the run
must produce bitwise-identical results, identical logical counters
(records processed / shipped local / remote, solution accesses and
updates, supersteps, per-superstep workset and delta sizes, cache hits
and builds), and identical span-tree structure up to the ``plan_switch``
instant markers — on the simulator and on real forked workers, for both
switch directions, including switches forced mid-iteration at arbitrary
supersteps the cost model would never pick.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionEnvironment
from repro.runtime.config import RuntimeConfig
from repro.runtime.plan import (
    BROADCAST,
    FORWARD,
    LocalStrategy,
    ShipKind,
    partition_on,
)

#: edges per shape: a ring plus chords gives several supersteps of
#: label propagation with shrinking-then-stopping deltas
def _edges(n):
    return ([(i, (i + 1) % n) for i in range(n)]
            + [(i, (i * 7 + 3) % n) for i in range(n)])


def _build_cc(env, n, shape, force=None, trace=False):
    """Delta-iteration CC whose expand join is adaptively eligible.

    ``shape`` picks the forced baseline: ``"A"`` broadcasts the dynamic
    workset over a resident build side (switchable to hash), ``"B"``
    hash-partitions both sides (switchable to broadcast, force-only).
    """
    e = env.from_iterable(_edges(n), name="edges")
    v = env.from_iterable([(i, i) for i in range(n)], name="verts")
    it = env.iterate_delta(v, v, 0, 50, name="cc")
    ws, ss = it.workset, it.solution_set
    j = ws.join(e, 0, 0, lambda w, edge: (edge[1], w[1]), name="expand")
    if force is not None:
        j.node.force_switch_at = force
    m = j.min_by_key(0, 1, name="minlabel")
    upd = m.cogroup(
        ss, 0, 0,
        lambda k, cand, cur: [c for c in cand if not cur or c[1] < cur[0][1]],
        inner=False, name="upd",
    )
    if shape == "A":
        env.plan_overrides[j.node.id] = {
            "ship": {0: BROADCAST, 1: FORWARD},
            "local": LocalStrategy.HASH_BUILD_RIGHT,
        }
    else:
        env.plan_overrides[j.node.id] = {
            "ship": {0: partition_on((0,)), 1: partition_on((0,))},
            "local": LocalStrategy.HASH_BUILD_RIGHT,
        }
    return it.close(upd, upd)


def _logical_snapshot(env):
    m = env.metrics
    return {
        "processed": dict(m.records_processed),
        "shipped_local": m.records_shipped_local,
        "shipped_remote": m.records_shipped_remote,
        "solution_accesses": m.solution_accesses,
        "solution_updates": m.solution_updates,
        "supersteps": m.supersteps,
        "cache_hits": m.cache_hits,
        "cache_builds": m.cache_builds,
        "steps": [
            (s.superstep, s.workset_size, s.delta_size,
             s.records_processed, s.records_shipped_local,
             s.records_shipped_remote)
            for s in m.iteration_log
        ],
    }


def _strip_plan_switch(structure):
    """Span structure minus ``plan_switch`` instants (the one permitted
    structural difference between the two modes)."""
    def strip(node):
        name, category, counters, children = node
        kept = tuple(strip(c) for c in children if c[0] != "plan_switch")
        return (name, category, counters, kept)
    return tuple(strip(root) for root in structure
                 if root[0] != "plan_switch")


def _run(backend, adaptive, n, shape, force=None, trace=False):
    config = RuntimeConfig(adaptive=adaptive, trace=trace)
    env = ExecutionEnvironment(parallelism=4, backend=backend, config=config)
    try:
        result = _build_cc(env, n, shape, force=force).collect()
        snap = _logical_snapshot(env)
        switches = env.metrics.plan_switches
        structure = (
            _strip_plan_switch(env.tracer.structure()) if trace else None
        )
    finally:
        env.close()
    return result, snap, switches, structure


@pytest.mark.parametrize("backend", ["simulated", "multiprocess", "pool"])
@pytest.mark.parametrize("shape,force", [("A", 3), ("B", 2)])
def test_forced_switch_parity(backend, shape, force):
    r_off, s_off, sw_off, _ = _run(backend, False, 50, shape)
    r_on, s_on, sw_on, _ = _run(backend, True, 50, shape, force=force)
    assert r_on == r_off          # bitwise, order included
    assert s_on == s_off          # every logical counter
    assert sw_off == 0
    assert sw_on >= 1             # physical: per-worker under SPMD


@pytest.mark.parametrize("backend", ["simulated", "multiprocess"])
def test_honest_crossover_switch_parity(backend):
    # large workset over a broadcast probe: the cost model itself fires
    # the broadcast→hash switch, no force needed
    r_off, s_off, sw_off, _ = _run(backend, False, 400, "A")
    r_on, s_on, sw_on, _ = _run(backend, True, 400, "A")
    assert sw_off == 0 and sw_on >= 1
    assert r_on == r_off
    assert s_on == s_off


def test_switch_spans_structurally_identical():
    _, _, _, st_off = _run("simulated", False, 50, "A", trace=True)
    _, _, sw, st_on = _run("simulated", True, 50, "A", force=2, trace=True)
    assert sw == 1
    assert st_on == st_off


def test_hash_baseline_never_switches_honestly():
    # without force_at_superstep the hash→broadcast direction must not
    # fire: it is never profitable under the cost model
    _, _, switches, _ = _run("simulated", True, 120, "B")
    assert switches == 0


def test_switch_is_one_way():
    # force at superstep 1: every later superstep stays switched, so
    # exactly one switch instant is recorded on the simulator
    _, _, switches, _ = _run("simulated", True, 80, "A", force=1)
    assert switches == 1


def test_adaptive_spec_recorded_in_both_modes():
    # the *plan* is mode-independent; only the executor consults the flag
    for adaptive in (False, True):
        env = ExecutionEnvironment(
            parallelism=4, config=RuntimeConfig(adaptive=adaptive)
        )
        ds = _build_cc(env, 30, "A")
        ds.collect()
        specs = list(env.last_plan.adaptive.values())
        assert len(specs) == 1
        spec = specs[0]
        assert spec.baseline_kind is ShipKind.BROADCAST
        assert spec.switch_kind is ShipKind.PARTITION_HASH
        env.close()


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=60),
    force=st.one_of(st.none(), st.integers(min_value=1, max_value=6)),
    shape=st.sampled_from(["A", "B"]),
    seed=st.integers(min_value=0, max_value=5),
)
def test_random_switch_parity(n, force, shape, seed):
    """Random sizes, random (or cost-driven) switch supersteps, both
    shapes: adaptivity on/off stays bitwise and logically identical."""
    extra = [(i, (i * (seed + 3) + 1) % n) for i in range(0, n, 2)]

    def run(adaptive):
        env = ExecutionEnvironment(
            parallelism=4, config=RuntimeConfig(adaptive=adaptive)
        )
        e = env.from_iterable(_edges(n) + extra, name="edges")
        v = env.from_iterable([(i, i) for i in range(n)], name="verts")
        it = env.iterate_delta(v, v, 0, 50, name="cc")
        j = it.workset.join(e, 0, 0,
                            lambda w, edge: (edge[1], w[1]), name="expand")
        if force is not None:
            j.node.force_switch_at = force
        m = j.min_by_key(0, 1, name="minlabel")
        upd = m.cogroup(
            it.solution_set, 0, 0,
            lambda k, cand, cur: [
                c for c in cand if not cur or c[1] < cur[0][1]
            ],
            inner=False, name="upd",
        )
        if shape == "A":
            env.plan_overrides[j.node.id] = {
                "ship": {0: BROADCAST, 1: FORWARD},
                "local": LocalStrategy.HASH_BUILD_RIGHT,
            }
        else:
            env.plan_overrides[j.node.id] = {
                "ship": {0: partition_on((0,)), 1: partition_on((0,))},
                "local": LocalStrategy.HASH_BUILD_RIGHT,
            }
        result = it.close(upd, upd).collect()
        snap = _logical_snapshot(env)
        env.close()
        return result, snap

    r_off, s_off = run(False)
    r_on, s_on = run(True)
    assert r_on == r_off
    assert s_on == s_off
