"""Merging per-worker collectors back into one comparable view."""

import pytest

from repro.common.errors import InvariantViolation
from repro.runtime.invariants import attach_checker
from repro.runtime.metrics import MetricsCollector


def _worker(supersteps, shipped_remote=5, processed=10):
    metrics = MetricsCollector()
    for step in range(1, supersteps + 1):
        metrics.begin_superstep(step)
        metrics.add_processed("op", processed)
        metrics.add_shipped(local=2, remote=shipped_remote)
        metrics.end_superstep(workset_size=3, delta_size=1)
    return metrics


class TestAlignedMerge:
    def test_lockstep_workers_sum_per_superstep(self):
        a, b = _worker(3), _worker(3)
        a.merge(b, align_supersteps=True)
        assert a.supersteps == 3  # one worker's count, not the sum
        assert len(a.iteration_log) == 3
        assert a.records_shipped_remote == 2 * 3 * 5
        for entry in a.iteration_log:
            assert entry.records_processed == 20
            assert entry.workset_size == 6

    def test_duration_is_the_slowest_worker(self):
        a, b = _worker(1), _worker(1)
        a.iteration_log[0].duration_s = 0.5
        b.iteration_log[0].duration_s = 2.0
        a.merge(b, align_supersteps=True)
        assert a.iteration_log[0].duration_s == 2.0

    def test_divergent_lockstep_is_rejected(self):
        a, b = _worker(3), _worker(2)
        with pytest.raises(InvariantViolation, match="lockstep"):
            a.merge(b, align_supersteps=True)

    def test_zero_count_operators_survive_the_merge(self):
        a, b = _worker(1), _worker(1)
        b.add_processed("idle_op", 0)
        a.merge(b, align_supersteps=True)
        assert "idle_op" in a.records_processed

    def test_checker_presence_must_match(self):
        a, b = _worker(1), _worker(1)
        attach_checker(a)
        with pytest.raises(InvariantViolation, match="checker"):
            a.merge(b, align_supersteps=True)


class TestSequentialMerge:
    def test_phases_append_logs_and_add_supersteps(self):
        a, b = _worker(2), _worker(3)
        a.merge(b, align_supersteps=False)
        assert a.supersteps == 5
        assert len(a.iteration_log) == 5

    def test_open_superstep_blocks_merging(self):
        a, b = _worker(1), _worker(1)
        b.begin_superstep(99)
        with pytest.raises(InvariantViolation, match="open"):
            a.merge(b, align_supersteps=False)


class TestCheckerAbsorb:
    def test_attribution_shadows_sum_across_workers(self):
        a, b = MetricsCollector(), MetricsCollector()
        attach_checker(a)
        attach_checker(b)
        for metrics in (a, b):
            metrics.begin_superstep(1)
            metrics.add_processed("op", 7)
            metrics.add_shipped(local=1, remote=2)
            metrics.end_superstep()
        a.merge(b, align_supersteps=True)
        a.verify_invariants()  # shadows must equal the summed counters


class TestSnapshot:
    def test_snapshot_reports_messages_and_bytes(self):
        metrics = _worker(2)
        metrics.bytes_shipped = 1234
        snap = metrics.snapshot()
        assert snap["messages"] == metrics.records_shipped_remote
        assert snap["bytes_shipped"] == 1234
        assert all("messages" in entry for entry in snap["iteration_log"])
