"""Physical plan descriptors: strategies, annotations, describe()."""

import pytest

from repro import ExecutionEnvironment
from repro.runtime.plan import (
    BROADCAST,
    ExecutionPlan,
    FORWARD,
    GATHER,
    LocalStrategy,
    OperatorAnnotation,
    ShipKind,
    ShipStrategy,
    partition_on,
)


class TestShipStrategy:
    def test_partition_requires_keys(self):
        with pytest.raises(ValueError):
            ShipStrategy(ShipKind.PARTITION_HASH)
        with pytest.raises(ValueError):
            ShipStrategy(ShipKind.PARTITION_HASH, ())

    def test_describe(self):
        assert FORWARD.describe() == "forward"
        assert BROADCAST.describe() == "broadcast"
        assert GATHER.describe() == "gather"
        assert partition_on((1, 0)).describe() == "partition[1, 0]"

    def test_frozen_and_hashable(self):
        assert partition_on((0,)) == partition_on((0,))
        assert len({FORWARD, FORWARD, BROADCAST}) == 2
        with pytest.raises(AttributeError):
            FORWARD.kind = ShipKind.BROADCAST


class TestExecutionPlan:
    def _plan(self):
        env = ExecutionEnvironment(2, optimize=False)
        data = env.from_iterable([(1, 2)], name="src")
        reduced = data.reduce_by_key(0, lambda a, b: a, name="agg")
        from repro.dataflow.contracts import Contract
        from repro.dataflow.graph import LogicalNode, LogicalPlan
        sink = LogicalNode(Contract.SINK, [reduced.node])
        return ExecutionPlan(LogicalPlan([sink])), reduced.node

    def test_annotation_created_on_demand(self):
        plan, node = self._plan()
        ann = plan.annotation(node)
        assert isinstance(ann, OperatorAnnotation)
        assert plan.annotation(node) is ann  # same object back

    def test_ship_strategy_defaults_to_forward(self):
        plan, node = self._plan()
        assert plan.ship_strategy(node, 0) is FORWARD

    def test_describe_lists_annotated_operators(self):
        plan, node = self._plan()
        ann = plan.annotation(node)
        ann.local = LocalStrategy.SORT_AGGREGATE
        ann.ship[0] = partition_on((0,))
        ann.combiner = True
        ann.dams.add(0)
        text = plan.describe()
        assert "agg" in text
        assert "sort_aggregate" in text
        assert "partition[0]" in text
        assert "combiner" in text
        assert "dam[0]" in text

    def test_cached_flag_in_describe(self):
        plan, node = self._plan()
        plan.annotation(node).cache_across_iterations = True
        assert "cached" in plan.describe()
