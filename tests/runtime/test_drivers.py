"""Per-partition driver semantics: each local strategy computes the same
relation its contract specifies, and hash/sort flavours agree."""

import pytest

from repro.dataflow.contracts import Contract
from repro.dataflow.graph import LogicalNode
from repro.runtime import drivers
from repro.runtime.metrics import MetricsCollector
from repro.runtime.plan import LocalStrategy


def _node(contract, udf=None, key_fields=None, inputs_arity=1, flat=False):
    inputs = [LogicalNode(Contract.SOURCE, data=[]) for _ in range(inputs_arity)]
    node = LogicalNode(contract, inputs, udf=udf, key_fields=key_fields)
    node.flat = flat
    return node


class TestRecordAtATime:
    def test_map(self):
        node = _node(Contract.MAP, udf=lambda r: (r[0] * 2,))
        metrics = MetricsCollector()
        out = drivers.run_map(node, [[(1,), (2,)]], metrics)
        assert out == [(2,), (4,)]
        assert metrics.total_processed == 2

    def test_flat_map(self):
        node = _node(Contract.FLAT_MAP, udf=lambda r: [(r[0],)] * r[0])
        out = drivers.run_flat_map(node, [[(2,), (0,), (1,)]],
                                   MetricsCollector())
        assert out == [(2,), (2,), (1,)]

    def test_filter(self):
        node = _node(Contract.FILTER, udf=lambda r: r[0] % 2 == 0)
        out = drivers.run_filter(node, [[(1,), (2,), (4,)]],
                                 MetricsCollector())
        assert out == [(2,), (4,)]

    def test_union_keeps_duplicates(self):
        node = _node(Contract.UNION, inputs_arity=2)
        out = drivers.run_union(node, [[(1,)], [(1,), (2,)]],
                                MetricsCollector())
        assert sorted(out) == [(1,), (1,), (2,)]


LEFT = [(1, "a"), (2, "b"), (2, "c"), (3, "d")]
RIGHT = [(2, "x"), (2, "y"), (3, "z"), (4, "w")]
EXPECTED_JOIN = sorted([
    ("b", "x"), ("b", "y"), ("c", "x"), ("c", "y"), ("d", "z"),
])


class TestJoins:
    def _join_node(self, flat=False):
        return _node(
            Contract.MATCH, udf=lambda l, r: (l[1], r[1]),
            key_fields=[(0,), (0,)], inputs_arity=2, flat=flat,
        )

    @pytest.mark.parametrize("build_left", [True, False])
    def test_hash_join(self, build_left):
        out = drivers.run_hash_join(
            self._join_node(), [LEFT, RIGHT], MetricsCollector(),
            build_left=build_left,
        )
        assert sorted(out) == EXPECTED_JOIN

    def test_sort_merge_join(self):
        out = drivers.run_sort_merge_join(
            self._join_node(), [LEFT, RIGHT], MetricsCollector()
        )
        assert sorted(out) == EXPECTED_JOIN

    def test_join_udf_none_filters(self):
        node = _node(
            Contract.MATCH,
            udf=lambda l, r: (l[1], r[1]) if l[1] != "b" else None,
            key_fields=[(0,), (0,)], inputs_arity=2,
        )
        out = drivers.run_hash_join(node, [LEFT, RIGHT],
                                    MetricsCollector(), build_left=True)
        assert ("b", "x") not in out
        assert ("c", "x") in out

    def test_flat_join_expands(self):
        node = _node(
            Contract.MATCH,
            udf=lambda l, r: [(l[1],), (r[1],)],
            key_fields=[(0,), (0,)], inputs_arity=2, flat=True,
        )
        out = drivers.run_hash_join(node, [[(1, "a")], [(1, "b")]],
                                    MetricsCollector(), build_left=False)
        assert sorted(out) == [("a",), ("b",)]

    def test_empty_sides(self):
        node = self._join_node()
        assert drivers.run_hash_join(node, [[], RIGHT], MetricsCollector(),
                                     build_left=True) == []
        assert drivers.run_sort_merge_join(node, [LEFT, []],
                                           MetricsCollector()) == []


class TestAggregations:
    def _reduce_node(self):
        return _node(
            Contract.REDUCE,
            udf=lambda a, b: (a[0], a[1] + b[1]),
            key_fields=[(0,)],
        )

    DATA = [(1, 10), (2, 1), (1, 5), (2, 2), (3, 7)]

    def test_hash_aggregate(self):
        out = drivers.run_hash_aggregate(self._reduce_node(), [self.DATA],
                                         MetricsCollector())
        assert sorted(out) == [(1, 15), (2, 3), (3, 7)]

    def test_sort_aggregate_matches_hash_and_is_sorted(self):
        out = drivers.run_sort_aggregate(self._reduce_node(), [self.DATA],
                                         MetricsCollector())
        assert out == [(1, 15), (2, 3), (3, 7)]  # key-sorted

    def test_aggregate_empty(self):
        assert drivers.run_hash_aggregate(self._reduce_node(), [[]],
                                          MetricsCollector()) == []
        assert drivers.run_sort_aggregate(self._reduce_node(), [[]],
                                          MetricsCollector()) == []

    def test_reduce_group(self):
        node = _node(
            Contract.REDUCE_GROUP,
            udf=lambda key, group: [(key, len(group))],
            key_fields=[(0,)],
        )
        out = drivers.run_reduce_group(node, [self.DATA], MetricsCollector())
        assert sorted(out) == [(1, 2), (2, 2), (3, 1)]

    def test_combiner_preaggregates_each_partition(self):
        node = self._reduce_node()
        parts = [[(1, 1), (1, 2)], [(1, 4), (2, 1)]]
        combined = drivers.apply_combiner(node, parts, MetricsCollector())
        assert sorted(combined[0]) == [(1, 3)]
        assert sorted(combined[1]) == [(1, 4), (2, 1)]


class TestCoGroup:
    def _cogroup_node(self):
        return _node(
            Contract.COGROUP,
            udf=lambda key, left, right: [(key, len(left), len(right))],
            key_fields=[(0,), (0,)], inputs_arity=2,
        )

    def test_outer_pairs_key_union(self):
        out = drivers.run_cogroup(self._cogroup_node(), [LEFT, RIGHT],
                                  MetricsCollector(), inner=False)
        assert sorted(out) == [(1, 1, 0), (2, 2, 2), (3, 1, 1), (4, 0, 1)]

    def test_inner_pairs_key_intersection(self):
        out = drivers.run_cogroup(self._cogroup_node(), [LEFT, RIGHT],
                                  MetricsCollector(), inner=True)
        assert sorted(out) == [(2, 2, 2), (3, 1, 1)]


class TestCross:
    def test_all_pairs(self):
        node = _node(Contract.CROSS, udf=lambda a, b: (a[0], b[0]),
                     inputs_arity=2)
        out = drivers.run_cross(node, [[(1,), (2,)], [(3,), (4,)]],
                                MetricsCollector())
        assert sorted(out) == [(1, 3), (1, 4), (2, 3), (2, 4)]

    def test_none_results_dropped(self):
        node = _node(Contract.CROSS,
                     udf=lambda a, b: (a[0], b[0]) if a[0] == 1 else None,
                     inputs_arity=2)
        out = drivers.run_cross(node, [[(1,), (2,)], [(3,)]],
                                MetricsCollector())
        assert out == [(1, 3)]


class TestDispatch:
    def test_match_requires_strategy(self):
        node = _node(Contract.MATCH, udf=lambda l, r: None,
                     key_fields=[(0,), (0,)], inputs_arity=2)
        from repro.common.errors import InvalidPlanError
        with pytest.raises(InvalidPlanError):
            drivers.run_driver(node, LocalStrategy.NONE, [[], []],
                               MetricsCollector())

    def test_dispatch_covers_reduce_strategies(self):
        node = _node(Contract.REDUCE, udf=lambda a, b: a, key_fields=[(0,)])
        for strategy in (LocalStrategy.HASH_AGGREGATE,
                         LocalStrategy.SORT_AGGREGATE):
            assert drivers.run_driver(node, strategy, [[(1, 2)]],
                                      MetricsCollector()) == [(1, 2)]
