"""Property tests: fused execution is observationally identical.

For randomly generated chainable pipelines (maps, filters, flat_maps,
union taps, optional combinable reduce tail) and random batch sizes —
including the batch_size=1 degenerate case — running with chaining on
must produce the same records, the same logical counters, and the same
top-level span counter totals as running with chaining off, on both
execution backends.
"""

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro import ExecutionEnvironment
from repro.bench.audit import _comparable_counters
from repro.observability import LOGICAL_SPAN_COUNTERS
from repro.runtime.config import RuntimeConfig


def _op_strategy():
    return st.one_of(
        st.tuples(st.just("map"), st.integers(1, 9)),
        st.tuples(st.just("filter"), st.integers(2, 5)),
        st.tuples(st.just("flat_map"), st.integers(1, 2)),
        st.tuples(st.just("union"), st.integers(1, 20)),
    )


def _pipeline_strategy(max_records, max_ops):
    return st.tuples(
        st.integers(10, max_records),
        st.lists(_op_strategy(), min_size=1, max_size=max_ops),
        st.booleans(),
        st.sampled_from([1, 3, 1024]),
    )


def _apply(env, ds, spec, tap_seed):
    kind = spec[0]
    if kind == "map":
        k = spec[1]
        return ds.map(lambda r, k=k: (r[0] + k, r[1]))
    if kind == "filter":
        m = spec[1]
        return ds.filter(lambda r, m=m: r[0] % m != 0)
    if kind == "flat_map":
        copies = spec[1] + 1
        return ds.flat_map(lambda r, c=copies: [r] * c)
    assert kind == "union"
    n = spec[1]
    tap = env.from_iterable(
        [(1000 + tap_seed * 37 + j, j % 3) for j in range(n)]
    )
    return ds.union(tap.map(lambda r: (r[0], r[1] + 1)))


def _build(env, case):
    records, ops, reduce_tail, _batch = case
    ds = env.from_iterable([(i, i % 7) for i in range(records)])
    for tap_seed, spec in enumerate(ops):
        ds = _apply(env, ds, spec, tap_seed)
    if reduce_tail:
        # sum is associative and commutative, so the grouped value is
        # independent of partitioning and combine order
        ds = ds.reduce_by_key(0, lambda a, b: (a[0], a[1] + b[1]))
    return ds


def _execute(chaining, case, backend=None, parallelism=3, trace=True):
    env = ExecutionEnvironment(
        parallelism=parallelism, backend=backend,
        config=RuntimeConfig(
            chaining=chaining, batch_size=case[3], trace=trace,
        ),
    )
    result = sorted(env.collect(_build(env, case)))
    return result, env


def _span_totals(env):
    return {
        counter: sum(
            root.counters.get(counter, 0) for root in env.tracer.roots
        )
        for counter in LOGICAL_SPAN_COUNTERS
    }


@settings(max_examples=40, deadline=None)
@given(_pipeline_strategy(max_records=200, max_ops=6))
@example((30, [("map", 1), ("filter", 2), ("union", 5), ("flat_map", 1)],
          True, 1))
@example((25, [("union", 3), ("map", 2)], False, 1))
def test_fused_is_observationally_identical_simulated(case):
    fused, fused_env = _execute(True, case)
    unfused, unfused_env = _execute(False, case)
    assert fused == unfused
    assert _comparable_counters(fused_env.metrics) == \
        _comparable_counters(unfused_env.metrics)
    assert _span_totals(fused_env) == _span_totals(unfused_env)


@settings(max_examples=5, deadline=None)
@given(_pipeline_strategy(max_records=60, max_ops=4))
@example((20, [("map", 3), ("filter", 2), ("flat_map", 1)], True, 1))
def test_fused_is_observationally_identical_multiprocess(case):
    fused, fused_env = _execute(
        True, case, backend="multiprocess", parallelism=2
    )
    unfused, unfused_env = _execute(
        False, case, backend="multiprocess", parallelism=2
    )
    assert fused == unfused
    assert _comparable_counters(fused_env.metrics) == \
        _comparable_counters(unfused_env.metrics)
    assert _span_totals(fused_env) == _span_totals(unfused_env)
    # and the fused multiprocess run matches the simulated backend too
    simulated, simulated_env = _execute(True, case, parallelism=2)
    assert fused == simulated
    assert _comparable_counters(fused_env.metrics) == \
        _comparable_counters(simulated_env.metrics)
