"""Metric collector accounting and superstep scoping."""

import pytest

from repro.common.errors import InvariantViolation
from repro.runtime.metrics import IterationStats, MetricsCollector


class TestCounters:
    def test_processed_per_operator(self):
        metrics = MetricsCollector()
        metrics.add_processed("join", 10)
        metrics.add_processed("join", 5)
        metrics.add_processed("map", 3)
        assert metrics.records_processed["join"] == 15
        assert metrics.total_processed == 18

    def test_shipped_split(self):
        metrics = MetricsCollector()
        metrics.add_shipped(local=7, remote=3)
        assert metrics.records_shipped_local == 7
        assert metrics.messages == 3

    def test_solution_counters(self):
        metrics = MetricsCollector()
        metrics.add_solution_access(4)
        metrics.add_solution_update(2)
        snap = metrics.snapshot()
        assert snap["solution_accesses"] == 4
        assert snap["solution_updates"] == 2

    def test_reset(self):
        metrics = MetricsCollector()
        metrics.add_processed("x", 1)
        metrics.add_shipped(1, 1)
        metrics.begin_superstep(1)
        metrics.end_superstep()
        metrics.reset()
        assert metrics.total_processed == 0
        assert metrics.supersteps == 0
        assert metrics.iteration_log == []


class TestSuperstepScoping:
    def test_counters_attach_to_open_superstep(self):
        metrics = MetricsCollector()
        metrics.add_shipped(local=5, remote=5)  # outside any superstep
        metrics.begin_superstep(1)
        metrics.add_shipped(local=1, remote=2)
        metrics.add_processed("op", 4)
        metrics.add_solution_access(3)
        stats = metrics.end_superstep(workset_size=9, delta_size=2)
        assert isinstance(stats, IterationStats)
        assert stats.records_shipped_remote == 2
        assert stats.records_processed == 4
        assert stats.solution_accesses == 3
        assert stats.workset_size == 9
        assert stats.delta_size == 2
        assert stats.messages == 2
        assert stats.duration_s >= 0.0

    def test_log_accumulates_in_order(self):
        metrics = MetricsCollector()
        for step in (1, 2, 3):
            metrics.begin_superstep(step)
            metrics.end_superstep()
        assert [s.superstep for s in metrics.iteration_log] == [1, 2, 3]
        assert metrics.supersteps == 3

    def test_end_without_begin_raises(self):
        metrics = MetricsCollector()
        with pytest.raises(InvariantViolation):
            metrics.end_superstep()
        assert metrics.iteration_log == []

    def test_begin_while_open_raises(self):
        metrics = MetricsCollector()
        metrics.begin_superstep(1)
        with pytest.raises(InvariantViolation):
            metrics.begin_superstep(2)

    def test_snapshot_includes_iteration_log(self):
        metrics = MetricsCollector()
        metrics.begin_superstep(1)
        metrics.add_shipped(local=2, remote=3)
        metrics.end_superstep(workset_size=7, delta_size=4)
        snap = metrics.snapshot()
        assert len(snap["iteration_log"]) == 1
        entry = snap["iteration_log"][0]
        assert entry["superstep"] == 1
        assert entry["records_shipped_remote"] == 3
        assert entry["messages"] == 3
        assert entry["workset_size"] == 7
        assert entry["delta_size"] == 4
