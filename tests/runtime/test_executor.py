"""Executor behaviour: memoization, strategy interpretation, accounting."""

import pytest

from repro import ExecutionEnvironment
from repro.common.errors import InvalidPlanError
from repro.runtime.plan import (
    BROADCAST,
    FORWARD,
    LocalStrategy,
    partition_on,
)


class TestMemoization:
    def test_shared_subplan_evaluated_once(self, env):
        calls = []
        base = env.from_iterable([(i, i) for i in range(8)]).map(
            lambda r: calls.append(r) or r, name="tracked"
        )
        left = base.filter(lambda r: r[0] % 2 == 0)
        right = base.filter(lambda r: r[0] % 2 == 1)
        out = left.union(right).collect()
        assert len(out) == 8
        assert len(calls) == 8  # not 16

    def test_multiple_sinks_share_computation(self):
        env = ExecutionEnvironment(2)
        calls = []
        base = env.from_iterable([(1,), (2,)]).map(
            lambda r: calls.append(r) or r
        )
        base.map(lambda r: (r[0] * 10,)).output(name="a")
        base.map(lambda r: (r[0] * 100,)).output(name="b")
        results = env.execute()
        assert len(calls) == 2
        assert sorted(results["a"]) == [(10,), (20,)]
        assert sorted(results["b"]) == [(100,), (200,)]


class TestStrategyInterpretation:
    def _join(self, env):
        left = env.from_iterable([(i, "l") for i in range(12)])
        right = env.from_iterable([(i, "r") for i in range(12)])
        return left.join(right, 0, 0, lambda l, r: (l[0], l[1], r[1]))

    @pytest.mark.parametrize("ships,local", [
        ({0: partition_on((0,)), 1: partition_on((0,))},
         LocalStrategy.HASH_BUILD_LEFT),
        ({0: partition_on((0,)), 1: partition_on((0,))},
         LocalStrategy.HASH_BUILD_RIGHT),
        ({0: partition_on((0,)), 1: partition_on((0,))},
         LocalStrategy.SORT_MERGE),
        ({0: BROADCAST, 1: FORWARD}, LocalStrategy.HASH_BUILD_LEFT),
        ({0: FORWARD, 1: BROADCAST}, LocalStrategy.HASH_BUILD_RIGHT),
    ])
    def test_every_join_configuration_is_correct(self, ships, local):
        env = ExecutionEnvironment(4)
        joined = self._join(env)
        env.plan_overrides[joined.node.id] = {"ship": ships, "local": local}
        out = sorted(joined.collect())
        assert out == [(i, "l", "r") for i in range(12)]

    def test_plan_override_changes_physical_plan(self):
        env = ExecutionEnvironment(4)
        joined = self._join(env)
        env.plan_overrides[joined.node.id] = {
            "ship": {0: BROADCAST, 1: FORWARD},
            "local": LocalStrategy.HASH_BUILD_LEFT,
        }
        joined.collect()
        described = env.last_plan.describe()
        assert "broadcast" in described

    def test_combiner_reduces_shipped_volume(self):
        # keys chosen so records do NOT start in their target partitions
        records = [((i * 7) % 13, 1) for i in range(390)]
        expected = sorted(
            (k, sum(1 for key, _one in records if key == k))
            for k in set(k for k, _one in records)
        )

        def run(combiner):
            env = ExecutionEnvironment(4)
            data = env.from_iterable(records)
            reduced = data.reduce_by_key(
                0, lambda a, b: (a[0], a[1] + b[1])
            )
            env.plan_overrides[reduced.node.id] = {"combiner": combiner}
            out = sorted(reduced.collect())
            return out, env.metrics.records_shipped_remote

        no_combiner, heavy_shipped = run(False)
        with_combiner, light_shipped = run(True)
        assert no_combiner == with_combiner == expected
        assert light_shipped < heavy_shipped / 4


class TestErrorHandling:
    def test_source_without_data(self, env):
        from repro.dataflow.contracts import Contract
        from repro.dataflow.graph import LogicalNode
        from repro.dataflow.dataset import DataSet
        node = LogicalNode(Contract.SOURCE, name="empty_source")
        with pytest.raises(InvalidPlanError):
            DataSet(env, node).collect()

    def test_udf_exception_propagates(self, env):
        data = env.from_iterable([(1,)])
        with pytest.raises(ZeroDivisionError):
            data.map(lambda r: (r[0] / 0,)).collect()


class TestSinkBehaviour:
    def test_collect_preserves_multiset(self, env):
        records = [(i % 3, i) for i in range(20)]
        out = env.from_iterable(records).collect()
        assert sorted(out) == sorted(records)

    def test_gather_accounted_as_shipping(self):
        env = ExecutionEnvironment(4)
        env.from_iterable([(i,) for i in range(40)]).collect()
        shipped = (env.metrics.records_shipped_local
                   + env.metrics.records_shipped_remote)
        assert shipped == 40


class TestIterationSummaries:
    def test_summaries_reset_per_run(self):
        env = ExecutionEnvironment(2)
        init = env.from_iterable([(0,)])
        it = env.iterate_bulk(init, max_iterations=2)
        it.close(it.partial_solution.map(lambda r: (r[0] + 1,))).collect()
        assert len(env.iteration_summaries) == 1
        # a second run produces a fresh executor with fresh summaries
        data = env.from_iterable([(1,)])
        data.collect()
        assert env.iteration_summaries == []
