"""Fused-chain execution semantics: results, counters, spans, eviction."""

import pytest

from repro import ExecutionEnvironment
from repro.bench.audit import _comparable_counters
from repro.runtime.config import RuntimeConfig, chaining_default
from repro.runtime.executor import _IterationScope
from repro.runtime.plan import FusedChain


def _env(chaining, backend=None, parallelism=4, **config_kwargs):
    return ExecutionEnvironment(
        parallelism=parallelism, backend=backend,
        config=RuntimeConfig(chaining=chaining, **config_kwargs),
    )


def _pipeline(env):
    ds = env.from_iterable([(i, i % 7) for i in range(500)])
    return (
        ds.map(lambda r: (r[0] * 2, r[1]))
        .filter(lambda r: r[1] != 3)
        .map(lambda r: (r[0] + 1, r[1]))
        .flat_map(lambda r: [r, (r[0], r[1] + 10)])
        .filter(lambda r: r[0] % 3 != 0)
    )


def _union_pipeline(env):
    base = env.from_iterable([(i,) for i in range(120)])
    left = base.map(lambda r: (r[0] + 1,))
    tap = env.from_iterable([(1000 + i,) for i in range(40)]).map(
        lambda r: (r[0], )
    )
    return left.union(tap).map(lambda r: (r[0] * 3,)).filter(
        lambda r: r[0] % 2 == 0
    )


def _combine_pipeline(env):
    ds = env.from_iterable([(i % 9, i) for i in range(400)])
    return (
        ds.map(lambda r: (r[0], r[1] + 1))
        .filter(lambda r: r[1] % 5 != 0)
        .reduce_by_key(0, lambda a, b: (a[0], a[1] + b[1]))
    )


def _bulk_iterative(env):
    ds = env.from_iterable([(i, 0) for i in range(60)])
    iteration = env.iterate_bulk(ds, max_iterations=4)
    body = (
        iteration.partial_solution.map(lambda r: (r[0], r[1] + 1))
        .map(lambda r: (r[0], r[1] * 2))
        .filter(lambda r: r[0] >= 0)
    )
    return iteration.close(body)


def _delta_iterative(env):
    vertices = env.from_iterable([(v, v) for v in range(40)])
    edges = [(v, (v + 1) % 40) for v in range(40)]
    workset = env.from_iterable([(dst, src) for src, dst in edges])
    edge_ds = env.from_iterable(edges)
    iteration = env.iterate_delta(
        vertices, workset, key_fields=0, max_iterations=50
    )

    def min_candidate(vid, candidates, stored):
        current = stored[0][1]
        best = min(c for (_v, c) in candidates)
        if best < current:
            yield (vid, best)

    delta = iteration.workset.cogroup(
        iteration.solution_set, 0, 0, min_candidate
    )
    next_workset = (
        delta.join(edge_ds, 0, 0, lambda d, e: (e[1], d[1]))
        .map(lambda c: (c[0], c[1]))
        .filter(lambda c: c[1] < c[0])
    )
    return iteration.close(
        delta, next_workset,
        should_replace=lambda new, old: new[1] < old[1],
        mode="superstep",
    )


WORKLOADS = {
    "pipeline": _pipeline,
    "union": _union_pipeline,
    "combine": _combine_pipeline,
    "bulk": _bulk_iterative,
    "delta": _delta_iterative,
}


def _run(chaining, workload, backend=None, **config_kwargs):
    env = _env(chaining, backend=backend, **config_kwargs)
    result = sorted(env.collect(WORKLOADS[workload](env)))
    return result, env


class TestFusedEquivalence:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_results_and_counters_match_unfused(self, workload):
        fused, fused_env = _run(True, workload)
        unfused, unfused_env = _run(False, workload)
        assert fused == unfused
        assert _comparable_counters(fused_env.metrics) == \
            _comparable_counters(unfused_env.metrics)
        # fusion preserves the Section 4.3 edge caching too
        assert fused_env.metrics.cache_hits == unfused_env.metrics.cache_hits
        assert fused_env.metrics.cache_builds == \
            unfused_env.metrics.cache_builds
        assert fused_env.last_plan.chains  # the workload actually fused

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_batch_size_one_is_identical(self, workload):
        fused, fused_env = _run(True, workload, batch_size=1)
        unfused, unfused_env = _run(False, workload, batch_size=1)
        assert fused == unfused
        assert _comparable_counters(fused_env.metrics) == \
            _comparable_counters(unfused_env.metrics)

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_multiprocess_matches_simulated_when_fused(self, workload):
        sim, sim_env = _run(True, workload, parallelism=3)
        mp, mp_env = _run(True, workload, backend="multiprocess",
                          parallelism=3)
        assert mp == sim
        assert _comparable_counters(mp_env.metrics) == \
            _comparable_counters(sim_env.metrics)


class TestChainSpans:
    def _roots(self, env):
        return env.tracer.roots

    def _find(self, spans, predicate, out):
        for span in spans:
            if predicate(span):
                out.append(span)
            self._find(span.children, predicate, out)
        return out

    def test_chain_span_replaces_operator_spans(self):
        env = _env(True, trace=True)
        env.collect(_pipeline(env))
        chain_spans = self._find(
            self._roots(env), lambda s: s.category == "chain", []
        )
        assert len(chain_spans) == 1
        span = chain_spans[0]
        assert span.name == "chain[map→filter→map→flat_map→filter]"
        # nested per-operator spans carry the member counter deltas
        assert [c.name for c in span.children if c.category == "operator"] \
            == ["operator:map", "operator:filter", "operator:map",
                "operator:flat_map", "operator:filter"]
        for child in span.children:
            if child.category != "operator":
                continue
            assert child.attributes.get("fused") is True
            assert child.counters.get("records_processed", 0) >= 0
            assert "records_out" in child.counters
        # the fused operators no longer execute as standalone spans
        fused_op_spans = self._find(
            self._roots(env),
            lambda s: s.category == "operator"
            and not s.attributes.get("fused"),
            [],
        )
        assert all("map" not in s.name and "filter" not in s.name
                   for s in fused_op_spans)

    def test_chain_span_name_is_deterministic(self):
        names = set()
        for _ in range(2):
            env = _env(True, trace=True)
            env.collect(_pipeline(env))
            spans = self._find(
                self._roots(env), lambda s: s.category == "chain", []
            )
            names.update(s.name for s in spans)
        assert names == {"chain[map→filter→map→flat_map→filter]"}

    def test_per_operator_counter_totals_match_metrics(self):
        env = _env(True, trace=True)
        env.collect(_pipeline(env))
        chain = self._find(
            self._roots(env), lambda s: s.category == "chain", []
        )[0]
        by_metrics = {}
        for name, count in env.metrics.records_processed.items():
            key = name.split("#")[0]
            by_metrics[key] = by_metrics.get(key, 0) + count
        by_spans = {}
        for child in chain.children:
            if child.category != "operator":
                continue
            key = child.name.replace("operator:", "")
            by_spans[key] = by_spans.get(key, 0) + \
                child.counters["records_processed"]
        assert by_spans == by_metrics

    def test_top_level_logical_totals_match_unfused(self):
        from repro.observability import LOGICAL_SPAN_COUNTERS

        def totals(env):
            return {
                counter: sum(
                    root.counters.get(counter, 0)
                    for root in self._roots(env)
                )
                for counter in LOGICAL_SPAN_COUNTERS
            }

        fused_env = _env(True, trace=True)
        fused_env.collect(_pipeline(fused_env))
        unfused_env = _env(False, trace=True)
        unfused_env.collect(_pipeline(unfused_env))
        assert totals(fused_env) == totals(unfused_env)

    def test_combine_chain_span_nests_inside_reduce(self):
        env = ExecutionEnvironment(
            parallelism=4, optimize=False,
            config=RuntimeConfig(chaining=True, trace=True),
        )
        env.collect(_combine_pipeline(env))
        chains = self._find(
            self._roots(env), lambda s: s.category == "chain", []
        )
        assert any(s.name.endswith("combine]") for s in chains)
        combine_children = self._find(
            self._roots(env),
            lambda s: s.category == "operator"
            and s.name.endswith(".combine"),
            [],
        )
        assert combine_children


class TestStepMemoEviction:
    def test_refcount_template_counts_reads(self):
        env = _env(True)
        result = _bulk_iterative(env)
        env.collect(result)
        executor = env.last_executor
        iteration = result.node
        scope = _IterationScope(iteration, bindings={})
        template = executor._step_refcount_template(scope)
        # chain tail (= body output): read once by the superstep loop
        tail_id = iteration.body_output.id
        assert template[tail_id] == 1
        # the placeholder is read once, by the chain head's shipping
        assert template[iteration.placeholder.id] == 1
        # interior chain members never get a memo entry at all
        for fused_id in executor.plan.fused_ids:
            assert fused_id not in template

    def test_last_read_evicts_the_memo_entry(self):
        env = _env(True)
        env.collect(_bulk_iterative(env))
        executor = env.last_executor

        class FakeScope:
            step_refcounts = {42: 2}

        class Node:
            id = 42

        step_memo = {42: ["partitions"]}
        executor._note_step_read(Node, step_memo, FakeScope)
        assert step_memo == {42: ["partitions"]}  # one reader left
        executor._note_step_read(Node, step_memo, FakeScope)
        assert step_memo == {}  # last reader: evicted
        assert FakeScope.step_refcounts == {}

    def test_unknown_nodes_and_plain_scopes_are_untouched(self):
        env = _env(True)
        env.collect(_bulk_iterative(env))
        executor = env.last_executor

        class Node:
            id = 7

        step_memo = {7: ["x"]}
        executor._note_step_read(Node, step_memo, None)

        class NoCountScope:
            pass

        executor._note_step_read(Node, step_memo, NoCountScope)
        assert step_memo == {7: ["x"]}

    def test_eviction_fires_during_iterative_runs(self, monkeypatch):
        from repro.runtime.executor import Executor

        evictions = []
        original = Executor._note_step_read

        def spy(self, node, step_memo, scope):
            before = node.id in step_memo
            original(self, node, step_memo, scope)
            if before and node.id not in step_memo:
                evictions.append(node.id)

        monkeypatch.setattr(Executor, "_note_step_read", spy)
        fused, fused_env = _run(True, "delta")
        assert evictions  # partitions were dropped before the barrier
        # and eviction never forces a recompute: counters stay identical
        unfused, unfused_env = _run(False, "delta")
        assert fused == unfused
        assert _comparable_counters(fused_env.metrics) == \
            _comparable_counters(unfused_env.metrics)


class TestChainingConfig:
    def test_env_var_disables_chaining(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CHAIN", "1")
        assert chaining_default() is False
        monkeypatch.setenv("REPRO_NO_CHAIN", "off")
        assert chaining_default() is True
        monkeypatch.delenv("REPRO_NO_CHAIN")
        assert chaining_default() is True

    def test_invalid_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CHAIN", "maybe")
        with pytest.raises(ValueError, match="REPRO_NO_CHAIN"):
            chaining_default()

    def test_non_bool_chaining_rejected(self):
        with pytest.raises(TypeError, match="chaining"):
            RuntimeConfig(chaining=1)


class TestFusedChainStructure:
    def test_tail_is_combine_node_when_present(self, env):
        mapped = env.from_iterable([(1, 2)]).map(lambda r: r)
        reduce = mapped.reduce_by_key(0, lambda a, b: a)
        chain = FusedChain(
            nodes=(mapped.node,), spine_inputs=(),
            combine_node=reduce.node,
        )
        assert chain.tail is reduce.node
        assert chain.describe() == "chain[map→combine]"
