"""The invariant checker catches the bugs it was built to catch.

The acceptance tests here re-introduce the two historical accounting
bugs as deliberate stubs — a hash channel that mislabels locality and a
solution-set that skips probe accounting — and assert the checker
rejects both.  The remaining tests pin each conservation law
individually.
"""

import pytest

from repro.common.errors import InvariantViolation
from repro.common.hashing import partition_index
from repro.dataflow.contracts import Contract
from repro.iterations.solution_set import SolutionSetIndex
from repro.runtime import channels
from repro.runtime.invariants import InvariantChecker, attach_checker
from repro.runtime.metrics import MetricsCollector
from repro.runtime.plan import BROADCAST, FORWARD, GATHER, partition_on

RECORDS = [(i, i * 10) for i in range(20)]
HASH = partition_on((0,))


def checked_metrics():
    metrics = MetricsCollector()
    attach_checker(metrics)
    return metrics


def spread(records, parallelism=4):
    return channels.round_robin(records, parallelism)


class TestAttach:
    def test_attach_is_idempotent(self):
        metrics = MetricsCollector()
        first = attach_checker(metrics)
        assert attach_checker(metrics) is first

    def test_reset_clears_checker_state(self):
        metrics = checked_metrics()
        metrics.add_shipped(local=3, remote=4)
        metrics.reset()
        metrics.verify_invariants()  # shadow counters were reset too


class TestShipAudit:
    def test_correct_ships_pass(self):
        metrics = checked_metrics()
        for strategy in (FORWARD, HASH, BROADCAST, GATHER):
            channels.ship(spread(RECORDS), strategy, 4, metrics)
        assert metrics.invariants.ship_checks == 4

    def test_rejects_miscounting_stub_channel(self, monkeypatch):
        """A hash channel that mislabels locality is caught in-line.

        The stub routes records correctly but reproduces the historical
        ``_ship_hash`` bug: it decides local-vs-remote from the wrong
        index, so the local/remote split it reports disagrees with the
        checker's per-record recomputation.
        """
        def buggy_hash(partitions, key_fields, parallelism,
                       batch_size=None, metrics=None, columnar=False):
            out = [[] for _ in range(parallelism)]
            local = remote = 0
            for _, part in enumerate(partitions):
                for record in part:
                    target = partition_index(record[0], parallelism)
                    out[target].append(record)
                    if target == 0:  # wrong locality test
                        local += 1
                    else:
                        remote += 1
            return out, local, remote, len(partitions)

        monkeypatch.setattr(channels, "_ship_hash", buggy_hash)
        metrics = checked_metrics()
        with pytest.raises(InvariantViolation, match="locality"):
            channels.ship(spread(RECORDS), HASH, 4, metrics)

    def test_rejects_record_loss(self):
        checker = InvariantChecker()
        in_parts = spread(RECORDS)
        out, local, remote, _ = channels._ship_hash(in_parts, (0,), 4)
        out[0] = out[0][:-1]  # drop a record in transit
        with pytest.raises(InvariantViolation, match="lost or fabricated"):
            checker.check_ship(HASH, in_parts, out, 4, local - 1, remote)

    def test_rejects_misplaced_hash_record(self):
        checker = InvariantChecker()
        in_parts = spread(RECORDS)
        out, local, remote, _ = channels._ship_hash(in_parts, (0,), 4)
        moved = out[0].pop()
        wrong = (partition_index(moved[0], 4) + 1) % 4
        out[wrong].append(moved)
        with pytest.raises(InvariantViolation, match="owns partition"):
            checker.check_ship(HASH, in_parts, out, 4, local, remote)

    def test_rejects_forward_partition_resize(self):
        checker = InvariantChecker()
        in_parts = spread(RECORDS)
        out = [list(p) for p in in_parts]
        out[1].append(out[2].pop())
        with pytest.raises(InvariantViolation, match="forward"):
            checker.check_ship(FORWARD, in_parts, out, 4,
                               len(RECORDS), 0)

    def test_rejects_incomplete_broadcast(self):
        checker = InvariantChecker()
        in_parts = spread(RECORDS)
        out = [list(RECORDS) for _ in range(4)]
        out[2] = out[2][:-3]
        with pytest.raises(InvariantViolation, match="broadcast"):
            checker.check_ship(BROADCAST, in_parts, out, 4,
                               len(RECORDS), len(RECORDS) * 3)

    def test_rejects_gather_leftovers(self):
        checker = InvariantChecker()
        in_parts = spread(RECORDS)
        out = [channels.merge(in_parts[:-1]), [], [], list(in_parts[-1])]
        with pytest.raises(InvariantViolation, match="gather"):
            checker.check_ship(GATHER, in_parts, out, 4,
                               len(in_parts[0]),
                               len(RECORDS) - len(in_parts[0]))

    def test_rejects_partition_count_mismatch(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="partition per worker"):
            checker.check_ship(FORWARD, spread(RECORDS, 2),
                               spread(RECORDS, 2), 4, len(RECORDS), 0)

    def test_negative_counter_rejected(self):
        metrics = checked_metrics()
        with pytest.raises(InvariantViolation, match="negative"):
            metrics.add_shipped(local=-1, remote=0)


class TestDriverAudit:
    def test_map_must_be_one_to_one(self):
        checker = InvariantChecker()
        checker.check_driver("m", Contract.MAP, [10], 10)
        with pytest.raises(InvariantViolation, match="one-in/one-out"):
            checker.check_driver("m", Contract.MAP, [10], 9)

    def test_filter_cannot_grow(self):
        checker = InvariantChecker()
        checker.check_driver("f", Contract.FILTER, [10], 4)
        with pytest.raises(InvariantViolation, match="grow"):
            checker.check_driver("f", Contract.FILTER, [10], 11)

    def test_union_is_bag_union(self):
        checker = InvariantChecker()
        checker.check_driver("u", Contract.UNION, [4, 6], 10)
        with pytest.raises(InvariantViolation, match="bag union"):
            checker.check_driver("u", Contract.UNION, [4, 6], 9)

    def test_reduce_cannot_grow(self):
        checker = InvariantChecker()
        checker.check_driver("r", Contract.REDUCE, [10], 3)
        with pytest.raises(InvariantViolation, match="at most"):
            checker.check_driver("r", Contract.REDUCE, [10], 11)


class UndercountingIndex(SolutionSetIndex):
    """Re-introduces the historical ``apply_record`` bug: the index
    probe runs but is never counted as a solution access."""

    def apply_record(self, record):
        k = self.key(record)
        part = self._partitions[partition_index(k, self.parallelism)]
        old = part.get(k)  # the uncounted probe
        if old is not None and self.should_replace is not None:
            if not self.should_replace(record, old):
                return None
        part[k] = record
        if self.metrics is not None:
            self.metrics.add_solution_update()
        return record


class TestSolutionSetAudit:
    def test_rejects_apply_record_undercount(self):
        """apply_delta on the buggy subclass trips the probe-accounting
        law: 3 records probed, 0 accesses counted."""
        index = UndercountingIndex.build(
            [(i, 0) for i in range(8)], (0,), 4, checked_metrics()
        )
        with pytest.raises(InvariantViolation, match="probe accounting"):
            index.apply_delta([(1, 5), (2, 5), (99, 5)])

    def test_fixed_index_counts_rejected_updates_too(self):
        index = SolutionSetIndex.build(
            [(i, 5) for i in range(8)], (0,), 4, checked_metrics(),
            should_replace=lambda new, old: new[1] < old[1],
        )
        accepted = index.apply_delta([(1, 3), (2, 9), (3, 1)])
        assert [r[0] for r in accepted] == [1, 3]
        # all three probes counted, including the rejected (2, 9)
        assert index.metrics.solution_accesses == 3

    def test_rejects_misrouted_lookup(self):
        index = SolutionSetIndex.build(
            [(i, 0) for i in range(8)], (0,), 4, checked_metrics()
        )
        owner = partition_index(3, 4)
        assert index.lookup(owner, 3) == (3, 0)
        with pytest.raises(InvariantViolation, match="misrouted"):
            index.lookup((owner + 1) % 4, 3)

    def test_rejects_size_drift(self):
        checker = InvariantChecker()
        checker.check_delta_application("d", 10, 12, accepted=3, replaced=1)
        with pytest.raises(InvariantViolation, match="grew by"):
            checker.check_delta_application("d", 10, 13, accepted=3,
                                            replaced=1)

    def test_rejects_replaced_exceeding_accepted(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="replaced"):
            checker.check_delta_application("d", 10, 8, accepted=1,
                                            replaced=3)


class TestVerifyTotals:
    def test_balanced_history_passes(self):
        metrics = checked_metrics()
        metrics.add_shipped(local=2, remote=1)  # outside supersteps
        metrics.begin_superstep(1)
        metrics.add_shipped(local=5, remote=7)
        metrics.add_processed("op", 4)
        metrics.add_solution_access(2)
        metrics.add_solution_update(1)
        metrics.end_superstep()
        metrics.verify_invariants()

    def test_catches_direct_counter_mutation(self):
        metrics = checked_metrics()
        metrics.begin_superstep(1)
        metrics.add_shipped(local=5, remote=7)
        metrics.end_superstep()
        metrics.records_shipped_remote += 3  # bypasses the hooks
        with pytest.raises(InvariantViolation, match="outside the collector"):
            metrics.verify_invariants()

    def test_catches_dropped_superstep(self):
        metrics = checked_metrics()
        metrics.begin_superstep(1)
        metrics.add_processed("op", 6)
        metrics.end_superstep()
        metrics.iteration_log.pop()  # lose the superstep's attribution
        with pytest.raises(InvariantViolation, match="dropped"):
            metrics.verify_invariants()

    def test_rejects_audit_mid_superstep(self):
        metrics = checked_metrics()
        metrics.begin_superstep(1)
        with pytest.raises(InvariantViolation, match="barrier"):
            metrics.verify_invariants()


class TestSpillAudit:
    """The out-of-core conservation law: resident + spilled == routed."""

    def test_balanced_pass_is_accepted(self):
        checker = InvariantChecker()
        checker.check_spill("op", routed=10, resident=7, spilled=3)
        checker.check_spill("op", routed=0, resident=0, spilled=0)
        assert checker.spill_checks == 2

    def test_lost_record_is_rejected(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="lost or duplicated"):
            checker.check_spill("op", routed=10, resident=6, spilled=3)

    def test_double_written_record_is_rejected(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="lost or duplicated"):
            checker.check_spill("op", routed=10, resident=7, spilled=4)

    def test_negative_accounting_is_rejected(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="negative spill"):
            checker.check_spill("op", routed=5, resident=-1, spilled=6)

    def test_every_partition_pass_is_audited_end_to_end(self):
        """A spilled driver run under checking audits one spill balance
        per partition/sort pass — and a broken pass would have raised."""
        from repro.dataflow.graph import LogicalNode
        from repro.runtime import drivers
        from repro.storage import SpillManager, StorageSession

        inputs = [LogicalNode(Contract.SOURCE, data=[])]
        node = LogicalNode(
            Contract.REDUCE_GROUP, inputs,
            udf=lambda key, group: [(key, len(group))], key_fields=[(0,)],
        )
        node.flat = False
        metrics = checked_metrics()
        with StorageSession() as session:
            manager = SpillManager(1, session, metrics=metrics)
            out = drivers.run_reduce_group(
                node, [[(i % 16, i) for i in range(120)]],
                MetricsCollector(), spill=manager,
            )
        assert sorted(out) == [(k, 120 // 16 + (1 if k < 120 % 16 else 0))
                               for k in range(16)]
        assert metrics.invariants.spill_checks > 1  # root + recursive passes
