"""Experiment result classes render correct reports from synthetic data
(no expensive workloads — pure report/derivation logic)."""

from repro.bench.experiments.fig7 import Fig7Result
from repro.bench.experiments.fig9 import Fig9Result
from repro.bench.experiments.fig10 import Fig10Result
from repro.bench.experiments.fig12 import VariantSeries
from repro.bench.experiments.runners import RunMeasurement
from repro.runtime.metrics import IterationStats


def measurement(system, dataset, seconds, iterations=5, messages=100,
                per_iteration_ms=None):
    stats = []
    for i, ms in enumerate(per_iteration_ms or [10.0] * iterations):
        s = IterationStats(superstep=i + 1, duration_s=ms / 1000.0)
        s.workset_size = max(0, 100 - i * 20)
        s.records_shipped_remote = max(0, 50 - i * 10)
        stats.append(s)
    return RunMeasurement(
        system=system, dataset=dataset, seconds=seconds,
        iterations=iterations, messages=messages,
        records_processed=1000, per_iteration=stats,
    )


class TestFig7Report:
    def test_contains_rows_and_spread(self):
        result = Fig7Result([
            measurement("Spark", "wiki", 2.0),
            measurement("Giraph", "wiki", 1.0),
        ])
        report = result.report()
        assert "Spark" in report and "Giraph" in report
        assert "spread x2.00" in report
        assert "fastest=Giraph" in report


class TestFig9Report:
    def test_speedup_summary(self):
        result = Fig9Result([
            measurement("Stratosphere Full", "wiki", 4.0),
            measurement("Stratosphere Incr.", "wiki", 1.0),
            measurement("Stratosphere Micro", "wiki", 2.0),
        ])
        report = result.report()
        assert "incremental speedup over bulk x4.00" in report


class TestFig10Derivations:
    def test_extrapolation_and_speedup(self):
        incremental = measurement("Stratosphere Incr.", "webbase", 2.0,
                                  iterations=100)
        bulk = measurement("Stratosphere Full", "webbase", 10.0,
                           iterations=20)
        result = Fig10Result(incremental, bulk)
        # bulk: 0.5 s/iteration × 100 supersteps = 50 s; speedup 25
        assert abs(result.bulk_extrapolated_seconds - 50.0) < 1e-9
        assert abs(result.speedup - 25.0) < 1e-9
        assert "x25.0" in result.report()


class TestFig12Fits:
    def test_slope_and_correlation(self):
        series = VariantSeries(
            system="x",
            times_ms=[10.0, 20.0, 30.0],
            messages=[1000, 2000, 3000],
        )
        # 10 ms per 1000 messages = 10 µs/message, perfectly correlated
        assert abs(series.slope_us_per_message - 10.0) < 1e-6
        assert abs(series.correlation - 1.0) < 1e-9

    def test_degenerate_series_is_nan(self):
        series = VariantSeries("x", [5.0, 5.0], [100, 100])
        assert series.slope_us_per_message != series.slope_us_per_message
        assert series.correlation != series.correlation

    def test_intercept_does_not_bias_slope(self):
        # constant 5 ms overhead on top of 2 µs/message
        series = VariantSeries(
            "x",
            times_ms=[5 + 2.0, 5 + 4.0, 5 + 8.0],
            messages=[1000, 2000, 4000],
        )
        assert abs(series.slope_us_per_message - 2.0) < 1e-6
