"""The differential audit passes: engines agree, invariants hold.

Marked ``verify_invariants`` so ``make verify-invariants`` (or
``pytest -m verify_invariants``) runs exactly this gate.  The sizes
here are small enough for CI; ``python -m repro.bench audit`` runs the
full configuration.
"""

import pytest

from repro.bench import audit

pytestmark = pytest.mark.verify_invariants


class TestDifferentialAudit:
    def test_all_engines_agree_and_invariants_hold(self):
        result = audit.run(seeds=(7,), num_vertices=80,
                           pagerank_iterations=6)
        result.raise_on_failure()
        assert result.ok
        # 7 CC engines + 4 PageRank engines per graph
        assert len(result.runs) == 11
        assert all(run.ok for run in result.runs)

    def test_every_channel_engine_was_audited(self):
        result = audit.run(seeds=(7,), num_vertices=40,
                           pagerank_iterations=4)
        for run in result.runs:
            if run.engine != "Giraph":  # Pregel routes messages itself
                assert run.ship_checks > 0, run.engine

    def test_report_renders(self):
        result = audit.run(seeds=(7,), num_vertices=40,
                           pagerank_iterations=4)
        report = result.report()
        assert "Differential audit" in report
        assert "All 11 runs" in report
