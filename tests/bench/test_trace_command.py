"""The ``bench trace`` toolchain: artifacts load, CLI exit codes."""

import json

import pytest

from repro.bench import trace as trace_mod
from repro.bench.__main__ import main


@pytest.fixture
def traces_tmp(tmp_path, monkeypatch):
    monkeypatch.setattr(trace_mod, "traces_dir", lambda: str(tmp_path))
    return tmp_path


def test_run_emits_loadable_artifacts(traces_tmp):
    result = trace_mod.run(
        "connected_components", backends=("simulated",),
        num_vertices=60, seed=3,
    )
    assert result.ok
    (run,) = result.runs
    with open(run.jsonl_path, encoding="utf-8") as handle:
        records = [json.loads(line) for line in handle]
    assert records[0]["type"] == "meta"
    assert records[0]["workload"] == "connected_components"
    spans = [r for r in records if r["type"] in ("span", "instant")]
    assert len(spans) == run.spans
    assert {"name", "category", "depth", "start_s", "counters"} <= (
        spans[0].keys()
    )
    with open(run.chrome_path, encoding="utf-8") as handle:
        chrome = json.load(handle)
    events = chrome["traceEvents"]
    assert any(e["ph"] == "X" for e in events)
    assert any(e["ph"] == "M" for e in events)
    assert all(e["ts"] >= 0 for e in events if e["ph"] != "M")


def test_run_compares_backends(traces_tmp):
    result = trace_mod.run(
        "connected_components",
        backends=("simulated", "multiprocess"),
        num_vertices=60, seed=3,
    )
    assert result.ok, result.failures
    assert [r.backend for r in result.runs] == ["simulated", "multiprocess"]
    assert result.runs[0].structure == result.runs[1].structure
    report = result.report()
    assert "structurally identical" in report
    result.raise_on_failure()


def test_run_rejects_unknown_workload():
    with pytest.raises(ValueError, match="unknown trace workload"):
        trace_mod.run("nope")


def test_cli_trace_subcommand(traces_tmp, capsys):
    status = main(["trace", "connected_components",
                   "--backends", "simulated"])
    assert status == 0
    out = capsys.readouterr().out
    assert "Trace profile — connected_components on simulated" in out


def test_cli_rejects_unknown_trace_workload(capsys):
    with pytest.raises(SystemExit):
        main(["trace", "nope"])
    assert "unknown trace workload" in capsys.readouterr().err
