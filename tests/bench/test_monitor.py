"""``bench monitor``: the live worker-health view's smoke contract."""

import io

import pytest

from repro.bench import monitor


def test_unknown_workload_rejected():
    with pytest.raises(ValueError, match="unknown monitor workload"):
        monitor.run("nope")


def test_monitor_once_smoke():
    result = monitor.run(
        "connected_components", parallelism=2, num_vertices=800,
        interval_s=0.05, once=True,
    )
    assert result.ok, result.report()
    assert result.frames == 0  # --once renders nothing live
    assert len(result.rows) == 2
    for row in result.rows:
        assert row["pid"] is not None
        assert row["rss_bytes"] > 0
    assert max(result.peak_supersteps.values()) >= 1
    assert result.resource_totals["jobs"] >= 1
    report = result.report()
    assert "Worker health" in report
    assert "repro_executor_superstep" in report
    assert "OK:" in report


def test_monitor_live_renders_frames():
    out = io.StringIO()
    result = monitor.run(
        "connected_components", parallelism=2, num_vertices=2_000,
        interval_s=0.05, refresh_s=0.05, stream=out,
    )
    assert result.ok, result.report()
    assert result.frames >= 1
    assert "live" in out.getvalue()
