"""The chain-fusion microbenchmark: artifact shape and gating logic."""

import json
import os

from repro.bench.experiments import chaining


def _small_run(**kwargs):
    params = dict(records=20_000, cc_vertices=300, cc_avg_degree=3.0,
                  parallelism=2, rounds=1)
    params.update(kwargs)
    return chaining.run(**params)


class TestChainingExperiment:
    def test_small_run_reports_and_gates(self, tmp_path, monkeypatch):
        monkeypatch.setattr(chaining, "results_dir", lambda: str(tmp_path))
        result = _small_run()
        assert [row["workload"] for row in result.rows] == [
            "pipeline (5-op map/filter)",
            "cc dynamic path (delta iteration)",
        ]
        # only the pipeline row gates; the iteration row reports
        assert [row["gating"] for row in result.rows] == [True, False]
        for row in result.rows:
            assert row["records"] > 0
            assert row["fused_s"] > 0 and row["unfused_s"] > 0
            assert row["speedup"] > 0
            assert row["results_agree"] is True

        report = result.report()
        assert "Chain fusion" in report
        assert "REPRO_NO_CHAIN=1" in report

        with open(os.path.join(str(tmp_path), chaining.ARTIFACT)) as handle:
            payload = json.load(handle)
        assert payload["experiment"] == "chaining"
        assert payload["speedup_floor"] == chaining.SPEEDUP_FLOOR
        assert payload["rows"] == result.rows
        assert payload["ok"] == result.ok

    def test_no_artifact_when_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setattr(chaining, "results_dir", lambda: str(tmp_path))
        result = _small_run(save_artifact=False)
        assert result.artifact_path == ""
        assert not os.listdir(str(tmp_path))

    def test_ok_false_when_speedup_floor_missed(self, tmp_path, monkeypatch):
        monkeypatch.setattr(chaining, "results_dir", lambda: str(tmp_path))
        monkeypatch.setattr(chaining, "SPEEDUP_FLOOR", float("inf"))
        result = _small_run(save_artifact=False)
        assert result.ok is False
        assert "FAIL" in result.report()
