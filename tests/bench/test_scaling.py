"""The backend-scaling experiment: honest wall clocks, equal results."""

import json
import os

from repro.bench.experiments import scaling


class TestScalingExperiment:
    def test_small_run_reports_and_matches(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            scaling, "results_dir", lambda: str(tmp_path)
        )
        result = scaling.run(dataset="sample9", iterations=2,
                             worker_counts=(1, 2))
        assert [row["workers"] for row in result.rows] == [1, 2]
        assert all(row["results_match"] for row in result.rows)
        assert result.host_cpus >= 1

        report = result.report()
        assert "Backend scaling" in report
        assert "host_cpus" in report
        assert "pool" in report

        with open(os.path.join(str(tmp_path), scaling.ARTIFACT)) as handle:
            payload = json.load(handle)
        assert payload["host_cpus"] == result.host_cpus
        assert payload["rows"] == result.rows
        assert payload["monotone_ok"] == result.monotone_ok

    def test_rows_flag_oversubscription_against_host_cpus(self, tmp_path,
                                                          monkeypatch):
        monkeypatch.setattr(scaling, "results_dir", lambda: str(tmp_path))
        result = scaling.run(dataset="sample9", iterations=1,
                             worker_counts=(1, 2), save_artifact=False)
        for row in result.rows:
            assert row["oversubscribed"] == (
                row["workers"] > result.host_cpus
            )
        # one worker can never oversubscribe
        assert result.rows[0]["oversubscribed"] is False

    def test_monotone_gate_skips_oversubscribed_rows(self):
        result = scaling.ScalingResult(
            dataset="x", num_vertices=1, num_edges=1, iterations=1,
            host_cpus=2,
        )

        def row(workers, speedup, oversubscribed):
            return {
                "workers": workers,
                "simulated_s": 1.0, "multiprocess_s": 1.0,
                "pool_s": 1.0, "pool_warm_s": 1.0,
                "speedup_vs_1_worker": 1.0,
                "pool_speedup_vs_1_worker": 1.0,
                "pool_warm_speedup_vs_1_worker": speedup,
                "oversubscribed": oversubscribed,
                "results_match": True,
            }

        # speedup collapses only on the oversubscribed row: gate holds
        result.rows = [row(1, 1.0, False), row(2, 1.7, False),
                       row(4, 0.4, True)]
        assert result.monotone_ok and result.ok

        # regression on a non-oversubscribed row: gate fails
        result.rows = [row(1, 1.0, False), row(2, 0.5, False)]
        assert not result.monotone_ok and not result.ok

        # mismatched results fail regardless of timing
        bad = row(1, 1.0, False)
        bad["results_match"] = False
        result.rows = [bad]
        assert result.monotone_ok and not result.ok

    def test_no_artifact_when_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            scaling, "results_dir", lambda: str(tmp_path)
        )
        result = scaling.run(dataset="sample9", iterations=1,
                             worker_counts=(1,), save_artifact=False)
        assert result.artifact_path == ""
        assert not os.listdir(str(tmp_path))
