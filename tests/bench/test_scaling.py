"""The backend-scaling experiment: honest wall clocks, equal results."""

import json
import os

from repro.bench.experiments import scaling


class TestScalingExperiment:
    def test_small_run_reports_and_matches(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            scaling, "results_dir", lambda: str(tmp_path)
        )
        result = scaling.run(dataset="sample9", iterations=2,
                             worker_counts=(1, 2))
        assert [row["workers"] for row in result.rows] == [1, 2]
        assert all(row["results_match"] for row in result.rows)
        assert result.host_cpus >= 1

        report = result.report()
        assert "Backend scaling" in report
        assert "host_cpus" in report

        with open(os.path.join(str(tmp_path), scaling.ARTIFACT)) as handle:
            payload = json.load(handle)
        assert payload["host_cpus"] == result.host_cpus
        assert payload["rows"] == result.rows

    def test_no_artifact_when_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            scaling, "results_dir", lambda: str(tmp_path)
        )
        result = scaling.run(dataset="sample9", iterations=1,
                             worker_counts=(1,), save_artifact=False)
        assert result.artifact_path == ""
        assert not os.listdir(str(tmp_path))
