"""Report rendering and the experiment CLI."""

import pytest

from repro.bench.reporting import (
    format_quantity,
    format_seconds,
    render_table,
)


class TestFormatting:
    def test_seconds_ranges(self):
        assert format_seconds(0.0123) == "12.3 ms"
        assert format_seconds(2.5) == "2.50 s"
        assert format_seconds(150.0) == "150 s"
        assert format_seconds(4000.0) == "4,000 s"

    def test_quantities(self):
        assert format_quantity(12) == "12"
        assert format_quantity(123_456) == "123,456"
        assert format_quantity(float("nan")) == "-"
        assert format_quantity(0.5) == "0.5"
        assert format_quantity("text") == "text"


class TestRenderTable:
    def test_alignment_and_structure(self):
        table = render_table(
            "Demo", ["name", "value"],
            [["alpha", 1], ["beta-long", 23_456]],
        )
        lines = table.splitlines()
        assert lines[0] == "Demo"
        assert lines[1] == "===="
        assert "name" in lines[2] and "value" in lines[2]
        # numeric column right-aligned: shorter number indented
        assert lines[4].rstrip().endswith("1")
        assert lines[5].rstrip().endswith("23,456")
        # all data rows equal width
        assert len(set(len(line.rstrip("\n")) for line in lines[3:4])) == 1

    def test_empty_rows(self):
        table = render_table("Empty", ["a", "b"], [])
        assert "a" in table and "b" in table


class TestCli:
    def test_list_option(self, capsys):
        from repro.bench.__main__ import main
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table2" in out

    def test_unknown_experiment_rejected(self):
        from repro.bench.__main__ import main
        with pytest.raises(SystemExit):
            main(["does-not-exist"])

    def test_runs_a_cheap_experiment(self, capsys):
        from repro.bench.__main__ import main
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "broadcast plan" in out
        assert "finished in" in out
