"""The data-plane microbenchmark: artifact shape and gating logic."""

import json
import os

from repro.bench.experiments import dataplane


class TestDataplaneExperiment:
    def test_small_run_reports_and_gates(self, tmp_path, monkeypatch):
        monkeypatch.setattr(dataplane, "results_dir", lambda: str(tmp_path))
        result = dataplane.run(num_vertices=300, avg_degree=4.0,
                               parallelism=2, rounds=1)
        assert [row["primitive"] for row in result.rows] == [
            "ship(partition_hash)", "hash join", "hash aggregate",
        ]
        for row in result.rows:
            assert row["records"] > 0
            assert row["batched_s"] > 0 and row["per_record_s"] > 0
            assert row["speedup"] > 0
        # the ship and join rows gate the run; the aggregate row reports
        assert [row["gating"] for row in result.rows] == [True, True, False]

        report = result.report()
        assert "Data plane" in report
        assert "batch_size" in report

        with open(os.path.join(str(tmp_path), dataplane.ARTIFACT)) as handle:
            payload = json.load(handle)
        assert payload["experiment"] == "dataplane"
        assert payload["speedup_floor"] == dataplane.SPEEDUP_FLOOR
        assert payload["rows"] == result.rows
        assert payload["ok"] == result.ok

    def test_no_artifact_when_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setattr(dataplane, "results_dir", lambda: str(tmp_path))
        result = dataplane.run(num_vertices=200, avg_degree=3.0,
                               parallelism=2, rounds=1,
                               save_artifact=False)
        assert result.artifact_path == ""
        assert not os.listdir(str(tmp_path))

    def test_ok_false_when_speedup_floor_missed(self, tmp_path, monkeypatch):
        monkeypatch.setattr(dataplane, "results_dir", lambda: str(tmp_path))
        monkeypatch.setattr(dataplane, "SPEEDUP_FLOOR", float("inf"))
        result = dataplane.run(num_vertices=200, avg_degree=3.0,
                               parallelism=2, rounds=1,
                               save_artifact=False)
        assert result.ok is False
