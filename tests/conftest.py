"""Shared fixtures: small graphs and environments used across the suite."""

import pytest

from repro import ExecutionEnvironment
from repro.graphs import Graph, erdos_renyi


@pytest.fixture
def env():
    """A 4-way optimized environment (the default configuration)."""
    return ExecutionEnvironment(parallelism=4)


@pytest.fixture
def env_naive():
    """A 4-way environment using the rule-based (naive) planner."""
    return ExecutionEnvironment(parallelism=4, optimize=False)


@pytest.fixture
def sample9():
    """The 9-vertex, two-component example graph of Figure 1 (0-indexed)."""
    edges = [(0, 1), (1, 2), (0, 2), (2, 3), (4, 5), (5, 6), (6, 7),
             (7, 8), (6, 8)]
    return Graph(9, edges, name="sample9")


@pytest.fixture
def small_random():
    """A 120-vertex sparse random graph with several components."""
    return erdos_renyi(120, 2.5, seed=42)


@pytest.fixture
def path_graph():
    """A 10-vertex path: the worst case for propagation depth."""
    return Graph(10, [(i, i + 1) for i in range(9)], name="path10")
