"""Delta iterations over composite solution keys.

The solution-set machinery must work when ``k(s)`` spans several fields
(the transitive-closure workload keys on the full ``(x, y)`` fact); these
tests pin the behaviour on a purpose-built workload with string-typed
key components, exercising the stable hash's tuple path as well.
"""

import pytest

from repro import ExecutionEnvironment


def build_inventory_restock(env, mode="superstep"):
    """A toy workload: (warehouse, item) -> stock level.

    The workset carries restock orders; each order tops the stock up to
    the ordered level (a max-CPO) and, when a warehouse's item crosses a
    threshold, triggers a transfer order to the paired warehouse.
    """
    warehouses = ["north", "south"]
    items = ["bolt", "nut", "gear"]
    solution0 = env.from_iterable(
        ((w, i, 0) for w in warehouses for i in items), name="stock0"
    )
    workset0 = env.from_iterable(
        [("north", "bolt", 5), ("south", "gear", 12)], name="orders0"
    )
    pairs = env.from_iterable(
        [("north", "south"), ("south", "north")], name="pairs"
    )
    it = env.iterate_delta(
        solution0, workset0, key_fields=(0, 1), max_iterations=20
    )

    def restock(order, stored):
        w, i, level = stored
        target = order[2]
        if target > level:
            return (w, i, target)
        return None

    delta = it.workset.join(
        it.solution_set, (0, 1), (0, 1), restock, name="restock"
    ).with_forwarded_fields({0: 0, 1: 1})
    # a big restock (>=10) transfers half to the partner warehouse, once
    transfers = delta.filter(lambda d: d[2] >= 10).join(
        pairs, 0, 0,
        lambda d, p: (p[1], d[1], d[2] // 2),
        name="transfer",
    )
    return it.close(
        delta, transfers,
        should_replace=lambda new, old: new[2] > old[2],
        mode=mode,
    )


EXPECTED = sorted([
    ("north", "bolt", 5), ("north", "nut", 0), ("north", "gear", 6),
    ("south", "bolt", 0), ("south", "nut", 0), ("south", "gear", 12),
])


class TestCompositeKeys:
    @pytest.mark.parametrize("mode", ["superstep", "microstep", "async"])
    def test_fixpoint_under_every_mode(self, mode):
        env = ExecutionEnvironment(4)
        result = build_inventory_restock(env, mode)
        assert sorted(result.collect()) == EXPECTED
        assert env.iteration_summaries[0].converged

    def test_composite_key_routing_is_stable(self):
        """Same fixpoint regardless of cluster width (string+string keys
        route through the tuple branch of the stable hash)."""
        outs = []
        for parallelism in (1, 2, 5):
            env = ExecutionEnvironment(parallelism)
            outs.append(sorted(build_inventory_restock(env).collect()))
        assert outs[0] == outs[1] == outs[2] == EXPECTED

    def test_microstep_analysis_accepts_composite_forwarding(self):
        from repro.iterations.microstep import analyze_microstep
        env = ExecutionEnvironment(2)
        result = build_inventory_restock(env)
        report = analyze_microstep(result.node)
        assert report.eligible, report.reasons
        assert report.local_updates
