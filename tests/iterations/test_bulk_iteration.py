"""Bulk iterations through the executor (Section 4)."""

import pytest

from repro import ExecutionEnvironment


class TestBasicLooping:
    def test_fixed_trip_count(self, env):
        init = env.from_iterable([(0,)])
        it = env.iterate_bulk(init, max_iterations=7)
        result = it.close(it.partial_solution.map(lambda r: (r[0] + 1,)))
        assert result.collect() == [(7,)]

    def test_one_iteration(self, env):
        init = env.from_iterable([(5,)])
        it = env.iterate_bulk(init, max_iterations=1)
        result = it.close(it.partial_solution.map(lambda r: (r[0] * 2,)))
        assert result.collect() == [(10,)]

    def test_partial_solution_grows(self, env):
        init = env.from_iterable([(0,)])
        it = env.iterate_bulk(init, max_iterations=3)
        body = it.partial_solution.flat_map(
            lambda r: [(r[0],), (r[0] + 1,)]
        )
        result = it.close(body)
        assert len(result.collect()) == 8  # doubles each superstep

    def test_downstream_operators_after_iteration(self, env):
        init = env.from_iterable([(0,)])
        it = env.iterate_bulk(init, max_iterations=4)
        result = it.close(it.partial_solution.map(lambda r: (r[0] + 1,)))
        out = result.map(lambda r: (r[0] * 100,)).collect()
        assert out == [(400,)]


class TestTermination:
    def test_termination_criterion_stops_early(self, env):
        init = env.from_iterable([(0,)])
        it = env.iterate_bulk(init, max_iterations=100)
        new = it.partial_solution.map(lambda r: (min(r[0] + 1, 5),))
        # emits a record while the value still changes
        changed = new.join(
            it.partial_solution, 0, 0, lambda n, o: None,
            name="unchanged_probe",
        )
        # join matches only when values equal -> invert: emit while growing
        still_growing = new.filter(lambda r: r[0] < 5)
        result = it.close(new, termination=still_growing)
        assert result.collect() == [(5,)]
        summary = env.iteration_summaries[0]
        assert summary.converged
        assert summary.supersteps == 5

    def test_convergence_check_callback(self, env):
        init = env.from_iterable([(40,)])
        it = env.iterate_bulk(init, max_iterations=100)
        new = it.partial_solution.map(lambda r: (r[0] // 2,))
        result = it.close(
            new, convergence_check=lambda prev, cur: prev == cur
        )
        assert result.collect() == [(0,)]
        assert env.iteration_summaries[0].converged

    def test_non_convergence_reported(self, env):
        init = env.from_iterable([(0,)])
        it = env.iterate_bulk(init, max_iterations=3)
        new = it.partial_solution.map(lambda r: (r[0] + 1,))
        result = it.close(new, termination=new.filter(lambda r: True))
        result.collect()
        summary = env.iteration_summaries[0]
        assert not summary.converged
        assert summary.supersteps == 3


class TestConstantPathCaching:
    def test_constant_edge_cached_across_supersteps(self, env):
        init = env.from_iterable([(0, 0)])
        lookup = env.from_iterable([(i, i + 1) for i in range(10)],
                                   name="table")
        it = env.iterate_bulk(init, max_iterations=5)
        stepped = it.partial_solution.join(
            lookup, 1, 0, lambda s, t: (s[0], t[1]), name="advance"
        )
        result = it.close(stepped)
        assert result.collect() == [(0, 5)]
        # the lookup table's shipped/built form must be cached: at least
        # one cache entry built, and more hits than builds
        assert env.metrics.cache_builds >= 1
        assert env.metrics.cache_hits >= env.metrics.cache_builds

    def test_constant_subplan_evaluated_once(self, env):
        calls = []

        def tracked(record):
            calls.append(record)
            return record

        init = env.from_iterable([(0, 0)])
        table = env.from_iterable(
            [(i, i + 1) for i in range(10)]
        ).map(tracked, name="tracked_map")
        it = env.iterate_bulk(init, max_iterations=4)
        stepped = it.partial_solution.join(
            table, 1, 0, lambda s, t: (s[0], t[1])
        )
        it.close(stepped).collect()
        # the constant-path map ran exactly once over its 10 records
        assert len(calls) == 10


class TestPerSuperstepMetrics:
    def test_iteration_log_entries(self, env):
        init = env.from_iterable([(0,)])
        it = env.iterate_bulk(init, max_iterations=6)
        it.close(it.partial_solution.map(lambda r: (r[0] + 1,))).collect()
        log = env.metrics.iteration_log
        assert len(log) == 6
        assert [s.superstep for s in log] == [1, 2, 3, 4, 5, 6]
        assert all(s.delta_size == 1 for s in log)


class TestNesting:
    def test_two_sequential_iterations(self, env):
        init = env.from_iterable([(0,)])
        first = env.iterate_bulk(init, max_iterations=3)
        mid = first.close(first.partial_solution.map(lambda r: (r[0] + 1,)))
        second = env.iterate_bulk(mid, max_iterations=2)
        result = second.close(
            second.partial_solution.map(lambda r: (r[0] * 2,))
        )
        assert result.collect() == [(12,)]

    def test_same_source_inside_and_outside_iteration(self, env):
        shared = env.from_iterable([(1, 100)])
        it = env.iterate_bulk(shared, max_iterations=2)
        body = it.partial_solution.join(
            shared, 0, 0, lambda a, b: (a[0], a[1] + b[1])
        )
        result = it.close(body)
        assert result.collect() == [(1, 300)]
