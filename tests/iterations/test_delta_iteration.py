"""Delta (workset) iterations through the executor (Section 5)."""

import pytest

from repro import ExecutionEnvironment

FIG1_EDGES_DIRECTED = [(0, 1), (1, 2), (0, 2), (2, 3), (4, 5), (5, 6),
                       (6, 7), (7, 8), (6, 8)]
FIG1_EDGES = FIG1_EDGES_DIRECTED + [(b, a) for a, b in FIG1_EDGES_DIRECTED]
FIG1_EXPECTED = [(0, 0), (1, 0), (2, 0), (3, 0),
                 (4, 4), (5, 4), (6, 4), (7, 4), (8, 4)]


def build_cc(env, mode, variant="match"):
    vertices = env.from_iterable([(v, v) for v in range(9)])
    edges = env.from_iterable(FIG1_EDGES)
    workset = env.from_iterable([(b, a) for a, b in FIG1_EDGES])
    it = env.iterate_delta(vertices, workset, 0, max_iterations=50)
    if variant == "match":
        delta = it.workset.join(
            it.solution_set, 0, 0,
            lambda c, s: (s[0], c[1]) if c[1] < s[1] else None,
        ).with_forwarded_fields({0: 0})
    else:
        def min_candidate(vid, cands, stored):
            best = min(c[1] for c in cands)
            if best < stored[0][1]:
                yield (vid, best)
        delta = it.workset.cogroup(it.solution_set, 0, 0, min_candidate)
    next_ws = delta.join(edges, 0, 0, lambda d, e: (e[1], d[1]))
    return it.close(
        delta, next_ws,
        should_replace=lambda new, old: new[1] < old[1], mode=mode,
    )


class TestModes:
    @pytest.mark.parametrize("mode", ["superstep", "microstep", "async"])
    def test_cc_converges_in_every_mode(self, mode):
        env = ExecutionEnvironment(4)
        result = build_cc(env, mode)
        assert sorted(result.collect()) == FIG1_EXPECTED
        assert env.iteration_summaries[0].converged

    def test_cogroup_variant_supersteps(self):
        env = ExecutionEnvironment(4)
        result = build_cc(env, "superstep", variant="cogroup")
        assert sorted(result.collect()) == FIG1_EXPECTED

    def test_auto_picks_microstep_for_match(self):
        env = ExecutionEnvironment(4)
        result = build_cc(env, "auto")
        result.collect()
        node_id = result.node.id
        assert env.last_plan.iteration_modes[node_id] == "microstep"

    def test_auto_picks_superstep_for_cogroup(self):
        env = ExecutionEnvironment(4)
        result = build_cc(env, "auto", variant="cogroup")
        result.collect()
        assert env.last_plan.iteration_modes[result.node.id] == "superstep"


class TestSemantics:
    def test_empty_initial_workset_returns_solution_unchanged(self, env):
        vertices = env.from_iterable([(v, v) for v in range(5)])
        workset = env.from_iterable([])
        it = env.iterate_delta(vertices, workset, 0, max_iterations=10)
        delta = it.workset.join(
            it.solution_set, 0, 0, lambda c, s: None
        ).with_forwarded_fields({0: 0})
        next_ws = delta.map(lambda r: r).with_forwarded_fields({0: 0})
        result = it.close(delta, next_ws)
        assert sorted(result.collect()) == [(v, v) for v in range(5)]
        assert env.iteration_summaries[0].converged

    def test_comparator_blocks_regressive_updates(self, env):
        vertices = env.from_iterable([(0, 5)])
        workset = env.from_iterable([(0, 9), (0, 3)])
        it = env.iterate_delta(vertices, workset, 0, max_iterations=5)
        # pass candidates straight through as deltas
        delta = it.workset.join(
            it.solution_set, 0, 0, lambda c, s: (c[0], c[1])
        ).with_forwarded_fields({0: 0})
        next_ws = delta.filter(lambda r: False)
        result = it.close(
            delta, next_ws, should_replace=lambda n, o: n[1] < o[1],
            mode="superstep",
        )
        assert result.collect() == [(0, 3)]

    def test_delta_can_insert_new_keys(self, env):
        vertices = env.from_iterable([(0, 0)])
        workset = env.from_iterable([(0, 0)])
        it = env.iterate_delta(vertices, workset, 0, max_iterations=3)
        # each superstep inserts key+1
        delta = it.workset.join(
            it.solution_set, 0, 0, lambda c, s: (c[0] + 1, c[1])
        )
        next_ws = delta.filter(lambda r: r[0] < 3)
        result = it.close(delta, next_ws, mode="superstep")
        assert sorted(result.collect()) == [(0, 0), (1, 0), (2, 0), (3, 0)]

    def test_workset_sees_filtered_delta(self, env):
        """Section 5.1: records rejected by the comparator are discarded
        from D before the next workset is computed."""
        observed = []
        vertices = env.from_iterable([(0, 1)])
        workset = env.from_iterable([(0, 5)])  # regressive candidate
        it = env.iterate_delta(vertices, workset, 0, max_iterations=3)
        delta = it.workset.join(
            it.solution_set, 0, 0, lambda c, s: (c[0], c[1])
        ).with_forwarded_fields({0: 0})

        def spy(record):
            observed.append(record)
            return record

        next_ws = delta.map(spy).filter(lambda r: False)
        it.close(
            delta, next_ws, should_replace=lambda n, o: n[1] < o[1],
            mode="superstep",
        ).collect()
        assert observed == []  # the rejected delta never reached δ

    def test_solution_set_must_be_right_side(self, env):
        from repro.common.errors import InvalidPlanError
        vertices = env.from_iterable([(0, 0)])
        workset = env.from_iterable([(0, 0)])
        it = env.iterate_delta(vertices, workset, 0, max_iterations=3)
        with pytest.raises(InvalidPlanError):
            it.solution_set.join(it.workset, 0, 0, lambda a, b: a)

    def test_solution_key_mismatch_rejected(self, env):
        from repro.common.errors import InvalidPlanError
        vertices = env.from_iterable([(0, 0)])
        workset = env.from_iterable([(0, 0)])
        it = env.iterate_delta(vertices, workset, 0, max_iterations=3)
        with pytest.raises(InvalidPlanError):
            it.workset.join(it.solution_set, 0, 1, lambda a, b: a)


class TestMetricsShapes:
    def test_workset_shrinks_on_fig1_graph(self):
        env = ExecutionEnvironment(4)
        build_cc(env, "superstep").collect()
        sizes = [s.workset_size for s in env.metrics.iteration_log]
        assert sizes[-1] == 0
        assert sizes[0] > sizes[-2] >= 0

    def test_local_updates_ship_nothing_remote_for_delta(self):
        """The Match variant keeps k(s) constant, so applying the delta
        crosses no partition boundary; microstep execution must reflect
        that locality in its solution updates."""
        env = ExecutionEnvironment(4)
        build_cc(env, "microstep").collect()
        assert env.metrics.solution_updates > 0

    def test_solution_accesses_counted(self):
        env = ExecutionEnvironment(4)
        build_cc(env, "superstep").collect()
        assert env.metrics.solution_accesses > 0
