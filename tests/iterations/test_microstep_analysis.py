"""Static microstep eligibility analysis (Section 5.2)."""

import pytest

from repro import ExecutionEnvironment
from repro.common.errors import MicrostepViolation
from repro.iterations.microstep import analyze_microstep


def make_delta_iteration(env, delta_builder, forward_key=True):
    """A CC-shaped delta iteration with a configurable update operator."""
    vertices = env.from_iterable([(v, v) for v in range(4)])
    edges = env.from_iterable([(0, 1), (1, 0)])
    workset = env.from_iterable([(0, 1)])
    iteration = env.iterate_delta(vertices, workset, 0, max_iterations=5)
    delta = delta_builder(iteration)
    if forward_key:
        delta.with_forwarded_fields({0: 0})
    next_ws = delta.join(edges, 0, 0, lambda d, e: (e[1], d[1]))
    iteration._node.close(delta.node, next_ws.node)
    return iteration._node


def match_delta(iteration):
    return iteration.workset.join(
        iteration.solution_set, 0, 0,
        lambda c, s: (s[0], c[1]) if c[1] < s[1] else None,
    )


def cogroup_delta(iteration):
    return iteration.workset.cogroup(
        iteration.solution_set, 0, 0,
        lambda key, cands, stored: [(key, min(c[1] for c in cands))],
    )


class TestEligibility:
    def test_match_variant_eligible(self, env):
        node = make_delta_iteration(env, match_delta)
        report = analyze_microstep(node)
        assert report.eligible, report.reasons
        assert report.local_updates
        assert [n.contract.value for n in report.chain_to_delta] == [
            "solution_join"
        ]
        assert [n.contract.value for n in report.chain_to_workset] == ["match"]

    def test_cogroup_variant_rejected(self, env):
        node = make_delta_iteration(env, cogroup_delta)
        report = analyze_microstep(node)
        assert not report.eligible
        assert any("group-at-a-time" in r for r in report.reasons)

    def test_missing_forwarded_fields_rejected(self, env):
        node = make_delta_iteration(env, match_delta, forward_key=False)
        report = analyze_microstep(node)
        assert not report.eligible
        assert any("constant" in r for r in report.reasons)

    def test_map_after_update_needs_forwarding(self, env):
        def builder(iteration):
            joined = match_delta(iteration).with_forwarded_fields({0: 0})
            # a map that does not declare key constancy breaks locality
            return joined.map(lambda r: (r[0], r[1]))
        node = make_delta_iteration(env, builder, forward_key=False)
        assert not analyze_microstep(node).eligible

    def test_map_with_forwarding_is_eligible(self, env):
        def builder(iteration):
            joined = match_delta(iteration).with_forwarded_fields({0: 0})
            return joined.map(lambda r: (r[0], r[1])) \
                .with_forwarded_fields({0: 0})
        node = make_delta_iteration(env, builder, forward_key=False)
        report = analyze_microstep(node)
        assert report.eligible, report.reasons

    def test_filter_preserves_keys_implicitly(self, env):
        def builder(iteration):
            joined = match_delta(iteration).with_forwarded_fields({0: 0})
            return joined.filter(lambda r: True)
        node = make_delta_iteration(env, builder, forward_key=False)
        assert analyze_microstep(node).eligible

    def test_branched_dynamic_path_rejected(self, env):
        vertices = env.from_iterable([(v, v) for v in range(4)])
        workset = env.from_iterable([(0, 1)])
        iteration = env.iterate_delta(vertices, workset, 0, max_iterations=5)
        joined = match_delta(iteration).with_forwarded_fields({0: 0})
        # two dynamic consumers of the same operator: a branch
        branch_a = joined.map(lambda r: r).with_forwarded_fields({0: 0})
        branch_b = joined.map(lambda r: r).with_forwarded_fields({0: 0})
        delta = branch_a.union(branch_b)
        next_ws = delta.map(lambda r: r)
        iteration._node.close(delta.node, next_ws.node)
        report = analyze_microstep(iteration._node)
        assert not report.eligible

    def test_raise_if_ineligible(self, env):
        node = make_delta_iteration(env, cogroup_delta)
        with pytest.raises(MicrostepViolation):
            analyze_microstep(node).raise_if_ineligible()

    def test_executor_rejects_forced_microstep(self, env):
        vertices = env.from_iterable([(v, v) for v in range(4)])
        edges = env.from_iterable([(0, 1), (1, 0)])
        workset = env.from_iterable([(0, 1)])
        iteration = env.iterate_delta(vertices, workset, 0, max_iterations=5)
        delta = cogroup_delta(iteration)
        next_ws = delta.join(edges, 0, 0, lambda d, e: (e[1], d[1]))
        result = iteration.close(delta, next_ws, mode="microstep")
        with pytest.raises(MicrostepViolation):
            result.collect()

    def test_auto_mode_resolution(self, env):
        from repro.optimizer.naive import resolve_iteration_mode
        eligible = make_delta_iteration(env, match_delta)
        assert resolve_iteration_mode(eligible) == "microstep"
        ineligible = make_delta_iteration(
            ExecutionEnvironment(4), cogroup_delta
        )
        assert resolve_iteration_mode(ineligible) == "superstep"
