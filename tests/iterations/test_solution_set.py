"""The indexed solution set and the ∪̇ delta union (Section 5.1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.hashing import partition_index
from repro.iterations.solution_set import SolutionSetIndex
from repro.runtime.metrics import MetricsCollector


def build(records, should_replace=None, parallelism=4, metrics=None):
    return SolutionSetIndex.build(
        list(records), key_fields=0, parallelism=parallelism,
        metrics=metrics, should_replace=should_replace,
    )


class TestConstruction:
    def test_partitioned_by_stable_hash(self):
        index = build([(i, i * 10) for i in range(16)])
        for p, size in enumerate(index.partition_sizes()):
            assert size == sum(
                1 for i in range(16) if partition_index(i, 4) == p
            )

    def test_build_from_partitioned_input(self):
        parts = [[(0, "a")], [(1, "b")], [], []]
        index = SolutionSetIndex.build(parts, 0, 4)
        assert len(index) == 2

    def test_last_record_wins_on_duplicate_keys(self):
        index = build([(1, "old"), (1, "new")])
        assert index.lookup_global(1) == (1, "new")


class TestLookups:
    def test_lookup_counts_accesses(self):
        metrics = MetricsCollector()
        index = build([(1, "a")], metrics=metrics)
        index.lookup_global(1)
        index.lookup_global(99)  # miss still counts as an access
        assert metrics.solution_accesses == 2

    def test_contains(self):
        index = build([(5, "x")])
        assert index.contains(5)
        assert not index.contains(6)

    def test_partition_local_lookup(self):
        index = build([(3, "v")])
        p = partition_index(3, 4)
        assert index.lookup(p, 3) == (3, "v")
        assert index.lookup((p + 1) % 4, 3) is None


class TestDeltaUnion:
    def test_replace_without_comparator(self):
        index = build([(1, 10)])
        assert index.apply_record((1, 99)) == (1, 99)
        assert index.lookup_global(1) == (1, 99)

    def test_insert_new_key(self):
        index = build([])
        assert index.apply_record((7, "n")) == (7, "n")
        assert len(index) == 1

    def test_comparator_rejects_regression(self):
        index = build([(1, 5)], should_replace=lambda new, old: new[1] < old[1])
        assert index.apply_record((1, 9)) is None
        assert index.lookup_global(1) == (1, 5)

    def test_comparator_accepts_progress(self):
        index = build([(1, 5)], should_replace=lambda new, old: new[1] < old[1])
        assert index.apply_record((1, 2)) == (1, 2)

    def test_apply_delta_returns_accepted_only(self):
        index = build(
            [(1, 5), (2, 5)],
            should_replace=lambda new, old: new[1] < old[1],
        )
        accepted = index.apply_delta([(1, 3), (2, 9), (3, 1)])
        assert sorted(accepted) == [(1, 3), (3, 1)]

    def test_updates_counted(self):
        metrics = MetricsCollector()
        index = build([(1, 5)], metrics=metrics)
        index.apply_delta([(1, 4), (2, 2)])
        assert metrics.solution_updates == 2

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 100)),
                    max_size=40))
    def test_union_idempotent_under_min_comparator(self, deltas):
        """Applying a delta batch twice must equal applying it once."""
        base = [(k, 1000) for k in range(10)]
        once = build(base, should_replace=lambda n, o: n[1] < o[1])
        once.apply_delta(deltas)
        twice = build(base, should_replace=lambda n, o: n[1] < o[1])
        twice.apply_delta(deltas)
        twice.apply_delta(deltas)
        assert once.as_dict() == twice.as_dict()

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 100)),
                    max_size=40))
    def test_min_comparator_order_independent(self, deltas):
        """With a total-order comparator, ∪̇ is batch-order independent."""
        base = [(k, 1000) for k in range(10)]
        forward = build(base, should_replace=lambda n, o: n[1] < o[1])
        forward.apply_delta(deltas)
        backward = build(base, should_replace=lambda n, o: n[1] < o[1])
        backward.apply_delta(list(reversed(deltas)))
        assert forward.as_dict() == backward.as_dict()


class TestExport:
    def test_roundtrip(self):
        records = [(i, str(i)) for i in range(10)]
        index = build(records)
        assert sorted(index.records()) == sorted(records)
        assert sorted(
            r for part in index.to_partitions() for r in part
        ) == sorted(records)
        assert index.as_dict() == {i: (i, str(i)) for i in range(10)}
