"""The Table 1 iteration templates and their convergence conditions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import NotConvergedError
from repro.common.ordering import ComponentOrder
from repro.iterations.fixpoint import (
    fixpoint_iterate,
    incremental_iterate,
    microstep_iterate,
)


class TestFixpointTemplate:
    def test_reaches_fixpoint(self):
        # integer halving reaches 0
        result = fixpoint_iterate(lambda s: s // 2, 40)
        assert result.solution == 0
        assert result.converged

    def test_iteration_count(self):
        result = fixpoint_iterate(lambda s: max(s - 1, 0), 3)
        # 3 -> 2 -> 1 -> 0 -> 0: four applications, fixpoint at the fourth
        assert result.iterations == 4

    def test_epsilon_termination(self):
        result = fixpoint_iterate(
            lambda s: s / 2.0, 1.0,
            equals=lambda a, b: abs(a - b) < 1e-3,
        )
        assert result.solution < 1e-2

    def test_raises_without_convergence(self):
        with pytest.raises(NotConvergedError):
            fixpoint_iterate(lambda s: s + 1, 0, max_iterations=10)

    def test_cpo_violation_detected(self):
        order = ComponentOrder()
        # a step that *increases* a component id violates the order
        def bad_step(state):
            return {0: state[0] + 1}
        with pytest.raises(ValueError):
            fixpoint_iterate(bad_step, {0: 0}, order=order, max_iterations=5)

    def test_cpo_conforming_step_passes(self):
        order = ComponentOrder()
        result = fixpoint_iterate(
            lambda s: {0: max(s[0] - 1, 0)}, {0: 3}, order=order
        )
        assert result.solution == {0: 0}

    def test_trace_records_kleene_chain(self):
        result = fixpoint_iterate(lambda s: s // 2, 8, trace=True)
        assert result.chain == [8, 4, 2, 1, 0, 0]


class TestIncrementalTemplate:
    def test_empty_workset_terminates_immediately(self):
        result = incremental_iterate(
            lambda s, w: w, lambda s, w: s, {"x": 1}, []
        )
        assert result.iterations == 0
        assert result.solution == {"x": 1}

    def test_workset_sizes_recorded(self):
        # propagate a decrement three times
        def delta(state, workset):
            return [v - 1 for v in workset if v - 1 > 0]

        def update(state, workset):
            return state + len(workset)

        result = incremental_iterate(delta, update, 0, [3])
        assert result.workset_sizes == [1, 1, 1]
        assert result.solution == 3

    def test_delta_sees_pre_update_state(self):
        observed = []

        def delta(state, workset):
            observed.append(state)
            return []

        def update(state, workset):
            return state + 1

        incremental_iterate(delta, update, 0, [None])
        assert observed == [0]

    def test_raises_without_convergence(self):
        with pytest.raises(NotConvergedError):
            incremental_iterate(
                lambda s, w: w, lambda s, w: s, 0, [1], max_iterations=5
            )


class TestMicrostepTemplate:
    def test_immediate_updates_visible(self):
        # each element adds its value once; duplicates are suppressed by
        # the update function returning changed=False
        def update(state, element):
            if element in state:
                return state, False
            state.add(element)
            return state, True

        def delta(state, element):
            return [element + 1] if element < 3 else []

        result = microstep_iterate(delta, update, set(), [0])
        assert result.solution == {0, 1, 2, 3}

    def test_step_budget(self):
        def update(state, element):
            return state, True

        def delta(state, element):
            return [element]  # livelock

        with pytest.raises(NotConvergedError):
            microstep_iterate(delta, update, None, [1], max_steps=50)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=20))
    def test_fifo_is_deterministic(self, seeds):
        def update(state, element):
            if element in state:
                return state, False
            state.add(element)
            return state, True

        def delta(state, element):
            return [element - 1] if element > 0 else []

        a = microstep_iterate(delta, update, set(), list(seeds)).solution
        b = microstep_iterate(delta, update, set(), list(seeds)).solution
        assert a == b == set(range(max(seeds) + 1)) & (
            set().union(*(set(range(s + 1)) for s in seeds))
        )
