"""Microstep pipeline compilation: every record-at-a-time stage shape.

The compiled per-element pipelines (Section 5.2 / Figure 6) must agree
with superstep execution for every operator the analysis admits: Map,
FlatMap, Filter, Match against a constant table, Cross against a
constant side, and flat solution joins.
"""

import pytest

from repro import ExecutionEnvironment


def run_modes(build, modes=("superstep", "microstep", "async")):
    """Run the same delta-iteration builder under several modes."""
    results = {}
    for mode in modes:
        env = ExecutionEnvironment(3)
        results[mode] = sorted(build(env, mode))
    baseline = results[modes[0]]
    for mode in modes[1:]:
        assert results[mode] == baseline, mode
    return baseline


class TestStageShapes:
    def test_map_stage_on_workset_chain(self):
        """workset -> map -> solution join -> delta."""
        def build(env, mode):
            solution = env.from_iterable([(v, 100) for v in range(6)])
            workset = env.from_iterable([(v, v) for v in range(6)])
            it = env.iterate_delta(solution, workset, 0, max_iterations=9)
            shifted = it.workset.map(
                lambda w: (w[0], w[1] * 2)
            ).with_forwarded_fields({0: 0})
            delta = shifted.join(
                it.solution_set, 0, 0,
                lambda c, s: (s[0], c[1]) if c[1] < s[1] else None,
            ).with_forwarded_fields({0: 0})
            next_ws = delta.filter(lambda d: False)
            out = it.close(delta, next_ws,
                           should_replace=lambda n, o: n[1] < o[1],
                           mode=mode)
            return out.collect()

        result = run_modes(build)
        assert result == [(v, v * 2) for v in range(6)]

    def test_flat_map_stage_expands_workset(self):
        """delta -> flat_map -> next workset (one element fans out)."""
        def build(env, mode):
            solution = env.from_iterable([(v, 0) for v in range(8)])
            workset = env.from_iterable([(0, 1)])
            it = env.iterate_delta(solution, workset, 0, max_iterations=20)
            delta = it.workset.join(
                it.solution_set, 0, 0,
                lambda c, s: (s[0], c[1]) if s[1] == 0 else None,
            ).with_forwarded_fields({0: 0})
            next_ws = delta.flat_map(
                lambda d: [
                    (d[0] * 2 + 1, 1), (d[0] * 2 + 2, 1),
                ] if d[0] * 2 + 2 < 8 else []
            )
            out = it.close(delta, next_ws, mode=mode)
            return out.collect()

        result = run_modes(build)
        # a binary-tree marking: vertices 0..6 get marked, 7 stays 0
        marked = {v for v, flag in result if flag == 1}
        assert marked == {0, 1, 2, 3, 4, 5, 6}

    def test_filter_stage_on_workset_chain(self):
        def build(env, mode):
            solution = env.from_iterable([(v, 0) for v in range(10)])
            workset = env.from_iterable([(v, v % 2) for v in range(10)])
            it = env.iterate_delta(solution, workset, 0, max_iterations=5)
            evens = it.workset.filter(lambda w: w[1] == 0)
            delta = evens.join(
                it.solution_set, 0, 0, lambda c, s: (s[0], 1)
            ).with_forwarded_fields({0: 0})
            next_ws = delta.filter(lambda d: False)
            return it.close(delta, next_ws, mode=mode).collect()

        result = run_modes(build)
        assert sorted(v for v, flag in result if flag) == [0, 2, 4, 6, 8]

    def test_constant_match_on_delta_chain_with_flat_udf(self):
        """delta -> flat Match against a constant table -> workset."""
        def build(env, mode):
            table = env.from_iterable(
                [(v, v + 1), (v, v + 2)] for v in range(0)
            )
            edges = env.from_iterable(
                [(v, v + 1) for v in range(7)]
            )
            solution = env.from_iterable([(v, 0) for v in range(8)])
            workset = env.from_iterable([(0, 1)])
            it = env.iterate_delta(solution, workset, 0, max_iterations=20)
            delta = it.workset.join(
                it.solution_set, 0, 0,
                lambda c, s: (s[0], 1) if s[1] == 0 else None,
            ).with_forwarded_fields({0: 0})
            next_ws = delta.join(
                edges, 0, 0,
                lambda d, e: [(e[1], 1), (e[1], 1)],  # duplicates on purpose
                flat=True,
            )
            return it.close(delta, next_ws, mode=mode).collect()

        result = run_modes(build)
        assert sorted(v for v, flag in result if flag) == list(range(8))

    def test_cross_stage_against_constant_side(self):
        """delta -> Cross with a tiny constant set -> workset."""
        def build(env, mode):
            offsets = env.from_iterable([(1,), (2,)])
            solution = env.from_iterable([(v, 0) for v in range(9)])
            workset = env.from_iterable([(0, 1)])
            it = env.iterate_delta(solution, workset, 0, max_iterations=30)
            delta = it.workset.join(
                it.solution_set, 0, 0,
                lambda c, s: (s[0], 1) if s[1] == 0 else None,
            ).with_forwarded_fields({0: 0})
            next_ws = delta.cross(
                offsets,
                lambda d, o: (d[0] + o[0], 1) if d[0] + o[0] < 9 else None,
            )
            return it.close(delta, next_ws, mode=mode).collect()

        result = run_modes(build)
        assert all(flag == 1 for _v, flag in result)

    def test_chained_stages(self):
        """map -> filter -> solution join -> map -> match, all per record."""
        def build(env, mode):
            edges = env.from_iterable([(v, v + 1) for v in range(9)])
            solution = env.from_iterable([(v, -1) for v in range(10)])
            workset = env.from_iterable([(0, 0)])
            it = env.iterate_delta(solution, workset, 0, max_iterations=30)
            prepared = (
                it.workset.map(lambda w: (w[0], w[1] + 1))
                .with_forwarded_fields({0: 0})
                .filter(lambda w: w[1] <= 10)
            )
            joined = prepared.join(
                it.solution_set, 0, 0,
                lambda c, s: (s[0], c[1]) if s[1] < 0 else None,
            ).with_forwarded_fields({0: 0})
            delta = joined.map(
                lambda d: (d[0], d[1] * 10)
            ).with_forwarded_fields({0: 0})
            next_ws = delta.join(
                edges, 0, 0, lambda d, e: (e[1], d[1] // 10)
            )
            return it.close(delta, next_ws, mode=mode).collect()

        result = run_modes(build)
        assert sorted(result) == [(v, (v + 1) * 10) for v in range(10)]
