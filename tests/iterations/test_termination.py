"""Termination detection for synchronous and asynchronous execution."""

import pytest

from repro.iterations.termination import (
    AsyncTerminationDetector,
    EmptyWorksetVote,
)


class TestEmptyWorksetVote:
    def test_all_zero_terminates(self):
        vote = EmptyWorksetVote(3)
        for p in range(3):
            vote.vote(p, 0)
        assert vote.complete
        assert vote.decide()

    def test_any_nonzero_continues(self):
        vote = EmptyWorksetVote(3)
        vote.vote(0, 0)
        vote.vote(1, 5)
        vote.vote(2, 0)
        assert not vote.decide()

    def test_incomplete_vote_cannot_decide(self):
        vote = EmptyWorksetVote(2)
        vote.vote(0, 0)
        assert not vote.complete
        with pytest.raises(RuntimeError):
            vote.decide()

    def test_partition_range_checked(self):
        vote = EmptyWorksetVote(2)
        with pytest.raises(ValueError):
            vote.vote(2, 0)

    def test_reset(self):
        vote = EmptyWorksetVote(1)
        vote.vote(0, 0)
        vote.reset()
        assert not vote.complete


class TestAsyncTermination:
    def test_initially_terminated(self):
        detector = AsyncTerminationDetector(2)
        assert detector.terminated

    def test_in_flight_blocks_termination(self):
        detector = AsyncTerminationDetector(2)
        detector.sent(3)
        assert detector.in_flight == 3
        assert not detector.terminated
        detector.acked(3)
        assert detector.terminated

    def test_busy_partition_blocks_termination(self):
        detector = AsyncTerminationDetector(2)
        detector.set_idle(0, False)
        assert not detector.terminated
        detector.set_idle(0, True)
        assert detector.terminated

    def test_over_acknowledgement_rejected(self):
        detector = AsyncTerminationDetector(1)
        detector.sent(1)
        detector.acked(1)
        with pytest.raises(RuntimeError):
            detector.acked(1)

    def test_interleaved_send_ack(self):
        detector = AsyncTerminationDetector(2)
        detector.sent(1)
        detector.set_idle(1, False)
        detector.acked(1)          # ack arrives while partition 1 is busy
        assert not detector.terminated
        detector.sent(2)           # busy partition generates more work
        detector.set_idle(1, True)
        assert not detector.terminated
        detector.acked(2)
        assert detector.terminated
