"""Cross-engine equivalence: every engine, every algorithm, one truth.

These are the repo's strongest property tests: random graphs flow
through the full stacks (fluent API → optimizer → executor; RDD engine;
BSP engine; reference templates) and all answers must coincide.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.algorithms import pagerank as pr
from repro.algorithms import sssp
from repro.graphs import Graph
from repro.systems.sparklike import SparkLikeContext

graphs = st.builds(
    Graph,
    st.just(18),
    st.lists(st.tuples(st.integers(0, 17), st.integers(0, 17)), max_size=40),
)


class TestConnectedComponentsEverywhere:
    @settings(max_examples=15, deadline=None)
    @given(graphs)
    def test_seven_implementations_agree(self, graph):
        truth = cc.cc_ground_truth(graph)
        assert cc.cc_fixpoint(graph) == truth
        assert cc.cc_incremental_reference(graph) == truth
        assert cc.cc_microstep_reference(graph) == truth
        env = ExecutionEnvironment(3)
        assert cc.cc_bulk(env, graph) == truth
        env = ExecutionEnvironment(3)
        assert cc.cc_incremental(env, graph, "cogroup") == truth
        env = ExecutionEnvironment(3)
        assert cc.cc_incremental(env, graph, "match", mode="async") == truth
        assert cc.cc_pregel(graph, parallelism=3) == truth

    @settings(max_examples=10, deadline=None)
    @given(graphs)
    def test_sparklike_agrees(self, graph):
        truth = cc.cc_ground_truth(graph)
        ctx = SparkLikeContext(3)
        assert cc.cc_sparklike(ctx, graph, max_iterations=50) == truth
        ctx = SparkLikeContext(3)
        assert cc.cc_sparklike_sim_incremental(
            ctx, graph, max_iterations=50
        ) == truth


class TestPageRankEverywhere:
    @settings(max_examples=8, deadline=None)
    @given(graphs, st.integers(min_value=1, max_value=6))
    def test_four_engines_agree(self, graph, iterations):
        expected = pr.pagerank_reference(graph, iterations)

        def check(got):
            assert set(got) == set(expected)
            assert all(
                abs(got[k] - expected[k]) < 1e-9 for k in expected
            )

        env = ExecutionEnvironment(3)
        check(pr.pagerank_bulk(env, graph, iterations))
        ctx = SparkLikeContext(3)
        check(pr.pagerank_sparklike(ctx, graph, iterations))
        check(pr.pagerank_pregel(graph, iterations, parallelism=3))


class TestSsspEverywhere:
    @settings(max_examples=10, deadline=None)
    @given(graphs, st.integers(min_value=0, max_value=17))
    def test_three_engines_agree(self, graph, source):
        expected = sssp.sssp_reference(graph, source)
        env = ExecutionEnvironment(3)
        assert sssp.sssp_incremental(env, graph, source,
                                     mode="superstep") == expected
        env = ExecutionEnvironment(3)
        assert sssp.sssp_incremental(env, graph, source,
                                     mode="microstep") == expected
        assert sssp.sssp_pregel(graph, source, parallelism=3) == expected


class TestParallelismInvariance:
    @settings(max_examples=10, deadline=None)
    @given(graphs, st.integers(min_value=1, max_value=7))
    def test_results_independent_of_cluster_width(self, graph, parallelism):
        env = ExecutionEnvironment(parallelism)
        got = cc.cc_incremental(env, graph, "match")
        assert got == cc.cc_ground_truth(graph)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=1, max_value=8))
    def test_pagerank_independent_of_cluster_width(self, parallelism):
        graph = Graph(12, [(i, (i * 5 + 1) % 12) for i in range(12)])
        expected = pr.pagerank_reference(graph, 5)
        env = ExecutionEnvironment(parallelism)
        got = pr.pagerank_bulk(env, graph, 5)
        assert all(abs(got[k] - expected[k]) < 1e-9 for k in expected)
