"""The example scripts stay runnable (deliverable smoke tests).

Only the fast examples run here; the heavier ones (PageRank plans,
K-Means, SSSP, the cross-system comparison) are exercised indirectly by
the algorithm tests and benchmarks covering the same code paths.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    ))),
    "examples",
)

FAST_EXAMPLES = [
    ("quickstart.py", ["delta CC", "workset sizes"]),
    ("datalog_reachability.py", ["semi-naive", "ok"]),
    ("fault_tolerance.py", ["identical", "Recovery"]),
]


@pytest.mark.parametrize("script,expected", FAST_EXAMPLES,
                         ids=[s for s, _e in FAST_EXAMPLES])
def test_example_runs_clean(script, expected):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for needle in expected:
        assert needle in result.stdout, (needle, result.stdout[-2000:])
    assert "WRONG" not in result.stdout
    assert "DIVERGED" not in result.stdout


def test_all_examples_present():
    scripts = sorted(
        f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
    )
    assert "quickstart.py" in scripts
    assert len(scripts) >= 3  # the deliverable minimum, comfortably beaten
