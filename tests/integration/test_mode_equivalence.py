"""Property: monotone delta iterations reach the same fixpoint under
superstep, microstep, and asynchronous execution (Section 5.2's claim
that microsteps converge whenever each individual update is a CPO
successor)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionEnvironment
from repro.graphs import Graph

NUM_VERTICES = 14

graph_edges = st.lists(
    st.tuples(st.integers(0, NUM_VERTICES - 1),
              st.integers(0, NUM_VERTICES - 1)),
    max_size=30,
)

initial_labels = st.lists(
    st.integers(0, 50), min_size=NUM_VERTICES, max_size=NUM_VERTICES
)


def min_label_fixpoint(env, graph, labels, mode):
    """A CC-style min-label propagation with arbitrary initial labels."""
    vertices = env.from_iterable(
        [(v, labels[v]) for v in range(NUM_VERTICES)]
    )
    edge_tuples = graph.edge_tuples()
    edges = env.from_iterable(edge_tuples)
    workset = env.from_iterable(
        [(dst, labels[src]) for src, dst in edge_tuples]
    )
    it = env.iterate_delta(vertices, workset, 0, max_iterations=500)
    delta = it.workset.join(
        it.solution_set, 0, 0,
        lambda c, s: (s[0], c[1]) if c[1] < s[1] else None,
    ).with_forwarded_fields({0: 0})
    next_ws = delta.join(edges, 0, 0, lambda d, e: (e[1], d[1]))
    result = it.close(
        delta, next_ws,
        should_replace=lambda new, old: new[1] < old[1], mode=mode,
    )
    return dict(result.collect())


def reference_fixpoint(graph, labels):
    """Per component, every vertex ends with the component's min label."""
    from repro.graphs.stats import union_find_components
    components = union_find_components(graph)
    component_min = {}
    for v in range(NUM_VERTICES):
        c = int(components[v])
        component_min[c] = min(component_min.get(c, labels[v]), labels[v])
    return {v: component_min[int(components[v])]
            for v in range(NUM_VERTICES)}


class TestModeEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(graph_edges, initial_labels)
    def test_all_modes_reach_the_reference_fixpoint(self, edges, labels):
        graph = Graph(NUM_VERTICES, edges)
        expected = reference_fixpoint(graph, labels)
        for mode in ("superstep", "microstep", "async"):
            env = ExecutionEnvironment(3)
            got = min_label_fixpoint(env, graph, labels, mode)
            assert got == expected, mode

    @settings(max_examples=15, deadline=None)
    @given(graph_edges, initial_labels,
           st.integers(min_value=1, max_value=6))
    def test_fixpoint_independent_of_parallelism(self, edges, labels,
                                                 parallelism):
        graph = Graph(NUM_VERTICES, edges)
        expected = reference_fixpoint(graph, labels)
        env = ExecutionEnvironment(parallelism)
        assert min_label_fixpoint(env, graph, labels, "async") == expected

    @settings(max_examples=12, deadline=None)
    @given(graph_edges, initial_labels,
           st.integers(min_value=1, max_value=200))
    def test_async_fixpoint_independent_of_interleaving(self, edges, labels,
                                                        batch):
        """Any polling granularity — one element per round to hundreds —
        must reach the same fixpoint: the CPO makes the asynchronous
        schedule irrelevant (Section 2.2)."""
        graph = Graph(NUM_VERTICES, edges)
        expected = reference_fixpoint(graph, labels)
        env = ExecutionEnvironment(3)
        env.async_poll_batch = batch
        assert min_label_fixpoint(env, graph, labels, "async") == expected

    @settings(max_examples=15, deadline=None)
    @given(graph_edges, initial_labels)
    def test_solution_updates_monotone_under_microsteps(self, edges, labels):
        """Every applied update strictly improves its record — the CPO
        successor condition that justifies asynchronous execution."""
        graph = Graph(NUM_VERTICES, edges)
        env = ExecutionEnvironment(3)
        min_label_fixpoint(env, graph, labels, "microstep")
        # the comparator admits only strict improvements, so the number
        # of updates is bounded by total label mass decrease potential
        max_possible = sum(labels)
        assert env.metrics.solution_updates <= max_possible + NUM_VERTICES
