"""Optimizer semantic fuzzing: random logical plans, random data.

Hypothesis composes random operator pipelines (maps, filters, unions,
reductions, joins) over random inputs and checks that the cost-based
optimizer and the naive planner produce the same bag of records for
every plan, at every cluster width.  This is the strongest guarantee a
plan enumerator can offer: whatever strategies it picks, semantics are
untouched.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionEnvironment

# ----------------------------------------------------------------------
# a tiny plan language the fuzzer composes: each step transforms a
# DataSet of (int, int) records into another one

KEY_RANGE = 6


def _apply_step(env, dataset, aux, step):
    kind = step[0]
    if kind == "map_add":
        delta = step[1]
        return dataset.map(lambda r, d=delta: (r[0], r[1] + d))
    if kind == "map_rekey":
        mod = step[1]
        return dataset.map(lambda r, m=mod: (r[0] % m, r[1]))
    if kind == "filter_threshold":
        threshold = step[1]
        return dataset.filter(lambda r, t=threshold: r[1] >= t)
    if kind == "reduce_sum":
        return dataset.reduce_by_key(0, lambda a, b: (a[0], a[1] + b[1]))
    if kind == "reduce_min":
        return dataset.reduce_by_key(
            0, lambda a, b: a if a[1] <= b[1] else b
        )
    if kind == "union_aux":
        return dataset.union(aux)
    if kind == "join_aux":
        return dataset.join(
            aux, 0, 0, lambda l, r: (l[0], l[1] * 31 + r[1])
        )
    if kind == "cogroup_aux":
        return dataset.cogroup(
            aux, 0, 0,
            lambda key, ls, rs: [(key, len(ls) * 100 + len(rs))],
        )
    raise AssertionError(kind)


steps = st.one_of(
    st.tuples(st.just("map_add"), st.integers(-5, 5)),
    st.tuples(st.just("map_rekey"), st.integers(1, KEY_RANGE)),
    st.tuples(st.just("filter_threshold"), st.integers(-10, 10)),
    st.tuples(st.just("reduce_sum")),
    st.tuples(st.just("reduce_min")),
    st.tuples(st.just("union_aux")),
    st.tuples(st.just("join_aux")),
    st.tuples(st.just("cogroup_aux")),
)

records = st.lists(
    st.tuples(st.integers(0, KEY_RANGE - 1), st.integers(-20, 20)),
    max_size=25,
)


def run_pipeline(optimize, parallelism, base, extra, pipeline):
    env = ExecutionEnvironment(parallelism, optimize=optimize)
    dataset = env.from_iterable(base)
    aux = env.from_iterable(extra)
    for step in pipeline:
        dataset = _apply_step(env, dataset, aux, step)
    return sorted(dataset.collect())


class TestPlannerEquivalenceFuzz:
    @settings(max_examples=60, deadline=None)
    @given(records, records, st.lists(steps, min_size=1, max_size=5))
    def test_optimized_equals_naive(self, base, extra, pipeline):
        optimized = run_pipeline(True, 4, base, extra, pipeline)
        naive = run_pipeline(False, 4, base, extra, pipeline)
        assert optimized == naive

    @settings(max_examples=30, deadline=None)
    @given(records, records, st.lists(steps, min_size=1, max_size=4),
           st.integers(min_value=1, max_value=6))
    def test_result_independent_of_parallelism(self, base, extra,
                                               pipeline, parallelism):
        wide = run_pipeline(True, parallelism, base, extra, pipeline)
        narrow = run_pipeline(True, 1, base, extra, pipeline)
        assert wide == narrow

    @settings(max_examples=25, deadline=None)
    @given(records, records, st.lists(steps, min_size=1, max_size=4))
    def test_repeatable(self, base, extra, pipeline):
        first = run_pipeline(True, 4, base, extra, pipeline)
        second = run_pipeline(True, 4, base, extra, pipeline)
        assert first == second
