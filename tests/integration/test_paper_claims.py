"""Qualitative paper claims, checked as fast integration tests.

The full quantitative reproductions live under ``benchmarks/``; these
tests pin the same *shapes* on small inputs so regressions surface in
the normal test run.
"""

import pytest

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.algorithms import pagerank as pr
from repro.graphs import erdos_renyi, foaf_like
from repro.systems.sparklike import SparkLikeContext


@pytest.fixture(scope="module")
def foaf():
    return foaf_like(1200, seed=5)


class TestSection23PerformanceImplications:
    """Section 2.3: bulk work is constant; incremental work decays."""

    def test_bulk_work_constant_incremental_decays(self, foaf):
        env_bulk = ExecutionEnvironment(4)
        cc.cc_bulk(env_bulk, foaf)
        bulk_steady = [
            s.records_processed for s in env_bulk.metrics.iteration_log[1:]
        ]
        assert max(bulk_steady) == min(bulk_steady)

        env_incr = ExecutionEnvironment(4)
        cc.cc_incremental(env_incr, foaf, "cogroup")
        incr_work = [
            s.records_processed for s in env_incr.metrics.iteration_log
        ]
        assert incr_work[-2] < incr_work[0] / 50

    def test_progress_tracks_workset(self, foaf):
        """Figure 2: 'actual progress closely follows the size of the
        working set'."""
        env = ExecutionEnvironment(4)
        cc.cc_incremental(env, foaf, "cogroup")
        for stats in env.metrics.iteration_log:
            assert stats.delta_size <= stats.solution_accesses or (
                stats.delta_size == 0
            )


class TestSection51DeltaSemantics:
    """The solution set carries state; unchanged records are never copied."""

    def test_unchanged_records_not_touched(self, foaf):
        env = ExecutionEnvironment(4)
        cc.cc_incremental(env, foaf, "cogroup")
        late = env.metrics.iteration_log[-2]
        # near convergence only a handful of records are inspected, far
        # fewer than |V| — the mutable-state advantage over Spark
        assert late.solution_accesses < foaf.num_vertices / 20

    def test_spark_sim_incremental_copies_everything(self, foaf):
        ctx = SparkLikeContext(4)
        cc.cc_sparklike_sim_incremental(ctx, foaf)
        # every iteration materializes >= |V| records (the merge map)
        iterations = len(ctx.metrics.iteration_log)
        assert ctx.metrics.records_processed["map"] >= (
            foaf.num_vertices * iterations
        )


class TestSection43Optimization:
    """Constant-path caching and iteration-weighted plan choice."""

    def test_constant_path_cached(self):
        graph = erdos_renyi(300, 5.0, seed=2)
        env = ExecutionEnvironment(4)
        pr.pagerank_bulk(env, graph, iterations=8)
        assert env.metrics.cache_hits >= 6

    def test_first_superstep_pays_constant_path(self):
        graph = erdos_renyi(300, 5.0, seed=2)
        env = ExecutionEnvironment(4)
        pr.pagerank_bulk(env, graph, iterations=8)
        log = env.metrics.iteration_log
        steady = [s.records_shipped_remote for s in log[1:]]
        # the first superstep ships the matrix; later ones must not
        assert log[0].records_shipped_remote > max(steady)


class TestSection6Comparison:
    """The headline result at test scale: incremental beats bulk."""

    def test_incremental_processes_less_total_work_than_bulk(self, foaf):
        env_bulk = ExecutionEnvironment(4)
        cc.cc_bulk(env_bulk, foaf)
        env_incr = ExecutionEnvironment(4)
        cc.cc_incremental(env_incr, foaf, "cogroup")
        assert (env_incr.metrics.total_processed
                < env_bulk.metrics.total_processed)

    def test_pregel_and_delta_touch_similar_state(self, foaf):
        """Section 5.1: every Pregel program maps onto a delta iteration
        with equal sparseness — compare total vertex-state updates."""
        from repro.runtime.metrics import MetricsCollector
        pregel_metrics = MetricsCollector()
        cc.cc_pregel(foaf, metrics=pregel_metrics)
        pregel_updates = pregel_metrics.records_processed["vertex_compute"]

        env = ExecutionEnvironment(4)
        cc.cc_incremental(env, foaf, "cogroup")
        delta_inspections = env.metrics.solution_accesses
        # same order of magnitude — neither engine touches the full
        # vertex set per superstep
        assert delta_inspections < 20 * pregel_updates