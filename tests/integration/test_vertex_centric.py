"""Section 5.1's claim, executed: the *same* vertex program object runs
on the Pregel-like BSP engine and — via the vertex-centric adapter — as
an incremental iteration on the dataflow engine, with identical results.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.algorithms import sssp
from repro.graphs import Graph, erdos_renyi
from repro.iterations.vertex_centric import run_vertex_centric
from repro.systems.pregel import PregelMaster

_INF = float("inf")


# ----------------------------------------------------------------------
# portable vertex programs (no ctx.superstep — ctx.is_initial only)


def min_label_program(ctx, messages):
    """Connected Components by min-label flooding."""
    if ctx.is_initial:
        ctx.send_message_to_all_neighbors(ctx.state)
        ctx.vote_to_halt()
        return
    best = min(messages) if messages else ctx.state
    if best < ctx.state:
        ctx.state = best
        ctx.send_message_to_all_neighbors(best)
    ctx.vote_to_halt()


def make_sssp_program(source):
    def program(ctx, messages):
        candidate = min(messages) if messages else _INF
        if ctx.is_initial and ctx.vertex_id == source:
            candidate = 0.0
        if candidate < ctx.state:
            ctx.state = candidate
            for target in ctx.neighbors().tolist():
                ctx.send_message(target, candidate + 1.0)
        ctx.vote_to_halt()
    return program


def run_both(graph, program, initial_state, combiner=None):
    bsp = PregelMaster(
        graph, program, initial_state=initial_state, combiner=combiner,
        parallelism=3,
    ).run()
    env = ExecutionEnvironment(3)
    dataflow = run_vertex_centric(
        env, graph, program, initial_state=initial_state, combiner=combiner
    )
    return bsp, dataflow, env


class TestSameProgramBothEngines:
    def test_connected_components(self):
        graph = erdos_renyi(120, 3.0, seed=4)
        bsp, dataflow, _env = run_both(
            graph, min_label_program, initial_state=lambda v: v,
            combiner=min,
        )
        assert bsp == dataflow == cc.cc_ground_truth(graph)

    def test_sssp(self):
        graph = erdos_renyi(100, 4.0, seed=9)
        program = make_sssp_program(0)
        bsp, dataflow, _env = run_both(
            graph, program, initial_state=lambda v: _INF, combiner=min,
        )
        assert bsp == dataflow == sssp.sssp_reference(graph, 0)

    def test_without_combiner(self):
        graph = erdos_renyi(60, 3.0, seed=2)
        bsp, dataflow, _env = run_both(
            graph, min_label_program, initial_state=lambda v: v,
        )
        assert bsp == dataflow

    def test_workset_is_the_message_stream(self):
        """The paper's mapping: W holds the messages — per superstep the
        dataflow's workset size equals the number of (combined) messages
        in flight."""
        graph = erdos_renyi(80, 3.0, seed=7)
        env = ExecutionEnvironment(3)
        run_vertex_centric(env, graph, min_label_program,
                           initial_state=lambda v: v, combiner=min)
        log = env.metrics.iteration_log
        assert log[0].workset_size > 0       # first flood
        assert log[-1].workset_size == 0     # converged: no messages
        sizes = [s.workset_size for s in log]
        assert sizes[0] >= sizes[-2]

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)),
                    max_size=35))
    def test_equivalence_on_random_graphs(self, edges):
        graph = Graph(16, edges)
        bsp, dataflow, _env = run_both(
            graph, min_label_program, initial_state=lambda v: v,
            combiner=min,
        )
        assert bsp == dataflow

    def test_isolated_vertices_keep_initial_state(self):
        graph = Graph(5, [(0, 1)])
        _bsp, dataflow, _env = run_both(
            graph, min_label_program, initial_state=lambda v: v * 10,
            combiner=min,
        )
        assert dataflow[3] == 30 and dataflow[4] == 40
