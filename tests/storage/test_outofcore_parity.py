"""Out-of-core parity: spilled execution is bitwise identical.

Every keyed driver is run twice on the same inputs — once in-memory
(``spill=None``) and once through a :class:`SpillManager` whose budget
is tiny enough to force multi-pass spilling (budget 1 byte spills
everything and drives recursive repartitioning) — and the outputs must
match **including order**.  The same property is checked for the
disk-backed solution set and, end-to-end, for whole programs on the
simulated and pool backends with ``batch_size=1``.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dataflow.contracts import Contract
from repro.dataflow.graph import LogicalNode
from repro.runtime import drivers
from repro.runtime.metrics import MetricsCollector
from repro.storage import SpillManager, StorageSession

keys = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.booleans(),
    st.text(max_size=4),
)
records = st.lists(
    st.tuples(keys, st.integers(min_value=-9, max_value=9)), max_size=40
)
#: sort-based drivers need mutually comparable keys (a pre-existing
#: contract of the in-memory paths, not a spill restriction)
sortable_records = st.lists(
    st.tuples(
        st.integers(min_value=-50, max_value=50),
        st.integers(min_value=-9, max_value=9),
    ),
    max_size=40,
)
#: 1 byte spills on every admission check (multi-pass + recursive
#: repartitioning); 400 makes spilling data-dependent
budgets = st.sampled_from([1, 400])
batch_sizes = st.sampled_from([None, 1, 7])

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _node(contract, udf=None, key_fields=None, inputs_arity=1, flat=False):
    inputs = [
        LogicalNode(Contract.SOURCE, data=[]) for _ in range(inputs_arity)
    ]
    node = LogicalNode(contract, inputs, udf=udf, key_fields=key_fields)
    node.flat = flat
    return node


def _run_spilled(fn, budget):
    """Run ``fn(spill_manager)``; returns (result, manager stats)."""
    with StorageSession() as session:
        manager = SpillManager(budget, session, metrics=MetricsCollector())
        result = fn(manager)
        return result, manager.spill_events


class TestDriverParity:
    @SETTINGS
    @given(left=records, right=records, budget=budgets,
           batch_size=batch_sizes, build_left=st.booleans())
    def test_hash_join(self, left, right, budget, batch_size, build_left):
        node = _node(
            Contract.MATCH, udf=lambda a, b: (a[1], b[1]),
            key_fields=[(0,), (0,)], inputs_arity=2,
        )
        expected = drivers.run_hash_join(
            node, [left, right], MetricsCollector(), build_left=build_left,
            batch_size=batch_size,
        )
        got, _ = _run_spilled(
            lambda m: drivers.run_hash_join(
                node, [left, right], MetricsCollector(),
                build_left=build_left, batch_size=batch_size, spill=m,
            ),
            budget,
        )
        assert got == expected

    @SETTINGS
    @given(left=sortable_records, right=sortable_records, budget=budgets,
           batch_size=batch_sizes)
    def test_sort_merge_join(self, left, right, budget, batch_size):
        node = _node(
            Contract.MATCH, udf=lambda a, b: (a[1], b[1]),
            key_fields=[(0,), (0,)], inputs_arity=2,
        )
        expected = drivers.run_sort_merge_join(
            node, [left, right], MetricsCollector(), batch_size=batch_size
        )
        got, _ = _run_spilled(
            lambda m: drivers.run_sort_merge_join(
                node, [left, right], MetricsCollector(),
                batch_size=batch_size, spill=m,
            ),
            budget,
        )
        assert got == expected

    @SETTINGS
    @given(data=records, budget=budgets, batch_size=batch_sizes)
    def test_hash_aggregate(self, data, budget, batch_size):
        node = _node(
            Contract.REDUCE, udf=lambda a, b: (a[0], a[1] + b[1]),
            key_fields=[(0,)],
        )
        expected = drivers.run_hash_aggregate(
            node, [data], MetricsCollector(), batch_size=batch_size
        )
        got, _ = _run_spilled(
            lambda m: drivers.run_hash_aggregate(
                node, [data], MetricsCollector(),
                batch_size=batch_size, spill=m,
            ),
            budget,
        )
        assert got == expected

    @SETTINGS
    @given(data=sortable_records, budget=budgets, batch_size=batch_sizes)
    def test_sort_aggregate(self, data, budget, batch_size):
        node = _node(
            Contract.REDUCE, udf=lambda a, b: (a[0], a[1] + b[1]),
            key_fields=[(0,)],
        )
        expected = drivers.run_sort_aggregate(
            node, [data], MetricsCollector(), batch_size=batch_size
        )
        got, _ = _run_spilled(
            lambda m: drivers.run_sort_aggregate(
                node, [data], MetricsCollector(),
                batch_size=batch_size, spill=m,
            ),
            budget,
        )
        assert got == expected

    @SETTINGS
    @given(data=records, budget=budgets, batch_size=batch_sizes)
    def test_reduce_group(self, data, budget, batch_size):
        node = _node(
            Contract.REDUCE_GROUP,
            udf=lambda key, group: [(key, len(group),
                                     sum(r[1] for r in group))],
            key_fields=[(0,)],
        )
        expected = drivers.run_reduce_group(
            node, [data], MetricsCollector(), batch_size=batch_size
        )
        got, _ = _run_spilled(
            lambda m: drivers.run_reduce_group(
                node, [data], MetricsCollector(),
                batch_size=batch_size, spill=m,
            ),
            budget,
        )
        assert got == expected

    @SETTINGS
    @given(left=records, right=records, budget=budgets,
           batch_size=batch_sizes, inner=st.booleans())
    def test_cogroup(self, left, right, budget, batch_size, inner):
        node = _node(
            Contract.COGROUP,
            udf=lambda key, ls, rs: [(key, len(ls), len(rs),
                                      [r[1] for r in ls],
                                      [r[1] for r in rs])],
            key_fields=[(0,), (0,)], inputs_arity=2,
        )
        expected = drivers.run_cogroup(
            node, [left, right], MetricsCollector(), inner=inner,
            batch_size=batch_size,
        )
        got, _ = _run_spilled(
            lambda m: drivers.run_cogroup(
                node, [left, right], MetricsCollector(), inner=inner,
                batch_size=batch_size, spill=m,
            ),
            budget,
        )
        assert got == expected

    def test_budget_one_actually_spills_and_recurses(self):
        """Budget 1 must take the multi-pass path: spill events fire and
        oversized level-0 buckets re-partition recursively (records get
        respilled at deeper levels, so the spilled count exceeds the
        input size)."""
        data = [(i % 64, i) for i in range(400)]
        node = _node(
            Contract.REDUCE_GROUP,
            udf=lambda key, group: [(key, len(group))],
            key_fields=[(0,)],
        )
        expected = drivers.run_reduce_group(
            node, [data], MetricsCollector()
        )
        with StorageSession() as session:
            metrics = MetricsCollector()
            manager = SpillManager(1, session, metrics=metrics)
            out = drivers.run_reduce_group(
                node, [data], MetricsCollector(), spill=manager
            )
            assert out == expected
            assert manager.spill_events > 0
            assert manager.records_spilled > 400  # respilled while recursing
            assert metrics.records_spilled == manager.records_spilled

    def test_single_key_bucket_stops_recursing(self):
        """A pathological single-key input can never split: the bucket
        is processed in memory after one spill pass, exactly as an
        in-memory engine would be forced to."""
        data = [(7, i) for i in range(200)]
        node = _node(
            Contract.REDUCE_GROUP,
            udf=lambda key, group: [(key, len(group))],
            key_fields=[(0,)],
        )
        with StorageSession() as session:
            manager = SpillManager(1, session, metrics=MetricsCollector())
            out = drivers.run_reduce_group(
                node, [data], MetricsCollector(), spill=manager
            )
            assert out == [(7, 200)]
            assert manager.records_spilled == 200  # one pass, no recursion


class TestSolutionSetParity:
    @SETTINGS
    @given(
        initial=records,
        deltas=st.lists(records, max_size=4),
        use_comparator=st.booleans(),
        batch_size=batch_sizes,
    )
    def test_disk_backed_matches_in_memory(self, initial, deltas,
                                           use_comparator, batch_size):
        from repro.iterations.solution_set import (
            DiskBackedSolutionSetIndex,
            SolutionSetIndex,
        )

        should_replace = (
            (lambda new, old: new[1] < old[1]) if use_comparator else None
        )
        reference = SolutionSetIndex.build(
            initial, key_fields=0, parallelism=3,
            should_replace=should_replace, batch_size=batch_size,
        )
        with StorageSession() as session:
            manager = SpillManager(1, session)
            disk = DiskBackedSolutionSetIndex.build(
                initial, key_fields=0, parallelism=3,
                should_replace=should_replace, batch_size=batch_size,
                manager=manager,
            )
            for delta in deltas:
                expected_applied = reference.apply_delta(
                    delta, batch_size=batch_size
                )
                got_applied = disk.apply_delta(delta, batch_size=batch_size)
                assert got_applied == expected_applied
            assert len(disk) == len(reference)
            assert disk.as_dict() == reference.as_dict()
            assert [list(p) for p in disk.to_partitions()] \
                == reference.to_partitions()
            assert disk.records() == reference.records()
            if initial or any(deltas):
                assert disk.disk_bytes_written() > 0
            disk.close()


def _parity_program(env):
    """join -> reduce_by_key -> cogroup, exercised on every backend."""
    left = env.from_iterable(
        [(i % 13, i) for i in range(180)], name="left"
    )
    right = env.from_iterable(
        [(i % 7, -i) for i in range(140)], name="right"
    )
    joined = left.join(
        right, 0, 0, lambda a, b: (a[0], a[1] + b[1]), name="j"
    )
    totals = joined.reduce_by_key(
        0, lambda a, b: (a[0], a[1] + b[1]), name="r"
    )
    return totals.cogroup(
        right, 0, 0,
        lambda key, ls, rs: [(key, sorted(ls), len(rs))],
        name="cg",
    )


class TestBackendParity:
    """Whole programs under a tiny budget vs unbounded, both backends."""

    @pytest.fixture(scope="class")
    def reference(self):
        from repro.dataflow.environment import ExecutionEnvironment

        with ExecutionEnvironment(parallelism=3) as env:
            return env.collect(_parity_program(env))

    @pytest.mark.parametrize("backend", [None, "pool"])
    @pytest.mark.parametrize("budget", [512, 64 * 1024])
    def test_program_parity(self, reference, backend, budget):
        from repro.dataflow.environment import ExecutionEnvironment
        from repro.runtime.config import RuntimeConfig

        config = RuntimeConfig(
            check_invariants=True, batch_size=1,
            memory_budget_bytes=budget,
        )
        with ExecutionEnvironment(
            parallelism=3, config=config, backend=backend
        ) as env:
            got = env.collect(_parity_program(env))
            if backend is None and budget == 512:
                assert env.metrics.records_spilled > 0
        assert got == reference

    def test_delta_iteration_parity_under_budget(self, env_factory=None):
        """Out-of-core incremental CC equals the in-memory run exactly."""
        from repro.algorithms.connected_components import cc_incremental
        from repro.dataflow.environment import ExecutionEnvironment
        from repro.graphs.generators import erdos_renyi
        from repro.runtime.config import RuntimeConfig

        graph = erdos_renyi(80, 3.0, seed=7)
        with ExecutionEnvironment(parallelism=3) as env:
            expected = cc_incremental(env, graph)
        config = RuntimeConfig(
            check_invariants=True, batch_size=1,
            memory_budget_bytes=512,
        )
        with ExecutionEnvironment(parallelism=3, config=config) as env:
            got = cc_incremental(env, graph)
        assert got == expected

    def test_env_budget_from_environment_variable(self, monkeypatch):
        from repro.dataflow.environment import ExecutionEnvironment
        from repro.runtime.config import RuntimeConfig

        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "2048")
        config = RuntimeConfig()
        assert config.memory_budget_bytes == 2048
        with ExecutionEnvironment(parallelism=2, config=config) as env:
            data = env.from_iterable([(i % 5, i) for i in range(60)])
            out = env.collect(
                data.reduce_by_key(0, lambda a, b: (a[0], a[1] + b[1]))
            )
            assert env.storage_session is not None
        assert sorted(out) == sorted(
            (k, sum(i for i in range(60) if i % 5 == k)) for k in range(5)
        )
