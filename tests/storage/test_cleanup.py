"""Spill-file cleanup guarantees: no backend, exit path, or crash mode
may leak the session's scratch directory."""

import glob
import os
import signal
import subprocess
import sys

import pytest

from repro.dataflow.environment import ExecutionEnvironment
from repro.runtime.config import RuntimeConfig

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
)


def _spilly_collect(env):
    left = env.from_iterable([(i % 11, i) for i in range(120)], name="l")
    right = env.from_iterable([(i % 5, -i) for i in range(90)], name="r")
    joined = left.join(right, 0, 0, lambda a, b: (a[0], a[1] + b[1]))
    return env.collect(
        joined.reduce_by_key(0, lambda a, b: (a[0], a[1] + b[1]))
    )


class TestSessionCleanup:
    @pytest.mark.parametrize("backend", [None, "multiprocess", "pool"])
    def test_close_removes_spill_tree(self, backend):
        config = RuntimeConfig(memory_budget_bytes=512)
        env = ExecutionEnvironment(
            parallelism=2, config=config, backend=backend
        )
        try:
            assert _spilly_collect(env)
            path = env.storage_session.path
            assert os.path.isdir(path)
        finally:
            env.close()
        assert not os.path.exists(path)

    def test_worker_views_nest_inside_the_owned_tree(self):
        """Distributed workers spill under worker-*/ inside the parent
        session directory, so the parent sweep covers their files."""
        config = RuntimeConfig(memory_budget_bytes=512)
        env = ExecutionEnvironment(
            parallelism=2, config=config, backend="pool"
        )
        try:
            assert _spilly_collect(env)
            path = env.storage_session.path
            worker_dirs = glob.glob(os.path.join(path, "worker-*"))
            assert len(worker_dirs) == 2
        finally:
            env.close()
        assert not os.path.exists(path)

    def test_atexit_sweep_covers_unclosed_sessions(self):
        """A process that exits without calling close() still removes
        every session it owns (the atexit sweep)."""
        code = (
            "from repro.storage import StorageSession\n"
            "s = StorageSession()\n"
            "open(s.new_file('orphan'), 'wb').close()\n"
            "print(s.path)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=60,
            env={**os.environ, "PYTHONPATH": REPO_SRC},
        )
        assert proc.returncode == 0, proc.stderr
        path = proc.stdout.strip()
        assert path
        assert not os.path.exists(path)

    def test_killed_pool_worker_cannot_leak_files(self):
        """SIGKILL a pool worker after it has spilled: the worker never
        runs any cleanup of its own, but its files live inside the
        parent-owned tree, so the parent's close sweeps them."""
        config = RuntimeConfig(memory_budget_bytes=512)
        env = ExecutionEnvironment(
            parallelism=2, config=config, backend="pool"
        )
        try:
            assert _spilly_collect(env)
            path = env.storage_session.path
            worker_dirs = glob.glob(os.path.join(path, "worker-*"))
            assert worker_dirs
            # strand a file a worker "left behind mid-spill"
            stranded = os.path.join(worker_dirs[0], "stranded-spill.bin")
            open(stranded, "wb").close()

            pool = env.backend.pool
            victim = pool.workers[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=30)
            assert not victim.is_alive()
        finally:
            env.close()
        assert not os.path.exists(stranded)
        assert not os.path.exists(path)

    def test_close_is_idempotent_and_context_managed(self):
        config = RuntimeConfig(memory_budget_bytes=512)
        with ExecutionEnvironment(parallelism=2, config=config) as env:
            assert _spilly_collect(env)
            path = env.storage_session.path
        assert not os.path.exists(path)
        env.close()  # second close must be a no-op

    def test_fresh_session_after_close(self):
        """An environment reused after close() gets a new session."""
        config = RuntimeConfig(memory_budget_bytes=512)
        env = ExecutionEnvironment(parallelism=2, config=config)
        try:
            assert _spilly_collect(env)
            first = env.storage_session.path
            env.close()
            assert _spilly_collect(env)
            second = env.storage_session.path
            assert second != first
            assert os.path.isdir(second)
        finally:
            env.close()
        assert not os.path.exists(second)
