"""Columnar spill frames: fixed-width entries hit disk without pickle.

``SpillFile.append`` writes an all-fixed-width entry list as a raw
column frame (schema header plus column buffers) and everything else as
the classic pickled entry list; readers must see identical rows either
way.  ``estimate_record_bytes`` prices a column-born batch by exact
buffer arithmetic instead of the sampled ``getsizeof`` walk.
"""

from repro.common import columns as columns_mod
from repro.common.batch import RecordBatch
from repro.storage.format import (
    SPILL_MAGIC,
    SPILL_VERSION,
    read_frame,
    read_header,
)
from repro.storage.spill import SpillFile, estimate_record_bytes


class TestColumnarFrames:
    def test_fixed_width_entries_write_a_column_frame(self, tmp_path):
        path = str(tmp_path / "spill.bin")
        entries = [(i, float(i)) for i in range(100)]
        spill = SpillFile(path)
        spill.append(entries)
        spill.finish()
        with open(path, "rb") as fh:
            read_header(fh, SPILL_MAGIC, SPILL_VERSION, path)
            frame = read_frame(fh, path)
        # the on-disk payload is the columnar envelope, not a row list
        assert isinstance(frame, tuple) and frame[0] == "cols"
        # and the reader transparently materializes the original rows
        assert list(spill) == [entries]

    def test_column_frames_read_back_as_rows(self, tmp_path):
        spill = SpillFile(str(tmp_path / "spill.bin"))
        entries = [(i, i * 2) for i in range(50)]
        spill.append(entries)
        assert spill.read_entries() == entries
        # type fidelity survives the round trip
        assert all(
            type(a) is int and type(b) is int
            for a, b in spill.read_entries()
        )

    def test_object_entries_fall_back_to_pickled_frames(self, tmp_path):
        path = str(tmp_path / "spill.bin")
        entries = [(i, "v%d" % i, (i, i)) for i in range(30)]
        spill = SpillFile(path)
        spill.append(entries)
        spill.finish()
        with open(path, "rb") as fh:
            read_header(fh, SPILL_MAGIC, SPILL_VERSION, path)
            frame = read_frame(fh, path)
        assert frame == entries
        assert spill.read_entries() == entries

    def test_nested_hashtable_entries_fall_back(self, tmp_path):
        # the spilling join writes (seq, key, record) triples whose
        # record field is itself a tuple: an object column, so the
        # frame pickles — and still round-trips
        spill = SpillFile(str(tmp_path / "spill.bin"))
        entries = [(i, i % 5, (i, float(i))) for i in range(40)]
        spill.append(entries)
        assert spill.read_entries() == entries

    def test_mixed_frames_interleave_correctly(self, tmp_path):
        spill = SpillFile(str(tmp_path / "spill.bin"))
        columnar_entries = [(i, i) for i in range(20)]
        pickled_entries = [(i, "s") for i in range(10)]
        spill.append(columnar_entries)
        spill.append(pickled_entries)
        spill.append(columnar_entries)
        assert list(spill) == [
            columnar_entries, pickled_entries, columnar_entries
        ]


class TestEstimates:
    def test_column_born_batches_price_exactly(self):
        recs = [(i, float(i)) for i in range(64)]
        _arity, cols = columns_mod.columnarize(recs)
        batch = RecordBatch.from_columns(len(recs), cols, (0,))
        assert estimate_record_bytes(batch) == 16

    def test_row_batches_fall_back_to_sampling(self):
        batch = RecordBatch.wrap([(1, "x")] * 10, (0,))
        assert estimate_record_bytes(batch) > 0
