"""Manifest-only part pruning against key-range predicates.

``PartStore.prune_parts`` must never open a part file: it prunes only
on stats-row *proof* (recorded key range entirely outside the
predicate, or an empty part) and keeps everything else conservatively.
``ExecutionEnvironment.from_store(key_range=...)`` is the integration
surface — the optimizer-v2 stats loop that sources only the surviving
parts.
"""

import pytest

from repro import ExecutionEnvironment
from repro.storage.session import StorageSession
from repro.storage.partstore import PartStore


@pytest.fixture
def session():
    with StorageSession() as sess:
        yield sess


@pytest.fixture
def store(session):
    return PartStore(session.subdir("parts"))


def _keyed_part(store, lo, hi):
    records = [(k, f"v{k}") for k in range(lo, hi + 1)]
    return store.put_part(records, keys=[k for k, _ in records])


class TestPrunePartsEdgeCases:
    def test_disjoint_ranges_are_pruned(self, store):
        below = _keyed_part(store, 0, 9)
        inside = _keyed_part(store, 10, 19)
        above = _keyed_part(store, 20, 29)
        kept = store.prune_parts([below, inside, above], (12, 15))
        assert kept == [inside]

    def test_overlap_is_kept_even_when_partial(self, store):
        part = _keyed_part(store, 0, 10)
        # predicate clips the range on either end: still a candidate
        assert store.prune_parts([part], (10, 50)) == [part]
        assert store.prune_parts([part], (-5, 0)) == [part]
        # boundary equality is inclusive on both sides
        assert store.prune_parts([part], (10, 10)) == [part]
        assert store.prune_parts([part], (11, 50)) == []

    def test_empty_parts_always_pruned(self, store):
        empty = store.put_part([], keys=[])
        assert store.prune_parts([empty], (0, 100)) == []
        assert store.prune_parts([empty], (None, None)) == []

    def test_unkeyed_parts_are_conservatively_kept(self, store):
        unkeyed = store.put_part([(5, "x")])  # no keys= → no stats row
        assert store.prune_parts([unkeyed], (1000, 2000)) == [unkeyed]

    def test_incomparable_keys_are_conservatively_kept(self, store):
        # min()/max() over mixed types raises; the stats row records no
        # range and pruning must keep the part
        part = store.put_part([(1, "a"), ("z", "b")], keys=[1, "z"])
        assert store.part_stats(part)["key_range"] is None
        assert store.prune_parts([part], (1000, 2000)) == [part]

    def test_none_bounds_are_half_open(self, store):
        low = _keyed_part(store, 0, 9)
        high = _keyed_part(store, 100, 109)
        assert store.prune_parts([low, high], (None, 50)) == [low]
        assert store.prune_parts([low, high], (50, None)) == [high]
        # (None, None) proves nothing about keyed parts
        assert store.prune_parts([low, high], (None, None)) == [low, high]


class TestFromStoreIntegration:
    def test_key_range_prunes_parts_not_records(self):
        env = ExecutionEnvironment(parallelism=2)
        try:
            # round-robin over 2 partitions: evens land in one part,
            # odds in the other, both spanning keys 0..99
            env.register_dataset(
                "people", [(i, f"p{i}") for i in range(100)], key_fields=0
            )
            full = env.from_store("people").collect()
            assert len(full) == 100
            pruned = env.from_store("people", key_range=(10, 20))
            records = pruned.collect()
            # both parts overlap [10, 20], so nothing is pruned and no
            # record-level filtering happens (that's the consumer's job)
            assert sorted(records) == sorted(full)
        finally:
            env.close()

    def test_key_range_skips_irrelevant_parts(self):
        env = ExecutionEnvironment(parallelism=1)
        try:
            store = env.part_store
            # register each decade as its own dataset partition
            ids = store.register(
                "decades",
                [[(k, k) for k in range(lo, lo + 10)]
                 for lo in (0, 10, 20, 30)],
                keys_per_partition=[
                    list(range(lo, lo + 10)) for lo in (0, 10, 20, 30)
                ],
            )
            assert len(ids) == 4
            records = env.from_store("decades", key_range=(10, 19)).collect()
            assert sorted(records) == [(k, k) for k in range(10, 20)]
            # estimated cardinality reflects the post-pruning size
            ds = env.from_store("decades", key_range=(10, 19))
            assert len(ds.collect()) == 10
        finally:
            env.close()

    def test_unknown_dataset_raises(self):
        env = ExecutionEnvironment(parallelism=1)
        try:
            with pytest.raises(KeyError):
                env.from_store("nonexistent")
        finally:
            env.close()
