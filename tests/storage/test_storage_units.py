"""Unit tests for the out-of-core substrate: formats, sessions, spills,
the disk dict, and the part store."""

import os
import pickle

import pytest

from repro.common.hashing import stable_hash
from repro.runtime.metrics import MetricsCollector
from repro.storage import (
    DiskDict,
    DiskPartitionView,
    PartStore,
    SpillManager,
    StorageFormatError,
    StorageSession,
    content_hash,
)
from repro.storage.format import (
    LOG_MAGIC,
    LOG_VERSION,
    SPILL_MAGIC,
    read_header,
    write_header,
)


@pytest.fixture
def session():
    with StorageSession() as sess:
        yield sess


def manager(session, budget=1_000_000, metrics=None):
    return SpillManager(budget, session, metrics=metrics)


class TestFormatStamps:
    def test_spill_file_roundtrip(self, session):
        spill = manager(session).new_spill_file("unit")
        spill.append([(1, "a"), (2, "b")])
        spill.append([(3, "c")])
        assert spill.read_entries() == [(1, "a"), (2, "b"), (3, "c")]
        assert spill.frames == 2
        assert spill.records == 3

    def test_wrong_magic_fails_loudly(self, session):
        path = session.new_file("bad")
        with open(path, "wb") as fh:
            fh.write(b"JUNK\x01rest of the file")
        spill = manager(session).new_spill_file("ok")
        spill.path = path
        with pytest.raises(StorageFormatError, match="bad magic"):
            spill.read_entries()

    def test_version_mismatch_fails_loudly(self, session):
        path = session.new_file("future")
        with open(path, "wb") as fh:
            write_header(fh, SPILL_MAGIC, 99)
        spill = manager(session).new_spill_file("ok")
        spill.path = path
        with pytest.raises(StorageFormatError, match="version 99"):
            spill.read_entries()

    def test_truncated_frame_is_detected(self, session):
        spill = manager(session).new_spill_file("torn")
        spill.append([(1, "payload")])
        spill.finish()
        size = os.path.getsize(spill.path)
        with open(spill.path, "r+b") as fh:
            fh.truncate(size - 3)
        with pytest.raises(StorageFormatError, match="truncated"):
            spill.read_entries()

    def test_log_header_helpers_roundtrip(self, session):
        path = session.new_file("log")
        with open(path, "wb") as fh:
            write_header(fh, LOG_MAGIC, LOG_VERSION)
        with open(path, "rb") as fh:
            read_header(fh, LOG_MAGIC, LOG_VERSION, path)  # must not raise


class TestSpillManagerAccounting:
    def test_reserve_release_and_peak(self, session):
        m = manager(session, budget=100)
        m.reserve(80)
        assert not m.over_budget()
        m.reserve(40)
        assert m.over_budget()
        assert m.peak_tracked_bytes == 120
        m.release(60)
        assert m.tracked_bytes == 60
        m.release(1000)  # estimates are defensive-clamped, never negative
        assert m.tracked_bytes == 0
        assert m.peak_tracked_bytes == 120

    def test_note_spill_feeds_metrics(self, session):
        metrics = MetricsCollector()
        m = manager(session, metrics=metrics)
        m.note_spill("op", records=5, nbytes=123)
        assert (m.records_spilled, m.bytes_spilled) == (5, 123)
        assert (metrics.records_spilled, metrics.bytes_spilled) == (5, 123)

    def test_budget_must_be_positive(self, session):
        with pytest.raises(ValueError):
            SpillManager(0, session)


class TestStorageSession:
    def test_close_removes_tree_and_is_idempotent(self):
        sess = StorageSession()
        path = sess.new_file("x")
        open(path, "wb").close()
        assert os.path.exists(sess.path)
        sess.close()
        assert not os.path.exists(sess.path)
        sess.close()

    def test_worker_view_nests_inside_parent(self):
        with StorageSession() as sess:
            view = sess.worker_view(3)
            inner = view.new_file("spill")
            open(inner, "wb").close()
            assert inner.startswith(sess.path + os.sep)
            # a non-owner close never touches the parent tree
            view.close()
            assert os.path.exists(inner)
        assert not os.path.exists(sess.path)

    def test_pickles_as_non_owning_path_view(self):
        with StorageSession() as sess:
            clone = pickle.loads(pickle.dumps(sess))
            assert clone.path == sess.path
            assert not clone.owner
            clone.close()
            assert os.path.exists(sess.path)


class TestDiskDict:
    def test_dict_semantics_and_insertion_order(self, session):
        dd = DiskDict(session.new_file("dd", suffix=".log"))
        dd["a"] = (1,)
        dd["b"] = (2,)
        dd["a"] = (3,)  # replacement must not change iteration order
        assert list(dd.keys()) == ["a", "b"]
        assert list(dd.items()) == [("a", (3,)), ("b", (2,))]
        assert dd["a"] == (3,)
        assert dd.get("missing") is None
        assert "b" in dd and len(dd) == 2
        with pytest.raises(KeyError):
            dd["missing"]

    def test_matches_plain_dict_under_random_ops(self, session):
        import random
        rng = random.Random(5)
        dd = DiskDict(session.new_file("dd", suffix=".log"))
        model = {}
        for _ in range(300):
            k = rng.randrange(40)
            v = (k, rng.random())
            dd[k] = v
            model[k] = v
        assert list(dd.items()) == list(model.items())
        assert list(dd.values()) == list(model.values())

    def test_partition_view_is_lazy_sequence(self, session):
        dd = DiskDict(session.new_file("dd", suffix=".log"))
        for i in range(5):
            dd[i] = (i, i * i)
        view = DiskPartitionView(dd)
        assert view.is_lazy_partition
        assert len(view) == 5
        assert list(view) == [(i, i * i) for i in range(5)]
        assert view[2] == (2, 4)
        assert view[1:3] == [(1, 1), (2, 4)]
        # views cross process boundaries as plain lists
        assert pickle.loads(pickle.dumps(view)) == list(view)

    def test_pickle_restores_contents_and_order(self, session):
        dd = DiskDict(session.new_file("dd", suffix=".log"))
        dd["k1"] = (1, "one")
        dd["k2"] = (2, "two")
        restored = pickle.loads(pickle.dumps(dd))
        assert list(restored.items()) == list(dd.items())


class TestContentHashPins:
    """Regression pins: part ids are content-addressed across builds, so
    these folds must never change silently."""

    def test_stable_hash_pinned_values(self):
        assert stable_hash(0) == 0
        assert stable_hash((1, 2)) == stable_hash((1, 2))
        assert stable_hash((1, "a")) == 1705942584
        assert stable_hash("abc") == 891568578

    def test_content_hash_pinned_values(self):
        assert content_hash([]) == 0x345678
        assert content_hash([(1, "a")]) == 3431556861331
        assert content_hash([(1, "a"), (2, "b")]) == 3431564024382179397

    def test_content_hash_is_order_sensitive(self):
        a = [(1, "a"), (2, "b")]
        assert content_hash(a) != content_hash(list(reversed(a)))


class TestPartStore:
    def test_put_and_load_roundtrip_with_stats(self, session):
        store = PartStore(session.subdir("parts"))
        records = [(3, "c"), (1, "a"), (2, "b")]
        part_id = store.put_part(records, keys=[3, 1, 2])
        stats = store.part_stats(part_id)
        assert stats["cardinality"] == 3
        assert stats["key_range"] == [1, 3]
        assert stats["bytes"] > 0
        assert store.load_part(part_id) == records

    def test_identical_content_is_deduplicated(self, session):
        store = PartStore(session.subdir("parts"))
        a = store.put_part([(1,), (2,)])
        b = store.put_part([(1,), (2,)])
        assert a == b
        assert store.parts_written == 1
        assert store.parts_reused == 1

    def test_corrupted_part_fails_loudly(self, session):
        store = PartStore(session.subdir("parts"))
        part_id = store.put_part([(1, "payload")])
        path = os.path.join(store.root, f"{part_id}.bin")
        with open(path, "wb") as fh:
            write_header(fh, b"RPRT", 1)
            pickle.dump([(2, "tampered")], fh)
        with pytest.raises(StorageFormatError, match="torn write"):
            store.load_part(part_id)

    def test_manifest_version_mismatch_fails_on_reopen(self, session):
        root = session.subdir("parts")
        store = PartStore(root)
        store.put_part([(1,)])
        manifest = os.path.join(root, "manifest.json")
        import json
        with open(manifest, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        data["format_version"] = 99
        with open(manifest, "w", encoding="utf-8") as fh:
            json.dump(data, fh)
        with pytest.raises(StorageFormatError, match="format_version"):
            PartStore(root)

    def test_datasets_register_and_reload(self, session):
        store = PartStore(session.subdir("parts"))
        parts = [[(1, "a")], [(2, "b")], []]
        ids = store.register("mine", parts)
        assert store.dataset_part_ids("mine") == ids
        assert store.load_dataset("mine") == parts
        assert [row["cardinality"] for row in store.dataset_stats("mine")] \
            == [1, 1, 0]
        with pytest.raises(KeyError, match="mine"):
            store.dataset_part_ids("absent")


class TestEnvironmentPartStoreAPI:
    def test_register_and_from_store_roundtrip(self):
        from repro import ExecutionEnvironment

        with ExecutionEnvironment(parallelism=2) as env:
            data = [(i, i * 10) for i in range(9)]
            source = env.from_iterable(data, name="orig")
            doubled = source.map(lambda r: (r[0], r[1] * 2))
            doubled.store("doubled")
            reloaded = env.from_store("doubled")
            assert sorted(reloaded.collect()) == sorted(
                (i, i * 20) for i in range(9)
            )

    def test_incremental_checkpoints_reuse_unchanged_parts(self):
        """Consecutive checkpoints of a mostly-converged iteration must
        reuse the untouched partitions' parts."""
        from repro import ExecutionEnvironment
        from repro.graphs import Graph
        from repro.algorithms.connected_components import cc_incremental
        from repro.runtime.config import RuntimeConfig

        graph = Graph(12, [(i, i + 1) for i in range(11)], name="path12")
        config = RuntimeConfig(
            check_invariants=True, memory_budget_bytes=1 << 30
        )
        with ExecutionEnvironment(parallelism=4, config=config) as env:
            env.checkpoint_interval = 1
            cc_incremental(env, graph, max_iterations=100)
            store = env.last_checkpoint_store
            assert store is not None
            assert store.part_store is not None
            assert store.snapshots_taken > 2
            assert store.part_store.parts_reused > 0
