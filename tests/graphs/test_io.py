"""Edge-list round-tripping."""

import numpy as np
import pytest

from repro.graphs import Graph, erdos_renyi
from repro.graphs.io import read_edge_list, write_edge_list


class TestRoundTrip:
    def test_roundtrip_preserves_adjacency(self, tmp_path):
        original = erdos_renyi(100, 4.0, seed=1)
        path = tmp_path / "graph.txt"
        write_edge_list(original, str(path))
        loaded = read_edge_list(str(path))
        assert loaded.num_vertices == original.num_vertices
        assert np.array_equal(loaded.indptr, original.indptr)
        assert np.array_equal(loaded.indices, original.indices)

    def test_header_carries_vertex_count(self, tmp_path):
        graph = Graph(10, [(0, 1)])  # vertices 2..9 are isolated
        path = tmp_path / "g.txt"
        write_edge_list(graph, str(path))
        loaded = read_edge_list(str(path))
        assert loaded.num_vertices == 10

    def test_name_from_filename(self, tmp_path):
        graph = Graph(3, [(0, 1)])
        path = tmp_path / "my_graph.txt"
        write_edge_list(graph, str(path))
        assert read_edge_list(str(path)).name == "my_graph"

    def test_explicit_vertex_count_wins(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        loaded = read_edge_list(str(path), num_vertices=7)
        assert loaded.num_vertices == 7

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# a comment\n\n0 1\n# another\n1 2\n")
        loaded = read_edge_list(str(path))
        assert loaded.num_vertices == 3
        assert loaded.num_edges == 4  # symmetrized

    def test_directed_load(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        loaded = read_edge_list(str(path), symmetrize=False)
        assert loaded.neighbors(1).size == 0

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        loaded = read_edge_list(str(path))
        assert loaded.num_vertices == 0
