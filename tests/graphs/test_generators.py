"""Generators hit their structural targets and are seed-deterministic."""

import numpy as np
import pytest

from repro.graphs import (
    chained_communities,
    erdos_renyi,
    foaf_like,
    overlapping_cliques,
    preferential_attachment,
    rmat,
)
from repro.graphs.stats import estimate_diameter, union_find_components


ALL_GENERATORS = [
    lambda seed: erdos_renyi(500, 4.0, seed=seed),
    lambda seed: preferential_attachment(300, 3, seed=seed),
    lambda seed: rmat(9, 8.0, seed=seed),
    lambda seed: chained_communities(10, 30, seed=seed),
    lambda seed: overlapping_cliques(200, 20, seed=seed),
    lambda seed: foaf_like(400, seed=seed),
]


class TestDeterminism:
    @pytest.mark.parametrize("make", ALL_GENERATORS)
    def test_same_seed_same_graph(self, make):
        a, b = make(7), make(7)
        assert a.num_edges == b.num_edges
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.indptr, b.indptr)

    def test_different_seed_different_graph(self):
        a = erdos_renyi(500, 4.0, seed=1)
        b = erdos_renyi(500, 4.0, seed=2)
        assert not np.array_equal(a.indices, b.indices)


class TestStructuralTargets:
    def test_erdos_renyi_degree(self):
        g = erdos_renyi(2000, 8.0, seed=0)
        assert 6.0 < g.avg_degree <= 8.0  # dedup loses a little

    def test_preferential_attachment_power_law_head(self):
        g = preferential_attachment(1000, 2, seed=0)
        degrees = np.sort(g.degrees())[::-1]
        # hubs far above the median degree
        assert degrees[0] > 5 * np.median(degrees)

    def test_rmat_vertex_count_is_power_of_two(self):
        g = rmat(8, 4.0, seed=0)
        assert g.num_vertices == 256

    def test_rmat_skewed_degrees(self):
        g = rmat(11, 16.0, seed=0)
        degrees = g.degrees()
        assert degrees.max() > 4 * degrees.mean()

    def test_chained_communities_high_diameter(self):
        g = chained_communities(40, 25, seed=0)
        assert estimate_diameter(g, probes=2) > 40
        labels = union_find_components(g)
        assert len(np.unique(labels)) == 1  # one connected component

    def test_overlapping_cliques_dense(self):
        g = overlapping_cliques(300, 30, cliques_per_vertex=3.0, seed=0)
        assert g.avg_degree > 40

    def test_foaf_has_straggler_tail(self):
        g = foaf_like(1000, seed=0)
        # the tail chain gives the graph a diameter far beyond an
        # equivalent pure power-law graph
        assert estimate_diameter(g, probes=2) >= 5

    def test_preferential_attachment_validates_args(self):
        with pytest.raises(ValueError):
            preferential_attachment(10, 0)
