"""The named dataset registry standing in for Table 2."""

import pytest

from repro.graphs import dataset_names, load_dataset
from repro.graphs.datasets import PAPER_PROPERTIES


class TestRegistry:
    def test_all_names_load(self):
        for name in dataset_names():
            graph = load_dataset(name)
            assert graph.num_vertices > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("nonexistent")

    def test_memoized(self):
        assert load_dataset("wikipedia") is load_dataset("wikipedia")

    def test_scale_doubles(self):
        base = load_dataset("foaf", scale=0)
        scaled = load_dataset("foaf", scale=1)
        assert scaled.num_vertices == 2 * base.num_vertices

    def test_sample9_matches_figure1(self):
        g = load_dataset("sample9")
        assert g.num_vertices == 9
        # two components: {0..3} and {4..8}
        from repro.graphs.stats import union_find_components
        labels = union_find_components(g).tolist()
        assert labels == [0, 0, 0, 0, 4, 4, 4, 4, 4]


class TestTable2Roles:
    def test_degree_ordering_matches_paper(self):
        """Hollywood ≫ Twitter > Webbase ≈ Wikipedia in average degree."""
        deg = {
            name: load_dataset(name).avg_degree
            for name in ("wikipedia", "webbase", "hollywood", "twitter")
        }
        assert deg["hollywood"] > deg["twitter"] > deg["wikipedia"]
        assert deg["hollywood"] > 3 * deg["twitter"]

    def test_webbase_has_huge_diameter(self):
        from repro.graphs.stats import estimate_diameter
        webbase = load_dataset("webbase")
        wikipedia = load_dataset("wikipedia")
        assert estimate_diameter(webbase, probes=1) > (
            20 * max(1, estimate_diameter(wikipedia, probes=1))
        )

    def test_paper_properties_recorded(self):
        assert PAPER_PROPERTIES["twitter"][1] == 41_652_230
        assert len(PAPER_PROPERTIES) == 4
