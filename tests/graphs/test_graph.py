"""Graph data structure: CSR construction and views."""

import numpy as np
import pytest

from repro.graphs import Graph


class TestConstruction:
    def test_symmetrization(self):
        g = Graph(3, [(0, 1)])
        assert sorted(g.neighbors(0).tolist()) == [1]
        assert sorted(g.neighbors(1).tolist()) == [0]
        assert g.num_edges == 2

    def test_directed_storage(self):
        g = Graph(3, [(0, 1)], symmetrize=False)
        assert g.neighbors(0).tolist() == [1]
        assert g.neighbors(1).tolist() == []

    def test_self_loops_dropped(self):
        g = Graph(2, [(0, 0), (0, 1)])
        assert g.num_edges == 2  # only the symmetrized 0-1 edge

    def test_duplicates_collapsed(self):
        g = Graph(2, [(0, 1), (0, 1), (1, 0)])
        assert g.num_edges == 2

    def test_empty_graph(self):
        g = Graph(4, [])
        assert g.num_edges == 0
        assert g.avg_degree == 0.0
        assert g.neighbors(2).tolist() == []

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 5)])

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            Graph(2, np.array([[0, 1, 2]]))


class TestViews:
    def test_degrees(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degrees().tolist() == [3, 1, 1, 1]
        assert g.degree(0) == 3
        assert g.max_degree_check() if hasattr(g, "max_degree_check") else True

    def test_avg_degree_matches_table2_convention(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert g.avg_degree == 4 / 4  # stored entries / vertices

    def test_edge_tuples_complete_and_symmetric(self):
        g = Graph(3, [(0, 1), (1, 2)])
        tuples = set(g.edge_tuples())
        assert tuples == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_vertex_tuples(self):
        g = Graph(3, [])
        assert g.vertex_tuples() == [(0,), (1,), (2,)]

    def test_repr(self):
        g = Graph(3, [(0, 1)], name="tiny")
        assert "tiny" in repr(g)
