"""Graph statistics against networkx ground truth."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, erdos_renyi
from repro.graphs.stats import (
    bfs_eccentricity,
    compute_stats,
    estimate_diameter,
    union_find_components,
)


def to_networkx(graph):
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from(graph.edge_tuples())
    return g


edge_lists = st.lists(
    st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=60
)


class TestComponents:
    @settings(max_examples=40, deadline=None)
    @given(edge_lists)
    def test_matches_networkx(self, edges):
        graph = Graph(30, edges)
        labels = union_find_components(graph)
        nx_components = list(nx.connected_components(to_networkx(graph)))
        # same partition of the vertex set
        ours = {}
        for v in range(30):
            ours.setdefault(int(labels[v]), set()).add(v)
        assert sorted(map(sorted, ours.values())) == sorted(
            map(sorted, nx_components)
        )

    def test_labels_are_component_minima(self):
        graph = Graph(5, [(3, 4), (1, 2)])
        labels = union_find_components(graph)
        assert labels.tolist() == [0, 1, 1, 3, 3]


class TestDiameter:
    def test_path_graph_exact(self):
        graph = Graph(10, [(i, i + 1) for i in range(9)])
        assert estimate_diameter(graph, probes=2) == 9

    def test_eccentricity(self):
        graph = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert bfs_eccentricity(graph, 0) == 4
        assert bfs_eccentricity(graph, 2) == 2

    def test_lower_bound_property(self):
        graph = erdos_renyi(200, 4.0, seed=1)
        estimate = estimate_diameter(graph, probes=2)
        nx_graph = to_networkx(graph)
        largest = max(nx.connected_components(nx_graph), key=len)
        true_diameter = nx.diameter(nx_graph.subgraph(largest))
        assert estimate <= true_diameter


class TestComputeStats:
    def test_full_report(self):
        graph = Graph(6, [(0, 1), (1, 2), (3, 4)], name="demo")
        stats = compute_stats(graph)
        assert stats.name == "demo"
        assert stats.num_vertices == 6
        assert stats.num_edges == 6
        assert stats.num_components == 3  # {0,1,2}, {3,4}, {5}
        assert stats.largest_component == 3
        assert stats.max_degree == 2
        assert stats.avg_degree == 1.0
