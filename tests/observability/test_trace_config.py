"""REPRO_TRACE switch semantics and the env-driven JSONL event log."""

import json

import pytest

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.graphs import erdos_renyi
from repro.runtime.config import RuntimeConfig


class TestReproTraceEnv:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        config = RuntimeConfig()
        assert config.trace is False
        assert config.trace_path is None

    @pytest.mark.parametrize("value", ["1", "true", "on"])
    def test_truthy_enables_without_path(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE", value)
        config = RuntimeConfig()
        assert config.trace is True
        assert config.trace_path is None

    @pytest.mark.parametrize("value", ["0", "false", "off", ""])
    def test_falsy_disables(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE", value)
        assert RuntimeConfig().trace is False

    def test_path_value_enables_and_names_the_log(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "/tmp/run.jsonl")
        config = RuntimeConfig()
        assert config.trace is True
        assert config.trace_path == "/tmp/run.jsonl"


class TestEnvironmentWiring:
    def test_untraced_environment_has_no_tracer(self):
        env = ExecutionEnvironment(2, config=RuntimeConfig(trace=False))
        assert env.tracer is None
        assert env.trace_timelines == []

    def test_trace_path_writes_jsonl_on_execution(self, tmp_path):
        log = tmp_path / "cc.jsonl"
        env = ExecutionEnvironment(
            2, config=RuntimeConfig(trace=True, trace_path=str(log)),
        )
        cc.cc_incremental(env, erdos_renyi(40, 2.0, seed=5),
                          variant="cogroup", mode="superstep")
        records = [json.loads(line)
                   for line in log.read_text().splitlines()]
        assert records[0]["type"] == "meta"
        assert any(r["type"] == "span" and r["category"] == "superstep"
                   for r in records)
