"""Tracer mechanics: nesting, counter deltas, structure, merge."""

import pytest

from repro.common.errors import InvariantViolation
from repro.observability import (
    LOGICAL_SPAN_COUNTERS,
    Tracer,
    attach_tracer,
    canonical_name,
)
from repro.runtime.metrics import MetricsCollector


class TestNesting:
    def test_spans_nest(self):
        tracer = Tracer()
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        tracer.end(inner)
        tracer.end(outer)
        assert [s.name for s in tracer.roots] == ["outer"]
        assert [s.name for s in outer.children] == ["inner"]
        assert tracer.open_depth == 0

    def test_end_without_open_span_raises(self):
        tracer = Tracer()
        with pytest.raises(InvariantViolation):
            tracer.end()

    def test_end_out_of_order_raises(self):
        tracer = Tracer()
        outer = tracer.begin("outer")
        tracer.begin("inner")
        with pytest.raises(InvariantViolation):
            tracer.end(outer)

    def test_context_manager_closes_on_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("phase"):
                raise RuntimeError("boom")
        assert tracer.open_depth == 0
        assert tracer.roots[0].end_s is not None

    def test_instant_attaches_to_innermost(self):
        tracer = Tracer()
        with tracer.span("outer"):
            marker = tracer.instant("marker", note=1)
        assert tracer.roots[0].children == [marker]
        assert marker.is_instant
        root_marker = tracer.instant("loose")
        assert root_marker in tracer.roots


class TestCounters:
    def test_span_counters_are_deltas(self):
        metrics = MetricsCollector()
        tracer = attach_tracer(metrics)
        metrics.add_processed("warmup", 100)
        with tracer.span("work") as span:
            metrics.add_processed("join", 7)
            metrics.add_shipped(local=2, remote=3)
        assert span.counters["records_processed"] == 7
        assert span.counters["records_shipped_local"] == 2
        assert span.counters["records_shipped_remote"] == 3
        # zero deltas are omitted, not recorded as 0
        assert "solution_updates" not in span.counters

    def test_explicit_counters_merge_in(self):
        tracer = Tracer()
        span = tracer.begin("superstep:1")
        tracer.end(span, counters={"workset_size": 42, "delta_size": 5})
        assert span.counters == {"workset_size": 42, "delta_size": 5}

    def test_canonical_name_strips_node_ids(self):
        assert canonical_name("operator:join#17") == "operator:join"
        assert canonical_name("plain") == "plain"


class TestStructure:
    def test_structure_ignores_timestamps(self):
        def build():
            tracer = Tracer()
            with tracer.span("outer"):
                with tracer.span("inner", category="operator"):
                    pass
            return tracer
        assert build().structure() == build().structure()

    def test_structure_pins_requested_counters(self):
        tracer = Tracer()
        span = tracer.begin("superstep:1", category="superstep")
        tracer.end(span, counters={"workset_size": 9})
        (encoded,) = tracer.structure(LOGICAL_SPAN_COUNTERS)
        counters = dict(encoded[2])
        assert counters["workset_size"] == 9
        assert counters["delta_size"] == 0


class TestSnapshotReset:
    def test_snapshot_is_independent(self):
        tracer = Tracer()
        with tracer.span("phase"):
            pass
        copy = tracer.snapshot()
        tracer.reset()
        assert tracer.roots == []
        assert [s.name for s in copy.roots] == ["phase"]

    def test_snapshot_and_reset_refuse_open_spans(self):
        tracer = Tracer()
        tracer.begin("open")
        with pytest.raises(InvariantViolation):
            tracer.snapshot()
        with pytest.raises(InvariantViolation):
            tracer.reset()


class TestMerge:
    def _worker(self, rank, processed):
        tracer = Tracer(rank=rank)
        with tracer.span("superstep:1", category="superstep") as span:
            pass
        span.counters["records_processed"] = processed
        return tracer

    def test_aligned_merge_sums_counters(self):
        merged = self._worker(0, 10).merge(self._worker(1, 32), align=True)
        assert merged.roots[0].counters["records_processed"] == 42

    def test_aligned_merge_requires_same_shape(self):
        lhs = self._worker(0, 1)
        rhs = Tracer(rank=1)
        with rhs.span("different"):
            pass
        with pytest.raises(InvariantViolation):
            lhs.merge(rhs, align=True)

    def test_aligned_merge_requires_same_root_count(self):
        lhs = self._worker(0, 1)
        rhs = self._worker(1, 1)
        with rhs.span("superstep:1", category="superstep"):
            pass
        with pytest.raises(InvariantViolation):
            lhs.merge(rhs, align=True)

    def test_sequential_merge_appends(self):
        lhs = self._worker(0, 1)
        merged = lhs.merge(self._worker(1, 2), align=False)
        assert len(merged.roots) == 2

    def test_merged_instants_stay_instant(self):
        def with_instant(start):
            tracer = Tracer()
            span = tracer.begin("phase")
            marker = span.children
            tracer.instant("mark")
            tracer.end(span)
            # simulate worker clock skew on the instant
            (mark,) = marker
            mark.start_s = mark.end_s = start
            return tracer
        merged = with_instant(1.0).merge(with_instant(5.0), align=True)
        mark = merged.roots[0].children[0]
        assert mark.is_instant
