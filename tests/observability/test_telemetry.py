"""Live telemetry: instruments, merges, exporters, and the off switch."""

import json

import pytest

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.graphs import erdos_renyi
from repro.observability.telemetry import (
    JobResources,
    MetricRegistry,
    ResourceLedger,
    attach_telemetry,
    prometheus_text,
    write_series_jsonl,
)
from repro.runtime.config import RuntimeConfig
from repro.runtime.metrics import MetricsCollector


# ----------------------------------------------------------------------
# instruments


def test_counter_accumulates_and_rejects_negative():
    registry = MetricRegistry()
    counter = registry.counter("ships")
    counter.inc()
    counter.inc(4)
    assert registry.value("ships") == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_kind_mismatch_rejected():
    registry = MetricRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")


def test_histogram_buckets_and_overflow():
    registry = MetricRegistry()
    hist = registry.histogram("lat", bounds=(0.1, 1.0))
    for value in (0.05, 0.5, 0.5, 5.0):
        hist.observe(value)
    assert hist.bucket_counts == [1, 2, 1]
    assert hist.count == 4
    assert hist.sum == pytest.approx(6.05)


def test_labels_distinguish_instruments():
    registry = MetricRegistry()
    registry.counter("c", labels={"rank": 0}).inc(2)
    registry.counter("c", labels={"rank": 1}).inc(3)
    assert registry.value("c", labels={"rank": 0}) == 2
    assert registry.total("c") == 5


# ----------------------------------------------------------------------
# snapshot merging: the cross-rank determinism contract


def _rank_registry(rank, observations):
    registry = MetricRegistry(rank=rank)
    registry.counter("ships", labels={"rank": rank}).inc(rank + 1)
    hist = registry.histogram("dur", bounds=(0.01, 0.1, 1.0))
    for value in observations:
        hist.observe(value)
    registry.gauge("rss").set(1000 * (rank + 1))
    return registry


def test_merge_is_order_independent():
    snaps = [
        _rank_registry(0, [0.005, 0.5]).snapshot(),
        _rank_registry(1, [0.05, 0.05, 2.0]).snapshot(),
        _rank_registry(2, [0.2]).snapshot(),
    ]

    def merged(order):
        target = MetricRegistry()
        for index in order:
            target.merge_snapshot(snaps[index])
        return target

    forward, backward = merged([0, 1, 2]), merged([2, 1, 0])
    hist_f = forward.get("dur")
    hist_b = backward.get("dur")
    assert hist_f.bucket_counts == hist_b.bucket_counts == [1, 2, 2, 1]
    assert hist_f.count == hist_b.count == 6
    assert hist_f.sum == pytest.approx(hist_b.sum)
    # counters sum; gauges take the max (levels are not additive)
    assert forward.total("ships") == backward.total("ships") == 6
    assert forward.value("rss") == backward.value("rss") == 3000
    assert prometheus_text(forward) == prometheus_text(backward)


def test_merge_rejects_mismatched_histogram_bounds():
    a = MetricRegistry()
    a.histogram("dur", bounds=(0.1, 1.0)).observe(0.5)
    b = MetricRegistry()
    b.histogram("dur", bounds=(0.5, 5.0)).observe(0.7)
    with pytest.raises(ValueError):
        a.merge_snapshot(b.snapshot())


# ----------------------------------------------------------------------
# exporters


def test_prometheus_text_format():
    registry = MetricRegistry()
    registry.counter("fabric.bytes_sent", labels={"rank": 0}).inc(10)
    registry.histogram("dur", bounds=(0.1, 1.0)).observe(0.5)
    text = prometheus_text(registry)
    assert '# TYPE repro_fabric_bytes_sent counter' in text
    assert 'repro_fabric_bytes_sent{rank="0"} 10' in text
    # histogram buckets are cumulative and close with +Inf/_sum/_count
    assert 'repro_dur_bucket{le="0.1"} 0' in text
    assert 'repro_dur_bucket{le="1.0"} 1' in text
    assert 'repro_dur_bucket{le="+Inf"} 1' in text
    assert 'repro_dur_sum 0.5' in text
    assert 'repro_dur_count 1' in text


def test_series_jsonl_roundtrip(tmp_path):
    registry = MetricRegistry()
    registry.record("workset", 10, t_s=1.0)
    registry.record("workset", 4, t_s=2.0)
    path = write_series_jsonl(
        str(tmp_path / "series.jsonl"), registry, meta={"backend": "x"}
    )
    lines = [json.loads(line)
             for line in open(path, encoding="utf-8")]
    assert lines[0]["type"] == "meta"
    assert lines[0]["samples"] == 2
    assert lines[0]["backend"] == "x"
    assert [s["value"] for s in lines[1:]] == [10, 4]
    assert all(s["t_s"] for s in lines[1:])


# ----------------------------------------------------------------------
# resource ledger


def test_ledger_job_totals():
    ledger = ResourceLedger()
    for rank in range(2):
        ledger.add(JobResources(
            job=1, rank=rank, wall_s=1.0 + rank, cpu_s=0.5,
            peak_rss_bytes=100 * (rank + 1), bytes_shipped=10,
        ))
    ledger.add(JobResources(job=2, rank=0, wall_s=0.5, cpu_s=0.1,
                            peak_rss_bytes=50))
    totals = ledger.job_totals(1)
    assert totals["workers"] == 2
    assert totals["wall_s"] == 2.0  # max over ranks
    assert totals["cpu_s"] == 1.0  # summed
    assert totals["peak_rss_bytes"] == 200  # max: budgets are per-process
    assert totals["bytes_shipped"] == 20
    grand = ledger.totals()
    assert grand["jobs"] == 2
    assert grand["cpu_s"] == pytest.approx(1.1)
    assert grand["peak_rss_bytes"] == 200
    with pytest.raises(KeyError):
        ledger.job_totals(99)


# ----------------------------------------------------------------------
# wiring: opt-in, off-path, and result parity


def test_telemetry_off_by_default():
    env = ExecutionEnvironment(parallelism=2)
    assert env.telemetry is None
    assert env.metrics.telemetry is None
    assert env.resource_ledger is None
    with pytest.raises(RuntimeError, match="REPRO_TELEMETRY"):
        env.telemetry_text()


def test_env_default_parsing(monkeypatch):
    monkeypatch.setenv("REPRO_TELEMETRY", "yes")
    assert RuntimeConfig().telemetry is True
    monkeypatch.setenv("REPRO_TELEMETRY", "off")
    assert RuntimeConfig().telemetry is False
    monkeypatch.setenv("REPRO_TELEMETRY", "maybe")
    with pytest.raises(ValueError):
        RuntimeConfig()


def test_attach_telemetry_idempotent():
    metrics = MetricsCollector()
    registry = attach_telemetry(metrics, rank=3)
    assert attach_telemetry(metrics, rank=5) is registry
    assert registry.rank == 3


def _run_cc(backend, telemetry):
    env = ExecutionEnvironment(
        parallelism=4, backend=backend,
        config=RuntimeConfig(telemetry=telemetry),
    )
    graph = erdos_renyi(120, 2.5, seed=11)
    result = cc.cc_incremental(env, graph, variant="cogroup",
                               mode="superstep")
    return env, sorted(result.items())


LOGICAL = ("records_processed", "records_shipped_local",
           "records_shipped_remote", "solution_accesses",
           "solution_updates", "supersteps")


@pytest.mark.parametrize("backend", ["simulated", "multiprocess"])
def test_results_and_logical_counters_identical_with_telemetry(backend):
    env_off, result_off = _run_cc(backend, telemetry=False)
    env_on, result_on = _run_cc(backend, telemetry=True)
    assert result_on == result_off
    for name in LOGICAL:
        assert getattr(env_on.metrics, name) == \
            getattr(env_off.metrics, name), name


def test_simulated_run_populates_registry_and_ledger():
    env, _ = _run_cc("simulated", telemetry=True)
    names = {metric.name for metric in env.telemetry.metrics()}
    assert "executor.superstep_duration_s" in names
    assert "executor.superstep" in names
    assert "executor.memo_nodes" in names
    assert "worker.rss_bytes" in names
    hist = env.telemetry.get("executor.superstep_duration_s")
    assert hist.count == env.metrics.supersteps
    assert env.telemetry.value("executor.superstep") == \
        env.metrics.supersteps
    assert env.telemetry.series  # per-superstep samples recorded
    assert env.resource_ledger.entries
    totals = env.resource_ledger.totals()
    assert totals["jobs"] >= 1
    assert totals["peak_rss_bytes"] > 0
    assert "repro_executor_superstep" in env.telemetry_text()


def test_series_export_from_environment(tmp_path):
    env, _ = _run_cc("simulated", telemetry=True)
    path = env.write_telemetry_series(str(tmp_path / "run.jsonl"))
    lines = [json.loads(line) for line in open(path, encoding="utf-8")]
    assert lines[0]["type"] == "meta"
    assert lines[0]["backend"] == "simulated"
    assert len(lines) == 1 + len(env.telemetry.series)
