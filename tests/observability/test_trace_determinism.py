"""Same seed ⇒ the same span tree, on every backend.

The trace-level analogue of the differential audit: the simulator and
the multiprocess SPMD engine must emit structurally identical span
forests — same names, same nesting, same logical counter deltas —
with only timestamps and physical quantities (bytes, cache) free to
differ.
"""

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.graphs import erdos_renyi
from repro.observability import LOGICAL_SPAN_COUNTERS
from repro.runtime.config import RuntimeConfig


def _traced_run(backend, seed=11):
    graph = erdos_renyi(90, 2.5, seed=seed)
    env = ExecutionEnvironment(
        4, backend=backend,
        config=RuntimeConfig(check_invariants=True, trace=True),
    )
    result = cc.cc_incremental(env, graph, variant="cogroup",
                               mode="superstep")
    env.metrics.verify_invariants()
    structure = env.tracer.structure(LOGICAL_SPAN_COUNTERS)
    labels = [label for label, _tracer in env.trace_timelines]
    return structure, sorted(result.items()), labels


def test_same_seed_same_tree_on_one_backend():
    first, result_a, _ = _traced_run("simulated")
    second, result_b, _ = _traced_run("simulated")
    assert first == second
    assert result_a == result_b


def test_span_tree_identical_across_backends():
    sim_structure, sim_result, sim_labels = _traced_run("simulated")
    mp_structure, mp_result, mp_labels = _traced_run("multiprocess")
    assert sim_result == mp_result
    assert sim_structure == mp_structure
    # the simulator exports one driver timeline; the SPMD engine keeps
    # one timeline per worker rank
    assert sim_labels == ["driver"]
    assert mp_labels == [f"worker-{r}" for r in range(4)]


def test_different_seed_changes_counters_not_wellformedness():
    first, _, _ = _traced_run("simulated", seed=11)
    other, _, _ = _traced_run("simulated", seed=12)
    assert first != other
