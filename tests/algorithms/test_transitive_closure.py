"""Naive vs semi-naive transitive closure (Section 7.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionEnvironment
from repro.algorithms import transitive_closure as tc


def random_digraph(num_vertices, num_edges, seed):
    rng = np.random.default_rng(seed)
    return list({
        (int(a), int(b))
        for a, b in zip(
            rng.integers(0, num_vertices, num_edges),
            rng.integers(0, num_vertices, num_edges),
        )
        if a != b
    })


@pytest.fixture(scope="module")
def digraph():
    return random_digraph(25, 45, seed=11), 25


class TestReference:
    def test_chain(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        assert tc.tc_reference(edges, 4) == {
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
        }

    def test_cycle_closes_fully(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        closure = tc.tc_reference(edges, 3)
        assert (0, 0) in closure  # cycles reach themselves
        assert len(closure) == 9

    def test_empty(self):
        assert tc.tc_reference([], 5) == set()


class TestEvaluationStrategies:
    def test_naive_matches_reference(self, digraph):
        edges, n = digraph
        env = ExecutionEnvironment(4)
        assert tc.tc_naive(env, edges) == tc.tc_reference(edges, n)
        assert env.iteration_summaries[0].converged

    def test_semi_naive_matches_reference(self, digraph):
        edges, n = digraph
        env = ExecutionEnvironment(4)
        assert tc.tc_semi_naive(env, edges) == tc.tc_reference(edges, n)
        assert env.iteration_summaries[0].converged

    def test_semi_naive_does_less_work(self, digraph):
        """The point of Section 7.1: the delta iteration evaluates
        semi-naively, joining only the new facts of the last superstep."""
        edges, n = digraph
        env_naive = ExecutionEnvironment(4)
        tc.tc_naive(env_naive, edges)
        env_semi = ExecutionEnvironment(4)
        tc.tc_semi_naive(env_semi, edges)
        assert (env_semi.metrics.total_processed
                < env_naive.metrics.total_processed / 2)

    def test_semi_naive_workset_is_new_facts_only(self, digraph):
        edges, n = digraph
        env = ExecutionEnvironment(4)
        closure = tc.tc_semi_naive(env, edges)
        total_derived = sum(
            s.delta_size for s in env.metrics.iteration_log
        )
        # every fact is inserted exactly once: deltas sum to the closure
        # size minus the base facts
        assert total_derived == len(closure) - len(set(edges))

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 11), st.integers(0, 11)),
                    max_size=25))
    def test_strategies_agree_on_random_relations(self, edges):
        edges = [e for e in set(edges) if e[0] != e[1]]
        expected = tc.tc_reference(edges, 12)
        env = ExecutionEnvironment(3)
        assert tc.tc_semi_naive(env, edges) == expected
        env = ExecutionEnvironment(3)
        assert tc.tc_naive(env, edges) == expected
