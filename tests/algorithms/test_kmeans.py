"""K-Means as a bulk iteration with a constant data path."""

import pytest

from repro import ExecutionEnvironment
from repro.algorithms import kmeans


@pytest.fixture(scope="module")
def points():
    return kmeans.generate_points(200, 3, seed=17)


@pytest.fixture(scope="module")
def centers0(points):
    return [(c, x, y) for c, (_i, x, y) in enumerate(points[:3])]


def assert_centers_close(a, b, tol=1e-9):
    assert len(a) == len(b)
    for (ca, xa, ya), (cb, xb, yb) in zip(sorted(a), sorted(b)):
        assert ca == cb
        assert abs(xa - xb) < tol and abs(ya - yb) < tol


class TestCorrectness:
    def test_matches_reference(self, points, centers0):
        env = ExecutionEnvironment(4)
        got = kmeans.kmeans_bulk(env, points, centers0, iterations=6)
        expected = kmeans.kmeans_reference(points, centers0, iterations=6)
        assert_centers_close(got, expected)

    def test_single_iteration(self, points, centers0):
        env = ExecutionEnvironment(4)
        got = kmeans.kmeans_bulk(env, points, centers0, iterations=1)
        expected = kmeans.kmeans_reference(points, centers0, iterations=1)
        assert_centers_close(got, expected)

    def test_epsilon_termination_converges(self, points, centers0):
        env = ExecutionEnvironment(4)
        kmeans.kmeans_bulk(env, points, centers0, iterations=200,
                           epsilon=1e-9)
        summary = env.iteration_summaries[0]
        assert summary.converged
        assert summary.supersteps < 200

    def test_terminated_centers_are_stable(self, points, centers0):
        env = ExecutionEnvironment(4)
        got = kmeans.kmeans_bulk(env, points, centers0, iterations=200,
                                 epsilon=1e-12)
        # one more Lloyd step must not move the centers
        again = kmeans.kmeans_reference(points, got, iterations=1)
        assert_centers_close(got, again, tol=1e-6)


class TestConstantPathCaching:
    def test_points_cached_across_supersteps(self, points, centers0):
        """The point set is loop-invariant; its shipped form must be
        cached rather than re-broadcast every superstep (Section 4.3)."""
        env = ExecutionEnvironment(4)
        kmeans.kmeans_bulk(env, points, centers0, iterations=8)
        assert env.metrics.cache_hits >= 6


class TestGeneration:
    def test_deterministic(self):
        a = kmeans.generate_points(50, 2, seed=3)
        b = kmeans.generate_points(50, 2, seed=3)
        assert a == b

    def test_point_count_and_ids(self):
        pts = kmeans.generate_points(37, 4, seed=0)
        assert len(pts) == 37
        assert [p[0] for p in pts] == list(range(37))
