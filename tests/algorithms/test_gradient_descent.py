"""Batch Gradient Descent as a bulk iteration."""

import pytest

from repro import ExecutionEnvironment
from repro.algorithms import gradient_descent as gd

TRUE_MODEL = (1.5, -2.0, 0.25)  # (w1, w2, bias)
DIM = 2


@pytest.fixture(scope="module")
def points():
    return gd.generate_regression_data(250, TRUE_MODEL, noise=0.02, seed=3)


class TestReference:
    def test_recovers_true_model(self, points):
        model = gd.gradient_descent_reference(points, DIM, 0.5, 400)
        assert all(
            abs(got - true) < 0.05 for got, true in zip(model, TRUE_MODEL)
        )

    def test_loss_decreases(self, points):
        short = gd.gradient_descent_reference(points, DIM, 0.5, 5)
        long = gd.gradient_descent_reference(points, DIM, 0.5, 100)
        assert gd.mean_squared_error(points, DIM, long) < (
            gd.mean_squared_error(points, DIM, short)
        )


class TestBulkDataflow:
    def test_matches_reference_exactly(self, points):
        env = ExecutionEnvironment(4)
        got = gd.gradient_descent_bulk(env, points, DIM, 0.5, 50)
        expected = gd.gradient_descent_reference(points, DIM, 0.5, 50)
        assert all(abs(a - b) < 1e-9 for a, b in zip(got, expected))

    def test_single_iteration(self, points):
        env = ExecutionEnvironment(4)
        got = gd.gradient_descent_bulk(env, points, DIM, 0.1, 1)
        expected = gd.gradient_descent_reference(points, DIM, 0.1, 1)
        assert all(abs(a - b) < 1e-12 for a, b in zip(got, expected))

    def test_epsilon_termination(self, points):
        env = ExecutionEnvironment(4)
        gd.gradient_descent_bulk(env, points, DIM, 0.5, 1000, epsilon=1e-5)
        summary = env.iteration_summaries[0]
        assert summary.converged
        assert summary.supersteps < 1000

    def test_training_set_is_cached_constant_path(self, points):
        env = ExecutionEnvironment(4)
        gd.gradient_descent_bulk(env, points, DIM, 0.5, 10)
        # the point set ships once; later supersteps only move the model
        assert env.metrics.cache_hits >= 8

    def test_parallelism_invariance(self, points):
        results = []
        for parallelism in (1, 3, 5):
            env = ExecutionEnvironment(parallelism)
            results.append(
                gd.gradient_descent_bulk(env, points, DIM, 0.5, 20)
            )
        for other in results[1:]:
            assert all(
                abs(a - b) < 1e-9 for a, b in zip(results[0], other)
            )


class TestDataGeneration:
    def test_deterministic(self):
        a = gd.generate_regression_data(50, TRUE_MODEL, seed=9)
        b = gd.generate_regression_data(50, TRUE_MODEL, seed=9)
        assert a == b

    def test_schema(self):
        pts = gd.generate_regression_data(10, TRUE_MODEL, seed=0)
        assert len(pts) == 10
        assert all(len(p) == 1 + DIM + 1 for p in pts)
