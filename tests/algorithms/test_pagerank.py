"""PageRank: numeric agreement across engines and both Figure 4 plans."""

import pytest

from repro import ExecutionEnvironment
from repro.algorithms import pagerank as pr
from repro.graphs import erdos_renyi
from repro.runtime.plan import ShipKind
from repro.systems.sparklike import SparkLikeContext


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(200, 5.0, seed=21)


@pytest.fixture(scope="module")
def reference(graph):
    return pr.pagerank_reference(graph, iterations=12)


def assert_ranks_close(got, expected, tol=1e-9):
    assert set(got) == set(expected)
    worst = max(abs(got[k] - expected[k]) for k in expected)
    assert worst < tol, f"max rank deviation {worst}"


class TestInputs:
    def test_transition_matrix_is_left_stochastic(self, graph):
        from collections import defaultdict
        columns = defaultdict(float)
        for _tid, pid, p in pr.transition_tuples(graph):
            columns[pid] += p
        assert all(abs(total - 1.0) < 1e-9 for total in columns.values())

    def test_initial_ranks_sum_to_one(self, graph):
        assert abs(sum(r for _v, r in pr.initial_ranks(graph)) - 1.0) < 1e-9


class TestBulkDataflow:
    @pytest.mark.parametrize("plan", ["auto", "broadcast", "partition"])
    def test_matches_reference(self, graph, reference, plan):
        env = ExecutionEnvironment(4)
        got = pr.pagerank_bulk(env, graph, iterations=12, plan=plan)
        assert_ranks_close(got, reference)

    def test_forced_plans_differ_physically(self, graph):
        shipping = {}
        for plan in ("broadcast", "partition"):
            env = ExecutionEnvironment(4)
            pr.pagerank_bulk(env, graph, iterations=3, plan=plan)
            described = env.last_plan.describe()
            shipping[plan] = described
        assert "broadcast" in shipping["broadcast"]
        assert shipping["broadcast"] != shipping["partition"]

    def test_broadcast_plan_computes_new_ranks_locally(self, graph):
        """Figure 4, left: because A is cached pre-partitioned on tid, the
        join output is born in the aggregation's partition — the paper's
        'computes the new ranks locally'.  The only remote traffic per
        superstep is the vector broadcast itself, |p|·(P-1) records;
        the partitioned plan additionally shuffles the combined
        contributions on tid."""
        parallelism = 4
        n = graph.num_vertices
        steady = {}
        for plan in ("broadcast", "partition"):
            env = ExecutionEnvironment(parallelism)
            pr.pagerank_bulk(env, graph, iterations=5, plan=plan)
            steady[plan] = env.metrics.iteration_log[2]  # warm superstep
        assert steady["broadcast"].records_shipped_remote == (
            n * (parallelism - 1)
        )
        # the partitioned plan's vector shuffle alone is n(P-1)/P; anything
        # above that is the contribution shuffle the broadcast plan avoids
        vector_only = n * (parallelism - 1) / parallelism
        assert steady["partition"].records_shipped_remote > vector_only

    def test_ranks_remain_a_distribution(self, graph):
        env = ExecutionEnvironment(4)
        got = pr.pagerank_bulk(env, graph, iterations=8)
        assert abs(sum(got.values()) - 1.0) < 1e-6


class TestBaselines:
    def test_sparklike(self, graph, reference):
        ctx = SparkLikeContext(4)
        got = pr.pagerank_sparklike(ctx, graph, iterations=12)
        assert_ranks_close(got, reference)

    def test_pregel(self, graph, reference):
        got = pr.pagerank_pregel(graph, iterations=12)
        assert_ranks_close(got, reference)

    def test_sparklike_iteration_times_logged(self, graph):
        ctx = SparkLikeContext(4)
        pr.pagerank_sparklike(ctx, graph, iterations=5)
        assert len(ctx.metrics.iteration_log) == 5


class TestAdaptive:
    def test_converges_to_fixpoint(self, graph):
        env = ExecutionEnvironment(4)
        got = pr.pagerank_adaptive(env, graph, epsilon=1e-12)
        expected = pr.pagerank_reference(graph, iterations=300)
        assert_ranks_close(got, expected, tol=1e-7)

    def test_workset_decays_with_convergence(self, graph):
        env = ExecutionEnvironment(4)
        pr.pagerank_adaptive(env, graph, epsilon=1e-10)
        sizes = [s.workset_size for s in env.metrics.iteration_log]
        assert sizes[0] > sizes[-1]

    def test_larger_epsilon_stops_earlier(self, graph):
        steps = {}
        for eps in (1e-4, 1e-10):
            env = ExecutionEnvironment(4)
            pr.pagerank_adaptive(env, graph, epsilon=eps)
            steps[eps] = env.iteration_summaries[0].supersteps
        assert steps[1e-4] < steps[1e-10]
