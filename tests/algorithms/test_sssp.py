"""SSSP across engines and execution modes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionEnvironment
from repro.algorithms import sssp
from repro.graphs import Graph, erdos_renyi


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(150, 4.0, seed=5)


def weight(src, dst):
    return float((src * 7 + dst * 13) % 5 + 1)


class TestReference:
    def test_source_distance_zero(self, graph):
        assert sssp.sssp_reference(graph, 3)[3] == 0.0

    def test_unreachable_is_inf(self):
        graph = Graph(3, [(0, 1)])
        dist = sssp.sssp_reference(graph, 0)
        assert dist[2] == float("inf")

    def test_triangle_inequality(self, graph):
        dist = sssp.sssp_reference(graph, 0, weight)
        for src, dst, w in sssp.weighted_edges(graph, weight):
            if dist[src] < float("inf"):
                assert dist[dst] <= dist[src] + w + 1e-9


class TestIncremental:
    @pytest.mark.parametrize("mode", ["superstep", "microstep", "async"])
    def test_unit_weights(self, graph, mode):
        env = ExecutionEnvironment(4)
        got = sssp.sssp_incremental(env, graph, 0, mode=mode)
        assert got == sssp.sssp_reference(graph, 0)

    @pytest.mark.parametrize("mode", ["superstep", "microstep"])
    def test_weighted(self, graph, mode):
        env = ExecutionEnvironment(4)
        got = sssp.sssp_incremental(env, graph, 0, weight_fn=weight,
                                    mode=mode)
        assert got == sssp.sssp_reference(graph, 0, weight)

    def test_supersteps_track_hop_radius(self):
        path = Graph(12, [(i, i + 1) for i in range(11)])
        env = ExecutionEnvironment(4)
        sssp.sssp_incremental(env, path, 0, mode="superstep")
        # relaxations spread one hop per superstep along a path
        assert env.iteration_summaries[0].supersteps >= 11

    def test_unreachable_vertices_stay_inf(self):
        graph = Graph(4, [(0, 1)])
        env = ExecutionEnvironment(2)
        got = sssp.sssp_incremental(env, graph, 0)
        assert got[2] == float("inf") and got[3] == float("inf")


class TestPregel:
    def test_matches_reference(self, graph):
        assert sssp.sssp_pregel(graph, 0) == sssp.sssp_reference(graph, 0)

    def test_weighted_matches_reference(self, graph):
        got = sssp.sssp_pregel(graph, 0, weight_fn=weight)
        assert got == sssp.sssp_reference(graph, 0, weight)


class TestPropertyBased:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14)),
                    max_size=30))
    def test_engines_agree_on_random_graphs(self, edges):
        graph = Graph(15, edges)
        expected = sssp.sssp_reference(graph, 0)
        env = ExecutionEnvironment(3)
        assert sssp.sssp_incremental(env, graph, 0, mode="async") == expected
        assert sssp.sssp_pregel(graph, 0, parallelism=3) == expected
