"""The Figure-3 termination criterion T for PageRank."""

import pytest

from repro import ExecutionEnvironment
from repro.algorithms import pagerank as pr
from repro.graphs import erdos_renyi


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(150, 5.0, seed=33)


class TestEpsilonTermination:
    def test_stops_before_trip_count(self, graph):
        env = ExecutionEnvironment(4)
        pr.pagerank_bulk(env, graph, iterations=200, epsilon=1e-6)
        summary = env.iteration_summaries[0]
        assert summary.converged
        assert summary.supersteps < 200

    def test_result_is_stationary(self, graph):
        env = ExecutionEnvironment(4)
        got = pr.pagerank_bulk(env, graph, iterations=200, epsilon=1e-10)
        steps = env.iteration_summaries[0].supersteps
        reference = pr.pagerank_reference(graph, steps)
        worst = max(abs(got[k] - reference[k]) for k in reference)
        assert worst < 1e-9

    def test_tighter_epsilon_runs_longer(self, graph):
        steps = {}
        for eps in (1e-3, 1e-9):
            env = ExecutionEnvironment(4)
            pr.pagerank_bulk(env, graph, iterations=300, epsilon=eps)
            steps[eps] = env.iteration_summaries[0].supersteps
        assert steps[1e-3] < steps[1e-9]

    def test_without_epsilon_runs_exactly_n_supersteps(self, graph):
        env = ExecutionEnvironment(4)
        pr.pagerank_bulk(env, graph, iterations=7)
        summary = env.iteration_summaries[0]
        assert summary.supersteps == 7

    def test_pregel_aggregator_driven_termination(self, graph):
        """The aggregator-based Pregel variant stops early like the
        dataflow's Figure-3 criterion — and on the same rank vector."""
        from repro.runtime.metrics import MetricsCollector
        metrics = MetricsCollector()
        got = pr.pagerank_pregel(graph, iterations=300, epsilon=1e-6,
                                 metrics=metrics)
        supersteps = len(metrics.iteration_log)
        assert supersteps < 300
        env = ExecutionEnvironment(4)
        dataflow = pr.pagerank_bulk(env, graph, iterations=300,
                                    epsilon=1e-6)
        worst = max(abs(got[k] - dataflow[k]) for k in dataflow)
        # both stop near the same fixpoint (their stopping rules differ
        # by one superstep at most, bounded by epsilon per rank)
        assert worst < 1e-4

    def test_termination_works_under_forced_plans(self, graph):
        for plan in ("broadcast", "partition"):
            env = ExecutionEnvironment(4)
            got = pr.pagerank_bulk(env, graph, iterations=300,
                                   epsilon=1e-8, plan=plan)
            assert env.iteration_summaries[0].converged, plan
            steps = env.iteration_summaries[0].supersteps
            reference = pr.pagerank_reference(graph, steps)
            worst = max(abs(got[k] - reference[k]) for k in reference)
            assert worst < 1e-9, plan
