"""Connected Components: every variant against ground truth, plus the
paper's worked examples (Figure 1, Table 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.graphs import Graph, erdos_renyi, load_dataset
from repro.systems.sparklike import SparkLikeContext


@pytest.fixture(scope="module")
def random_graph():
    return erdos_renyi(150, 2.5, seed=13)


REFERENCE_VARIANTS = [
    cc.cc_fixpoint,
    cc.cc_incremental_reference,
    cc.cc_microstep_reference,
]


class TestReferenceTemplates:
    @pytest.mark.parametrize("variant", REFERENCE_VARIANTS)
    def test_matches_union_find(self, random_graph, variant):
        assert variant(random_graph) == cc.cc_ground_truth(random_graph)

    def test_figure1_trace(self, sample9):
        """Figure 1's component evolution on the 9-vertex sample graph
        (0-indexed): the triangle {0,1,2} finalizes in one superstep,
        the straggler vid=3 needs a second, and the far corner of the
        second component converges last."""
        def step(state):
            new = {}
            for v in range(sample9.num_vertices):
                neighbor_min = min(
                    (state[x] for x in sample9.neighbors(v).tolist()),
                    default=state[v],
                )
                new[v] = min(neighbor_min, state[v])
            return new

        s0 = {v: v for v in range(9)}
        s1 = step(s0)
        s2 = step(s1)
        s3 = step(s2)
        assert s1 == {0: 0, 1: 0, 2: 0, 3: 2, 4: 4, 5: 4, 6: 5, 7: 6, 8: 6}
        assert s2 == {0: 0, 1: 0, 2: 0, 3: 0, 4: 4, 5: 4, 6: 4, 7: 5, 8: 5}
        assert s3 == {0: 0, 1: 0, 2: 0, 3: 0, 4: 4, 5: 4, 6: 4, 7: 4, 8: 4}
        assert s3 == step(s3)  # fixpoint after three steps


class TestDataflowVariants:
    def test_bulk(self, random_graph):
        env = ExecutionEnvironment(4)
        assert cc.cc_bulk(env, random_graph) == cc.cc_ground_truth(random_graph)
        assert env.iteration_summaries[0].converged

    @pytest.mark.parametrize("variant,mode", [
        ("cogroup", None),
        ("match", None),
        ("match", "superstep"),
        ("match", "async"),
    ])
    def test_incremental(self, random_graph, variant, mode):
        env = ExecutionEnvironment(4)
        got = cc.cc_incremental(env, random_graph, variant=variant, mode=mode)
        assert got == cc.cc_ground_truth(random_graph)

    def test_bulk_constant_iteration_work(self, sample9):
        """Section 2.3: bulk CC performs constant work per superstep.

        The first superstep additionally builds the cached edge table
        (Fig. 8's longer first iteration); all later supersteps are
        identical."""
        env = ExecutionEnvironment(4)
        cc.cc_bulk(env, sample9)
        log = env.metrics.iteration_log
        steady = [s.records_processed for s in log[1:]]
        assert len(set(steady)) == 1
        assert log[0].records_processed >= steady[0]

    def test_incremental_workset_decays(self, sample9):
        env = ExecutionEnvironment(4)
        cc.cc_incremental(env, sample9, variant="cogroup")
        sizes = [s.workset_size for s in env.metrics.iteration_log]
        assert sizes[0] > sizes[-1] == 0


class TestBaselineVariants:
    def test_sparklike_bulk(self, random_graph):
        ctx = SparkLikeContext(4)
        assert cc.cc_sparklike(ctx, random_graph) == (
            cc.cc_ground_truth(random_graph)
        )

    def test_sparklike_sim_incremental(self, random_graph):
        ctx = SparkLikeContext(4)
        got = cc.cc_sparklike_sim_incremental(ctx, random_graph)
        assert got == cc.cc_ground_truth(random_graph)

    def test_pregel(self, random_graph):
        assert cc.cc_pregel(random_graph) == cc.cc_ground_truth(random_graph)

    def test_sim_incremental_copies_unchanged_state(self, sample9):
        """Fig. 11's point: the simulated variant still materializes all
        |V| records every iteration, even once converged."""
        ctx = SparkLikeContext(4)
        cc.cc_sparklike_sim_incremental(ctx, sample9)
        # the merge map runs over every vertex each iteration
        per_iter = ctx.metrics.records_processed["map"]
        iterations = len(ctx.metrics.iteration_log)
        assert per_iter >= sample9.num_vertices * iterations


class TestPropertyBased:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 24), st.integers(0, 24)),
                    max_size=50))
    def test_all_engines_agree(self, edges):
        graph = Graph(25, edges)
        truth = cc.cc_ground_truth(graph)
        env = ExecutionEnvironment(3)
        assert cc.cc_incremental(env, graph, "match") == truth
        ctx = SparkLikeContext(3)
        assert cc.cc_sparklike(ctx, graph, max_iterations=60) == truth
        assert cc.cc_pregel(graph, parallelism=3) == truth

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)),
                    max_size=40),
           st.integers(min_value=1, max_value=6))
    def test_parallelism_invariance(self, edges, parallelism):
        graph = Graph(20, edges)
        env = ExecutionEnvironment(parallelism)
        got = cc.cc_incremental(env, graph, "cogroup")
        assert got == cc.cc_ground_truth(graph)


class TestOnNamedDatasets:
    def test_foaf_incremental(self):
        graph = load_dataset("foaf")
        env = ExecutionEnvironment(4)
        got = cc.cc_incremental(env, graph, "cogroup")
        assert got == cc.cc_ground_truth(graph)
