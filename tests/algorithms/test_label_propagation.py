"""Label propagation: a group-at-a-time incremental workload."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionEnvironment
from repro.algorithms import label_propagation as lpa
from repro.graphs import Graph, erdos_renyi, overlapping_cliques


class TestMajority:
    def test_plain_majority(self):
        assert lpa._majority([1, 2, 2, 3]) == 2

    def test_tie_breaks_to_smaller_label(self):
        assert lpa._majority([5, 5, 2, 2]) == 2

    def test_single(self):
        assert lpa._majority([7]) == 7


class TestReference:
    def test_clique_converges_to_one_label(self):
        clique = Graph(4, [(a, b) for a in range(4) for b in range(a)])
        labels = lpa.lpa_reference(clique)
        assert len(set(labels.values())) == 1

    def test_isolated_vertices_keep_their_label(self):
        graph = Graph(3, [(0, 1)])
        labels = lpa.lpa_reference(graph)
        assert labels[2] == 2

    def test_two_cliques_with_bridge_stay_separate(self):
        edges = (
            [(a, b) for a in range(4) for b in range(a)]
            + [(a, b) for a in range(4, 8) for b in range(4, a)]
            + [(0, 4)]
        )
        labels = lpa.lpa_reference(Graph(8, edges))
        assert len({labels[v] for v in range(4)}) == 1
        assert len({labels[v] for v in range(4, 8)}) == 1
        assert labels[1] != labels[5]


class TestIncremental:
    @pytest.mark.parametrize("make_graph", [
        lambda: erdos_renyi(100, 4.0, seed=5),
        lambda: overlapping_cliques(120, 10, seed=6),
        lambda: Graph(6, [(0, 1), (1, 2), (3, 4)]),
    ])
    def test_matches_reference(self, make_graph):
        graph = make_graph()
        env = ExecutionEnvironment(4)
        assert lpa.lpa_incremental(env, graph) == lpa.lpa_reference(graph)

    def test_is_superstep_only(self):
        """The cogroup-based Δ is group-at-a-time: the microstep analysis
        must reject it (Section 5.2, condition 1)."""
        graph = erdos_renyi(40, 3.0, seed=1)
        env = ExecutionEnvironment(4)
        lpa.lpa_incremental(env, graph)
        result_node = next(
            n for n in env.last_plan.logical_plan.nodes()
            if n.name == "lpa"
        )
        from repro.iterations.microstep import analyze_microstep
        assert not analyze_microstep(result_node).eligible

    def test_untouched_vertices_skipped(self):
        """Once a region converges, its vertices stop being inspected.

        Disjoint cliques settle within a couple of supersteps; later
        supersteps must touch only the remnants, not all |V| vertices.
        """
        cliques = 25
        size = 6
        clique_edges = [
            (c * size + a, c * size + b)
            for c in range(cliques)
            for a in range(size) for b in range(a)
        ]
        base = cliques * size
        path_edges = [(base + i, base + i + 1) for i in range(39)]
        graph = Graph(base + 40, clique_edges + path_edges)
        env = ExecutionEnvironment(4)
        lpa.lpa_incremental(env, graph)
        log = env.metrics.iteration_log
        # the cliques settle within a few supersteps; only the slow path
        # region stays hot afterwards
        assert log[0].solution_accesses >= graph.num_vertices
        late = log[min(len(log) - 1, 6)]
        assert late.solution_accesses < graph.num_vertices / 2

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 11), st.integers(0, 11)),
                    max_size=25))
    def test_random_graphs(self, edges):
        graph = Graph(12, edges)
        env = ExecutionEnvironment(3)
        assert lpa.lpa_incremental(env, graph, 30) == (
            lpa.lpa_reference(graph, 30)
        )
