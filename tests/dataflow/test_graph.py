"""Logical plan structure: validation, iteration bodies, path analysis."""

import pytest

from repro.common.errors import InvalidPlanError
from repro.dataflow.contracts import Contract
from repro.dataflow.graph import (
    BulkIterationNode,
    DeltaIterationNode,
    LogicalNode,
    LogicalPlan,
    dynamic_path_nodes,
    iteration_body_nodes,
    topological_order,
)


def source(name="src"):
    return LogicalNode(Contract.SOURCE, data=[(1,)], name=name)


class TestLogicalNode:
    def test_key_normalization(self):
        node = LogicalNode(Contract.REDUCE, [source()], key_fields=[0])
        assert node.key_fields == ((0,),)

    def test_source_knows_its_size(self):
        node = LogicalNode(Contract.SOURCE, data=[(1,), (2,)])
        assert node.estimated_size == 2.0

    def test_forwarded_fields_accumulate(self):
        node = LogicalNode(Contract.MAP, [source()])
        node.with_forwarded_fields(0, {0: 0})
        node.with_forwarded_fields(0, {1: 2})
        assert node.forwarded_fields[0] == {0: 0, 1: 2}


class TestValidation:
    def test_match_needs_two_inputs(self):
        bad = LogicalNode(Contract.MATCH, [source()], key_fields=[(0,)])
        sink = LogicalNode(Contract.SINK, [bad])
        with pytest.raises(InvalidPlanError):
            LogicalPlan([sink]).validate()

    def test_match_key_arity_mismatch(self):
        bad = LogicalNode(
            Contract.MATCH, [source(), source()],
            key_fields=[(0,), (0, 1)],
        )
        sink = LogicalNode(Contract.SINK, [bad])
        with pytest.raises(InvalidPlanError):
            LogicalPlan([sink]).validate()

    def test_unclosed_iteration_rejected(self):
        iteration = BulkIterationNode(source(), max_iterations=3)
        sink = LogicalNode(Contract.SINK, [iteration])
        with pytest.raises(InvalidPlanError):
            LogicalPlan([sink]).validate()

    def test_plan_needs_sinks(self):
        with pytest.raises(InvalidPlanError):
            LogicalPlan([])

    def test_max_iterations_must_be_positive(self):
        with pytest.raises(InvalidPlanError):
            BulkIterationNode(source(), max_iterations=0)
        with pytest.raises(InvalidPlanError):
            DeltaIterationNode(source(), source(), 0, max_iterations=0)

    def test_unknown_delta_mode_rejected(self):
        it = DeltaIterationNode(source(), source(), 0, max_iterations=5)
        with pytest.raises(InvalidPlanError):
            it.close(source(), source(), mode="bogus")


class TestTopologicalOrder:
    def test_producers_before_consumers(self):
        a = source("a")
        b = LogicalNode(Contract.MAP, [a], name="b")
        c = LogicalNode(Contract.MAP, [b], name="c")
        d = LogicalNode(Contract.UNION, [a, c], name="d")
        order = [n.name for n in topological_order([d])]
        assert order.index("a") < order.index("b") < order.index("c")
        assert order.index("c") < order.index("d")

    def test_diamond_visits_once(self):
        a = source("a")
        left = LogicalNode(Contract.MAP, [a], name="l")
        right = LogicalNode(Contract.MAP, [a], name="r")
        top = LogicalNode(Contract.UNION, [left, right], name="t")
        order = topological_order([top])
        assert len(order) == 4


class TestIterationStructure:
    def _closed_bulk(self):
        initial = source("initial")
        constant = source("constant")
        iteration = BulkIterationNode(initial, max_iterations=5)
        step1 = LogicalNode(Contract.MAP, [iteration.placeholder], name="step1")
        joined = LogicalNode(
            Contract.MATCH, [step1, constant],
            key_fields=[(0,), (0,)], name="joined",
        )
        iteration.close(joined)
        return iteration, {"step1": step1, "joined": joined,
                           "constant": constant, "initial": initial}

    def test_body_includes_constant_path_sources(self):
        iteration, nodes = self._closed_bulk()
        body_names = {n.name for n in iteration_body_nodes(iteration)}
        assert "constant" in body_names
        assert "joined" in body_names
        assert "initial" not in body_names  # outer input excluded

    def test_dynamic_path_excludes_constant_source(self):
        iteration, nodes = self._closed_bulk()
        dynamic_names = {n.name for n in dynamic_path_nodes(iteration)}
        assert "step1" in dynamic_names
        assert "joined" in dynamic_names
        assert "constant" not in dynamic_names

    def test_delta_iteration_dynamic_paths(self):
        solution0, workset0 = source("s0"), source("w0")
        edges = source("edges")
        it = DeltaIterationNode(solution0, workset0, 0, max_iterations=9)
        delta = LogicalNode(
            Contract.SOLUTION_JOIN,
            [it.workset_placeholder, it.solution_placeholder],
            key_fields=[(0,), (0,)], name="delta",
        )
        delta.enclosing_iteration = it
        next_ws = LogicalNode(
            Contract.MATCH, [delta, edges],
            key_fields=[(0,), (0,)], name="next_ws",
        )
        it.close(delta, next_ws)
        dynamic = {n.name for n in dynamic_path_nodes(it)}
        assert "delta" in dynamic and "next_ws" in dynamic
        assert "edges" not in dynamic

    def test_plan_nodes_reach_into_bodies(self):
        iteration, nodes = self._closed_bulk()
        sink = LogicalNode(Contract.SINK, [iteration])
        names = {n.name for n in LogicalPlan([sink]).nodes()}
        assert {"step1", "joined", "constant", "initial"} <= names
