"""End-to-end semantics of every operator through the full stack
(fluent API → optimizer → executor), under both planners."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionEnvironment


def both_envs():
    return [ExecutionEnvironment(4), ExecutionEnvironment(4, optimize=False)]


@pytest.fixture(params=["optimized", "naive"])
def any_env(request):
    return ExecutionEnvironment(4, optimize=request.param == "optimized")


class TestUnaryOperators:
    def test_map(self, any_env):
        data = any_env.from_iterable([(i,) for i in range(10)])
        assert sorted(data.map(lambda r: (r[0] + 1,)).collect()) == [
            (i + 1,) for i in range(10)
        ]

    def test_flat_map(self, any_env):
        data = any_env.from_iterable([(2,), (0,), (3,)])
        out = data.flat_map(lambda r: [(r[0],)] * r[0]).collect()
        assert sorted(out) == [(2,), (2,), (3,), (3,), (3,)]

    def test_filter(self, any_env):
        data = any_env.from_iterable([(i,) for i in range(10)])
        out = data.filter(lambda r: r[0] % 3 == 0).collect()
        assert sorted(out) == [(0,), (3,), (6,), (9,)]

    def test_reduce_by_key(self, any_env):
        data = any_env.from_iterable([(i % 3, 1) for i in range(12)])
        out = data.reduce_by_key(0, lambda a, b: (a[0], a[1] + b[1])).collect()
        assert sorted(out) == [(0, 4), (1, 4), (2, 4)]

    def test_reduce_group(self, any_env):
        data = any_env.from_iterable([(i % 2, i) for i in range(6)])
        out = data.reduce_group(
            0, lambda key, group: [(key, sorted(r[1] for r in group))]
        ).collect()
        assert sorted(out) == [(0, [0, 2, 4]), (1, [1, 3, 5])]

    def test_distinct_by_key(self, any_env):
        data = any_env.from_iterable([(1, "a"), (1, "b"), (2, "c")])
        out = data.distinct(key_fields=0).collect()
        assert len(out) == 2
        assert {r[0] for r in out} == {1, 2}

    def test_composite_keys(self, any_env):
        data = any_env.from_iterable(
            [(1, "x", 10), (1, "x", 5), (1, "y", 2)]
        )
        out = data.reduce_by_key(
            (0, 1), lambda a, b: (a[0], a[1], a[2] + b[2])
        ).collect()
        assert sorted(out) == [(1, "x", 15), (1, "y", 2)]


class TestBinaryOperators:
    def test_join(self, any_env):
        left = any_env.from_iterable([(1, "a"), (2, "b"), (2, "bb")])
        right = any_env.from_iterable([(2, "x"), (3, "y")])
        out = left.join(right, 0, 0, lambda l, r: (l[1], r[1])).collect()
        assert sorted(out) == [("b", "x"), ("bb", "x")]

    def test_join_flat(self, any_env):
        left = any_env.from_iterable([(1, 2)])
        right = any_env.from_iterable([(1, 3)])
        out = left.join(
            right, 0, 0, lambda l, r: [(l[1],), (r[1],)], flat=True
        ).collect()
        assert sorted(out) == [(2,), (3,)]

    def test_join_on_different_fields(self, any_env):
        left = any_env.from_iterable([("a", 1), ("b", 2)])
        right = any_env.from_iterable([(10, 1), (20, 2)])
        out = left.join(right, 1, 1, lambda l, r: (l[0], r[0])).collect()
        assert sorted(out) == [("a", 10), ("b", 20)]

    def test_cogroup_outer(self, any_env):
        left = any_env.from_iterable([(1, "a"), (2, "b")])
        right = any_env.from_iterable([(2, "x"), (3, "y")])
        out = left.cogroup(
            right, 0, 0,
            lambda key, ls, rs: [(key, len(ls), len(rs))],
        ).collect()
        assert sorted(out) == [(1, 1, 0), (2, 1, 1), (3, 0, 1)]

    def test_cogroup_inner(self, any_env):
        left = any_env.from_iterable([(1, "a"), (2, "b")])
        right = any_env.from_iterable([(2, "x"), (3, "y")])
        out = left.cogroup(
            right, 0, 0,
            lambda key, ls, rs: [(key,)], inner=True,
        ).collect()
        assert out == [(2,)]

    def test_cross(self, any_env):
        left = any_env.from_iterable([(1,), (2,)])
        right = any_env.from_iterable([(10,), (20,)])
        out = left.cross(right, lambda a, b: (a[0], b[0])).collect()
        assert sorted(out) == [(1, 10), (1, 20), (2, 10), (2, 20)]

    def test_union(self, any_env):
        left = any_env.from_iterable([(1,)])
        right = any_env.from_iterable([(1,), (2,)])
        assert sorted(left.union(right).collect()) == [(1,), (1,), (2,)]


class TestEnvironmentApi:
    def test_generate_sequence(self, any_env):
        out = any_env.generate_sequence(5).collect()
        assert sorted(out) == [(i,) for i in range(5)]

    def test_named_sinks_execute_together(self):
        env = ExecutionEnvironment(2)
        data = env.from_iterable([(1,), (2,)])
        data.map(lambda r: (r[0] * 2,)).output(name="doubled")
        data.filter(lambda r: r[0] > 1).output(name="filtered")
        results = env.execute()
        assert sorted(results["doubled"]) == [(2,), (4,)]
        assert results["filtered"] == [(2,)]

    def test_execute_without_sinks_fails(self):
        from repro.common.errors import InvalidPlanError
        env = ExecutionEnvironment(2)
        with pytest.raises(InvalidPlanError):
            env.execute()

    def test_cross_environment_mixing_rejected(self):
        from repro.common.errors import InvalidPlanError
        env_a, env_b = ExecutionEnvironment(2), ExecutionEnvironment(2)
        left = env_a.from_iterable([(1,)])
        right = env_b.from_iterable([(1,)])
        with pytest.raises(InvalidPlanError):
            left.union(right)

    def test_explain_returns_plan_text(self):
        env = ExecutionEnvironment(2)
        data = env.from_iterable([(1, 2)])
        text = env.explain(
            data.reduce_by_key(0, lambda a, b: a)
        )
        assert "partition" in text or "forward" in text

    def test_parallelism_validation(self):
        with pytest.raises(ValueError):
            ExecutionEnvironment(0)


class TestPlannerEquivalence:
    """The optimizer must never change operator semantics."""

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(-10, 10)),
                    max_size=40))
    def test_reduce_same_under_both_planners(self, records):
        results = []
        for env in both_envs():
            data = env.from_iterable(records)
            out = data.reduce_by_key(
                0, lambda a, b: (a[0], a[1] + b[1])
            ).collect()
            results.append(sorted(out))
        assert results[0] == results[1]

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 4), st.integers()), max_size=25),
        st.lists(st.tuples(st.integers(0, 4), st.integers()), max_size=25),
    )
    def test_join_same_under_both_planners(self, left, right):
        results = []
        for env in both_envs():
            l = env.from_iterable(left)
            r = env.from_iterable(right)
            out = l.join(r, 0, 0, lambda a, b: (a[0], a[1], b[1])).collect()
            results.append(sorted(out))
        assert results[0] == results[1]
