"""Aggregation convenience operators built on combinable Reduce."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionEnvironment

RECORDS = [
    ("a", 1, 10.0), ("a", 2, 3.0), ("b", 7, 5.5),
    ("b", 1, 4.5), ("a", 4, -2.0),
]


@pytest.fixture
def env():
    return ExecutionEnvironment(3)


class TestSugar:
    def test_sum_by_key(self, env):
        out = env.from_iterable(RECORDS).sum_by_key(0, 1).collect()
        assert sorted((r[0], r[1]) for r in out) == [("a", 7), ("b", 8)]

    def test_min_by_key_returns_whole_record(self, env):
        out = env.from_iterable(RECORDS).min_by_key(0, 2).collect()
        assert sorted(out) == [("a", 4, -2.0), ("b", 1, 4.5)]

    def test_max_by_key(self, env):
        out = env.from_iterable(RECORDS).max_by_key(0, 1).collect()
        assert sorted(out) == [("a", 4, -2.0), ("b", 7, 5.5)]

    def test_count_by_key_single_field(self, env):
        out = env.from_iterable(RECORDS).count_by_key(0).collect()
        assert sorted(out) == [("a", 3), ("b", 2)]

    def test_count_by_composite_key(self, env):
        data = env.from_iterable(
            [("x", 1, "p"), ("x", 1, "q"), ("x", 2, "r")]
        )
        out = data.count_by_key((0, 1)).collect()
        assert sorted(out) == [("x", 1, 2), ("x", 2, 1)]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(-50, 50)),
                    max_size=40))
    def test_sum_matches_python(self, records):
        env = ExecutionEnvironment(4)
        expected = {}
        for k, v in records:
            expected[k] = expected.get(k, 0) + v
        out = env.from_iterable(records).sum_by_key(0, 1).collect()
        assert {k: v for k, v in out} == expected

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(-9, 9)),
                    min_size=1, max_size=30))
    def test_min_max_bracket_the_data(self, records):
        env = ExecutionEnvironment(3)
        data = env.from_iterable(records)
        lows = {k: v for k, v in data.min_by_key(0, 1).collect()}
        highs = {k: v for k, v in data.max_by_key(0, 1).collect()}
        for k, v in records:
            assert lows[k] <= v <= highs[k]
