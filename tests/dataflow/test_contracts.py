"""PACT contract classification predicates."""

from repro.dataflow.contracts import (
    BINARY_CONTRACTS,
    Contract,
    is_binary,
    is_group_at_a_time,
    is_keyed,
    is_record_at_a_time,
)


class TestClassification:
    def test_record_at_a_time(self):
        for contract in (Contract.MAP, Contract.FLAT_MAP, Contract.FILTER,
                         Contract.MATCH, Contract.CROSS, Contract.UNION,
                         Contract.SOLUTION_JOIN):
            assert is_record_at_a_time(contract), contract

    def test_group_at_a_time(self):
        for contract in (Contract.REDUCE, Contract.REDUCE_GROUP,
                         Contract.COGROUP, Contract.INNER_COGROUP,
                         Contract.SOLUTION_COGROUP):
            assert is_group_at_a_time(contract), contract

    def test_classes_are_disjoint(self):
        for contract in Contract:
            assert not (
                is_record_at_a_time(contract)
                and is_group_at_a_time(contract)
            ), contract

    def test_binary_contracts(self):
        assert is_binary(Contract.MATCH)
        assert is_binary(Contract.UNION)
        assert not is_binary(Contract.MAP)
        assert not is_binary(Contract.REDUCE)
        assert Contract.SOLUTION_JOIN in BINARY_CONTRACTS

    def test_keyed_contracts(self):
        assert is_keyed(Contract.REDUCE)
        assert is_keyed(Contract.MATCH)
        assert not is_keyed(Contract.MAP)
        assert not is_keyed(Contract.CROSS)  # cross pairs everything

    def test_pseudo_contracts_are_neither(self):
        for contract in (Contract.SOURCE, Contract.SINK,
                         Contract.BULK_ITERATION, Contract.DELTA_ITERATION,
                         Contract.PARTIAL_SOLUTION, Contract.WORKSET,
                         Contract.SOLUTION_SET):
            assert not is_record_at_a_time(contract)
            assert not is_group_at_a_time(contract)
