"""Fluent-API surface: naming, hints, and authoring-error handling."""

import pytest

from repro import ExecutionEnvironment
from repro.common.errors import InvalidPlanError
from repro.dataflow.contracts import Contract


@pytest.fixture
def env():
    return ExecutionEnvironment(2)


class TestHandles:
    def test_name_sets_operator_label(self, env):
        data = env.from_iterable([(1,)]).map(lambda r: r).name("my_map")
        assert data.node.name == "my_map"

    def test_with_estimated_size(self, env):
        data = env.from_iterable([(1,)]).with_estimated_size(500)
        assert data.node.estimated_size == 500.0

    def test_with_forwarded_fields(self, env):
        data = env.from_iterable([(1, 2)]).map(lambda r: r) \
            .with_forwarded_fields({0: 1, 1: 0})
        assert data.node.forwarded_fields[0] == {0: 1, 1: 0}

    def test_node_and_env_accessors(self, env):
        data = env.from_iterable([(1,)])
        assert data.env is env
        assert data.node.contract is Contract.SOURCE


class TestAuthoringErrors:
    def test_join_with_non_dataset(self, env):
        data = env.from_iterable([(1,)])
        with pytest.raises(TypeError):
            data.join([(1,)], 0, 0, lambda l, r: l)

    def test_union_with_non_dataset(self, env):
        data = env.from_iterable([(1,)])
        with pytest.raises(TypeError):
            data.union("not a dataset")

    def test_bad_key_spec(self, env):
        data = env.from_iterable([(1, 2)])
        with pytest.raises((TypeError, ValueError)):
            data.reduce_by_key("a", lambda x, y: x)
        with pytest.raises(ValueError):
            data.reduce_by_key((), lambda x, y: x)

    def test_join_key_arity_mismatch_caught_at_validation(self, env):
        left = env.from_iterable([(1, 2)])
        right = env.from_iterable([(1, 2)])
        joined = left.join(right, (0, 1), 0, lambda l, r: l)
        with pytest.raises(InvalidPlanError):
            joined.collect()


class TestSolutionSetRules:
    def _iteration(self, env):
        s0 = env.from_iterable([(0, 0)])
        w0 = env.from_iterable([(0, 0)])
        return env.iterate_delta(s0, w0, 0, max_iterations=2)

    def test_solution_cogroup_key_checked(self, env):
        it = self._iteration(env)
        with pytest.raises(InvalidPlanError):
            it.workset.cogroup(it.solution_set, 0, 1,
                               lambda k, a, b: [])

    def test_solution_join_annotates_iteration(self, env):
        it = self._iteration(env)
        joined = it.workset.join(it.solution_set, 0, 0, lambda c, s: None)
        assert joined.node.contract is Contract.SOLUTION_JOIN
        assert joined.node.enclosing_iteration is it._node

    def test_placeholder_outside_iteration_rejected(self, env):
        it = self._iteration(env)
        # using the workset placeholder as a plain sink input without
        # closing the iteration must fail validation
        with pytest.raises(InvalidPlanError):
            it.workset.collect()
