"""Chain-fusion planner rules: what fuses, what breaks a chain."""

import pytest

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.dataflow.contracts import Contract
from repro.dataflow.graph import LogicalNode, LogicalPlan
from repro.optimizer.chaining import plan_chains
from repro.runtime.config import RuntimeConfig
from repro.runtime.plan import partition_on


def compile_for(env, dataset):
    sink = LogicalNode(Contract.SINK, [dataset.node], name="collect")
    return env._compile(LogicalPlan([sink]))


def five_op_pipeline(env):
    ds = env.from_iterable([(i, i % 5) for i in range(40)])
    return (
        ds.map(lambda r: (r[0] + 1, r[1]))
        .filter(lambda r: r[1] != 3)
        .map(lambda r: (r[0], r[1] * 2))
        .flat_map(lambda r: [r])
        .filter(lambda r: r[0] % 2 == 0)
    )


class TestChainFormation:
    def test_five_op_pipeline_fuses_into_one_chain(self, env):
        ds = five_op_pipeline(env)
        plan = compile_for(env, ds)
        assert len(plan.chains) == 1
        chain = plan.chains[ds.node.id]
        assert chain.describe() == "chain[map→filter→map→flat_map→filter]"
        assert len(chain.nodes) == 5
        assert chain.combine_node is None
        # every member but the tail loses its identity
        assert plan.fused_ids == frozenset(
            n.id for n in chain.nodes[:-1]
        )
        assert chain.tail.id == ds.node.id

    def test_describe_lists_chain_members(self, env):
        ds = five_op_pipeline(env)
        plan = compile_for(env, ds)
        text = plan.describe()
        assert "chain[map→filter→map→flat_map→filter]" in text

    def test_chaining_disabled_plans_no_chains(self):
        env = ExecutionEnvironment(
            parallelism=4, config=RuntimeConfig(chaining=False)
        )
        plan = compile_for(env, five_op_pipeline(env))
        assert plan.chains == {}
        assert plan.fused_ids == frozenset()

    def test_naive_planner_also_gets_chains(self, env_naive):
        plan = compile_for(env_naive, five_op_pipeline(env_naive))
        assert len(plan.chains) == 1

    def test_union_fuses_lowest_slot_as_spine(self, env):
        base = env.from_iterable([(i,) for i in range(20)])
        left = base.map(lambda r: (r[0] + 1,))
        right = env.from_iterable([(100 + i,) for i in range(10)]).map(
            lambda r: (r[0] * 2,)
        )
        merged = left.union(right).map(lambda r: (r[0],))
        plan = compile_for(env, merged)
        chain = plan.chains[merged.node.id]
        contracts = [n.contract for n in chain.nodes]
        assert contracts == [Contract.MAP, Contract.UNION, Contract.MAP]
        assert chain.nodes[0].id == left.node.id
        # the right side stays a normally shipped tap
        assert right.node.id not in plan.fused_ids

    def test_single_op_combine_chain(self, env_naive):
        ds = env_naive.from_iterable([(i % 4, i) for i in range(30)])
        mapped = ds.map(lambda r: (r[0], r[1] + 1))
        total = mapped.reduce_by_key(0, lambda a, b: (a[0], a[1] + b[1]))
        plan = compile_for(env_naive, total)
        chain = plan.chains[total.node.id]
        assert chain.nodes == (mapped.node,)
        assert chain.combine_node is total.node
        assert chain.describe() == "chain[map→combine]"
        assert mapped.node.id in plan.fused_ids
        # the reduce itself keeps its identity (it still ships/aggregates)
        assert total.node.id not in plan.fused_ids


class TestChainBreakers:
    def test_branch_point_ends_chain(self, env):
        base = env.from_iterable([(i,) for i in range(20)])
        shared = base.map(lambda r: (r[0] + 1,))
        left = shared.filter(lambda r: r[0] % 2 == 0)
        right = shared.map(lambda r: (r[0] * 2,))
        merged = left.union(right)
        plan = compile_for(env, merged)
        # shared has two consumers: no chain may fuse it away
        assert shared.node.id not in plan.fused_ids
        for chain in plan.chains.values():
            assert shared.node.id != chain.nodes[0].id or (
                len(chain.nodes) == 1
            )

    def test_dam_breaks_chain(self, env):
        ds = env.from_iterable([(i,) for i in range(20)])
        tail = ds.map(lambda r: (r[0] + 1,)).filter(lambda r: r[0] > 2)
        plan = compile_for(env, tail)
        assert tail.node.id in plan.chains
        plan.annotation(tail.node).dams.add(0)
        plan_chains(plan)
        assert tail.node.id not in plan.chains

    def test_non_forward_ship_breaks_chain(self, env):
        ds = env.from_iterable([(i, i) for i in range(20)])
        tail = ds.map(lambda r: (r[0], r[1] + 1)).filter(
            lambda r: r[1] > 0
        )
        env.plan_overrides[tail.node.id] = {"ship": {0: partition_on((0,))}}
        plan = compile_for(env, tail)
        assert tail.node.id not in plan.chains
        assert plan.fused_ids == frozenset()

    def test_chain_never_straddles_constant_dynamic_boundary(self, env):
        """A constant-path map feeding a dynamic union must keep its own
        memo entry so the Section 4.3 edge cache still works."""
        base = env.from_iterable([(i,) for i in range(12)])
        constant = env.from_iterable([(100 + i,) for i in range(6)])
        iteration = env.iterate_bulk(base, max_iterations=3)
        constant_mapped = constant.map(lambda r: (r[0] + 1,))
        body = (
            iteration.partial_solution.map(lambda r: (r[0],))
            .union(constant_mapped)
            .map(lambda r: (r[0],))
        )
        result = iteration.close(body)
        plan = compile_for(env, result)
        assert constant_mapped.node.id not in plan.fused_ids
        for chain in plan.chains.values():
            assert constant_mapped.node.id not in {
                n.id for n in chain.nodes
            }

    def test_iteration_roots_keep_their_identity(self, env):
        base = env.from_iterable([(i,) for i in range(12)])
        iteration = env.iterate_bulk(base, max_iterations=2)
        body = iteration.partial_solution.map(lambda r: (r[0] + 1,)).map(
            lambda r: (r[0],)
        )
        result = iteration.close(body)
        plan = compile_for(env, result)
        # the body output is read by the executor every superstep
        assert body.node.id not in plan.fused_ids
        chain = plan.chains.get(body.node.id)
        assert chain is not None and chain.tail.id == body.node.id

    def test_microstep_bodies_are_never_fused(self, sample9):
        env = ExecutionEnvironment(parallelism=4)
        cc.cc_incremental(env, sample9, variant="match", mode="microstep")
        plan = env.last_plan
        body_ids = {
            n.id
            for node in plan.logical_plan.nodes()
            if node.contract is Contract.DELTA_ITERATION
            for n in __import__(
                "repro.dataflow.graph", fromlist=["iteration_body_nodes"]
            ).iteration_body_nodes(node)
        }
        assert not (plan.fused_ids & body_ids)
        for chain in plan.chains.values():
            assert not ({n.id for n in chain.nodes} & body_ids)


class TestCostModel:
    def test_unfused_forward_edges_are_charged(self):
        """With chaining off, the enumerator charges the materialization
        overhead of every fusable-looking forward edge, so plans cost
        strictly more than the same plans with chaining on."""
        def build(chaining):
            env = ExecutionEnvironment(
                parallelism=4,
                config=RuntimeConfig(chaining=chaining),
            )
            return compile_for(env, five_op_pipeline(env))

        fused = build(True)
        unfused = build(False)
        assert unfused.estimated_cost > fused.estimated_cost

    def test_forward_edge_cost_scales_with_size(self):
        from repro.optimizer.costs import DEFAULT_WEIGHTS, forward_edge_cost

        small = forward_edge_cost(100.0, DEFAULT_WEIGHTS)
        large = forward_edge_cost(10_000.0, DEFAULT_WEIGHTS)
        assert 0.0 < small < large


class TestFusedChainValidation:
    def test_chain_requires_two_nodes_or_combine(self, env):
        from repro.runtime.plan import FusedChain

        node = env.from_iterable([(1,)]).map(lambda r: r).node
        with pytest.raises(ValueError):
            FusedChain(nodes=(node,), spine_inputs=())

    def test_spine_inputs_length_checked(self, env):
        from repro.runtime.plan import FusedChain

        a = env.from_iterable([(1,)]).map(lambda r: r).node
        b = a.inputs[0]
        with pytest.raises(ValueError):
            FusedChain(nodes=(b, a), spine_inputs=(0, 1))
