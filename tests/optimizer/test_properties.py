"""Physical property satisfaction and interesting-property propagation."""

from repro import ExecutionEnvironment
from repro.dataflow.contracts import Contract
from repro.dataflow.graph import LogicalNode
from repro.optimizer.properties import (
    NO_PROPS,
    PhysicalProps,
    REPLICATED,
    map_fields_backward,
    map_fields_forward,
    propagate_interesting_properties,
    props_through,
)


class TestPhysicalProps:
    def test_partitioning_subset_satisfies(self):
        props = PhysicalProps(partitioned_on=(0,))
        assert props.satisfies_partitioning((0,))
        assert props.satisfies_partitioning((0, 1))  # subset colocates

    def test_partitioning_superset_does_not_satisfy(self):
        props = PhysicalProps(partitioned_on=(0, 1))
        assert not props.satisfies_partitioning((0,))

    def test_replicated_satisfies_everything(self):
        assert REPLICATED.satisfies_partitioning((3,))

    def test_no_props_satisfies_nothing(self):
        assert not NO_PROPS.satisfies_partitioning((0,))

    def test_sort_prefix(self):
        props = PhysicalProps(sorted_on=(0, 1))
        assert props.satisfies_sort((0,))
        assert props.satisfies_sort((0, 1))
        assert not props.satisfies_sort((1,))


class TestFieldMapping:
    def _mapped_node(self):
        src = LogicalNode(Contract.SOURCE, data=[])
        node = LogicalNode(Contract.MAP, [src])
        node.with_forwarded_fields(0, {0: 1, 2: 0})
        return node

    def test_forward(self):
        node = self._mapped_node()
        assert map_fields_forward(node, 0, (0,)) == (1,)
        assert map_fields_forward(node, 0, (0, 2)) == (1, 0)
        assert map_fields_forward(node, 0, (1,)) is None  # undeclared

    def test_backward(self):
        node = self._mapped_node()
        assert map_fields_backward(node, 0, (1,)) == (0,)
        assert map_fields_backward(node, 0, (3,)) is None

    def test_filter_forwards_everything(self):
        src = LogicalNode(Contract.SOURCE, data=[])
        node = LogicalNode(Contract.FILTER, [src])
        assert map_fields_forward(node, 0, (0, 5)) == (0, 5)
        assert map_fields_backward(node, 0, (2,)) == (2,)

    def test_props_through_partitioning(self):
        node = self._mapped_node()
        props = props_through(
            node, 0, PhysicalProps(partitioned_on=(0,))
        )
        assert props.partitioned_on == (1,)

    def test_props_through_drops_undeclared(self):
        node = self._mapped_node()
        props = props_through(
            node, 0, PhysicalProps(partitioned_on=(1,))
        )
        assert props.partitioned_on is None


class TestInterestingProperties:
    def test_reduce_announces_partitioning_to_producer(self, env):
        data = env.from_iterable([(0, 1)])
        mapped = data.map(lambda r: r).with_forwarded_fields({0: 0, 1: 1})
        reduced = mapped.reduce_by_key(0, lambda a, b: a)
        nodes = [data.node, mapped.node, reduced.node]
        interesting = propagate_interesting_properties(nodes)
        assert (0,) in interesting[mapped.node.id]
        # inherited through the map's forwarded fields down to the source
        assert (0,) in interesting[data.node.id]

    def test_join_announces_both_sides(self, env):
        left = env.from_iterable([(0, 1)])
        right = env.from_iterable([(0, 2)])
        joined = left.join(right, 0, 1, lambda l, r: l)
        nodes = [left.node, right.node, joined.node]
        interesting = propagate_interesting_properties(nodes)
        assert (0,) in interesting[left.node.id]
        assert (1,) in interesting[right.node.id]

    def test_feedback_pass_reaches_body_output(self, env):
        """The two-pass iteration trick: IPs arriving at the placeholder
        are re-seeded on the body output (Section 4.3)."""
        init = env.from_iterable([(0, 1)])
        it = env.iterate_bulk(init, max_iterations=3)
        ps = it.partial_solution
        reduced = ps.reduce_by_key(0, lambda a, b: a)
        out = reduced.map(lambda r: r).with_forwarded_fields({0: 0, 1: 1})
        it.close(out)
        from repro.dataflow.graph import iteration_body_nodes
        body = iteration_body_nodes(it._node)
        interesting = propagate_interesting_properties(
            body, feedback=(ps.node, out.node)
        )
        # the reduce wants (0,) at the placeholder; the feedback pass must
        # propagate that interest onto the body output and through the map
        assert (0,) in interesting[out.node.id]
        assert (0,) in interesting[reduced.node.id]
