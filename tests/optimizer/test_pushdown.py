"""Filter pushdown: legality fences and end-to-end effect.

``plan_pushdown`` may relocate a filter below a match's ship only when
the move is provably safe (deterministic predicate, declared read
fields, exactly one identity-forwarding side, the filter is the match's
sole consumer).  When it fires, results are bitwise identical and
strictly fewer records are shipped.
"""

import pytest

from repro import ExecutionEnvironment
from repro.dataflow.contracts import Contract
from repro.dataflow.graph import LogicalNode, LogicalPlan
from repro.optimizer.pushdown import plan_pushdown


def _is_even(rec):
    return rec[1] % 2 == 0


def _plan_for(dataset):
    sink = LogicalNode(Contract.SINK, [dataset.node], name="sink")
    return LogicalPlan([sink])


def _join(env, forward_left=True, forward_right=False):
    left = env.from_iterable([(i, i % 10) for i in range(40)], name="L")
    right = env.from_iterable([(i % 8, i) for i in range(24)], name="R")
    j = left.join(right, 0, 0, lambda l, r: (l[0], l[1], r[1]), name="j")
    if forward_left:
        j.with_forwarded_fields({0: 0, 1: 1}, input_index=0)
    if forward_right:
        j.with_forwarded_fields({0: 0, 1: 1}, input_index=1)
    return j


# ----------------------------------------------------------------------
# legality fences (pure planning, no execution)

def test_pushes_onto_the_forwarding_side(env):
    j = _join(env)
    f = j.filter(_is_even, fields=(1,), name="f")
    pushed = plan_pushdown(_plan_for(f))
    assert set(pushed) == {j.node.id}
    assert pushed[j.node.id].side == 0
    assert pushed[j.node.id].filter_node is f.node


def test_undeclared_read_fields_fence(env):
    f = _join(env).filter(_is_even, name="f")  # no fields=
    assert plan_pushdown(_plan_for(f)) == {}


def test_nondeterministic_fence(env):
    f = _join(env).filter(_is_even, fields=(1,), deterministic=False)
    assert plan_pushdown(_plan_for(f)) == {}


def test_ambiguous_both_sides_forward_fence(env):
    f = _join(env, forward_right=True).filter(_is_even, fields=(1,))
    assert plan_pushdown(_plan_for(f)) == {}


def test_unproven_fields_fence(env):
    # predicate reads field 2, which neither side identity-forwards
    f = _join(env).filter(lambda r: r[2] > 0, fields=(2,))
    assert plan_pushdown(_plan_for(f)) == {}


def test_second_consumer_fence(env):
    j = _join(env)
    f = j.filter(_is_even, fields=(1,))
    other = j.map(lambda r: r, name="other_consumer")
    sink_f = LogicalNode(Contract.SINK, [f.node], name="s1")
    sink_o = LogicalNode(Contract.SINK, [other.node], name="s2")
    assert plan_pushdown(LogicalPlan([sink_f, sink_o])) == {}


def test_filter_not_on_match_fence(env):
    src = env.from_iterable([(i, i) for i in range(10)], name="src")
    agg = src.sum_by_key(0, 1)
    f = agg.filter(_is_even, fields=(1,))
    assert plan_pushdown(_plan_for(f)) == {}


# ----------------------------------------------------------------------
# end-to-end: same answer, less shipping

def _run_pipeline(declare_fields):
    env = ExecutionEnvironment(parallelism=4)
    left = env.from_iterable(
        [(i, i % 10) for i in range(400)], name="L"
    )
    right = env.from_iterable([(i % 40, i) for i in range(200)], name="R")
    j = left.join(right, 0, 0,
                  lambda l, r: (l[0], l[1], r[1]), name="j")
    j.with_forwarded_fields({0: 0, 1: 1}, input_index=0)
    fields = (1,) if declare_fields else None
    f = j.filter(lambda rec: rec[1] < 5, fields=fields, name="sel")
    result = f.collect()
    shipped = (env.metrics.records_shipped_local
               + env.metrics.records_shipped_remote)
    pushed = dict(env.last_plan.pushed_filters)
    env.close()
    return result, shipped, pushed


def test_pushdown_preserves_results_and_reduces_shipping():
    base, shipped_base, pushed_base = _run_pipeline(declare_fields=False)
    opt, shipped_opt, pushed_opt = _run_pipeline(declare_fields=True)
    assert pushed_base == {}
    assert len(pushed_opt) == 1
    assert sorted(opt) == sorted(base)
    assert shipped_opt < shipped_base


def test_naive_plans_skip_pushdown(env_naive):
    left = env_naive.from_iterable([(i, i % 4) for i in range(20)], name="L")
    right = env_naive.from_iterable([(i, i) for i in range(20)], name="R")
    j = left.join(right, 0, 0, lambda l, r: (l[0], l[1], r[1]), name="j")
    j.with_forwarded_fields({0: 0, 1: 1}, input_index=0)
    f = j.filter(_is_even, fields=(1,))
    f.collect()
    assert env_naive.last_plan.pushed_filters == {}


def test_pushdown_inside_iteration_body_is_skipped(env):
    # only the outer region is rewritten; dynamic-path filters belong to
    # the adaptive re-optimizer, not the static pushdown pass
    verts = env.from_iterable([(i, i) for i in range(12)], name="v")
    edges = env.from_iterable(
        [(i, (i + 1) % 12) for i in range(12)], name="e"
    )
    it = env.iterate_delta(verts, verts, 0, 5, name="cc")
    j = it.workset.join(edges, 0, 0,
                        lambda w, e_: (e_[1], w[1]), name="expand")
    j.with_forwarded_fields({1: 1}, input_index=0)
    f = j.filter(lambda r: r[1] >= 0, fields=(1,), name="body_filter")
    m = f.min_by_key(0, 1)
    upd = m.cogroup(
        it.solution_set, 0, 0,
        lambda k, cand, cur: [c for c in cand if not cur or c[1] < cur[0][1]],
        inner=False, name="upd",
    )
    it.close(upd, upd).collect()
    assert env.last_plan.pushed_filters == {}
