"""Cost model sanity: monotonicity and strategy orderings."""

from repro.optimizer import costs
from repro.optimizer.costs import DEFAULT_WEIGHTS, CostWeights
from repro.runtime.plan import ShipKind


class TestShipCosts:
    def test_forward_is_free(self):
        assert costs.ship_cost(ShipKind.FORWARD, 1000, 4, DEFAULT_WEIGHTS) == 0

    def test_broadcast_dominates_partition(self):
        for parallelism in (2, 4, 16):
            bc = costs.ship_cost(ShipKind.BROADCAST, 1000, parallelism,
                                 DEFAULT_WEIGHTS)
            part = costs.ship_cost(ShipKind.PARTITION_HASH, 1000,
                                   parallelism, DEFAULT_WEIGHTS)
            assert bc > part

    def test_broadcast_small_beats_partition_large(self):
        bc_small = costs.ship_cost(ShipKind.BROADCAST, 10, 4, DEFAULT_WEIGHTS)
        part_large = costs.ship_cost(ShipKind.PARTITION_HASH, 100_000, 4,
                                     DEFAULT_WEIGHTS)
        assert bc_small < part_large

    def test_linear_in_size(self):
        small = costs.ship_cost(ShipKind.PARTITION_HASH, 100, 4,
                                DEFAULT_WEIGHTS)
        large = costs.ship_cost(ShipKind.PARTITION_HASH, 200, 4,
                                DEFAULT_WEIGHTS)
        assert abs(large - 2 * small) < 1e-9

    def test_gather_scales_with_parallelism_share(self):
        g = costs.ship_cost(ShipKind.GATHER, 100, 4, DEFAULT_WEIGHTS)
        assert 0 < g < costs.ship_cost(ShipKind.BROADCAST, 100, 4,
                                       DEFAULT_WEIGHTS)


class TestLocalCosts:
    def test_sort_superlinear(self):
        small = costs.sort_cost(1_000, 4, DEFAULT_WEIGHTS)
        large = costs.sort_cost(2_000, 4, DEFAULT_WEIGHTS)
        assert large > 2 * small * 0.99  # at least ~linear with log growth

    def test_hash_build_costs_more_than_probe(self):
        assert costs.hash_build_cost(100, DEFAULT_WEIGHTS) > (
            costs.probe_cost(100, DEFAULT_WEIGHTS)
        )

    def test_weights_are_configurable(self):
        free = CostWeights(network=0.0, per_record_overhead=0.0,
                           per_batch_overhead=0.0)
        assert costs.ship_cost(ShipKind.BROADCAST, 1000, 4, free) == 0.0


class TestFramingCosts:
    def test_forward_frames_nothing(self):
        assert costs.framing_cost(
            ShipKind.FORWARD, 1000, 4, DEFAULT_WEIGHTS
        ) == 0.0

    def test_record_at_a_time_pays_full_frame_price(self):
        batched = CostWeights(batch_size=1024.0)
        degenerate = CostWeights(batch_size=1.0)
        hash_batched = costs.framing_cost(
            ShipKind.PARTITION_HASH, 1000, 4, batched
        )
        hash_degenerate = costs.framing_cost(
            ShipKind.PARTITION_HASH, 1000, 4, degenerate
        )
        assert hash_degenerate > 100 * hash_batched

    def test_framing_linear_in_size(self):
        small = costs.framing_cost(ShipKind.PARTITION_HASH, 100, 4,
                                   DEFAULT_WEIGHTS)
        large = costs.framing_cost(ShipKind.PARTITION_HASH, 200, 4,
                                   DEFAULT_WEIGHTS)
        assert abs(large - 2 * small) < 1e-9

    def test_broadcast_frames_one_copy_per_destination(self):
        one = costs.framing_cost(ShipKind.PARTITION_HASH, 1000, 4,
                                 DEFAULT_WEIGHTS)
        bc = costs.framing_cost(ShipKind.BROADCAST, 1000, 4,
                                DEFAULT_WEIGHTS)
        assert abs(bc - 4 * one) < 1e-9
