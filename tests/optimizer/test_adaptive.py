"""Unit tests for the adaptive re-optimizer's pure pieces.

``decide`` is a pure function of the superstep's measured cardinality —
these tests pin its crossover behaviour without running an iteration.
``annotate_adaptive`` runs at compile time; the eligibility tests
compile real plans and inspect the recorded specs.
"""

import pytest

from repro import ExecutionEnvironment
from repro.optimizer.adaptive import HYSTERESIS, decide
from repro.optimizer.costs import CostWeights
from repro.runtime.plan import (
    BROADCAST,
    FORWARD,
    AdaptiveSpec,
    LocalStrategy,
    ShipKind,
    partition_on,
)

WEIGHTS = CostWeights()


def _spec(baseline, switch, est_build_size=100.0, force=None):
    return AdaptiveSpec(
        iteration_id=0, node_id=1, probe_index=0, build_index=1,
        baseline_kind=baseline, switch_kind=switch,
        probe_key=(0,), build_key=(0,),
        est_build_size=est_build_size, force_at_superstep=force,
    )


# ----------------------------------------------------------------------
# decide()

def test_force_fires_at_and_after_the_forced_superstep():
    spec = _spec(ShipKind.BROADCAST, ShipKind.PARTITION_HASH, force=3)
    assert not decide(spec, 10_000, 2, 4, WEIGHTS)
    assert decide(spec, 10_000, 3, 4, WEIGHTS)
    assert decide(spec, 0, 5, 4, WEIGHTS)  # force ignores the cost model


def test_force_works_for_the_unprofitable_direction_too():
    spec = _spec(ShipKind.PARTITION_HASH, ShipKind.BROADCAST, force=2)
    assert not decide(spec, 50, 1, 4, WEIGHTS)
    assert decide(spec, 50, 2, 4, WEIGHTS)


def test_hash_baseline_never_switches_honestly():
    spec = _spec(ShipKind.PARTITION_HASH, ShipKind.BROADCAST)
    for n in (1, 100, 10_000, 1_000_000):
        assert not decide(spec, n, 1, 4, WEIGHTS)


def test_zero_probe_cardinality_never_switches():
    spec = _spec(ShipKind.BROADCAST, ShipKind.PARTITION_HASH)
    assert not decide(spec, 0, 1, 4, WEIGHTS)


def test_broadcast_crossover_scales_with_workset():
    # per-superstep saving grows linearly with n while the switch
    # overhead is fixed, so large worksets switch and tiny ones don't
    spec = _spec(ShipKind.BROADCAST, ShipKind.PARTITION_HASH,
                 est_build_size=2_000.0)
    assert decide(spec, 5_000, 1, 4, WEIGHTS)
    assert not decide(spec, 1, 1, 4, WEIGHTS)


def test_late_supersteps_raise_the_bar():
    # the same measured workset that pays off early in the iteration
    # (many supersteps left to amortize over) does not pay off with one
    # superstep remaining
    spec = _spec(ShipKind.BROADCAST, ShipKind.PARTITION_HASH,
                 est_build_size=2_000.0)
    early = decide(spec, 700, 1, 4, WEIGHTS)
    late = decide(spec, 700, int(WEIGHTS.expected_iterations), 4, WEIGHTS)
    assert early and not late


def test_hysteresis_delays_marginal_switches():
    spec = _spec(ShipKind.BROADCAST, ShipKind.PARTITION_HASH,
                 est_build_size=2_000.0)
    # find an n that clears the bar without hysteresis but not with it
    marginal = next(
        n for n in range(1, 10_000)
        if decide(spec, n, 1, 4, WEIGHTS, hysteresis=0.0)
    )
    assert not decide(spec, marginal, 1, 4, WEIGHTS,
                      hysteresis=HYSTERESIS * 50)


# ----------------------------------------------------------------------
# annotate_adaptive (via env._compile on real programs)

def _cc_plan(env, override=None):
    edges = env.from_iterable(
        [(i, (i + 1) % 20) for i in range(20)], name="edges"
    )
    verts = env.from_iterable([(i, i) for i in range(20)], name="verts")
    it = env.iterate_delta(verts, verts, 0, 10, name="cc")
    j = it.workset.join(edges, 0, 0,
                        lambda w, e: (e[1], w[1]), name="expand")
    m = j.min_by_key(0, 1)
    upd = m.cogroup(
        it.solution_set, 0, 0,
        lambda k, cand, cur: [c for c in cand if not cur or c[1] < cur[0][1]],
        inner=False, name="upd",
    )
    if override is not None:
        env.plan_overrides[j.node.id] = override
    it.close(upd, upd).collect()
    return j.node, env.last_plan


def test_broadcast_probe_is_eligible(env):
    node, plan = _cc_plan(env, override={
        "ship": {0: BROADCAST, 1: FORWARD},
        "local": LocalStrategy.HASH_BUILD_RIGHT,
    })
    spec = plan.adaptive[node.id]
    assert spec.probe_index == 0 and spec.build_index == 1
    assert spec.baseline_kind is ShipKind.BROADCAST
    assert spec.switch_kind is ShipKind.PARTITION_HASH
    assert spec.probe_key == (0,) and spec.build_key == (0,)
    assert spec.est_build_size > 0


def test_hash_probe_needs_key_partitioned_build(env):
    node, plan = _cc_plan(env, override={
        "ship": {0: partition_on((0,)), 1: partition_on((0,))},
        "local": LocalStrategy.HASH_BUILD_RIGHT,
    })
    spec = plan.adaptive[node.id]
    assert spec.baseline_kind is ShipKind.PARTITION_HASH
    assert spec.switch_kind is ShipKind.BROADCAST


def test_broadcast_build_side_is_not_eligible(env):
    # build side replicated: there is no cached partitioned table to
    # keep, and the probe edge is FORWARD — nothing to re-price
    node, plan = _cc_plan(env, override={
        "ship": {0: FORWARD, 1: BROADCAST},
        "local": LocalStrategy.HASH_BUILD_RIGHT,
    })
    assert node.id not in plan.adaptive


def test_natural_plan_shape_is_not_eligible(env):
    # the optimizer's own choice for this program probes the *constant*
    # side against a broadcast-replica build — the dynamic edge is the
    # build, so there is nothing to switch
    node, plan = _cc_plan(env)
    assert node.id not in plan.adaptive


def test_naive_plan_spec_is_force_only(env_naive):
    # naive partition-both-sides plans are shape-B eligible; the spec is
    # recorded (plans are mode-independent) but its hash baseline never
    # switches honestly, so naive behaviour is unchanged
    node, plan = _cc_plan(env_naive)
    spec = plan.adaptive[node.id]
    assert spec.baseline_kind is ShipKind.PARTITION_HASH
    assert spec.force_at_superstep is None


def test_force_hook_is_captured_at_compile_time(env):
    edges = env.from_iterable(
        [(i, (i + 1) % 20) for i in range(20)], name="edges"
    )
    verts = env.from_iterable([(i, i) for i in range(20)], name="verts")
    it = env.iterate_delta(verts, verts, 0, 10, name="cc")
    j = it.workset.join(edges, 0, 0,
                        lambda w, e: (e[1], w[1]), name="expand")
    j.node.force_switch_at = 4
    m = j.min_by_key(0, 1)
    upd = m.cogroup(
        it.solution_set, 0, 0,
        lambda k, cand, cur: [c for c in cand if not cur or c[1] < cur[0][1]],
        inner=False, name="upd",
    )
    env.plan_overrides[j.node.id] = {
        "ship": {0: BROADCAST, 1: FORWARD},
        "local": LocalStrategy.HASH_BUILD_RIGHT,
    }
    it.close(upd, upd).collect()
    assert env.last_plan.adaptive[j.node.id].force_at_superstep == 4
