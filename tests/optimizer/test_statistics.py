"""Cardinality estimation rules."""

from repro import ExecutionEnvironment
from repro.optimizer.statistics import Statistics


def make(env=None):
    return (env or ExecutionEnvironment(2)), Statistics()


class TestEstimates:
    def test_source_exact(self):
        env, stats = make()
        data = env.from_iterable([(i,) for i in range(7)])
        assert stats.size(data.node) == 7.0

    def test_map_preserves(self):
        env, stats = make()
        data = env.from_iterable([(i,) for i in range(10)])
        assert stats.size(data.map(lambda r: r).node) == 10.0

    def test_filter_halves(self):
        env, stats = make()
        data = env.from_iterable([(i,) for i in range(10)])
        assert stats.size(data.filter(lambda r: True).node) == 5.0

    def test_flat_map_expands(self):
        env, stats = make()
        data = env.from_iterable([(i,) for i in range(10)])
        assert stats.size(data.flat_map(lambda r: [r]).node) == 20.0

    def test_reduce_compresses(self):
        env, stats = make()
        data = env.from_iterable([(i % 2, i) for i in range(10)])
        node = data.reduce_by_key(0, lambda a, b: a).node
        assert stats.size(node) == 5.0

    def test_union_adds(self):
        env, stats = make()
        a = env.from_iterable([(1,)] * 4)
        b = env.from_iterable([(2,)] * 6)
        assert stats.size(a.union(b).node) == 10.0

    def test_cross_multiplies(self):
        env, stats = make()
        a = env.from_iterable([(1,)] * 4)
        b = env.from_iterable([(2,)] * 6)
        assert stats.size(a.cross(b, lambda x, y: x).node) == 24.0

    def test_join_fk_assumption(self):
        env, stats = make()
        a = env.from_iterable([(i, 1) for i in range(100)])
        b = env.from_iterable([(i, 2) for i in range(10)])
        node = a.join(b, 0, 0, lambda l, r: l).node
        assert stats.size(node) == 100.0

    def test_user_hint_wins(self):
        env, stats = make()
        data = env.from_iterable([(i,) for i in range(10)])
        hinted = data.flat_map(lambda r: [r]).with_estimated_size(999)
        assert stats.size(hinted.node) == 999.0

    def test_memoization(self):
        env, stats = make()
        data = env.from_iterable([(i,) for i in range(10)])
        node = data.map(lambda r: r).node
        assert stats.size(node) == stats.size(node)

    def test_placeholder_sizes(self):
        env = ExecutionEnvironment(2)
        init = env.from_iterable([(i,) for i in range(10)])
        it = env.iterate_bulk(init, max_iterations=2)
        stats = Statistics(
            placeholder_sizes={it.partial_solution.node.id: 42.0}
        )
        assert stats.size(it.partial_solution.node) == 42.0


class TestChainedFilterComposition:
    """Stacked filters compose with exponential backoff, not 0.5^n."""

    def test_four_stacked_filters_compose_to_about_a_quarter(self):
        env, stats = make()
        data = env.from_iterable([(i,) for i in range(1000)])
        chain = data
        for _ in range(4):
            chain = chain.filter(lambda r: True)
        # 0.5^(0.5^0) * 0.5^(0.5^1) * 0.5^(0.5^2) * 0.5^(0.5^3) ≈ 0.273
        estimate = stats.size(chain.node)
        assert 250.0 < estimate < 300.0
        assert estimate != 1000.0 * 0.5 ** 4  # the old double-charging

    def test_map_between_filters_keeps_the_run_alive(self):
        env, stats = make()
        data = env.from_iterable([(i,) for i in range(1000)])
        two = data.filter(lambda r: True).map(lambda r: r).filter(
            lambda r: True
        )
        # maps are part of the same record-wise run: the second filter
        # is damped (0.5^0.5 ≈ 0.707), not charged another full 0.5
        assert stats.size(two.node) == 1000.0 * 0.5 * 0.5 ** 0.5

    def test_reduce_breaks_the_run(self):
        env, stats = make()
        data = env.from_iterable([(i, i) for i in range(1000)])
        below = data.filter(lambda r: True)
        above = below.sum_by_key(0, 1).filter(lambda r: True)
        # the aggregation dams the chain: the downstream filter starts a
        # fresh run and is charged the full default again
        assert stats.size(above.node) == (1000.0 * 0.5) * 0.5 * 0.5


class TestObservedStats:
    """Measured cardinalities beat every static rule."""

    def test_observed_size_is_preferred(self):
        env, _ = make()
        data = env.from_iterable([(i,) for i in range(10)], name="src")
        node = data.map(lambda r: r, name="m").node
        stats = Statistics(observed={"m": 123.0})
        assert stats.size(node) == 123.0

    def test_observed_selectivity_scales_with_fresh_input(self):
        env, _ = make()
        data = env.from_iterable([(i,) for i in range(200)], name="src")
        f = data.filter(lambda r: True, name="sel").node
        # no observed output size for "sel", but a measured ratio: it
        # applies to the *current* input size, not the old one
        stats = Statistics(selectivities={"sel": 0.1})
        assert stats.size(f) == 200.0 * 0.1

    def test_filter_selectivity_helper(self):
        env, _ = make()
        data = env.from_iterable([(i,) for i in range(10)])
        f = data.filter(lambda r: True, name="sel").node
        assert Statistics().filter_selectivity(f) == 0.5
        assert Statistics(
            selectivities={"sel": 0.25}
        ).filter_selectivity(f) == 0.25

    def test_user_hint_beats_static_but_not_observed(self):
        env, _ = make()
        data = env.from_iterable([(i,) for i in range(10)], name="src")
        hinted = data.map(lambda r: r, name="m").with_estimated_size(999)
        assert Statistics().size(hinted.node) == 999.0
        # a measurement from a real run overrides even the user's hint
        assert Statistics(observed={"m": 42.0}).size(hinted.node) == 42.0
