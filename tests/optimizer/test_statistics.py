"""Cardinality estimation rules."""

from repro import ExecutionEnvironment
from repro.optimizer.statistics import Statistics


def make(env=None):
    return (env or ExecutionEnvironment(2)), Statistics()


class TestEstimates:
    def test_source_exact(self):
        env, stats = make()
        data = env.from_iterable([(i,) for i in range(7)])
        assert stats.size(data.node) == 7.0

    def test_map_preserves(self):
        env, stats = make()
        data = env.from_iterable([(i,) for i in range(10)])
        assert stats.size(data.map(lambda r: r).node) == 10.0

    def test_filter_halves(self):
        env, stats = make()
        data = env.from_iterable([(i,) for i in range(10)])
        assert stats.size(data.filter(lambda r: True).node) == 5.0

    def test_flat_map_expands(self):
        env, stats = make()
        data = env.from_iterable([(i,) for i in range(10)])
        assert stats.size(data.flat_map(lambda r: [r]).node) == 20.0

    def test_reduce_compresses(self):
        env, stats = make()
        data = env.from_iterable([(i % 2, i) for i in range(10)])
        node = data.reduce_by_key(0, lambda a, b: a).node
        assert stats.size(node) == 5.0

    def test_union_adds(self):
        env, stats = make()
        a = env.from_iterable([(1,)] * 4)
        b = env.from_iterable([(2,)] * 6)
        assert stats.size(a.union(b).node) == 10.0

    def test_cross_multiplies(self):
        env, stats = make()
        a = env.from_iterable([(1,)] * 4)
        b = env.from_iterable([(2,)] * 6)
        assert stats.size(a.cross(b, lambda x, y: x).node) == 24.0

    def test_join_fk_assumption(self):
        env, stats = make()
        a = env.from_iterable([(i, 1) for i in range(100)])
        b = env.from_iterable([(i, 2) for i in range(10)])
        node = a.join(b, 0, 0, lambda l, r: l).node
        assert stats.size(node) == 100.0

    def test_user_hint_wins(self):
        env, stats = make()
        data = env.from_iterable([(i,) for i in range(10)])
        hinted = data.flat_map(lambda r: [r]).with_estimated_size(999)
        assert stats.size(hinted.node) == 999.0

    def test_memoization(self):
        env, stats = make()
        data = env.from_iterable([(i,) for i in range(10)])
        node = data.map(lambda r: r).node
        assert stats.size(node) == stats.size(node)

    def test_placeholder_sizes(self):
        env = ExecutionEnvironment(2)
        init = env.from_iterable([(i,) for i in range(10)])
        it = env.iterate_bulk(init, max_iterations=2)
        stats = Statistics(
            placeholder_sizes={it.partial_solution.node.id: 42.0}
        )
        assert stats.size(it.partial_solution.node) == 42.0
