"""Dam placement rules of Section 4.2 on representative plans."""

from repro import ExecutionEnvironment
from repro.optimizer.dams import analyze_dams, materializing_inputs
from repro.dataflow.contracts import Contract
from repro.dataflow.graph import LogicalNode, LogicalPlan
from repro.optimizer import optimize_plan
from repro.runtime.plan import LocalStrategy


def compile_for(env, dataset):
    sink = LogicalNode(Contract.SINK, [dataset.node])
    return optimize_plan(LogicalPlan([sink]).validate(), env)


def pagerank_like(env, with_termination):
    """The Figure 3 shape: join(I, A) -> reduce -> O, with optional T."""
    ranks = env.from_iterable([(i, 1.0) for i in range(50)], name="p")
    matrix = env.from_iterable(
        [(i % 50, (i * 7) % 50, 0.1) for i in range(600)], name="A"
    )
    it = env.iterate_bulk(ranks, max_iterations=10)
    joined = it.partial_solution.join(
        matrix, 0, 1, lambda r, a: (a[0], r[1] * a[2])
    ).with_forwarded_fields({0: 0}, input_index=1)
    new = joined.reduce_by_key(0, lambda a, b: (a[0], a[1] + b[1]))
    termination = None
    if with_termination:
        termination = new.join(
            it.partial_solution, 0, 0,
            lambda n, o: (n[0],) if abs(n[1] - o[1]) > 1e-6 else None,
        )
    return it.close(new, termination=termination), it._node


class TestMaterializingInputs:
    def test_hash_join_builds_one_side(self, env):
        left = env.from_iterable([(1, 1)])
        right = env.from_iterable([(1, 2)])
        node = left.join(right, 0, 0, lambda l, r: l).node
        assert materializing_inputs(node, LocalStrategy.HASH_BUILD_LEFT) == (0,)
        assert materializing_inputs(node, LocalStrategy.HASH_BUILD_RIGHT) == (1,)
        assert materializing_inputs(node, LocalStrategy.SORT_MERGE) == (0, 1)

    def test_streaming_operators_materialize_nothing(self, env):
        node = env.from_iterable([(1,)]).map(lambda r: r).node
        assert materializing_inputs(node, LocalStrategy.NONE) == ()

    def test_grouping_always_materializes(self, env):
        node = env.from_iterable([(1, 1)]).reduce_group(
            0, lambda k, g: g
        ).node
        assert materializing_inputs(node, LocalStrategy.NONE) == (0,)


class TestPlacementRules:
    def test_pagerank_with_termination_needs_no_output_dam_if_join_builds_i(self):
        """When the join materializes the partial solution (builds its
        hash table from I), that materialization point serves as the dam."""
        env = ExecutionEnvironment(4)
        result, iteration = pagerank_like(env, with_termination=True)
        exec_plan = compile_for(env, result)
        # force every consumer of I to build its table over I
        join_node = iteration.body_output.inputs[0]
        exec_plan.annotation(join_node).local = LocalStrategy.HASH_BUILD_LEFT
        exec_plan.annotation(iteration.termination).local = (
            LocalStrategy.HASH_BUILD_RIGHT  # input 1 is the placeholder
        )
        report = analyze_dams(iteration, exec_plan)
        assert not report.output_dam

    def test_pagerank_with_termination_and_streamed_i_needs_output_dam(self):
        env = ExecutionEnvironment(4)
        result, iteration = pagerank_like(env, with_termination=True)
        exec_plan = compile_for(env, result)
        join_node = iteration.body_output.inputs[0]
        # the join builds over A and *streams* the partial solution
        exec_plan.annotation(join_node).local = LocalStrategy.HASH_BUILD_RIGHT
        report = analyze_dams(iteration, exec_plan)
        assert report.output_dam
        assert 0 in exec_plan.annotation(iteration.body_output).dams

    def test_no_termination_means_no_output_dam(self):
        env = ExecutionEnvironment(4)
        result, iteration = pagerank_like(env, with_termination=False)
        exec_plan = compile_for(env, result)
        report = analyze_dams(iteration, exec_plan)
        assert not report.output_dam

    def test_feedback_dam_for_fully_pipelined_body(self):
        """A body of pure streaming operators has no materialization
        point: the feedback channel itself must dam (Rule 2)."""
        env = ExecutionEnvironment(4)
        init = env.from_iterable([(0,)])
        it = env.iterate_bulk(init, max_iterations=3)
        body = it.partial_solution.map(lambda r: (r[0] + 1,)) \
            .filter(lambda r: True)
        result = it.close(body)
        exec_plan = compile_for(env, result)
        report = analyze_dams(it._node, exec_plan)
        assert report.num_materializing == 0
        assert report.feedback_dam

    def test_two_materialization_points_release_feedback_dam(self):
        env = ExecutionEnvironment(4)
        result, iteration = pagerank_like(env, with_termination=False)
        exec_plan = compile_for(env, result)
        join_node = iteration.body_output.inputs[0]
        exec_plan.annotation(join_node).local = LocalStrategy.HASH_BUILD_LEFT
        exec_plan.annotation(iteration.body_output).local = (
            LocalStrategy.HASH_AGGREGATE
        )
        report = analyze_dams(iteration, exec_plan)
        assert report.num_materializing >= 2
        assert not report.feedback_dam
