"""``DataSet.explain()`` and the DOT renderer surface optimizer-v2 state."""

import pytest

from repro import ExecutionEnvironment
from repro.optimizer.visualize import plan_to_dot
from repro.runtime.plan import BROADCAST, FORWARD, LocalStrategy


def test_explain_shows_strategies_and_estimates(env):
    left = env.from_iterable([(i, i % 5) for i in range(50)], name="L")
    right = env.from_iterable([(i, i) for i in range(10)], name="R")
    j = left.join(right, 0, 0, lambda l, r: (l[0], l[1], r[1]), name="j")
    report = j.explain()
    assert "j (match)" in report
    assert "est=" in report
    assert "in0 ← L" in report and "in1 ← R" in report
    # compiling for explain() must not execute anything
    assert env.metrics.records_processed == {}


def test_explain_marks_pushdown(env):
    left = env.from_iterable([(i, i % 5) for i in range(50)], name="L")
    right = env.from_iterable([(i, i) for i in range(10)], name="R")
    j = left.join(right, 0, 0, lambda l, r: (l[0], l[1], r[1]), name="j")
    j.with_forwarded_fields({0: 0, 1: 1}, input_index=0)
    f = j.filter(lambda r: r[1] == 0, fields=(1,), name="sel")
    report = f.explain()
    assert "[pushdown:sel]" in report


def test_explain_marks_adaptive_candidates_and_iteration_mode(env):
    edges = env.from_iterable(
        [(i, (i + 1) % 20) for i in range(20)], name="edges"
    )
    verts = env.from_iterable([(i, i) for i in range(20)], name="verts")
    it = env.iterate_delta(verts, verts, 0, 10, name="cc")
    j = it.workset.join(edges, 0, 0,
                        lambda w, e: (e[1], w[1]), name="expand")
    m = j.min_by_key(0, 1)
    upd = m.cogroup(
        it.solution_set, 0, 0,
        lambda k, cand, cur: [c for c in cand if not cur or c[1] < cur[0][1]],
        inner=False, name="upd",
    )
    env.plan_overrides[j.node.id] = {
        "ship": {0: BROADCAST, 1: FORWARD},
        "local": LocalStrategy.HASH_BUILD_RIGHT,
    }
    report = it.close(upd, upd).explain()
    assert "cc body (mode=superstep):" in report
    assert "[adaptive:broadcast→partition_hash]" in report


def test_explain_shows_observed_cardinalities_after_a_run(env):
    src = env.from_iterable([(i, i % 10) for i in range(100)], name="src")
    kept = src.filter(lambda r: r[1] < 3, name="keep3")
    probe = kept.map(lambda r: r, name="probe")
    probe.collect()
    report = probe.explain()
    assert "obs=100" in report  # src measured by its filter consumer
    assert "obs=30" in report   # keep3 measured by its map consumer


def test_plan_to_dot_renders_annotated_plan(env):
    left = env.from_iterable([(i, i % 5) for i in range(50)], name="L")
    right = env.from_iterable([(i, i) for i in range(10)], name="R")
    j = left.join(right, 0, 0, lambda l, r: (l[0], l[1], r[1]), name="j")
    j.collect()
    plan = env.last_plan
    dot = plan_to_dot(plan.logical_plan, plan, env)
    assert dot.startswith("digraph plan {") and dot.endswith("}")
    assert "est=" in dot
