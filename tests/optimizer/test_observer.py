"""CardinalityObserver: measured stats feed the next compilation.

The observer runs driver-side at ingest time only, derives operator
output sizes / filter selectivities / distinct-key counts from the
logical counters, and a warm environment's next plan prefers those
measurements over the textbook defaults.
"""

import pytest

from repro import ExecutionEnvironment
from repro.optimizer.statistics import Statistics
from repro.runtime.config import RuntimeConfig


def _pipeline(env):
    # every operator whose cardinality we want observed feeds exactly
    # one record-wise consumer (the observer's attribution rule)
    src = env.from_iterable([(i, i % 10) for i in range(100)], name="src")
    kept = src.filter(lambda r: r[1] < 3, name="keep3")
    probe = kept.map(lambda r: r, name="probe")
    agg = probe.sum_by_key(0, 1, name="agg")
    return agg.map(lambda r: r, name="out")


def test_observer_measures_sizes_and_selectivity(env):
    _pipeline(env).collect()
    obs = env.observer
    assert obs.runs == 1
    # src's sole consumer is the filter: processed(keep3) == |src|
    assert obs.sizes["src"] == 100.0
    # the filter keeps 30 of 100 records (its consumer "probe" saw 30)
    assert obs.sizes["keep3"] == 30.0
    assert obs.selectivities["keep3"] == pytest.approx(0.3)
    # the aggregation's output size is its input's distinct-key count
    assert obs.sizes["agg"] == 30.0
    assert obs.key_counts["agg"] == 30


def test_multi_consumer_counts_are_not_attributed(env):
    src = env.from_iterable([(i, i) for i in range(50)], name="fanout")
    a = src.map(lambda r: r, name="a")
    b = src.map(lambda r: r, name="b")
    a.union(b).collect()
    # two consumers: records_processed cannot be attributed to one edge
    assert "fanout" not in env.observer.sizes


def test_cross_run_delta_not_cumulative_totals(env):
    _pipeline(env).collect()
    _pipeline(env).collect()
    obs = env.observer
    assert obs.runs == 2
    # metrics accumulate across runs; the observer must difference them,
    # so the second run observes 100 again, not 200
    assert obs.sizes["src"] == 100.0
    assert obs.selectivities["keep3"] == pytest.approx(0.3)


def test_warm_environment_prefers_observed_stats(env):
    ds = _pipeline(env)
    cold = Statistics()
    assert cold.size(ds.node.inputs[0]) != 30.0  # textbook guess
    ds.collect()
    warm = Statistics(
        observed=env.observer.sizes,
        selectivities=env.observer.selectivities,
    )
    # "agg" was measured at 30 records; the warm estimator uses it
    agg_node = ds.node.inputs[0]
    assert agg_node.name == "agg"
    assert warm.size(agg_node) == 30.0


def test_iteration_bodies_are_excluded(env, small_random):
    edges = env.from_iterable(small_random.edge_tuples(), name="edges")
    n = small_random.num_vertices
    verts = env.from_iterable([(i, i) for i in range(n)], name="verts")
    it = env.iterate_delta(verts, verts, 0, 30, name="cc")
    j = it.workset.join(edges, 0, 0,
                        lambda w, e: (e[1], w[1]), name="expand")
    body_filter = j.filter(lambda r: True, fields=(0,), name="bodyf")
    m = body_filter.min_by_key(0, 1, name="minlabel")
    upd = m.cogroup(
        it.solution_set, 0, 0,
        lambda k, cand, cur: [c for c in cand if not cur or c[1] < cur[0][1]],
        inner=False, name="upd",
    )
    it.close(upd, upd).collect()
    obs = env.observer
    # body operators are summed over supersteps — never ingested as
    # static sizes; the trajectory is kept separately for inspection
    assert "expand" not in obs.sizes
    assert "bodyf" not in obs.selectivities
    assert len(obs.superstep_log) >= 2
    assert obs.superstep_log[0][0] == 1  # supersteps are 1-indexed


def test_disabled_adaptivity_has_no_observer():
    env = ExecutionEnvironment(
        parallelism=2, config=RuntimeConfig(adaptive=False)
    )
    _pipeline(env).collect()
    assert getattr(env, "observer", None) is None
    env.close()


def test_snapshot_is_plain_data(env):
    _pipeline(env).collect()
    snap = env.observer.snapshot()
    assert snap["runs"] == 1
    assert snap["sizes"]["keep3"] == 30.0
    assert snap["selectivities"]["keep3"] == pytest.approx(0.3)
