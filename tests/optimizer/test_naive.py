"""The rule-based fallback planner."""

import pytest

from repro import ExecutionEnvironment
from repro.dataflow.contracts import Contract
from repro.dataflow.graph import LogicalNode, LogicalPlan
from repro.optimizer.naive import naive_plan
from repro.runtime.plan import LocalStrategy, ShipKind


def plan_for(env, dataset):
    sink = LogicalNode(Contract.SINK, [dataset.node])
    return naive_plan(LogicalPlan([sink]).validate(), env.parallelism), sink


@pytest.fixture
def env():
    return ExecutionEnvironment(4, optimize=False)


class TestDefaultStrategies:
    def test_join_partitions_both_sides(self, env):
        left = env.from_iterable([(1, 2)])
        right = env.from_iterable([(1, 3)])
        joined = left.join(right, 0, 0, lambda l, r: l)
        plan, _sink = plan_for(env, joined)
        ann = plan.annotations[joined.node.id]
        assert ann.ship[0].kind is ShipKind.PARTITION_HASH
        assert ann.ship[1].kind is ShipKind.PARTITION_HASH
        assert ann.local is LocalStrategy.HASH_BUILD_RIGHT

    def test_reduce_gets_combiner(self, env):
        data = env.from_iterable([(1, 2)])
        reduced = data.reduce_by_key(0, lambda a, b: a)
        plan, _sink = plan_for(env, reduced)
        ann = plan.annotations[reduced.node.id]
        assert ann.combiner
        assert ann.local is LocalStrategy.HASH_AGGREGATE

    def test_reduce_group_has_no_combiner(self, env):
        data = env.from_iterable([(1, 2)])
        grouped = data.reduce_group(0, lambda k, g: g)
        plan, _sink = plan_for(env, grouped)
        assert not plan.annotations[grouped.node.id].combiner

    def test_cross_broadcasts_right(self, env):
        left = env.from_iterable([(1,)])
        right = env.from_iterable([(2,)])
        crossed = left.cross(right, lambda a, b: a)
        plan, _sink = plan_for(env, crossed)
        ann = plan.annotations[crossed.node.id]
        assert ann.ship[1].kind is ShipKind.BROADCAST

    def test_sink_gathers(self, env):
        data = env.from_iterable([(1,)])
        plan, sink = plan_for(env, data)
        assert plan.annotations[sink.id].ship[0].kind is ShipKind.GATHER

    def test_map_forwards(self, env):
        data = env.from_iterable([(1,)]).map(lambda r: r)
        plan, _sink = plan_for(env, data)
        assert plan.annotations[data.node.id].ship[0].kind is ShipKind.FORWARD

    def test_iteration_bodies_annotated(self, env):
        init = env.from_iterable([(0, 0)])
        table = env.from_iterable([(0, 1)])
        it = env.iterate_bulk(init, max_iterations=2)
        body = it.partial_solution.join(table, 0, 0, lambda a, b: a)
        result = it.close(body)
        plan, _sink = plan_for(env, result)
        assert body.node.id in plan.annotations

    def test_delta_modes_resolved(self, env):
        s0 = env.from_iterable([(0, 0)])
        w0 = env.from_iterable([(0, 1)])
        it = env.iterate_delta(s0, w0, 0, max_iterations=2)
        delta = it.workset.join(
            it.solution_set, 0, 0, lambda c, s: None
        ).with_forwarded_fields({0: 0})
        next_ws = delta.map(lambda r: r).with_forwarded_fields({0: 0})
        result = it.close(delta, next_ws, mode="auto")
        plan, _sink = plan_for(env, result)
        assert plan.iteration_modes[result.node.id] == "microstep"


class TestEndToEnd:
    def test_naive_environment_runs_everything(self):
        """optimize=False must execute all workloads correctly."""
        from repro.algorithms import connected_components as cc
        from repro.graphs import erdos_renyi
        graph = erdos_renyi(60, 3.0, seed=1)
        env = ExecutionEnvironment(4, optimize=False)
        assert cc.cc_incremental(env, graph, "match") == (
            cc.cc_ground_truth(graph)
        )
        env = ExecutionEnvironment(4, optimize=False)
        assert cc.cc_bulk(env, graph) == cc.cc_ground_truth(graph)
