"""DOT rendering of plans."""

from repro import ExecutionEnvironment
from repro.dataflow.contracts import Contract
from repro.dataflow.graph import LogicalNode, LogicalPlan
from repro.optimizer import optimize_plan
from repro.optimizer.visualize import plan_to_dot


def compiled(env, dataset):
    sink = LogicalNode(Contract.SINK, [dataset.node])
    plan = LogicalPlan([sink]).validate()
    return plan, optimize_plan(plan, env)


class TestDot:
    def test_plain_plan_structure(self):
        env = ExecutionEnvironment(2)
        data = env.from_iterable([(1, 2)], name="numbers")
        reduced = data.reduce_by_key(0, lambda a, b: a, name="dedupe")
        plan, exec_plan = compiled(env, reduced)
        dot = plan_to_dot(plan)
        assert dot.startswith("digraph plan {")
        assert dot.rstrip().endswith("}")
        assert "numbers" in dot
        assert "dedupe" in dot
        assert "->" in dot

    def test_annotations_appear_on_nodes_and_edges(self):
        env = ExecutionEnvironment(4)
        left = env.from_iterable([(i, i) for i in range(50)])
        right = env.from_iterable([(i, i) for i in range(50)])
        joined = left.join(right, 0, 0, lambda l, r: l, name="the_join")
        plan, exec_plan = compiled(env, joined)
        dot = plan_to_dot(plan, exec_plan)
        assert "hash_build" in dot          # local strategy on the node
        assert "partition[0]" in dot        # ship strategy on the edge

    def test_iteration_body_rendered_as_cluster(self):
        env = ExecutionEnvironment(2)
        init = env.from_iterable([(0,)], name="init")
        it = env.iterate_bulk(init, max_iterations=3, name="loop")
        body = it.partial_solution.map(lambda r: (r[0] + 1,), name="step")
        result = it.close(body)
        plan, exec_plan = compiled(env, result)
        dot = plan_to_dot(plan, exec_plan)
        assert "subgraph cluster_" in dot
        assert "loop body" in dot
        assert "step" in dot
        assert "partial_solution" in dot

    def test_quotes_escaped(self):
        env = ExecutionEnvironment(2)
        data = env.from_iterable([(1,)]).map(
            lambda r: r
        ).name('weird "name"')
        plan, exec_plan = compiled(env, data)
        dot = plan_to_dot(plan, exec_plan)
        assert '\\"name\\"' in dot

    def test_dot_is_parseable_shape(self):
        """Every non-brace line is a node, edge, or attribute statement."""
        env = ExecutionEnvironment(2)
        data = env.from_iterable([(1, 2)])
        out = data.reduce_by_key(0, lambda a, b: a)
        plan, exec_plan = compiled(env, out)
        for line in plan_to_dot(plan, exec_plan).splitlines()[1:-1]:
            stripped = line.strip()
            if not stripped or stripped in ("}",):
                continue
            assert (
                stripped.endswith(";")
                or stripped.endswith("{")
            ), line
