"""Cost-based plan choices: the optimizer must pick sensible strategies
and never change semantics."""

import pytest

from repro import ExecutionEnvironment
from repro.optimizer import optimize_plan
from repro.optimizer.costs import CostWeights
from repro.runtime.plan import LocalStrategy, ShipKind


def compiled_annotation(env, dataset, node):
    """Compile the plan for ``dataset`` and return ``node``'s annotation."""
    from repro.dataflow.graph import LogicalNode, LogicalPlan
    from repro.dataflow.contracts import Contract
    sink = LogicalNode(Contract.SINK, [dataset.node])
    exec_plan = optimize_plan(LogicalPlan([sink]).validate(), env)
    return exec_plan.annotations[node.id], exec_plan


class TestJoinStrategyChoice:
    def test_tiny_side_gets_broadcast(self):
        env = ExecutionEnvironment(4)
        tiny = env.from_iterable([(i, i) for i in range(3)])
        big = env.from_iterable([(i % 3, i) for i in range(5000)])
        joined = tiny.join(big, 0, 0, lambda l, r: r)
        ann, _plan = compiled_annotation(env, joined, joined.node)
        ships = {idx: s.kind for idx, s in ann.ship.items()}
        assert ships[0] is ShipKind.BROADCAST
        assert ships[1] is not ShipKind.BROADCAST

    def test_equal_sides_get_repartitioned(self):
        env = ExecutionEnvironment(4)
        left = env.from_iterable([(i, i) for i in range(3000)])
        right = env.from_iterable([(i, i * 2) for i in range(3000)])
        joined = left.join(right, 0, 0, lambda l, r: l)
        ann, _plan = compiled_annotation(env, joined, joined.node)
        kinds = {s.kind for s in ann.ship.values()}
        assert kinds == {ShipKind.PARTITION_HASH}

    def test_join_after_reduce_reuses_partitioning(self):
        env = ExecutionEnvironment(4)
        left = (
            env.from_iterable([(i % 100, i) for i in range(3000)])
            .reduce_by_key(0, lambda a, b: a)
            .with_forwarded_fields({0: 0, 1: 1})
        )
        right = env.from_iterable([(i, i) for i in range(3000)])
        joined = left.join(right, 0, 0, lambda l, r: l)
        ann, _plan = compiled_annotation(env, joined, joined.node)
        # the reduced side is already hash-partitioned on the join key
        assert ann.ship[0].kind is ShipKind.FORWARD

    def test_build_side_is_smaller_side(self):
        env = ExecutionEnvironment(4)
        small = env.from_iterable([(i, i) for i in range(2000)])
        large = env.from_iterable([(i % 2000, i) for i in range(20000)])
        joined = small.join(large, 0, 0, lambda l, r: l)
        ann, _plan = compiled_annotation(env, joined, joined.node)
        assert ann.local in (
            LocalStrategy.HASH_BUILD_LEFT, LocalStrategy.SORT_MERGE,
        )


class TestReduceChoice:
    def test_shuffled_reduce_uses_combiner(self):
        env = ExecutionEnvironment(4)
        data = env.from_iterable([(i % 5, 1) for i in range(1000)])
        reduced = data.reduce_by_key(0, lambda a, b: (a[0], a[1] + b[1]))
        ann, _plan = compiled_annotation(env, reduced, reduced.node)
        if ann.ship[0].kind is ShipKind.PARTITION_HASH:
            assert ann.combiner

    def test_pre_partitioned_reduce_stays_local(self):
        env = ExecutionEnvironment(4)
        data = env.from_iterable([(i % 5, 1) for i in range(1000)])
        once = data.reduce_by_key(0, lambda a, b: (a[0], a[1] + b[1]))
        once.with_forwarded_fields({0: 0, 1: 1})
        twice = once.reduce_by_key(0, lambda a, b: (a[0], max(a[1], b[1])))
        ann, _plan = compiled_annotation(env, twice, twice.node)
        assert ann.ship[0].kind is ShipKind.FORWARD


class TestCrossChoice:
    def test_smaller_side_broadcast(self):
        env = ExecutionEnvironment(4)
        small = env.from_iterable([(i,) for i in range(5)])
        large = env.from_iterable([(i,) for i in range(1000)])
        crossed = large.cross(small, lambda a, b: (a[0], b[0]))
        ann, _plan = compiled_annotation(env, crossed, crossed.node)
        assert ann.ship[1].kind is ShipKind.BROADCAST
        assert ann.ship[0].kind is ShipKind.FORWARD


class TestIterationCosting:
    def _pagerank_like(self, env, vector_size, matrix_size):
        ranks = env.from_iterable(
            [(i, 1.0) for i in range(vector_size)], name="p"
        )
        matrix = env.from_iterable(
            [(i % vector_size, i % vector_size, 0.1)
             for i in range(matrix_size)],
            name="A",
        )
        it = env.iterate_bulk(ranks, max_iterations=20)
        joined = it.partial_solution.join(
            matrix, 0, 1, lambda r, a: (a[0], r[1] * a[2])
        ).with_forwarded_fields({0: 0}, input_index=1)
        new = joined.reduce_by_key(0, lambda a, b: (a[0], a[1] + b[1]))
        new.with_forwarded_fields({0: 0, 1: 1})
        result = it.close(new)
        return result, joined.node

    def test_small_vector_broadcast_plan(self):
        """Figure 4, left: with a small rank vector the optimizer should
        broadcast it and leave the big matrix in place."""
        env = ExecutionEnvironment(4)
        result, join_node = self._pagerank_like(env, 20, 40000)
        from repro.dataflow.graph import LogicalNode, LogicalPlan
        from repro.dataflow.contracts import Contract
        sink = LogicalNode(Contract.SINK, [result.node])
        exec_plan = optimize_plan(LogicalPlan([sink]).validate(), env)
        ann = exec_plan.annotations[join_node.id]
        assert ann.ship[0].kind is ShipKind.BROADCAST

    def test_large_vector_partition_plan(self):
        """Figure 4, right: with a large rank vector broadcasting is too
        expensive; both sides are partitioned."""
        env = ExecutionEnvironment(4)
        result, join_node = self._pagerank_like(env, 40000, 80000)
        from repro.dataflow.graph import LogicalNode, LogicalPlan
        from repro.dataflow.contracts import Contract
        sink = LogicalNode(Contract.SINK, [result.node])
        exec_plan = optimize_plan(LogicalPlan([sink]).validate(), env)
        ann = exec_plan.annotations[join_node.id]
        assert ann.ship[0].kind is ShipKind.PARTITION_HASH
        assert ann.ship[1].kind is ShipKind.PARTITION_HASH


class TestPlanCost:
    def test_estimated_cost_positive_and_monotone(self):
        costs = []
        for size in (100, 10000):
            env = ExecutionEnvironment(4)
            data = env.from_iterable([(i % 10, i) for i in range(size)])
            reduced = data.reduce_by_key(0, lambda a, b: a)
            from repro.dataflow.graph import LogicalNode, LogicalPlan
            from repro.dataflow.contracts import Contract
            sink = LogicalNode(Contract.SINK, [reduced.node])
            exec_plan = optimize_plan(LogicalPlan([sink]).validate(), env)
            costs.append(exec_plan.estimated_cost)
        assert 0 < costs[0] < costs[1]

    def test_cost_weights_change_choices(self):
        """With free networking, broadcasting loses its penalty."""
        free_net = CostWeights(network=0.0)
        env = ExecutionEnvironment(4, cost_weights=free_net)
        left = env.from_iterable([(i, i) for i in range(1000)])
        right = env.from_iterable([(i, i) for i in range(1000)])
        joined = left.join(right, 0, 0, lambda l, r: l)
        ann, _plan = compiled_annotation(env, joined, joined.node)
        # no crash and some consistent choice is made
        assert ann.local is not LocalStrategy.NONE
