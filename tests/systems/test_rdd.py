"""The Spark-like RDD engine: transformation semantics, laziness, caching."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.systems.sparklike import SparkLikeContext


@pytest.fixture
def ctx():
    return SparkLikeContext(parallelism=4)


class TestBasics:
    def test_parallelize_collect_roundtrip(self, ctx):
        data = [(i, i) for i in range(10)]
        assert sorted(ctx.parallelize(data).collect()) == data

    def test_map_filter_flat_map(self, ctx):
        rdd = ctx.parallelize([(i, i) for i in range(6)])
        out = (
            rdd.map(lambda kv: (kv[0], kv[1] * 2))
            .filter(lambda kv: kv[1] > 4)
            .flat_map(lambda kv: [kv, kv])
            .collect()
        )
        assert sorted(out) == [(3, 6), (3, 6), (4, 8), (4, 8), (5, 10), (5, 10)]

    def test_map_values(self, ctx):
        rdd = ctx.parallelize([(1, 2), (3, 4)])
        assert sorted(rdd.map_values(lambda v: v + 1).collect()) == [
            (1, 3), (3, 5)
        ]

    def test_union(self, ctx):
        a = ctx.parallelize([(1, 1)])
        b = ctx.parallelize([(1, 1), (2, 2)])
        assert sorted(a.union(b).collect()) == [(1, 1), (1, 1), (2, 2)]

    def test_count_and_is_empty(self, ctx):
        assert ctx.parallelize([]).is_empty()
        assert ctx.parallelize([(1, 1)]).count() == 1

    def test_distinct(self, ctx):
        rdd = ctx.parallelize([(1, "a"), (1, "a"), (2, "b")])
        assert sorted(rdd.distinct().collect()) == [(1, "a"), (2, "b")]


class TestWideTransformations:
    def test_reduce_by_key(self, ctx):
        rdd = ctx.parallelize([(i % 3, 1) for i in range(9)])
        assert sorted(rdd.reduce_by_key(lambda a, b: a + b).collect()) == [
            (0, 3), (1, 3), (2, 3)
        ]

    def test_group_by_key(self, ctx):
        rdd = ctx.parallelize([(1, "a"), (1, "b"), (2, "c")])
        out = dict(rdd.group_by_key().collect())
        assert sorted(out[1]) == ["a", "b"]
        assert out[2] == ["c"]

    def test_join(self, ctx):
        left = ctx.parallelize([(1, "a"), (2, "b")])
        right = ctx.parallelize([(2, "x"), (2, "y"), (3, "z")])
        out = left.join(right).collect()
        assert sorted(out) == [(2, ("b", "x")), (2, ("b", "y"))]

    def test_cogroup(self, ctx):
        left = ctx.parallelize([(1, "a")])
        right = ctx.parallelize([(2, "x")])
        out = dict(ctx_collect_to_dict(left.cogroup(right).collect()))
        assert out[1] == (["a"], [])
        assert out[2] == ([], ["x"])

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers()), max_size=30))
    def test_reduce_matches_python_groupby(self, records):
        ctx = SparkLikeContext(4)
        expected = {}
        for k, v in records:
            expected[k] = expected.get(k, 0) + v
        got = dict(
            ctx.parallelize(records).reduce_by_key(lambda a, b: a + b).collect()
        )
        assert got == expected


def ctx_collect_to_dict(pairs):
    return {k: v for k, v in pairs}


class TestLazinessAndCaching:
    def test_transformations_are_lazy(self, ctx):
        calls = []
        rdd = ctx.parallelize([(1, 1)]).map(
            lambda kv: calls.append(kv) or kv
        )
        assert calls == []  # nothing ran yet
        rdd.collect()
        assert calls == [(1, 1)]

    def test_uncached_recomputes(self, ctx):
        calls = []
        rdd = ctx.parallelize([(1, 1)]).map(
            lambda kv: calls.append(kv) or kv
        )
        rdd.collect()
        rdd.collect()
        assert len(calls) == 2

    def test_cached_computes_once(self, ctx):
        calls = []
        rdd = ctx.parallelize([(1, 1)]).map(
            lambda kv: calls.append(kv) or kv
        ).cache()
        rdd.collect()
        rdd.collect()
        assert len(calls) == 1
        assert ctx.metrics.cache_hits >= 1

    def test_unpersist_releases(self, ctx):
        calls = []
        rdd = ctx.parallelize([(1, 1)]).map(
            lambda kv: calls.append(kv) or kv
        ).cache()
        rdd.collect()
        rdd.unpersist()
        rdd.collect()
        assert len(calls) == 2

    def test_long_lineage_is_linear_not_exponential(self, ctx):
        """A chain of k wide ops must evaluate each parent exactly once
        per action — the classic lineage-evaluation trap."""
        calls = []
        rdd = ctx.parallelize([(i % 4, 1) for i in range(16)])
        for _ in range(12):
            rdd = rdd.map(lambda kv: calls.append(1) or kv,
                          preserves_partitioning=True)
            rdd = rdd.reduce_by_key(lambda a, b: a + b)
        rdd.collect()
        # 16 records into the first map, 4 into each of the next 11
        assert len(calls) == 16 + 11 * 4


class TestShuffleAccounting:
    def test_join_ships_records(self, ctx):
        left = ctx.parallelize([(i, i) for i in range(20)])
        right = ctx.parallelize([(i, i) for i in range(20)])
        left.join(right).collect()
        shipped = (ctx.metrics.records_shipped_local
                   + ctx.metrics.records_shipped_remote)
        assert shipped == 40

    def test_co_partitioned_join_skips_shuffle(self, ctx):
        left = ctx.parallelize([(i, 1) for i in range(20)]).reduce_by_key(
            lambda a, b: a + b
        )
        left.collect()
        before = ctx.metrics.records_shipped_remote
        # joining two already-partitioned RDDs must not reshuffle them
        right = ctx.parallelize([(i, 1) for i in range(20)]).reduce_by_key(
            lambda a, b: a + b
        )
        left.join(right).collect()
        after = ctx.metrics.records_shipped_remote
        # only the right RDD's own shuffle moved records remotely; the
        # join itself added none beyond the two reduce shuffles
        assert after - before <= 20
