"""Pregel global aggregators: contribution, merging, superstep visibility."""

import operator

from repro.graphs import Graph
from repro.systems.pregel import PregelMaster


def ring(n=6):
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


class TestAggregation:
    def test_sum_aggregator_collects_all_contributions(self):
        observed = {}

        def compute(ctx, messages):
            if ctx.superstep == 0:
                ctx.aggregate("total", ctx.vertex_id)
                ctx.send_message(ctx.vertex_id, 1)  # stay alive one round
            elif ctx.superstep == 1 and ctx.vertex_id == 0:
                observed["total"] = ctx.get_aggregated("total")
            ctx.vote_to_halt()

        master = PregelMaster(
            ring(), compute, initial_state=lambda v: None,
            aggregators={"total": (0, operator.add)},
        )
        master.run()
        assert observed["total"] == sum(range(6))

    def test_aggregated_value_visible_next_superstep_only(self):
        reads = []

        def compute(ctx, messages):
            if ctx.vertex_id == 0:
                reads.append((ctx.superstep, ctx.get_aggregated("max")))
            ctx.aggregate("max", ctx.superstep * 10 + ctx.vertex_id)
            if ctx.superstep < 2:
                ctx.send_message(ctx.vertex_id, 1)
            ctx.vote_to_halt()

        master = PregelMaster(
            ring(), compute, initial_state=lambda v: None,
            aggregators={"max": (-1, max)},
        )
        master.run()
        # superstep 0 sees no value; superstep s sees superstep s-1's max
        assert reads[0] == (0, None)
        assert reads[1] == (1, 5)    # max vertex id at superstep 0
        assert reads[2] == (2, 15)   # 10 + max vertex id

    def test_master_exposes_final_values(self):
        def compute(ctx, messages):
            ctx.aggregate("count", 1)
            ctx.vote_to_halt()

        master = PregelMaster(
            ring(4), compute, initial_state=lambda v: None,
            aggregators={"count": (0, operator.add)},
        )
        master.run()
        assert master.aggregated_values["count"] == 4

    def test_unregistered_aggregator_contributions_ignored(self):
        def compute(ctx, messages):
            ctx.aggregate("ghost", 1)  # no such registered aggregator
            ctx.vote_to_halt()

        master = PregelMaster(ring(3), compute, initial_state=lambda v: None)
        master.run()
        assert master.aggregated_values == {}


class TestAggregatorDrivenTermination:
    def test_convergence_via_change_counter(self):
        """The classic pattern: count label changes globally; vertices
        halt for good once the previous superstep changed nothing."""
        graph = Graph(5, [(i, i + 1) for i in range(4)])

        def compute(ctx, messages):
            if ctx.superstep > 0 and ctx.get_aggregated("changes") == 0:
                ctx.vote_to_halt()
                return
            best = min(messages, default=ctx.state)
            if best < ctx.state:
                ctx.state = best
                ctx.aggregate("changes", 1)
            if ctx.superstep == 0:
                ctx.aggregate("changes", 1)  # force a second superstep
            ctx.send_message_to_all_neighbors(ctx.state)

        master = PregelMaster(
            graph, compute, initial_state=lambda v: v, combiner=min,
            aggregators={"changes": (0, operator.add)},
        )
        result = master.run(max_supersteps=50)
        assert master.converged
        assert all(result[v] == 0 for v in range(5))
