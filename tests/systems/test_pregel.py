"""The Pregel-like BSP engine: supersteps, messaging, halting, combiners."""

from repro.graphs import Graph
from repro.runtime.metrics import MetricsCollector
from repro.systems.pregel import PregelMaster


def path_graph(n=5):
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


class TestSuperstepSemantics:
    def test_all_vertices_active_in_superstep_zero(self):
        seen = []

        def compute(ctx, messages):
            seen.append(ctx.vertex_id)
            ctx.vote_to_halt()

        master = PregelMaster(path_graph(), compute,
                              initial_state=lambda v: v)
        master.run()
        assert sorted(seen) == [0, 1, 2, 3, 4]
        assert master.converged

    def test_messages_arrive_next_superstep(self):
        arrivals = {}

        def compute(ctx, messages):
            if messages:
                arrivals[ctx.vertex_id] = (ctx.superstep, list(messages))
            if ctx.superstep == 0 and ctx.vertex_id == 0:
                ctx.send_message(1, "ping")
            ctx.vote_to_halt()

        PregelMaster(path_graph(), compute, initial_state=lambda v: None).run()
        assert arrivals == {1: (1, ["ping"])}

    def test_halted_vertex_reactivated_by_message(self):
        activations = []

        def compute(ctx, messages):
            activations.append((ctx.superstep, ctx.vertex_id))
            if ctx.superstep == 0 and ctx.vertex_id == 0:
                ctx.send_message(2, 1)
            ctx.vote_to_halt()

        PregelMaster(path_graph(), compute, initial_state=lambda v: None).run()
        # superstep 0: everyone; superstep 1: only vertex 2
        assert (1, 2) in activations
        assert sum(1 for s, _v in activations if s == 1) == 1

    def test_max_supersteps_cap(self):
        def compute(ctx, messages):
            ctx.send_message(ctx.vertex_id, 1)  # ping self forever

        master = PregelMaster(path_graph(), compute,
                              initial_state=lambda v: None)
        master.run(max_supersteps=5)
        assert master.supersteps_run == 5
        assert not master.converged


class TestMessaging:
    def test_send_to_all_neighbors(self):
        inboxes = {}

        def compute(ctx, messages):
            if ctx.superstep == 0:
                ctx.send_message_to_all_neighbors(ctx.vertex_id)
            elif messages:
                inboxes[ctx.vertex_id] = sorted(messages)
            ctx.vote_to_halt()

        PregelMaster(path_graph(3), compute, initial_state=lambda v: None).run()
        # path 0-1-2 (symmetrized): 1 hears from 0 and 2
        assert inboxes[1] == [0, 2]

    def test_combiner_merges_before_shipping(self):
        metrics = MetricsCollector()
        star_edges = [(0, i) for i in range(1, 9)]
        graph = Graph(9, star_edges)

        def compute(ctx, messages):
            if ctx.superstep == 0 and ctx.vertex_id != 0:
                ctx.send_message(0, 1)
            ctx.vote_to_halt()

        master = PregelMaster(graph, compute, initial_state=lambda v: 0,
                              combiner=lambda a, b: a + b, metrics=metrics,
                              parallelism=4)
        master.run()
        shipped = metrics.records_shipped_local + metrics.records_shipped_remote
        # 8 messages combined within each of 4 sending partitions -> ≤ 4
        assert shipped <= 4

    def test_combined_value_is_correct(self):
        received = {}

        def compute(ctx, messages):
            if ctx.superstep == 0 and ctx.vertex_id != 0:
                ctx.send_message(0, ctx.vertex_id)
            elif messages:
                received[ctx.vertex_id] = sum(messages)
            ctx.vote_to_halt()

        graph = Graph(5, [(0, i) for i in range(1, 5)])
        PregelMaster(graph, compute, initial_state=lambda v: 0,
                     combiner=lambda a, b: a + b).run()
        assert received == {0: 1 + 2 + 3 + 4}


class TestMetrics:
    def test_supersteps_logged(self):
        metrics = MetricsCollector()

        def compute(ctx, messages):
            if ctx.superstep < 2:
                ctx.send_message(ctx.vertex_id, 1)
            ctx.vote_to_halt()

        PregelMaster(path_graph(), compute, initial_state=lambda v: None,
                     metrics=metrics).run()
        assert len(metrics.iteration_log) >= 2
        assert metrics.records_processed["vertex_compute"] > 0
