PYTHON ?= python
export PYTHONPATH := src

.PHONY: test verify-invariants bench

test:
	$(PYTHON) -m pytest -x -q

# Differential audit gate: run CC and PageRank on every engine over
# seeded random graphs with invariant checking forced on, and assert
# cross-engine result equality plus counter-invariant compliance.
verify-invariants:
	$(PYTHON) -m pytest -m verify_invariants -q

bench:
	$(PYTHON) -m repro.bench all
