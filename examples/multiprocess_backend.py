#!/usr/bin/env python3
"""Execution backends: the same plan on the simulator and real workers.

Runs Connected Components (delta iteration) and PageRank (bulk
iteration) twice each — once on the in-process simulator and once on
the multiprocess backend (one forked worker per partition, records
shipped as pickled frames) — and shows that results *and* logical
counters are identical while only the physical costs differ.

Run:  python examples/multiprocess_backend.py
"""

import time

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.algorithms import pagerank as pr
from repro.graphs import erdos_renyi

PARALLELISM = 4


def run_on(backend, workload):
    env = ExecutionEnvironment(PARALLELISM, backend=backend)
    started = time.perf_counter()
    result = workload(env)
    elapsed = time.perf_counter() - started
    return result, env.metrics, elapsed


def compare(name, workload):
    sim_result, sim_metrics, sim_s = run_on("simulated", workload)
    mp_result, mp_metrics, mp_s = run_on("multiprocess", workload)

    print(f"\n=== {name} ===")
    print(f"  results identical:        {sim_result == mp_result}")
    print(f"  messages (remote ships):  simulated={sim_metrics.messages}  "
          f"multiprocess={mp_metrics.messages}  "
          f"equal={sim_metrics.messages == mp_metrics.messages}")
    print(f"  supersteps:               simulated={sim_metrics.supersteps}  "
          f"multiprocess={mp_metrics.supersteps}  "
          f"equal={sim_metrics.supersteps == mp_metrics.supersteps}")
    print(f"  bytes serialized:         simulated="
          f"{sim_metrics.bytes_shipped}  "
          f"multiprocess={mp_metrics.bytes_shipped}")
    print(f"  wall clock:               simulated={sim_s:.2f}s  "
          f"multiprocess={mp_s:.2f}s")
    assert sim_result == mp_result
    assert sim_metrics.messages == mp_metrics.messages
    assert sim_metrics.supersteps == mp_metrics.supersteps


def main():
    graph = erdos_renyi(200, 3.0, seed=5)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"parallelism={PARALLELISM}")
    compare(
        "Connected Components (delta iteration)",
        lambda env: cc.cc_incremental(env, graph, variant="cogroup",
                                      mode="superstep"),
    )
    compare(
        "PageRank (bulk iteration, partition plan)",
        lambda env: pr.pagerank_bulk(env, graph, iterations=5,
                                     plan="partition"),
    )
    print("\nSame plans, same counters, same results — "
          "only the bytes and the clock differ.")


if __name__ == "__main__":
    main()
