#!/usr/bin/env python3
"""Recursive queries on the dataflow engine (the Section 7.1 connection).

Transitive closure —

    tc(x, y) :- edge(x, y).
    tc(x, y) :- tc(x, z), edge(z, y).

— evaluated bottom-up two ways: naively as a bulk iteration (each
superstep re-derives from the whole closure) and semi-naively as a
delta iteration (each superstep joins only the previous superstep's new
facts).  The delta iteration gives the semi-naive evaluator for free:
the workset *is* the delta relation of the Datalog literature.

Run:  python examples/datalog_reachability.py
"""

import time

import numpy as np

from repro import ExecutionEnvironment
from repro.algorithms import transitive_closure as tc
from repro.bench.reporting import format_seconds, render_table


def flight_network(num_airports=50, num_routes=95, seed=23):
    """A random directed route relation edge(src, dst)."""
    rng = np.random.default_rng(seed)
    return sorted({
        (int(a), int(b))
        for a, b in zip(rng.integers(0, num_airports, num_routes),
                        rng.integers(0, num_airports, num_routes))
        if a != b
    })


def main():
    edges = flight_network()
    truth = tc.tc_reference(edges, 50)
    print(f"edge relation: {len(edges)} base facts; "
          f"closure: {len(truth)} reachable pairs\n")

    rows = []
    for label, evaluate in (
        ("naive (bulk iteration)", tc.tc_naive),
        ("semi-naive (delta iteration)", tc.tc_semi_naive),
    ):
        env = ExecutionEnvironment(parallelism=4)
        start = time.perf_counter()
        closure = evaluate(env, edges)
        elapsed = time.perf_counter() - start
        rows.append([
            label,
            format_seconds(elapsed),
            env.iteration_summaries[0].supersteps,
            env.metrics.total_processed,
            "ok" if closure == truth else "WRONG",
        ])
        if "semi" in label:
            deltas = [s.delta_size for s in env.metrics.iteration_log]
            print(f"semi-naive new facts per superstep: {deltas}")

    print()
    print(render_table(
        "Bottom-up evaluation of transitive closure",
        ["evaluation", "time", "supersteps", "records processed", "result"],
        rows,
    ))
    print(
        "\nThe semi-naive evaluator derives each fact exactly once: the\n"
        "workset carries only the delta relation, and the outer cogroup\n"
        "against the solution set discards already-known facts — the\n"
        "'semi-naive flavour of evaluation' of Section 7.1."
    )


if __name__ == "__main__":
    main()
