#!/usr/bin/env python3
"""Checkpointing and recovery for iterative dataflows (Section 4.2).

Injects a machine failure into superstep 5 of a Connected Components
delta iteration.  With checkpointing enabled, the executor restores the
latest logged superstep (solution set + workset) and replays; the
recovered result is bit-identical to a failure-free run.  The example
also shows the checkpoint-interval trade-off: frequent snapshots cost
copies, sparse snapshots cost replayed supersteps.

Run:  python examples/fault_tolerance.py
"""

import time

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.bench.reporting import format_seconds, render_table
from repro.graphs import chained_communities
from repro.runtime.recovery import FailureInjector


def run_cc(graph, fail_at=None, interval=0):
    env = ExecutionEnvironment(parallelism=4)
    env.checkpoint_interval = interval
    if fail_at is not None:
        env.failure_injector = FailureInjector(fail_at)
    start = time.perf_counter()
    result = cc.cc_incremental(env, graph, variant="cogroup",
                               mode="superstep")
    elapsed = time.perf_counter() - start
    return env, result, elapsed


def main():
    graph = chained_communities(25, 40, seed=3, name="crawl")
    print(f"graph: {graph!r}\n")

    env_ok, expected, base_seconds = run_cc(graph)
    supersteps = env_ok.iteration_summaries[0].supersteps
    print(f"failure-free run: {supersteps} supersteps "
          f"in {format_seconds(base_seconds)}")

    rows = []
    for interval in (1, 3, 8):
        env, recovered, elapsed = run_cc(graph, fail_at=10,
                                         interval=interval)
        store = env.last_checkpoint_store
        rows.append([
            interval,
            format_seconds(elapsed),
            store.snapshots_taken,
            store.recoveries,
            store.supersteps_replayed,
            "identical" if recovered == expected else "DIVERGED",
        ])
    print()
    print(render_table(
        "Recovery from a failure injected at superstep 10",
        ["checkpoint every", "time", "snapshots", "recoveries",
         "supersteps replayed", "result vs failure-free"],
        rows,
    ))
    print(
        "\nFine-grained checkpoints replay less but snapshot more —\n"
        "the logging-cost vs recomputation-cost trade the paper notes\n"
        "for Nephele's materialization choices (Section 4.2)."
    )


if __name__ == "__main__":
    main()
