#!/usr/bin/env python3
"""Single-source shortest paths with microstep and asynchronous execution.

SSSP is the second classic sparse-dependency algorithm the paper's
introduction motivates.  This example runs the same delta-iteration
plan in all three execution modes (Section 5.2/5.3) on a weighted
road-network-like graph, and cross-checks against Dijkstra and the
Pregel-like engine.

Run:  python examples/shortest_paths.py
"""

import time

from repro import ExecutionEnvironment
from repro.algorithms import sssp
from repro.bench.reporting import format_seconds, render_table
from repro.graphs import chained_communities

SOURCE = 0


def road_weight(src, dst):
    """Deterministic pseudo-random weights in [1, 8]."""
    return float((src * 2654435761 ^ dst * 40503) % 8 + 1)


def main():
    # chained communities resemble a road network: locally dense,
    # globally long-stranded — many relaxation waves
    graph = chained_communities(30, 50, intra_degree=8.0, seed=9,
                                name="roads")
    print(f"graph: {graph!r}\n")

    reference = sssp.sssp_reference(graph, SOURCE, road_weight)
    reachable = sum(1 for d in reference.values() if d < float("inf"))
    print(f"Dijkstra reference: {reachable}/{graph.num_vertices} reachable, "
          f"max distance {max(d for d in reference.values() if d < float('inf')):.0f}\n")

    rows = []
    for mode in ("superstep", "microstep", "async"):
        env = ExecutionEnvironment(parallelism=4)
        start = time.perf_counter()
        distances = sssp.sssp_incremental(
            env, graph, SOURCE, weight_fn=road_weight, mode=mode
        )
        elapsed = time.perf_counter() - start
        rows.append([
            mode, format_seconds(elapsed),
            len(env.metrics.iteration_log),
            env.metrics.solution_updates,
            env.metrics.records_shipped_remote,
            "ok" if distances == reference else "WRONG",
        ])

    start = time.perf_counter()
    pregel_result = sssp.sssp_pregel(graph, SOURCE, weight_fn=road_weight)
    rows.append([
        "pregel-like", format_seconds(time.perf_counter() - start),
        "-", "-", "-",
        "ok" if pregel_result == reference else "WRONG",
    ])

    print(render_table(
        "SSSP under different execution modes",
        ["mode", "time", "supersteps/rounds", "relaxations", "messages",
         "result"],
        rows,
    ))
    print(
        "\nNote: superstep mode advances one relaxation wave per barrier;\n"
        "microstep/async modes apply each relaxation immediately, so later\n"
        "candidates in the same pass already see improved distances "
        "(label-correcting behaviour)."
    )


if __name__ == "__main__":
    main()
