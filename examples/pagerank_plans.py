#!/usr/bin/env python3
"""PageRank and the optimizer's two execution plans (Figures 3 and 4).

Shows the same logical PageRank dataflow executing under:
  * the optimizer's automatic choice,
  * the forced broadcast plan (Mahout-style, Fig. 4 left),
  * the forced repartition plan (Pegasus-style, Fig. 4 right),
and prints each plan's network traffic, demonstrating why the choice
depends on the rank-vector/matrix size ratio.  Also runs the adaptive
(incremental) PageRank of Section 7.2.

Run:  python examples/pagerank_plans.py
"""

import time

from repro import ExecutionEnvironment
from repro.algorithms import pagerank as pr
from repro.bench.reporting import format_seconds, render_table
from repro.graphs import rmat

ITERATIONS = 15


def main():
    graph = rmat(11, avg_degree=16.0, seed=42, name="web")
    print(f"graph: {graph!r}\n")

    reference = pr.pagerank_reference(graph, ITERATIONS)
    top = sorted(reference, key=reference.get, reverse=True)[:5]
    print("top-5 pages (reference):",
          [(v, round(reference[v], 5)) for v in top])

    rows = []
    for plan in ("auto", "broadcast", "partition"):
        env = ExecutionEnvironment(parallelism=4)
        start = time.perf_counter()
        ranks = pr.pagerank_bulk(env, graph, ITERATIONS, plan=plan)
        elapsed = time.perf_counter() - start
        deviation = max(abs(ranks[v] - reference[v]) for v in reference)
        steady = env.metrics.iteration_log[2]
        rows.append([
            plan, format_seconds(elapsed),
            steady.records_shipped_remote,
            env.metrics.cache_hits,
            f"{deviation:.1e}",
        ])
    print()
    print(render_table(
        f"PageRank bulk iteration, {ITERATIONS} iterations",
        ["plan", "time", "remote msgs / superstep", "cache hits",
         "max deviation"],
        rows,
    ))

    # the chosen physical plan, in the optimizer's own words
    env = ExecutionEnvironment(parallelism=4)
    ranks0 = env.from_iterable(pr.initial_ranks(graph), name="p")
    matrix = env.from_iterable(pr.transition_tuples(graph), name="A")
    it = env.iterate_bulk(ranks0, ITERATIONS)
    contribs = it.partial_solution.join(
        matrix, 0, 1, lambda r, a: (a[0], r[1] * a[2])
    ).with_forwarded_fields({0: 0}, input_index=1)
    summed = contribs.reduce_by_key(0, lambda a, b: (a[0], a[1] + b[1]))
    result = it.close(summed)
    print("\nOptimizer's plan for this graph:")
    print(env.explain(result))

    # adaptive PageRank: converged pages stop propagating (Section 7.2)
    env = ExecutionEnvironment(parallelism=4)
    start = time.perf_counter()
    adaptive = pr.pagerank_adaptive(env, graph, epsilon=1e-9)
    elapsed = time.perf_counter() - start
    sizes = [s.workset_size for s in env.metrics.iteration_log]
    print(f"\nadaptive PageRank: {format_seconds(elapsed)}, "
          f"{len(sizes)} supersteps")
    print("workset decay:", sizes[:12], "...")
    deviation = max(
        abs(adaptive[v] - pr.pagerank_reference(graph, 200)[v])
        for v in reference
    )
    print(f"max deviation from converged reference: {deviation:.1e}")


if __name__ == "__main__":
    main()
