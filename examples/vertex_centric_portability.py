#!/usr/bin/env python3
"""One vertex program, two engines (the Section 5.1 claim, live).

The paper argues that Pregel is a special case of incremental
iterations: "the partial solution holds the state of the vertices, the
workset holds the messages."  This example writes a single
Connected-Components vertex program and executes the *same function
object* on:

  1. the Pregel-like BSP engine (vertices, supersteps, combiners), and
  2. the dataflow engine, compiled to a delta iteration by
     ``repro.iterations.run_vertex_centric``,

then compares results, supersteps, and message counts.

Run:  python examples/vertex_centric_portability.py
"""

import time

from repro import ExecutionEnvironment
from repro.algorithms.connected_components import cc_ground_truth
from repro.bench.reporting import format_seconds, render_table
from repro.graphs import rmat
from repro.graphs.generators import attach_tail
from repro.iterations import run_vertex_centric
from repro.runtime.metrics import MetricsCollector
from repro.systems.pregel import PregelMaster


def min_label_program(ctx, messages):
    """Connected Components: flood the minimum label (runs on BOTH engines)."""
    if ctx.is_initial:
        ctx.send_message_to_all_neighbors(ctx.state)
        ctx.vote_to_halt()
        return
    best = min(messages) if messages else ctx.state
    if best < ctx.state:
        ctx.state = best
        ctx.send_message_to_all_neighbors(best)
    ctx.vote_to_halt()


def main():
    graph = attach_tail(rmat(11, avg_degree=12.0, seed=13), tail_length=6,
                        name="social")
    truth = cc_ground_truth(graph)
    print(f"graph: {graph!r}\n")

    rows = []

    # 1 — the specialized BSP engine
    metrics = MetricsCollector()
    start = time.perf_counter()
    bsp_result = PregelMaster(
        graph, min_label_program, initial_state=lambda v: v,
        combiner=min, metrics=metrics, parallelism=4,
    ).run()
    rows.append([
        "Pregel-like BSP engine",
        format_seconds(time.perf_counter() - start),
        len(metrics.iteration_log),
        metrics.records_shipped_remote,
        "ok" if bsp_result == truth else "WRONG",
    ])

    # 2 — the same program as an incremental dataflow iteration
    env = ExecutionEnvironment(parallelism=4)
    start = time.perf_counter()
    dataflow_result = run_vertex_centric(
        env, graph, min_label_program, initial_state=lambda v: v,
        combiner=min,
    )
    rows.append([
        "dataflow delta iteration (via adapter)",
        format_seconds(time.perf_counter() - start),
        len(env.metrics.iteration_log),
        env.metrics.records_shipped_remote,
        "ok" if dataflow_result == truth else "WRONG",
    ])

    print(render_table(
        "The same vertex program on both engines",
        ["engine", "time", "supersteps", "remote messages", "result"],
        rows,
    ))
    agree = bsp_result == dataflow_result
    print(f"\nresults identical across engines: {agree}")
    sizes = [s.workset_size for s in env.metrics.iteration_log]
    print("dataflow workset (= in-flight messages) per superstep:")
    print(" ", sizes)


if __name__ == "__main__":
    main()
