#!/usr/bin/env python3
"""K-Means clustering: a bulk iteration with a cached constant data path.

The cluster centers (tiny) are the partial solution; the point set
(large) is loop-invariant, so the runtime caches its shipped form after
the first superstep (Section 4.3).  The example shows the convergence
criterion variant of Section 2.1 (stop when no center moves more than
epsilon) and the cache's effect on per-superstep traffic.

Run:  python examples/kmeans_clustering.py
"""

import time

from repro import ExecutionEnvironment
from repro.algorithms import kmeans
from repro.bench.reporting import format_seconds


def main():
    points = kmeans.generate_points(4000, num_clusters=6, seed=31)
    centers0 = [(c, x, y) for c, (_i, x, y) in enumerate(points[:6])]
    print(f"{len(points)} points, {len(centers0)} initial centers\n")

    env = ExecutionEnvironment(parallelism=4)
    start = time.perf_counter()
    centers = kmeans.kmeans_bulk(env, points, centers0, iterations=200,
                                 epsilon=1e-6)
    elapsed = time.perf_counter() - start

    summary = env.iteration_summaries[0]
    print(f"converged: {summary.converged} after {summary.supersteps} "
          f"supersteps in {format_seconds(elapsed)}")
    print("final centers:")
    for cid, x, y in centers:
        print(f"  center {cid}: ({x:.4f}, {y:.4f})")

    log = env.metrics.iteration_log
    print("\nper-superstep remote messages "
          "(first superstep ships the point set, later ones only centers):")
    print(" ", [s.records_shipped_remote for s in log[:8]], "...")
    print(f"constant-path cache: {env.metrics.cache_builds} builds, "
          f"{env.metrics.cache_hits} hits")

    reference = kmeans.kmeans_reference(points, centers0,
                                        iterations=summary.supersteps)
    worst = max(
        abs(a[1] - b[1]) + abs(a[2] - b[2])
        for a, b in zip(sorted(centers), sorted(reference))
    )
    print(f"\nmax deviation from the numpy Lloyd reference: {worst:.2e}")


if __name__ == "__main__":
    main()
