#!/usr/bin/env python3
"""Cross-system comparison on one graph: the paper's Section 6 in miniature.

Runs Connected Components on a Twitter-like synthetic graph with every
engine in this repository — the Spark-like bulk dataflow, the
Pregel-like vertex-centric engine, and Stratosphere-style bulk,
batch-incremental, and microstep delta iterations — then prints
runtimes, supersteps, and message counts side by side.

Run:  python examples/graph_analytics_comparison.py [vertices_log2]
"""

import sys
import time

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.bench.reporting import format_seconds, render_table
from repro.graphs import rmat
from repro.graphs.generators import attach_tail
from repro.runtime.metrics import MetricsCollector
from repro.systems.sparklike import SparkLikeContext

PARALLELISM = 4


def main():
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 11
    graph = attach_tail(rmat(scale, avg_degree=16.0, seed=3),
                        tail_length=8, name="example")
    truth = cc.cc_ground_truth(graph)
    print(f"graph: {graph!r}")

    rows = []

    def record(label, metrics, fn):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        rows.append([
            label, format_seconds(elapsed), len(metrics.iteration_log),
            metrics.records_shipped_remote,
            "ok" if result == truth else "WRONG",
        ])

    ctx = SparkLikeContext(PARALLELISM)
    record("Spark-like (bulk)", ctx.metrics,
           lambda: cc.cc_sparklike(ctx, graph))

    ctx_sim = SparkLikeContext(PARALLELISM)
    record("Spark-like (sim. incremental)", ctx_sim.metrics,
           lambda: cc.cc_sparklike_sim_incremental(ctx_sim, graph))

    pregel_metrics = MetricsCollector()
    record("Pregel-like", pregel_metrics,
           lambda: cc.cc_pregel(graph, parallelism=PARALLELISM,
                                metrics=pregel_metrics))

    env_bulk = ExecutionEnvironment(PARALLELISM)
    record("Dataflow bulk iteration", env_bulk.metrics,
           lambda: cc.cc_bulk(env_bulk, graph))

    env_incr = ExecutionEnvironment(PARALLELISM)
    record("Dataflow delta (CoGroup)", env_incr.metrics,
           lambda: cc.cc_incremental(env_incr, graph, variant="cogroup"))

    env_micro = ExecutionEnvironment(PARALLELISM)
    record("Dataflow delta (Match, microstep)", env_micro.metrics,
           lambda: cc.cc_incremental(env_micro, graph, variant="match"))

    env_async = ExecutionEnvironment(PARALLELISM)
    record("Dataflow delta (Match, async)", env_async.metrics,
           lambda: cc.cc_incremental(env_async, graph, variant="match",
                                     mode="async"))

    print()
    print(render_table(
        "Connected Components across engines",
        ["engine", "time", "supersteps/rounds", "messages", "result"],
        rows,
    ))
    print()
    print("Per-superstep workset decay of the delta iteration:")
    sizes = [s.workset_size for s in env_incr.metrics.iteration_log]
    print(" ", sizes)


if __name__ == "__main__":
    main()
