#!/usr/bin/env python3
"""Quickstart: the dataflow API, a bulk iteration, and a delta iteration.

Builds the paper's running example — Connected Components on the
9-vertex graph of Figure 1 — three ways:

1. plain (non-iterative) dataflow operators,
2. a bulk iteration (Section 4),
3. an incremental/workset iteration (Section 5).

Run:  python examples/quickstart.py
"""

from repro import ExecutionEnvironment

# the sample graph of Figure 1, 0-indexed, as symmetric (src, dst) pairs
DIRECTED = [(0, 1), (1, 2), (0, 2), (2, 3), (4, 5), (5, 6), (6, 7),
            (7, 8), (6, 8)]
EDGES = DIRECTED + [(b, a) for a, b in DIRECTED]
NUM_VERTICES = 9


def plain_dataflow():
    """Word-count-style warm-up: vertex degrees via map + reduce."""
    env = ExecutionEnvironment(parallelism=4)
    edges = env.from_iterable(EDGES, name="edges")
    degrees = (
        edges.map(lambda e: (e[0], 1), name="one_per_edge")
        .reduce_by_key(0, lambda a, b: (a[0], a[1] + b[1]), name="count")
    )
    print("vertex degrees:", sorted(degrees.collect()))


def bulk_iteration_cc():
    """Connected Components as a bulk iteration: every superstep
    recomputes every vertex's label from all its neighbors."""
    env = ExecutionEnvironment(parallelism=4)
    vertices = env.from_iterable(
        ((v, v) for v in range(NUM_VERTICES)), name="vertices"
    )
    edges = env.from_iterable(EDGES, name="edges")

    iteration = env.iterate_bulk(vertices, max_iterations=20, name="cc")
    state = iteration.partial_solution
    candidates = state.join(edges, 0, 0, lambda s, e: (e[1], s[1]))
    new_state = candidates.union(state).reduce_by_key(
        0, lambda a, b: a if a[1] <= b[1] else b
    )
    # termination criterion T: emit a record per still-changing vertex
    changed = new_state.join(
        state, 0, 0, lambda n, o: (n[0],) if n[1] != o[1] else None
    )
    result = iteration.close(new_state, termination=changed)
    print("bulk CC:       ", sorted(result.collect()))
    print("               ", env.iteration_summaries[0])


def delta_iteration_cc():
    """The same algorithm as an incremental (workset) iteration: only
    vertices with new candidate labels are touched."""
    env = ExecutionEnvironment(parallelism=4)
    vertices = env.from_iterable(
        ((v, v) for v in range(NUM_VERTICES)), name="solution0"
    )
    edges = env.from_iterable(EDGES, name="edges")
    workset0 = env.from_iterable(
        ((dst, src) for src, dst in EDGES), name="candidates0"
    )

    iteration = env.iterate_delta(
        vertices, workset0, key_fields=0, max_iterations=50, name="cc_delta"
    )

    def improve(candidate, stored):
        """Join each candidate with the stored record; emit a delta only
        on improvement (the solution set stays untouched otherwise)."""
        if candidate[1] < stored[1]:
            return (stored[0], candidate[1])
        return None

    delta = iteration.workset.join(
        iteration.solution_set, 0, 0, improve
    ).with_forwarded_fields({0: 0})  # key constancy => microstep-eligible
    next_workset = delta.join(edges, 0, 0, lambda d, e: (e[1], d[1]))

    result = iteration.close(
        delta, next_workset,
        should_replace=lambda new, old: new[1] < old[1],
        mode="auto",  # the system picks microsteps (the plan is eligible)
    )
    print("delta CC:      ", sorted(result.collect()))
    print("               ", env.iteration_summaries[0])
    log = env.metrics.iteration_log
    print("workset sizes: ", [s.workset_size for s in log])


if __name__ == "__main__":
    plain_dataflow()
    bulk_iteration_cc()
    delta_iteration_cc()
