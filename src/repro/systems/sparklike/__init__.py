"""A Spark-(2012)-style engine: immutable RDDs, lineage, caching.

The model mirrors the system the paper benchmarks: datasets are
partitioned immutable collections; transformations build a lazy lineage
DAG; ``cache()`` pins partitions in memory; iterative programs are
driver-side loops creating new RDDs per iteration.  There is no mutable
state across iterations — the property that forces bulk execution of
incremental algorithms (Section 6.2's "Spark Full" and the
copy-everything cost of "Spark Sim. Incr.").
"""

from repro.systems.sparklike.context import SparkLikeContext
from repro.systems.sparklike.rdd import RDD

__all__ = ["RDD", "SparkLikeContext"]
