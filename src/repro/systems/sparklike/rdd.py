"""Resilient-distributed-dataset abstraction with lazy lineage.

Pair-RDD operations (``reduce_by_key``, ``join``, ``group_by_key``,
``cogroup``, ``map_values``) follow Spark's ``(K, V)`` convention: each
record is a 2-tuple whose first element is the key (the value may itself
be a tuple).  Shuffles hash-partition on the key through the shared
channel layer, so message counts are comparable across the engines.
Narrow transformations never move data.

Unlike the dataflow engine's pipelined operators, every transformation
materializes fresh record objects — deliberately modelling the 2012
Spark behaviour whose per-iteration allocation cost the paper measures
(Figure 8's GC variance, Figure 11's simulated-incremental overhead).
"""

from __future__ import annotations

from collections import defaultdict

from repro.runtime import channels
from repro.runtime.plan import ShipKind, ShipStrategy

_PARTITION_KEY0 = ShipStrategy(ShipKind.PARTITION_HASH, (0,))


class RDD:
    """An immutable, lazily computed, partitioned collection."""

    def __init__(self, ctx, parents, compute, name="rdd",
                 partitioned_by_key=False):
        self.ctx = ctx
        self.parents = tuple(parents)
        self._compute = compute
        self.name = name
        self._cache_requested = False
        self._cached_parts = None
        #: True if this RDD is hash-partitioned on the key — co-partitioned
        #: joins and reductions then skip the shuffle, like Spark's
        #: partitioner-aware optimizations
        self.partitioned_by_key = partitioned_by_key

    # ------------------------------------------------------------------
    # evaluation

    def cache(self) -> "RDD":
        """Pin this RDD's partitions in memory after first computation."""
        self._cache_requested = True
        return self

    def unpersist(self) -> "RDD":
        self._cache_requested = False
        self._cached_parts = None
        return self

    def partitions(self) -> list[list]:
        """Compute (or fetch the cached) partitions of this RDD."""
        if self._cached_parts is not None:
            self.ctx.metrics.add_cache_hit()
            return self._cached_parts
        inputs = [parent.partitions() for parent in self.parents]
        parts = self._compute(inputs)
        if self._cache_requested:
            self._cached_parts = parts
            self.ctx.metrics.add_cache_build()
        return parts

    # actions ----------------------------------------------------------
    # (actions return *global* views: under a replicated SPMD driver
    # they are collectives every worker must reach in lockstep)

    def collect(self) -> list:
        tracer = self.ctx.metrics.tracer
        if tracer is None:
            return self.ctx.cluster.merge_global(self.partitions())
        with tracer.span("action:collect", category="action", rdd=self.name):
            return self.ctx.cluster.merge_global(self.partitions())

    def count(self) -> int:
        tracer = self.ctx.metrics.tracer
        if tracer is None:
            return self.ctx.cluster.allreduce_sum(
                sum(len(p) for p in self.partitions())
            )
        with tracer.span("action:count", category="action", rdd=self.name):
            return self.ctx.cluster.allreduce_sum(
                sum(len(p) for p in self.partitions())
            )

    def is_empty(self) -> bool:
        return self.count() == 0

    # ------------------------------------------------------------------
    # narrow transformations

    def _narrow(self, fn, name, keeps_partitioning=False):
        def compute(inputs):
            out = []
            for part in inputs[0]:
                self.ctx.metrics.add_processed(name, len(part))
                out.append(fn(part))
            return out
        return RDD(self.ctx, (self,), compute, name=name,
                   partitioned_by_key=self.partitioned_by_key
                   and keeps_partitioning)

    def map(self, fn, preserves_partitioning=False) -> "RDD":
        return self._narrow(
            lambda part: [fn(r) for r in part], "map",
            keeps_partitioning=preserves_partitioning,
        )

    def flat_map(self, fn, preserves_partitioning=False) -> "RDD":
        def apply(part):
            out = []
            for r in part:
                out.extend(fn(r))
            return out
        return self._narrow(apply, "flat_map",
                            keeps_partitioning=preserves_partitioning)

    def filter(self, fn) -> "RDD":
        return self._narrow(
            lambda part: [r for r in part if fn(r)], "filter",
            keeps_partitioning=True,
        )

    def map_values(self, fn) -> "RDD":
        """Transform the value of ``(k, v)`` records, keeping the key."""
        return self._narrow(
            lambda part: [(k, fn(v)) for k, v in part],
            "map_values", keeps_partitioning=True,
        )

    def union(self, other: "RDD") -> "RDD":
        def compute(inputs):
            left, right = inputs
            return [l + r for l, r in zip(left, right)]
        return RDD(self.ctx, (self, other), compute, name="union")

    # ------------------------------------------------------------------
    # shuffles (wide transformations on (K, V) pairs)

    def _shuffle(self, parts, already_partitioned):
        """Key-shuffle precomputed partitions (skip when co-partitioned)."""
        if already_partitioned:
            self.ctx.metrics.add_shipped(
                local=sum(len(p) for p in parts), remote=0
            )
            return parts
        config = self.ctx.config
        return channels.ship(parts, _PARTITION_KEY0, self.ctx.parallelism,
                             self.ctx.metrics, cluster=self.ctx.cluster,
                             batch_size=config.batch_size,
                             max_frame_bytes=config.max_frame_bytes)

    def reduce_by_key(self, fn) -> "RDD":
        """Merge values of equal keys with ``fn(v1, v2)``; map-side combine."""
        already = self.partitioned_by_key

        def combine(parts, label):
            out = []
            for part in parts:
                table = {}
                for k, v in part:
                    held = table.get(k)
                    table[k] = v if held is None else fn(held, v)
                self.ctx.metrics.add_processed(label, len(part))
                out.append(list(table.items()))
            return out

        def compute(inputs):
            combined = combine(inputs[0], "reduce_by_key.combine")
            shuffled = self._shuffle(combined, already)
            return combine(shuffled, "reduce_by_key")
        return RDD(self.ctx, (self,), compute, name="reduce_by_key",
                   partitioned_by_key=True)

    def group_by_key(self) -> "RDD":
        already = self.partitioned_by_key

        def compute(inputs):
            shuffled = self._shuffle(inputs[0], already)
            out = []
            for part in shuffled:
                groups = defaultdict(list)
                for k, v in part:
                    groups[k].append(v)
                self.ctx.metrics.add_processed("group_by_key", len(part))
                out.append(list(groups.items()))
            return out
        return RDD(self.ctx, (self,), compute, name="group_by_key",
                   partitioned_by_key=True)

    def join(self, other: "RDD") -> "RDD":
        """Inner join on the key; result records are ``(k, (lv, rv))``."""
        lpartitioned = self.partitioned_by_key
        rpartitioned = other.partitioned_by_key

        def compute(inputs):
            left = self._shuffle(inputs[0], lpartitioned)
            right = self._shuffle(inputs[1], rpartitioned)
            out = []
            for lpart, rpart in zip(left, right):
                table = defaultdict(list)
                for k, v in lpart:
                    table[k].append(v)
                results = []
                for k, rv in rpart:
                    for lv in table.get(k, ()):
                        results.append((k, (lv, rv)))
                self.ctx.metrics.add_processed(
                    "join", len(lpart) + len(rpart)
                )
                out.append(results)
            return out
        return RDD(self.ctx, (self, other), compute, name="join",
                   partitioned_by_key=True)

    def cogroup(self, other: "RDD") -> "RDD":
        """Records ``(k, ([left values], [right values]))`` over the key union."""
        lpartitioned = self.partitioned_by_key
        rpartitioned = other.partitioned_by_key

        def compute(inputs):
            left = self._shuffle(inputs[0], lpartitioned)
            right = self._shuffle(inputs[1], rpartitioned)
            out = []
            for lpart, rpart in zip(left, right):
                lgroups = defaultdict(list)
                for k, v in lpart:
                    lgroups[k].append(v)
                rgroups = defaultdict(list)
                for k, v in rpart:
                    rgroups[k].append(v)
                self.ctx.metrics.add_processed(
                    "cogroup", len(lpart) + len(rpart)
                )
                out.append([
                    (k, (lgroups.get(k, []), rgroups.get(k, [])))
                    for k in lgroups.keys() | rgroups.keys()
                ])
            return out
        return RDD(self.ctx, (self, other), compute, name="cogroup",
                   partitioned_by_key=True)

    def distinct(self) -> "RDD":
        already = self.partitioned_by_key

        def compute(inputs):
            shuffled = self._shuffle(inputs[0], already)
            out = []
            for part in shuffled:
                self.ctx.metrics.add_processed("distinct", len(part))
                out.append(list(dict.fromkeys(part)))
            return out
        return RDD(self.ctx, (self,), compute, name="distinct")

    def __repr__(self):
        return f"<RDD {self.name} cached={self._cached_parts is not None}>"
