"""Driver context for the Spark-like engine."""

from __future__ import annotations

from repro.cluster.context import LOCAL
from repro.runtime import channels
from repro.runtime.config import RuntimeConfig
from repro.runtime.metrics import MetricsCollector
from repro.systems.sparklike.rdd import RDD


class SparkLikeContext:
    """One driver session: fixes parallelism, owns metrics, makes RDDs.

    Under the multiprocess backend the driver is *replicated*: every
    worker runs the same deterministic driver program with a
    :class:`~repro.cluster.context.WorkerCluster` as ``cluster``, its
    RDD partitions localized to the worker's rank, and shuffles/actions
    crossing workers through the cluster's collectives.
    """

    def __init__(self, parallelism: int = 4, metrics: MetricsCollector = None,
                 config: RuntimeConfig = None, cluster=None):
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.parallelism = parallelism
        self.cluster = cluster or LOCAL
        self.config = config or RuntimeConfig()
        if metrics is None:
            metrics = MetricsCollector()
            if self.config.check_invariants:
                from repro.runtime.invariants import attach_checker
                attach_checker(metrics)
            if self.config.trace:
                from repro.observability import attach_tracer
                attach_tracer(metrics, rank=self.cluster.rank)
        self.metrics = metrics

    def parallelize(self, records, name: str = "parallelize") -> RDD:
        """Distribute an in-memory collection round-robin."""
        parts = self.cluster.localize(
            channels.round_robin(list(records), self.parallelism)
        )
        return RDD(self, parents=(), compute=lambda _inputs: parts, name=name)

    # Driver-side superstep scoping, used by iterative programs so the
    # harness can report per-iteration times/messages like Figure 8/11.
    def begin_iteration(self, number: int):
        self.metrics.begin_superstep(number)

    def end_iteration(self, workset_size: int = 0, delta_size: int = 0):
        # replicated drivers log *global* sizes (computed via count()
        # collectives); only the coordinator keeps them, so the
        # superstep-aligned merge across workers sums back to exactly
        # the simulated driver's numbers
        if not self.cluster.is_coordinator:
            workset_size = 0
            delta_size = 0
        return self.metrics.end_superstep(
            workset_size=workset_size, delta_size=delta_size
        )
