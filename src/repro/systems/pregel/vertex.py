"""The per-vertex API handed to compute functions."""

from __future__ import annotations


class VertexContext:
    """View of one vertex during one superstep.

    A compute function receives this context plus the incoming messages;
    it reads/writes :attr:`state`, sends messages, and votes to halt.
    One context object is reused across a partition's vertices per
    superstep (Pregel-style object reuse to avoid allocation overhead).
    """

    __slots__ = ("vertex_id", "state", "superstep", "_graph", "_outbox",
                 "_halted", "num_vertices", "_aggregating",
                 "_aggregated_previous")

    def __init__(self, graph, outbox, num_vertices, aggregating=None,
                 aggregated_previous=None):
        self._graph = graph
        self._outbox = outbox
        self.num_vertices = num_vertices
        self.vertex_id = -1
        self.state = None
        self.superstep = 0
        self._halted = False
        self._aggregating = aggregating if aggregating is not None else {}
        self._aggregated_previous = aggregated_previous or {}

    def _reset(self, vertex_id, state, superstep):
        self.vertex_id = vertex_id
        self.state = state
        self.superstep = superstep
        self._halted = False

    # ------------------------------------------------------------------
    # aggregators (Pregel's global values)

    def aggregate(self, name: str, value):
        """Contribute ``value`` to the named global aggregator."""
        self._aggregating.setdefault(name, []).append(value)

    def get_aggregated(self, name: str):
        """The aggregator's global value from the *previous* superstep."""
        return self._aggregated_previous.get(name)

    @property
    def is_initial(self) -> bool:
        """True in the very first superstep, when every vertex runs.

        Portable vertex programs (runnable both here and on the dataflow
        engine's vertex-centric adapter) should branch on this instead
        of on :attr:`superstep`.
        """
        return self.superstep == 0

    def neighbors(self):
        """Out-edges of this vertex (numpy array of target ids)."""
        return self._graph.neighbors(self.vertex_id)

    @property
    def num_neighbors(self) -> int:
        return self._graph.degree(self.vertex_id)

    def send_message(self, target: int, value):
        """Queue ``value`` for ``target``'s next superstep."""
        self._outbox.append((target, value))

    def send_message_to_all_neighbors(self, value):
        outbox = self._outbox
        for target in self.neighbors().tolist():
            outbox.append((target, value))

    def vote_to_halt(self):
        """Deactivate until a message arrives."""
        self._halted = True
