"""The BSP master: superstep loop, message routing, halting votes.

Vertices are range-partitioned contiguously (like Giraph's default),
messages are routed by target partition through counted channels, and an
optional combiner pre-aggregates messages per target inside the sending
partition before transfer — the paper notes all compared systems
pre-aggregate (Section 6.1).
"""

from __future__ import annotations

from collections import defaultdict

from repro.cluster.context import LOCAL
from repro.runtime.metrics import MetricsCollector
from repro.systems.pregel.vertex import VertexContext


class PregelMaster:
    """Runs a vertex program over a graph until convergence.

    Parameters
    ----------
    graph:
        A :class:`repro.graphs.Graph`; its adjacency provides the
        out-edges of each vertex.
    compute:
        ``compute(ctx, messages)``: the vertex program.  ``messages`` is
        the (possibly combined) list of incoming values; mutate
        ``ctx.state``, call ``ctx.send_message`` / ``ctx.vote_to_halt``.
    initial_state:
        ``initial_state(vertex_id) -> state``.
    combiner:
        Optional ``combiner(a, b) -> merged`` applied to messages with
        the same target before they are shipped and again on arrival.
    run_all_first_superstep:
        Pregel semantics: every vertex is active in superstep 0 even
        without messages.
    """

    def __init__(self, graph, compute, initial_state, combiner=None,
                 parallelism: int = 4, metrics: MetricsCollector = None,
                 run_all_first_superstep: bool = True, aggregators=None,
                 config=None, cluster=None):
        self.graph = graph
        self.compute = compute
        self.initial_state = initial_state
        self.combiner = combiner
        self.parallelism = parallelism
        #: under the multiprocess backend each worker runs a replicated
        #: master over its own vertex range, exchanging messages and
        #: halting votes through this cluster context
        self.cluster = cluster or LOCAL
        from repro.runtime.config import RuntimeConfig
        #: data-plane framing bounds for the SPMD message exchange
        self.config = config or RuntimeConfig()
        if metrics is None:
            metrics = MetricsCollector()
            if self.config.check_invariants:
                from repro.runtime.invariants import attach_checker
                attach_checker(metrics)
            if self.config.trace:
                from repro.observability import attach_tracer
                attach_tracer(metrics, rank=self.cluster.rank)
        self.metrics = metrics
        self.run_all_first_superstep = run_all_first_superstep
        #: {name: (initial value, merge fn)} — Pregel's global aggregators;
        #: vertices contribute via ``ctx.aggregate`` and read the previous
        #: superstep's global value via ``ctx.get_aggregated``
        self.aggregators = dict(aggregators or {})
        self.aggregated_values: dict[str, object] = {}
        self.supersteps_run = 0
        self.converged = False

    # ------------------------------------------------------------------

    def _partition_of(self, vertex_id: int) -> int:
        # contiguous range partitioning
        per_part = -(-self.graph.num_vertices // self.parallelism)
        return min(vertex_id // per_part, self.parallelism - 1)

    def run(self, max_supersteps: int = 1_000_000) -> dict[int, object]:
        """Execute to convergence; returns {vertex id: final state}.

        The same loop serves both settings: locally one master computes
        every partition; under SPMD each worker computes only its own
        vertex range, ships ``(target, value)`` messages through the
        cluster's all-to-all exchange, and agrees on activity/halting
        through barrier votes.  Frames are reassembled in ascending
        sender order, so message fold order — and therefore every state
        and counter — matches the local master exactly.
        """
        n = self.graph.num_vertices
        cluster = self.cluster
        spmd = not cluster.is_local and cluster.size > 1
        if spmd:
            my_parts = (cluster.rank,)
            my_vertices = [
                v for v in range(n)
                if self._partition_of(v) == cluster.rank
            ]
        else:
            my_parts = range(self.parallelism)
            my_vertices = list(range(n))
        states = [self.initial_state(v) for v in range(n)]
        halted = [False] * n
        # inbox per vertex for the *current* superstep
        inbox: dict[int, list] = {}
        self.converged = False

        for superstep in range(max_supersteps):
            if superstep == 0 and self.run_all_first_superstep:
                active = list(my_vertices)
            else:
                active = [
                    v for v in my_vertices
                    if (not halted[v]) or v in inbox
                ]
            if superstep > 0 and \
                    cluster.allreduce_sum(len(active)) == 0:
                self.converged = True
                break

            self.metrics.begin_superstep(superstep + 1)
            outboxes = {p: [] for p in my_parts}
            aggregating: dict[str, list] = {}
            contexts = {
                p: VertexContext(self.graph, outboxes[p], n,
                                 aggregating=aggregating,
                                 aggregated_previous=self.aggregated_values)
                for p in my_parts
            }
            tracer = self.metrics.tracer
            compute_span = None if tracer is None else tracer.begin(
                "pregel:compute", category="operator"
            )
            computed = 0
            for v in active:
                p = self._partition_of(v)
                ctx = contexts[p]
                ctx._reset(v, states[v], superstep)
                messages = inbox.pop(v, [])
                self.compute(ctx, messages)
                states[v] = ctx.state
                halted[v] = ctx._halted
                computed += 1
            self.metrics.add_processed("vertex_compute", computed)
            if compute_span is not None:
                tracer.end(compute_span)

            # combine per target within each sending partition, then route
            route_span = None if tracer is None else tracer.begin(
                "pregel:route", category="channel"
            )
            bytes_before = cluster.bytes_sent
            next_inbox: dict[int, list] = defaultdict(list)
            total_messages = 0
            frames = [[] for _ in range(self.parallelism)] if spmd else None
            for p in my_parts:
                outbox = outboxes[p]
                if self.combiner is not None:
                    combined: dict[int, object] = {}
                    for target, value in outbox:
                        held = combined.get(target)
                        combined[target] = (
                            value if held is None
                            else self.combiner(held, value)
                        )
                    deliveries = combined.items()
                else:
                    deliveries = outbox
                local = remote = 0
                for target, value in deliveries:
                    target_part = self._partition_of(target)
                    if spmd:
                        frames[target_part].append((target, value))
                    else:
                        next_inbox[target].append(value)
                    if target_part == p:
                        local += 1
                    else:
                        remote += 1
                self.metrics.add_shipped(local=local, remote=remote)
                total_messages += local + remote
            if spmd:
                # ascending sender order = the local master's partition
                # scan, so per-target message order is identical; frames
                # travel as size-bounded batch chunks over the fabric
                for frame in cluster.exchange(
                    frames, batch_size=self.config.batch_size,
                    max_frame_bytes=self.config.max_frame_bytes,
                ):
                    for target, value in frame:
                        next_inbox[target].append(value)
            self.metrics.add_bytes_shipped(cluster.bytes_sent - bytes_before)
            if route_span is not None:
                tracer.end(route_span)

            # arrival-side combine (receivers see one value per sender
            # partition at most; combine again if a combiner exists)
            if self.combiner is not None:
                for target, values in next_inbox.items():
                    acc = values[0]
                    for value in values[1:]:
                        acc = self.combiner(acc, value)
                    next_inbox[target] = [acc]

            # fold this superstep's aggregator contributions into the
            # global values vertices will read next superstep
            new_aggregated = {}
            if self.aggregators:
                if spmd:
                    # contiguous range partitioning: concatenating by
                    # rank restores global vertex-id contribution order
                    merged: dict[str, list] = defaultdict(list)
                    for contribs in cluster.allgather(dict(aggregating)):
                        for name, values in contribs.items():
                            merged[name].extend(values)
                    aggregating = merged
                for name, (initial, merge) in self.aggregators.items():
                    value = initial
                    for contribution in aggregating.get(name, ()):
                        value = merge(value, contribution)
                    new_aggregated[name] = value
            self.aggregated_values = new_aggregated

            self.metrics.end_superstep(
                workset_size=total_messages,
                delta_size=computed,
            )
            self.supersteps_run = superstep + 1
            inbox = dict(next_inbox)
            still_busy = len(inbox) + sum(
                1 for v in my_vertices if not halted[v]
            )
            if cluster.allreduce_sum(still_busy) == 0:
                self.converged = True
                break

        if spmd:
            # every worker rebuilds the full final state vector
            for pairs in cluster.allgather(
                [(v, states[v]) for v in my_vertices]
            ):
                for v, state in pairs:
                    states[v] = state
        self.metrics.verify_invariants()
        return {v: states[v] for v in range(n)}
