"""A Pregel/Giraph-style vertex-centric BSP engine (Section 6's Giraph).

Programs are vertex compute functions executed in synchronized
supersteps.  Vertices hold mutable state, exchange messages along edges,
and vote to halt; a halted vertex is reactivated by incoming messages.
Message combiners pre-aggregate per target before network transfer.

Pregel is the specialized comparator of the paper: it natively exploits
sparse computational dependencies (only message-receiving vertices
compute), which is exactly what the dataflow engine's incremental
iterations reproduce — the partial solution holds the vertex states, the
workset holds the messages (Section 5.1).
"""

from repro.systems.pregel.master import PregelMaster
from repro.systems.pregel.vertex import VertexContext

__all__ = ["PregelMaster", "VertexContext"]
