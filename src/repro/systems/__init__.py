"""Baseline systems the paper compares against (Section 6).

* :mod:`repro.systems.sparklike` — a Spark-(2012)-style engine: lazily
  evaluated, immutable RDDs with lineage and in-memory caching.  Loops
  are driver-side; every iteration materializes fresh datasets, which is
  exactly the property that makes incremental algorithms expensive here.
* :mod:`repro.systems.pregel` — a Pregel/Giraph-style vertex-centric BSP
  engine with message combiners and vote-to-halt, the specialized
  system whose sweet spot incremental iterations are shown to match.

Both run on the same partition/channel substrate as the dataflow engine
(:mod:`repro.runtime.channels`), so their logical work counters are
directly comparable.
"""

from repro.systems.pregel import PregelMaster
from repro.systems.sparklike import SparkLikeContext

__all__ = ["PregelMaster", "SparkLikeContext"]
