"""K-Means clustering — the paper's canonical *bulk* iteration (Sec. 1).

The partial solution is the (tiny) set of cluster centers; the point set
is loop-invariant and therefore sits on the constant data path, where
the runtime caches it after the first superstep (Section 4.3).  The
Cross contract pairs every point with every center — the optimizer
broadcasts the centers, which is the textbook plan.
"""

from __future__ import annotations

import numpy as np


def generate_points(num_points: int, num_clusters: int, seed: int = 0,
                    spread: float = 0.15) -> list[tuple[int, float, float]]:
    """Gaussian blobs around ``num_clusters`` anchors in the unit square."""
    rng = np.random.default_rng(seed)
    anchors = rng.random((num_clusters, 2))
    assignment = rng.integers(0, num_clusters, size=num_points)
    coords = anchors[assignment] + rng.normal(0.0, spread, (num_points, 2))
    return [
        (i, float(x), float(y)) for i, (x, y) in enumerate(coords)
    ]


def kmeans_reference(points, centers0, iterations: int = 20
                     ) -> list[tuple[int, float, float]]:
    """Plain-numpy Lloyd iterations; the semantic reference."""
    coords = np.array([(x, y) for (_i, x, y) in points])
    centers = np.array([(x, y) for (_c, x, y) in centers0])
    for _ in range(iterations):
        distances = (
            (coords[:, None, :] - centers[None, :, :]) ** 2
        ).sum(axis=2)
        nearest = distances.argmin(axis=1)
        for c in range(len(centers)):
            members = coords[nearest == c]
            if len(members):
                centers[c] = members.mean(axis=0)
    return [
        (c, float(x), float(y)) for c, (x, y) in enumerate(centers)
    ]


def kmeans_bulk(env, points, centers0, iterations: int = 20,
                epsilon: float = None) -> list[tuple[int, float, float]]:
    """Lloyd's algorithm as a bulk iterative dataflow.

    ``epsilon`` switches from a fixed trip count to a termination
    criterion: stop once no center moved more than ``epsilon`` (the
    continuous-domain criterion of Section 2.1).
    """
    points_ds = env.from_iterable(points, name="points")
    centers_ds = env.from_iterable(centers0, name="centers0")
    iteration = env.iterate_bulk(centers_ds, iterations, name="kmeans")
    centers = iteration.partial_solution

    def nearest(point, center):
        pid, px, py = point
        cid, cx, cy = center
        dist = (px - cx) ** 2 + (py - cy) ** 2
        return (pid, cid, px, py, dist)

    paired = points_ds.cross(centers, nearest, name="distances")
    assigned = paired.reduce_by_key(
        0, lambda a, b: a if a[4] <= b[4] else b, name="nearest_center"
    )
    sums = assigned.map(
        lambda r: (r[1], r[2], r[3], 1), name="to_center_sums"
    ).reduce_by_key(
        0,
        lambda a, b: (a[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]),
        name="sum_members",
    )
    new_centers = sums.map(
        lambda r: (r[0], r[1] / r[3], r[2] / r[3]), name="mean"
    ).with_forwarded_fields({0: 0})

    termination = None
    if epsilon is not None:
        moved = new_centers.join(
            centers, 0, 0,
            lambda n, o: (n[0],) if (
                (n[1] - o[1]) ** 2 + (n[2] - o[2]) ** 2 > epsilon ** 2
            ) else None,
            name="moved",
        )
        termination = moved
    result = iteration.close(new_centers, termination=termination)
    return sorted(result.collect())
