"""Single-source shortest paths — an incremental iteration workload.

Section 1 names shortest paths among the algorithms with sparse
computational dependencies; SSSP relaxation maps onto the delta
iteration exactly like Connected Components, with distances playing the
role of component ids (the CPO is ``shorter distance = successor``).
The Match variant is microstep-eligible and, executed asynchronously,
behaves like a label-correcting algorithm.
"""

from __future__ import annotations

import heapq

from repro.systems.pregel import PregelMaster

_INF = float("inf")


def weighted_edges(graph, weight_fn=None) -> list[tuple[int, int, float]]:
    """``(src, dst, weight)`` tuples; unit weights by default."""
    if weight_fn is None:
        weight_fn = lambda src, dst: 1.0
    return [(src, dst, weight_fn(src, dst)) for src, dst in graph.edge_tuples()]


def sssp_reference(graph, source: int, weight_fn=None) -> dict[int, float]:
    """Dijkstra ground truth over the same weighted edges."""
    adjacency: dict[int, list[tuple[int, float]]] = {}
    for src, dst, w in weighted_edges(graph, weight_fn):
        adjacency.setdefault(src, []).append((dst, w))
    dist = {v: _INF for v in range(graph.num_vertices)}
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        for u, w in adjacency.get(v, ()):
            nd = d + w
            if nd < dist[u]:
                dist[u] = nd
                heapq.heappush(heap, (nd, u))
    return dist


def sssp_incremental(env, graph, source: int, weight_fn=None,
                     mode: str = "microstep",
                     max_iterations: int = 1_000_000) -> dict[int, float]:
    """Delta-iterative distance relaxation.

    Solution set: ``(v, dist)``; workset: candidate distances
    ``(v, cand)``.  Converges to Dijkstra's fixpoint for non-negative
    weights under any execution mode, because shorter-distance updates
    form a CPO and the comparator discards regressions.
    """
    edges = env.from_iterable(weighted_edges(graph, weight_fn), name="edges")
    # every distance starts at ∞; the seed workset record relaxes the
    # source to 0 in the first superstep and expansion proceeds from there
    solution0 = env.from_iterable(
        ((v, _INF) for v in range(graph.num_vertices)),
        name="distances0",
    )
    workset0 = env.from_iterable([(source, 0.0)], name="seed")

    iteration = env.iterate_delta(
        solution0, workset0, key_fields=0,
        max_iterations=max_iterations, name="sssp",
    )

    def relax(candidate, stored):
        if candidate[1] < stored[1]:
            return (stored[0], candidate[1])
        return None

    delta = iteration.workset.join(
        iteration.solution_set, 0, 0, relax, name="relax"
    ).with_forwarded_fields({0: 0})
    next_workset = delta.join(
        edges, 0, 0, lambda d, e: (e[1], d[1] + e[2]), name="expand"
    )
    result = iteration.close(
        delta, next_workset,
        should_replace=lambda new, old: new[1] < old[1],
        mode=mode,
    )
    return dict(result.collect())


def sssp_pregel(graph, source: int, weight_fn=None, parallelism: int = 4,
                metrics=None) -> dict[int, float]:
    """The Pregel SSSP example program."""
    if weight_fn is None:
        weight_fn = lambda src, dst: 1.0

    def compute(ctx, messages):
        candidate = min(messages, default=_INF)
        if ctx.superstep == 0 and ctx.vertex_id == source:
            candidate = 0.0
        if candidate < ctx.state:
            ctx.state = candidate
            for target in ctx.neighbors().tolist():
                ctx.send_message(
                    target, candidate + weight_fn(ctx.vertex_id, target)
                )
        ctx.vote_to_halt()

    master = PregelMaster(
        graph, compute, initial_state=lambda v: _INF, combiner=min,
        parallelism=parallelism, metrics=metrics,
    )
    return master.run()
