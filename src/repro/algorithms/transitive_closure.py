"""Transitive closure: naive vs semi-naive evaluation (Section 7.1).

The paper relates incremental iterations to recursive query evaluation:
delta iterations compute fixpoints "with a semi-naive flavour", and all
recursive-Datalog examples of Afrati et al. / Bu et al. are expressible
as incremental iterations.  Transitive closure is the canonical such
query::

    tc(x, y) :- edge(x, y).
    tc(x, y) :- tc(x, z), edge(z, y).

* :func:`tc_naive` — bulk iteration: every superstep re-joins the *whole*
  closure-so-far with the edge relation (naive bottom-up evaluation).
* :func:`tc_semi_naive` — delta iteration: only the previous superstep's
  *new* facts join with the edges (semi-naive evaluation).  This is an
  inflationary fixpoint: the solution set only ever grows, so no
  comparator is needed — the ∪̇ key (x, y) deduplicates derivations.
"""

from __future__ import annotations

from collections import deque


def tc_reference(graph_edges, num_vertices: int) -> set[tuple[int, int]]:
    """BFS-per-source ground truth over a directed edge list."""
    adjacency: dict[int, list[int]] = {}
    for src, dst in graph_edges:
        adjacency.setdefault(src, []).append(dst)
    closure = set()
    for source in range(num_vertices):
        seen = set()
        frontier = deque(adjacency.get(source, ()))
        while frontier:
            node = frontier.popleft()
            if node in seen:
                continue
            seen.add(node)
            closure.add((source, node))
            frontier.extend(adjacency.get(node, ()))
    return closure


def tc_naive(env, edges, max_iterations: int = 100) -> set[tuple[int, int]]:
    """Naive bottom-up evaluation as a bulk iteration.

    Each superstep recomputes ``tc ∪ (tc ⋈ edge)`` from scratch and
    terminates when no new facts appeared (the termination dataflow
    counts the growth via an anti-join-style filter).
    """
    edge_ds = env.from_iterable(edges, name="edge")
    base = env.from_iterable(edges, name="tc0")
    iteration = env.iterate_bulk(base, max_iterations, name="tc_naive")
    tc = iteration.partial_solution
    derived = tc.join(
        edge_ds, 1, 0, lambda t, e: (t[0], e[1]), name="derive"
    )
    new_tc = tc.union(derived).distinct(key_fields=(0, 1), name="dedupe")
    grew = new_tc.cogroup(
        tc, (0, 1), (0, 1),
        lambda key, new, old: [key] if not old else [],
        name="new_facts",
    )
    result = iteration.close(new_tc, termination=grew)
    return set(result.collect())


def tc_semi_naive(env, edges,
                  max_iterations: int = 100_000) -> set[tuple[int, int]]:
    """Semi-naive evaluation as a delta iteration.

    Solution set: the closure keyed by the full fact ``(x, y)``; workset:
    the facts derived in the previous superstep.  Only workset facts join
    with the edge relation — the join output that is *already present*
    in the solution set is dropped by the stateful cogroup, so the
    workset shrinks as derivations saturate.
    """
    edge_ds = env.from_iterable(edges, name="edge")
    base = env.from_iterable(edges, name="closure0")
    workset0 = env.from_iterable(edges, name="delta0")
    iteration = env.iterate_delta(
        base, workset0, key_fields=(0, 1),
        max_iterations=max_iterations, name="tc_semi_naive",
    )

    candidates = iteration.workset.join(
        edge_ds, 1, 0, lambda t, e: (t[0], e[1]), name="derive"
    )

    # an outer cogroup against the solution set implements the semi-naive
    # anti-join: a candidate fact is emitted exactly when the closure
    # does not contain it yet (an inflationary, comparator-free ∪̇)
    def first_time(key, group, stored):
        if not stored:
            yield key

    new_facts = candidates.cogroup(
        iteration.solution_set, (0, 1), (0, 1), first_time,
        name="new_facts", inner=False,
    )
    result = iteration.close(new_facts, new_facts, mode="superstep")
    return set(result.collect())
