"""Community detection by label propagation — a *group-at-a-time*
incremental workload.

Section 1 lists "finding densely connected sub-components" among the
sparse-dependency algorithms.  Synchronous label propagation assigns
each vertex the most frequent label among its neighbors (ties broken by
the smaller label, making the algorithm deterministic).  Unlike
Connected Components, the update needs *all* of a vertex's neighbor
labels at once — a group-at-a-time Δ, so the delta iteration is
inherently superstep-bound and the microstep analysis must reject it
(a natural negative example for Section 5.2's eligibility rules).

The incremental formulation follows the GraphLab pattern the paper
sketches in Section 7.2: the solution set holds each vertex's state
*including its cached view of neighbor labels*; the workset carries
label-change messages.  Untouched regions of the graph are never
revisited, while the cached views keep majority votes exact.

Oscillation note: synchronous LPA can two-color bipartite structures
forever, so runs are bounded by ``max_iterations`` and convergence is
not guaranteed — matching the standard algorithm, and exercising the
engine's non-converged reporting.
"""

from __future__ import annotations

from collections import Counter


def _majority(labels):
    """Most frequent label; ties resolved toward the smaller label."""
    counts = Counter(labels)
    best_count = max(counts.values())
    return min(label for label, count in counts.items()
               if count == best_count)


def lpa_reference(graph, max_iterations: int = 50) -> dict[int, int]:
    """Synchronous label propagation in plain Python (the reference)."""
    labels = {v: v for v in range(graph.num_vertices)}
    for _ in range(max_iterations):
        new_labels = {}
        changed = False
        for v in range(graph.num_vertices):
            neighbors = graph.neighbors(v)
            if neighbors.size == 0:
                new_labels[v] = labels[v]
                continue
            candidate = _majority([labels[int(u)] for u in neighbors])
            new_labels[v] = candidate
            changed = changed or candidate != labels[v]
        labels = new_labels
        if not changed:
            break
    return labels


def lpa_incremental(env, graph, max_iterations: int = 50) -> dict[int, int]:
    """Label propagation as a (superstep-only) delta iteration.

    Solution records are ``(vid, label, neighbor_view)`` where
    ``neighbor_view`` maps each neighbor to its last announced label.
    Workset records are messages ``(vid, sender, sender_label)``.  Δ
    cogroups a vertex's messages with its stored state, refreshes the
    view, recomputes the majority, and — only on a label change — emits
    a delta and announces the new label to all neighbors.  Vertices
    without incoming messages are never touched.
    """
    def initial_state(v):
        view = {int(u): int(u) for u in graph.neighbors(v)}
        return (v, v, view, False)  # (vid, label, neighbor view, changed?)

    vertices = env.from_iterable(
        (initial_state(v) for v in range(graph.num_vertices)),
        name="states0",
    )
    edges = env.from_iterable(graph.edge_tuples(), name="edges")
    # self-announcements make every vertex vote once in superstep 1,
    # mirroring the reference's first full round
    initial = env.from_iterable(
        ((v, v, v) for v in range(graph.num_vertices)), name="wake_all"
    )
    iteration = env.iterate_delta(
        vertices, initial, key_fields=0,
        max_iterations=max_iterations, name="lpa",
    )

    def vote(vid, messages, stored):
        _vid, label, view, _flag = stored[0]
        new_view = dict(view)
        for (_v, sender, sender_label) in messages:
            if sender in new_view:
                new_view[sender] = sender_label
        if not new_view:
            return
        winner = _majority(list(new_view.values()))
        if winner != label or new_view != view:
            yield (vid, winner, new_view, winner != label)

    delta = iteration.workset.cogroup(
        iteration.solution_set, 0, 0, vote, name="majority_vote"
    )
    # view-only deltas persist the refreshed state silently; only actual
    # label changes wake the neighbors up
    announcements = delta.filter(
        lambda d: d[3], name="label_changes"
    ).join(
        edges, 0, 0,
        lambda d, e: (e[1], d[0], d[1]),  # (neighbor, me, my new label)
        name="announce",
    )
    result = iteration.close(delta, announcements, mode="superstep")
    return {
        vid: label for (vid, label, _view, _flag) in result.collect()
    }
