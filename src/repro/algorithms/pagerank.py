"""PageRank in all the paper's configurations (Sections 4, 6.1, 7.2).

The rank vector is a set of ``(pid, rank)`` tuples and the sparse
transition matrix a set of ``(tid, pid, prob)`` tuples, exactly as in
Section 4.1.  Variants:

* :func:`pagerank_bulk` — the bulk iterative dataflow of Figure 3.  The
  ``plan`` argument selects between the optimizer's choice and the two
  forced physical plans of Figure 4: ``"broadcast"`` (Mahout-style:
  replicate the rank vector, cache the matrix partitioned on the target
  id so aggregation is local) and ``"partition"`` (Pegasus-style:
  repartition the rank vector per superstep, cache the matrix as the
  join hash table).
* :func:`pagerank_sparklike` — the Pegasus-style Spark program.
* :func:`pagerank_pregel` — the Pregel example program.
* :func:`pagerank_adaptive` — the adaptive PageRank of Kamvar et al.
  [25] expressed as an incremental iteration, which Section 7.2 argues
  is natural here but hard in Pregel: converged pages stop propagating
  rank changes.

All use damping ``d`` with the uniform teleport ``(1-d)/n``.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.plan import BROADCAST, FORWARD, LocalStrategy, partition_on
from repro.systems.pregel import PregelMaster

DAMPING = 0.85


# ----------------------------------------------------------------------
# shared input construction


def transition_tuples(graph) -> list[tuple[int, int, float]]:
    """The sparse matrix A as ``(tid, pid, prob)`` with prob = 1/deg(pid)."""
    degrees = graph.degrees()
    tuples = []
    for pid in range(graph.num_vertices):
        deg = int(degrees[pid])
        if deg == 0:
            continue
        prob = 1.0 / deg
        for tid in graph.neighbors(pid).tolist():
            tuples.append((tid, pid, prob))
    return tuples


def initial_ranks(graph) -> list[tuple[int, float]]:
    n = graph.num_vertices
    return [(v, 1.0 / n) for v in range(n)]


# ----------------------------------------------------------------------
# ground truth


def pagerank_reference(graph, iterations: int = 20,
                       damping: float = DAMPING) -> dict[int, float]:
    """Dense power iteration with numpy; the semantic reference."""
    n = graph.num_vertices
    ranks = np.full(n, 1.0 / n)
    degrees = np.maximum(graph.degrees(), 1)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    dst = graph.indices
    teleport = (1.0 - damping) / n
    for _ in range(iterations):
        contribs = np.zeros(n)
        np.add.at(contribs, dst, ranks[src] / degrees[src])
        ranks = teleport + damping * contribs
    return {v: float(ranks[v]) for v in range(n)}


# ----------------------------------------------------------------------
# bulk dataflow (Figures 3 and 4)


def pagerank_bulk(env, graph, iterations: int = 20, plan: str = "auto",
                  damping: float = DAMPING,
                  epsilon: float = None) -> dict[int, float]:
    """The iterative dataflow of Figure 3 under a chosen physical plan.

    With ``epsilon`` set, the iteration carries the termination criterion
    ``T`` of Figure 3: a Match between the new and old rank vectors that
    emits a record whenever a page's rank moved by more than ``epsilon``
    — the loop stops at the first superstep after which ``T`` is empty.
    Otherwise the trip count is fixed (the ``(G, I, O, n)`` form).
    """
    if plan not in ("auto", "broadcast", "partition"):
        raise ValueError(f"unknown plan {plan!r}")
    n = graph.num_vertices
    teleport = (1.0 - damping) / n
    ranks0 = env.from_iterable(initial_ranks(graph), name="p")
    matrix = env.from_iterable(transition_tuples(graph), name="A")
    zeros = env.from_iterable(
        ((v, 0.0) for v in range(n)), name="zero_base"
    )

    iteration = env.iterate_bulk(ranks0, iterations, name="pagerank")
    ranks = iteration.partial_solution
    # Match on pid: (pid, r) ⋈ (tid, pid, prob) -> (tid, r * prob)
    contribs = ranks.join(
        matrix, 0, 1, lambda r, a: (a[0], r[1] * a[2]), name="join_p_A"
    ).with_forwarded_fields({0: 0}, input_index=1)
    summed = (
        contribs.union(zeros, name="with_base")
        .reduce_by_key(0, lambda a, b: (a[0], a[1] + b[1]), name="sum_ranks")
    )
    new_ranks = summed.map(
        lambda r: (r[0], teleport + damping * r[1]), name="apply_damping"
    ).with_forwarded_fields({0: 0})

    termination = None
    if epsilon is not None:
        # Figure 3's T: join old and new ranks, emit while still moving
        termination = new_ranks.join(
            ranks, 0, 0,
            lambda new, old: (new[0],) if abs(new[1] - old[1]) > epsilon
            else None,
            name="rank_moved",
        )
    result = iteration.close(new_ranks, termination=termination)

    join_node = contribs.node
    reduce_node = summed.node
    if plan == "broadcast":
        # Figure 4, left: replicate p, build its hash table per superstep;
        # cache A hash-partitioned on tid so the aggregation needs no
        # further shuffle (the interesting-property plan).
        env.plan_overrides[join_node.id] = {
            "ship": {0: BROADCAST, 1: partition_on((0,))},
            "local": LocalStrategy.HASH_BUILD_LEFT,
        }
        env.plan_overrides[reduce_node.id] = {
            "ship": {0: FORWARD},
            "combiner": False,
        }
    elif plan == "partition":
        # Figure 4, right: partition p on pid per superstep and probe the
        # cached hash table built over A; re-partition contributions on tid.
        env.plan_overrides[join_node.id] = {
            "ship": {0: partition_on((0,)), 1: partition_on((1,))},
            "local": LocalStrategy.HASH_BUILD_RIGHT,
        }
        env.plan_overrides[reduce_node.id] = {
            "ship": {0: partition_on((0,))},
            "combiner": True,
        }
    return dict(result.collect())


# ----------------------------------------------------------------------
# Spark-like (Pegasus-style, Section 6.1)


def pagerank_sparklike(ctx, graph, iterations: int = 20,
                       damping: float = DAMPING) -> dict[int, float]:
    n = graph.num_vertices
    teleport = (1.0 - damping) / n
    links = ctx.parallelize(
        ((v, tuple(graph.neighbors(v).tolist()))
         for v in range(n)),
        name="links",
    ).cache()
    ranks = ctx.parallelize(((v, 1.0 / n) for v in range(n)), name="ranks")
    for iteration in range(1, iterations + 1):
        ctx.begin_iteration(iteration)

        def contribute(kv):
            _pid, (targets, rank) = kv
            if not targets:
                return []
            share = rank / len(targets)
            return [(t, share) for t in targets]

        contribs = links.join(ranks).flat_map(contribute)
        base = links.map_values(lambda _targets: 0.0)
        new_ranks = (
            contribs.union(base)
            .reduce_by_key(lambda a, b: a + b)
            .map_values(lambda s: teleport + damping * s)
            .cache()
        )
        count = new_ranks.count()  # action materializing this iteration
        ctx.end_iteration(workset_size=count, delta_size=count)
        ranks.unpersist()
        ranks = new_ranks
    return dict(ranks.collect())


# ----------------------------------------------------------------------
# Pregel (the example program of [29])


def pagerank_pregel(graph, iterations: int = 20, damping: float = DAMPING,
                    parallelism: int = 4, metrics=None,
                    epsilon: float = None, cluster=None) -> dict[int, float]:
    """Fixed-trip-count Pregel PageRank, or — with ``epsilon`` — the
    aggregator-driven variant: a global max-delta aggregator lets every
    vertex see the previous superstep's largest rank movement and halt
    once it drops below the threshold (Pregel's idiom for the Figure-3
    termination criterion)."""
    n = graph.num_vertices
    teleport = (1.0 - damping) / n

    def compute(ctx, messages):
        if ctx.superstep > 0:
            new_rank = teleport + damping * sum(messages)
            if epsilon is not None:
                ctx.aggregate("max_delta", abs(new_rank - ctx.state))
            ctx.state = new_rank
        if epsilon is not None and ctx.superstep > 1:
            if ctx.get_aggregated("max_delta") <= epsilon:
                ctx.vote_to_halt()
                return
        if ctx.superstep < iterations:
            degree = ctx.num_neighbors
            if degree:
                ctx.send_message_to_all_neighbors(ctx.state / degree)
        else:
            ctx.vote_to_halt()

    master = PregelMaster(
        graph, compute, initial_state=lambda v: 1.0 / n,
        combiner=lambda a, b: a + b,
        parallelism=parallelism, metrics=metrics, cluster=cluster,
        aggregators=(
            {"max_delta": (0.0, max)} if epsilon is not None else None
        ),
    )
    return master.run(max_supersteps=iterations + 1)


# ----------------------------------------------------------------------
# adaptive PageRank as an incremental iteration (Section 7.2)


def pagerank_adaptive(env, graph, epsilon: float = 1e-9,
                      damping: float = DAMPING,
                      max_iterations: int = 200) -> dict[int, float]:
    """Gauss–Seidel-flavoured incremental PageRank.

    The solution set holds ``(pid, rank, gain)``; the workset carries
    undamped contribution increments ``(pid, delta)``.  A vertex whose
    accumulated gain stays below ``epsilon`` neither updates nor
    propagates — the adaptive behaviour of [25], expressed with a delta
    iteration because vertex activation is decoupled from messaging.
    """
    n = graph.num_vertices
    base = (1.0 - damping) / n
    degrees = graph.degrees()

    solution0 = env.from_iterable(
        ((v, base, 0.0) for v in range(n)), name="ranks0"
    )
    # edges with the sender's inverse out-degree: (src, dst, 1/deg(src))
    fan_out = env.from_iterable(
        (
            (v, int(t), 1.0 / int(degrees[v]))
            for v in range(n) if degrees[v]
            for t in graph.neighbors(v)
        ),
        name="fan_out",
    )
    workset0 = env.from_iterable(
        (
            (int(t), base / int(degrees[v]))
            for v in range(n) if degrees[v]
            for t in graph.neighbors(v)
        ),
        name="initial_contribs",
    )

    iteration = env.iterate_delta(
        solution0, workset0, key_fields=0,
        max_iterations=max_iterations, name="adaptive_pagerank",
    )

    def accumulate(pid, contribs, stored):
        _pid, rank, _gain = stored[0]
        gain = damping * sum(delta for (_p, delta) in contribs)
        if gain > epsilon:
            yield (pid, rank + gain, gain)

    delta = iteration.workset.cogroup(
        iteration.solution_set, 0, 0, accumulate, name="accumulate"
    )
    next_workset = delta.join(
        fan_out, 0, 0,
        lambda d, e: (e[1], d[2] * e[2]),  # (dst, gain / deg(src))
        name="propagate_gain",
    )
    result = iteration.close(
        delta, next_workset,
        should_replace=lambda new, old: new[1] > old[1],
        mode="superstep",
    )
    return {pid: rank for (pid, rank, _gain) in result.collect()}
