"""The paper's workloads, implemented on every applicable engine.

Connected Components (Sections 2, 5, 6.2) and PageRank (Sections 4, 6.1)
are the paper's two evaluation algorithms; SSSP and K-Means exercise the
same iteration constructs on further workloads the paper names
(shortest paths in Section 1; K-Means as a bulk example).  Each module
offers the reference implementation (ground truth), the Stratosphere-
style dataflow variants, and the Spark-like / Pregel-like baselines.
"""

from repro.algorithms import (
    connected_components,
    gradient_descent,
    kmeans,
    label_propagation,
    pagerank,
    sssp,
    transitive_closure,
)

__all__ = [
    "connected_components",
    "gradient_descent",
    "kmeans",
    "label_propagation",
    "pagerank",
    "sssp",
    "transitive_closure",
]
