"""Batch Gradient Descent — the paper's canonical bulk-iterative ML task.

Section 1 names Batch Gradient Descent among the algorithms whose bulk
iterations dataflow systems already handle well: the (tiny) model is the
partial solution, the (large) training set sits on the constant data
path, and every superstep recomputes the full gradient.

We train linear least-squares regression: records ``(x_1..x_d, y)``,
model ``w`` with an intercept term, update
``w ← w − η · ∇L(w)`` with ``∇L(w) = (2/n) Σ (w·x − y) x``.
"""

from __future__ import annotations

import numpy as np


def generate_regression_data(num_points: int, weights, noise: float = 0.05,
                             seed: int = 0) -> list[tuple]:
    """Points ``(id, x_1..x_d, y)`` from a linear model plus an intercept.

    ``weights`` is ``(w_1..w_d, bias)``.
    """
    rng = np.random.default_rng(seed)
    weights = np.asarray(weights, dtype=float)
    dim = len(weights) - 1
    xs = rng.uniform(-1.0, 1.0, size=(num_points, dim))
    ys = xs @ weights[:-1] + weights[-1] + rng.normal(0, noise, num_points)
    return [
        (i, *map(float, xs[i]), float(ys[i])) for i in range(num_points)
    ]


def gradient_descent_reference(points, dim: int, learning_rate: float,
                               iterations: int) -> tuple[float, ...]:
    """Plain-numpy BGD; the semantic reference."""
    xs = np.array([[*p[1:1 + dim], 1.0] for p in points])
    ys = np.array([p[1 + dim] for p in points])
    w = np.zeros(dim + 1)
    n = len(points)
    for _ in range(iterations):
        gradient = 2.0 / n * xs.T @ (xs @ w - ys)
        w = w - learning_rate * gradient
    return tuple(float(v) for v in w)


def gradient_descent_bulk(env, points, dim: int, learning_rate: float,
                          iterations: int, epsilon: float = None
                          ) -> tuple[float, ...]:
    """BGD as a bulk iteration.

    The model is a single record ``(0, w_1..w_d, bias)``; the point set
    is loop-invariant and cached after the first superstep.  Per
    superstep: Cross pairs every point with the model, each pair emits
    its gradient contribution, a Reduce sums them, and a Map applies the
    step.  ``epsilon`` optionally terminates once the gradient norm
    falls below it (the continuous-domain criterion of Section 2.1).
    """
    n = len(points)
    points_ds = env.from_iterable(points, name="training_points")
    model0 = env.from_iterable([(0, *([0.0] * (dim + 1)))], name="model0")
    iteration = env.iterate_bulk(model0, iterations, name="bgd")
    model = iteration.partial_solution

    def contribution(point, model_record):
        features = (*point[1:1 + dim], 1.0)
        target = point[1 + dim]
        w = model_record[1:]
        residual = sum(wi * xi for wi, xi in zip(w, features)) - target
        return (0, *(2.0 / n * residual * xi for xi in features))

    def add(a, b):
        return (0, *(ai + bi for ai, bi in zip(a[1:], b[1:])))

    gradient = points_ds.cross(model, contribution, name="pointwise") \
        .reduce_by_key(0, add, name="sum_gradient") \
        .with_estimated_size(1)
    new_model = gradient.join(
        model, 0, 0,
        lambda g, m: (0, *(wi - learning_rate * gi
                           for wi, gi in zip(m[1:], g[1:]))),
        name="apply_step",
    ).with_forwarded_fields({0: 0})

    termination = None
    if epsilon is not None:
        termination = gradient.filter(
            lambda g: sum(gi * gi for gi in g[1:]) > epsilon ** 2,
            name="not_converged",
        )
    result = iteration.close(new_model, termination=termination)
    (record,) = result.collect()
    return tuple(record[1:])


def mean_squared_error(points, dim: int, model) -> float:
    xs = np.array([[*p[1:1 + dim], 1.0] for p in points])
    ys = np.array([p[1 + dim] for p in points])
    residuals = xs @ np.asarray(model) - ys
    return float(np.mean(residuals ** 2))
