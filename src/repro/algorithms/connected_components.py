"""Connected Components in every flavour the paper discusses.

Table 1's three reference templates (FIXPOINT-CC, INCR-CC, MICRO-CC) are
implemented verbatim on the engine-independent fixpoint runners; the
dataflow variants mirror Sections 4-5:

* :func:`cc_bulk` — bulk iteration: every superstep recomputes every
  vertex's component from all neighbors (the "Stratosphere Full" bars).
* :func:`cc_incremental` — delta iteration; ``variant="cogroup"`` is the
  batch-incremental InnerCoGroup plan of Figure 5 ("Stratosphere Incr."),
  ``variant="match"`` the record-at-a-time Match plan that is
  microstep-eligible ("Stratosphere Micro").
* :func:`cc_sparklike` / :func:`cc_sparklike_sim_incremental` — the bulk
  and flag-simulated-incremental Spark programs of Section 6.2.
* :func:`cc_pregel` — the Giraph-style min-label propagation program.

All return ``{vertex id: component id}`` and converge to the same
fixpoint: every vertex labelled with the smallest vertex id reachable
from it.
"""

from __future__ import annotations

from repro.graphs.stats import union_find_components
from repro.iterations.fixpoint import (
    fixpoint_iterate,
    incremental_iterate,
    microstep_iterate,
)
from repro.systems.pregel import PregelMaster


# ----------------------------------------------------------------------
# ground truth


def cc_ground_truth(graph) -> dict[int, int]:
    """Union-find reference; independent of all iteration machinery."""
    labels = union_find_components(graph)
    return {v: int(labels[v]) for v in range(graph.num_vertices)}


# ----------------------------------------------------------------------
# Table 1 reference templates


def _adjacency(graph) -> list[list[int]]:
    """Plain-list adjacency (the reference templates iterate it heavily)."""
    return [graph.neighbors(v).tolist() for v in range(graph.num_vertices)]


def cc_fixpoint(graph, max_iterations: int = 100_000) -> dict[int, int]:
    """FIXPOINT-CC: full recomputation per iteration (Table 1, row 1)."""
    adjacency = _adjacency(graph)

    def step(state):
        new_state = {}
        for v in range(graph.num_vertices):
            m = min((state[x] for x in adjacency[v]), default=state[v])
            new_state[v] = min(m, state[v])
        return new_state

    initial = {v: v for v in range(graph.num_vertices)}
    return fixpoint_iterate(step, initial, max_iterations=max_iterations).solution


def cc_incremental_reference(graph, max_iterations: int = 100_000
                             ) -> dict[int, int]:
    """INCR-CC: superstep workset iteration (Table 1, row 2)."""
    adjacency = _adjacency(graph)

    def delta(state, workset):
        next_workset = []
        for vertex, candidate in workset:
            if candidate < state[vertex]:
                for neighbor in adjacency[vertex]:
                    next_workset.append((neighbor, candidate))
        return next_workset

    def update(state, workset):
        new_state = dict(state)
        for vertex, candidate in workset:
            if candidate < new_state[vertex]:
                new_state[vertex] = candidate
        return new_state

    initial = {v: v for v in range(graph.num_vertices)}
    workset = [
        (v, u) for v in range(graph.num_vertices) for u in adjacency[v]
    ]
    return incremental_iterate(
        delta, update, initial, workset, max_iterations=max_iterations
    ).solution


def cc_microstep_reference(graph) -> dict[int, int]:
    """MICRO-CC: one workset element at a time (Table 1, row 3)."""
    adjacency = _adjacency(graph)

    def update(state, element):
        vertex, candidate = element
        if candidate < state[vertex]:
            state[vertex] = candidate
            return state, True
        return state, False

    def delta(state, element):
        vertex, candidate = element
        return [(n, candidate) for n in adjacency[vertex]]

    initial = {v: v for v in range(graph.num_vertices)}
    workset = [
        (v, u) for v in range(graph.num_vertices) for u in adjacency[v]
    ]
    return microstep_iterate(
        delta, update, initial, workset,
        max_steps=max(10_000_000, graph.num_edges * 200),
    ).solution


# ----------------------------------------------------------------------
# dataflow variants (Stratosphere)


def _graph_inputs(env, graph):
    vertices = env.from_iterable(
        ((v, v) for v in range(graph.num_vertices)), name="vertices"
    )
    edges = env.from_iterable(graph.edge_tuples(), name="edges")
    return vertices, edges


def cc_bulk(env, graph, max_iterations: int = 1_000) -> dict[int, int]:
    """Bulk-iterative CC: recompute all labels every superstep.

    The step function joins the full state with the edge table, unions
    the current labels, and takes the minimum per vertex — constant work
    per superstep regardless of how much of the graph has converged
    (Section 2.3).  Terminates via a criterion dataflow that emits a
    record per changed vertex.
    """
    vertices, edges = _graph_inputs(env, graph)
    iteration = env.iterate_bulk(vertices, max_iterations, name="cc_bulk")
    state = iteration.partial_solution
    candidates = state.join(
        edges, 0, 0, lambda s, e: (e[1], s[1]), name="propagate"
    )
    new_state = (
        candidates.union(state)
        .reduce_by_key(0, lambda a, b: a if a[1] <= b[1] else b,
                       name="min_label")
    )
    changed = new_state.join(
        state, 0, 0,
        lambda n, o: (n[0],) if n[1] != o[1] else None,
        name="changed",
    )
    result = iteration.close(new_state, termination=changed)
    return dict(result.collect())


def cc_incremental(env, graph, variant: str = "cogroup", mode: str = None,
                   max_iterations: int = 100_000) -> dict[int, int]:
    """Delta-iterative CC (Figure 5 / Figure 6).

    ``variant="cogroup"`` groups each vertex's candidates and reads the
    solution set once per group (batch-incremental, superstep mode);
    ``variant="match"`` processes one candidate at a time and is
    microstep-eligible.  ``mode`` overrides the execution mode
    (``superstep`` / ``microstep`` / ``async``); by default cogroup runs
    supersteps and match runs microsteps, matching the paper's
    "Stratosphere Incr." and "Stratosphere Micro" configurations.
    """
    if variant not in ("cogroup", "match"):
        raise ValueError(f"unknown CC variant {variant!r}")
    vertices, edges = _graph_inputs(env, graph)
    initial_workset = env.from_iterable(
        ((int(dst), src) for src, dst in graph.edge_tuples()),
        name="initial_candidates",
    )
    iteration = env.iterate_delta(
        vertices, initial_workset, key_fields=0,
        max_iterations=max_iterations, name=f"cc_{variant}",
    )

    if variant == "cogroup":
        def min_candidate(vid, candidates, stored):
            current = stored[0][1]
            best = min(candidate for (_v, candidate) in candidates)
            if best < current:
                yield (vid, best)

        delta = iteration.workset.cogroup(
            iteration.solution_set, 0, 0, min_candidate, name="update"
        )
        default_mode = "superstep"
    else:
        def improve(candidate, stored):
            if candidate[1] < stored[1]:
                return (stored[0], candidate[1])
            return None

        delta = iteration.workset.join(
            iteration.solution_set, 0, 0, improve, name="update"
        ).with_forwarded_fields({0: 0})
        default_mode = "microstep"

    next_workset = delta.join(
        edges, 0, 0, lambda d, e: (e[1], d[1]), name="new_candidates"
    )
    result = iteration.close(
        delta, next_workset,
        should_replace=lambda new, old: new[1] < old[1],
        mode=mode or default_mode,
    )
    return dict(result.collect())


# ----------------------------------------------------------------------
# Spark-like variants (Section 6.2)


def cc_sparklike(ctx, graph, max_iterations: int = 1_000) -> dict[int, int]:
    """Bulk CC as a driver loop over RDDs ("Spark Full").

    Every iteration materializes a complete new label RDD; convergence is
    detected by counting changed labels, costing an extra join per
    iteration — the 2012-era idiom.
    """
    labels = ctx.parallelize(
        ((v, v) for v in range(graph.num_vertices)), name="labels"
    )
    edges = ctx.parallelize(graph.edge_tuples(), name="edges").cache()
    final = dict(labels.collect())
    for iteration in range(1, max_iterations + 1):
        ctx.begin_iteration(iteration)
        candidates = labels.join(edges).map(
            lambda kv: (kv[1][1], kv[1][0])  # (dst, label of src)
        )
        new_labels = candidates.union(labels).reduce_by_key(min)
        changes = (
            new_labels.join(labels)
            .filter(lambda kv: kv[1][0] != kv[1][1])
            .count()
        )
        new_labels.cache()
        new_count = new_labels.count()  # force materialization
        ctx.end_iteration(workset_size=new_count, delta_size=changes)
        labels.unpersist()
        labels = new_labels
        if changes == 0:
            break
    return dict(labels.collect())


def cc_sparklike_sim_incremental(ctx, graph, max_iterations: int = 1_000
                                 ) -> dict[int, int]:
    """Flag-simulated incremental CC on the Spark-like engine.

    Each label record carries a changed-flag from the previous iteration;
    only changed vertices message their neighbors, but every unchanged
    record must still be copied into the next RDD to carry the state —
    the copy cost the paper isolates with "Spark Sim. Incr." (Fig. 11).
    """
    labels = ctx.parallelize(
        ((v, (v, True)) for v in range(graph.num_vertices)),
        name="flagged_labels",
    )
    edges = ctx.parallelize(graph.edge_tuples(), name="edges").cache()
    for iteration in range(1, max_iterations + 1):
        ctx.begin_iteration(iteration)
        hot = labels.filter(lambda kv: kv[1][1])
        candidates = hot.join(edges).map(
            lambda kv: (kv[1][1], kv[1][0][0])  # (dst, label of changed src)
        )
        messages = candidates.count()

        def merge(kv):
            key, (pairs, candidate_labels) = kv
            label, _flag = pairs[0]
            best = min(candidate_labels) if candidate_labels else label
            if best < label:
                return (key, (best, True))
            return (key, (label, False))  # explicit copy of unchanged state

        new_labels = labels.cogroup(candidates).map(merge).cache()
        changes = new_labels.filter(lambda kv: kv[1][1]).count()
        ctx.end_iteration(workset_size=messages, delta_size=changes)
        labels.unpersist()
        labels = new_labels
        if changes == 0:
            break
    return {k: v[0] for k, v in labels.collect()}


# ----------------------------------------------------------------------
# Pregel variant (Section 6.2's Giraph)


def cc_pregel(graph, parallelism: int = 4, metrics=None,
              max_supersteps: int = 1_000_000,
              cluster=None) -> dict[int, int]:
    """Min-label propagation as a vertex program."""
    def compute(ctx, messages):
        if ctx.superstep == 0:
            ctx.send_message_to_all_neighbors(ctx.state)
            ctx.vote_to_halt()
            return
        best = min(messages) if messages else ctx.state
        if best < ctx.state:
            ctx.state = best
            ctx.send_message_to_all_neighbors(best)
        ctx.vote_to_halt()

    master = PregelMaster(
        graph, compute, initial_state=lambda v: v, combiner=min,
        parallelism=parallelism, metrics=metrics, cluster=cluster,
    )
    return master.run(max_supersteps=max_supersteps)
