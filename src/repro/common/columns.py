"""Struct-of-arrays column storage for the batched data plane.

A :class:`~repro.common.batch.RecordBatch` is logically a chunk of tuple
records; this module gives it a *physical* second representation — one
buffer per field, in the spirit of the paper's Nephele channel buffers
(Sec. 4.2) and Arrow-style morsel engines.  Fixed-width fields live in
``array.array`` buffers (``'q'`` for int64-range ints, ``'d'`` for
floats), everything else in a plain object list.  The fixed-width
buffers are what the SPMD fabric copies into shared-memory ring slots as
raw ``memoryview`` payloads (no pickle on the payload path) and what the
spill files write without serializing records.

**Strict typing rules** keep the layout bitwise-faithful to the row
representation:

* a column is ``'q'`` only when every value satisfies ``type(x) is
  int`` — ``bool`` is deliberately excluded because ``array('q')``
  would silently coerce ``True`` to ``1`` and break round-tripping;
* an int that overflows a signed 64-bit slot demotes the column to an
  object list (``OverflowError`` is caught, never masked);
* a column is ``'d'`` only when every value satisfies ``type(x) is
  float`` — IEEE doubles round-trip exactly through ``'d'``;
* anything else (strings, nested tuples, mixed types) stays an object
  list and is pickled on the wire like before.

The optional **numpy fast path** is a capability probe: when numpy is
importable, int64 key columns become zero-copy ``ndarray`` views
(``np.frombuffer`` over the ``array`` buffer) and hashing / partition
arithmetic / join index computation vectorize; without numpy every
consumer falls back to the row loops.  Results are bitwise identical
either way — numpy's ``%`` follows Python's floored-division sign
convention, and ``stable_hash`` of an int *is* the int.
"""

from __future__ import annotations

import pickle
from array import array

try:  # capability probe: numpy accelerates, never changes results
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised via REPRO_COLUMNAR=0 CI
    _np = None
    HAVE_NUMPY = False

#: typecode for object (pickled) columns; 'q'/'d' are array typecodes
OBJECT = "o"

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def numpy_module():
    """The probed numpy module, or ``None`` when unavailable."""
    return _np


def build_column(values):
    """Type a field's value list into ``(typecode, buffer)``.

    Returns ``('q', array)`` / ``('d', array)`` for fixed-width columns
    under the strict rules above, ``('o', list)`` otherwise.  ``values``
    is adopted for object columns, copied into an ``array`` buffer for
    fixed-width ones.
    """
    kinds = set(map(type, values))
    if kinds == {int}:
        try:
            return "q", array("q", values)
        except OverflowError:
            return OBJECT, values
    if kinds == {float}:
        return "d", array("d", values)
    return OBJECT, values


def columnarize(records):
    """Transpose a regular tuple-record list into typed columns.

    Returns ``(arity, [(typecode, buffer), ...])`` when every record is
    a tuple of one common arity, else ``None`` (irregular chunks keep
    the row representation).  An empty record list is regular with arity
    ``0``.
    """
    if not records:
        return 0, []
    if set(map(type, records)) != {tuple}:
        return None
    arities = set(map(len, records))
    if len(arities) != 1:
        return None
    arity = arities.pop()
    columns = [
        build_column(list(field_values)) for field_values in zip(*records)
    ]
    return arity, columns


def materialize_rows(columns, length):
    """Rebuild the tuple-record list from typed columns (one C pass)."""
    if not columns:
        return [() for _ in range(length)]
    return list(zip(*(data for _typecode, data in columns)))


def column_nbytes(typecode, data) -> int | None:
    """Exact wire byte length of one column, ``None`` for object columns."""
    if typecode == OBJECT:
        return None
    return len(data) * data.itemsize


def frame_nbytes(columns, length) -> int | None:
    """Exact payload bytes of an all-fixed-width frame, else ``None``.

    This is what lets the chunked exchange size frames by arithmetic
    instead of pickling a probe copy: ``rows * sum(itemsize)`` scales
    linearly in the row count, so bisection can work on row counts.
    """
    total = 0
    for typecode, data in columns:
        nbytes = column_nbytes(typecode, data)
        if nbytes is None:
            return None
        total += nbytes
    return total


_NP_DTYPES = {"q": "int64", "d": "float64"}


def scatter_fixed(columns, vector, parallelism):
    """Group all-fixed-width columns by ``vector % parallelism``.

    ``vector`` is the frame's int64 hash ndarray (one entry per record).
    Returns ``[(count, cols), ...]`` — one all-fixed-width column group
    per target, records in input order within each group, which is
    exactly the order the row scatter's append loop produces — or
    ``None`` when numpy is missing or any column is object-typed.  The
    whole pass is vectorized: one modulo, one stable argsort, one fancy
    index per column; no per-record Python bytecode runs.
    """
    if _np is None:
        return None
    views = []
    for typecode, data in columns:
        if typecode == OBJECT:
            return None
        views.append(
            (typecode, _np.frombuffer(data, dtype=_NP_DTYPES[typecode]))
        )
    targets = vector % parallelism
    order = _np.argsort(targets, kind="stable")
    bounds = _np.searchsorted(
        targets[order], _np.arange(parallelism + 1)
    ).tolist()
    gathered = [(typecode, view[order]) for typecode, view in views]
    groups = []
    for target in range(parallelism):
        lo, hi = bounds[target], bounds[target + 1]
        cols = []
        for typecode, view in gathered:
            data = array(typecode)
            data.frombytes(view[lo:hi].tobytes())
            cols.append((typecode, data))
        groups.append((hi - lo, cols))
    return groups


def int64_view(data):
    """Zero-copy numpy int64 view over an ``array('q')`` buffer."""
    if _np is None:
        return None
    return _np.frombuffer(data, dtype=_np.int64)


def int64_from_values(values):
    """Vectorize a list of exact ints into an int64 ndarray.

    Returns ``None`` when numpy is missing, any value is not exactly an
    ``int`` (bools excluded — same strictness as :func:`build_column`),
    or a value overflows 64 bits.  Never truncates silently.
    """
    if _np is None or not values:
        return None
    if set(map(type, values)) != {int}:
        return None
    try:
        return _np.fromiter(values, dtype=_np.int64, count=len(values))
    except OverflowError:
        return None


# ----------------------------------------------------------------------
# wire framing


def encode_frame(columns, length, key_fields):
    """Encode typed columns as ``(header_bytes, buffers)``.

    ``buffers`` holds one entry per column: a raw buffer
    (``memoryview``-able, copied byte-for-byte into shm slots) for
    fixed-width columns, a pickle blob for object columns.  The header
    is a small pickled tuple — schema only, never records — so a frame
    whose columns are all fixed-width crosses the fabric with **zero
    payload pickling**.
    """
    typecodes = []
    buffers = []
    for typecode, data in columns:
        typecodes.append(typecode)
        if typecode == OBJECT:
            buffers.append(pickle.dumps(data, pickle.HIGHEST_PROTOCOL))
        else:
            buffers.append(memoryview(data).cast("B"))
    header = pickle.dumps(
        (length, tuple(typecodes), key_fields), pickle.HIGHEST_PROTOCOL
    )
    return header, buffers


def decode_frame(header, buffers):
    """Inverse of :func:`encode_frame`.

    Returns ``(length, columns, key_fields)``; fixed-width buffers are
    copied into fresh ``array`` objects (the shm slot is recycled after
    the receive), object blobs are unpickled.
    """
    length, typecodes, key_fields = pickle.loads(header)
    columns = []
    for typecode, buffer in zip(typecodes, buffers):
        if typecode == OBJECT:
            columns.append((typecode, pickle.loads(buffer)))
        else:
            data = array(typecode)
            data.frombytes(buffer)
            columns.append((typecode, data))
    return length, columns, key_fields
