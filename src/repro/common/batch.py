"""Record batches: the unit of movement on the data plane.

The paper's runtime ships serialized *buffers* between Nephele tasks
(Sections 3, 4.2) — records are framed into fixed-size chunks, and every
per-record cost (hashing, routing, serialization setup) is paid once per
buffer, amortized over its records.  A :class:`RecordBatch` is this
reproduction's buffer: an immutable chunk of tuple records that knows
its schema's key fields and lazily computes — and caches — the vector of
key values and the vector of their stable hash codes.

Layers that move or group records (the shipping channels, the physical
join/aggregation drivers, the solution-set index, the SPMD fabric
framing) consume batches instead of looping a :class:`KeyExtractor` and
:func:`stable_hash` over individual records: one pass builds the key
vector, one pass the hash vector, and the scatter/build loops run over
plain ``zip`` streams.  Setting ``batch_size=1`` degenerates to honest
record-at-a-time execution — every record pays the full per-batch
framing overhead, which is exactly the regime the batched data plane
exists to escape (and what the ``dataplane`` microbenchmark measures).

Batches are *immutable by contract*: after construction the record list
must not be mutated (the cached vectors would go stale).  Datasets at
rest remain plain partition lists — the partition-count contract and all
public APIs are unchanged; batches live inside the hot paths.
"""

from __future__ import annotations

from repro.common.hashing import stable_hash
from repro.common.keys import KeyExtractor, normalize_key_fields


class RecordBatch:
    """An immutable chunk of records with cached key and hash vectors.

    ``records`` is adopted, not copied — the caller transfers ownership
    and must not mutate it afterwards.  ``keys[i]`` is the key value of
    ``records[i]`` under ``key_fields`` (bare value for single-field
    keys, tuple for composite keys — the :class:`KeyExtractor`
    convention); ``hashes[i]`` is ``stable_hash(keys[i])``.  Both
    vectors are computed on first access and cached, so a batch that is
    hashed for routing and again for an index build pays the hash pass
    once.
    """

    __slots__ = ("records", "key_fields", "_keys", "_hashes")

    def __init__(self, records, key_fields=None, _keys=None, _hashes=None):
        self.records = records
        self.key_fields = (
            normalize_key_fields(key_fields) if key_fields is not None
            else None
        )
        self._keys = _keys
        self._hashes = _hashes

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def wrap(cls, records, key_fields=None) -> "RecordBatch":
        """Adopt ``records`` (idempotent: re-wraps an existing batch).

        Re-wrapping a batch whose ``key_fields`` already match reuses
        its cached vectors; a different key schema drops them.
        """
        if isinstance(records, RecordBatch):
            if key_fields is None:
                return records
            fields = normalize_key_fields(key_fields)
            if records.key_fields == fields:
                return records
            return cls(records.records, fields)
        return cls(list(records) if not isinstance(records, list)
                   else records, key_fields)

    # ------------------------------------------------------------------
    # cached vectors

    @property
    def keys(self) -> list:
        """The key value of every record (one extraction pass, cached)."""
        if self._keys is None:
            if self.key_fields is None:
                raise ValueError(
                    "this batch carries no key fields — keys are undefined"
                )
            extract = KeyExtractor(self.key_fields)
            self._keys = [extract(record) for record in self.records]
        return self._keys

    @property
    def hashes(self) -> list[int]:
        """``stable_hash`` of every key (one hash pass, cached)."""
        if self._hashes is None:
            self._hashes = [stable_hash(k) for k in self.keys]
        return self._hashes

    def partition_targets(self, parallelism: int) -> list[int]:
        """The owning partition of every record (``hash % parallelism``)."""
        return [h % parallelism for h in self.hashes]

    # ------------------------------------------------------------------
    # sequence protocol

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    def __eq__(self, other):
        if isinstance(other, RecordBatch):
            return self.records == other.records
        if isinstance(other, list):
            return self.records == other
        return NotImplemented

    def __repr__(self):
        return (f"RecordBatch({len(self.records)} records, "
                f"key_fields={self.key_fields})")

    # ------------------------------------------------------------------
    # reshaping

    def split(self, max_records) -> list["RecordBatch"]:
        """Chunk into batches of at most ``max_records`` records.

        Record order is preserved across the chunk sequence; cached key
        and hash vectors are sliced, not recomputed.  ``None`` (or a
        bound covering the whole batch) returns ``[self]`` without
        copying.
        """
        n = len(self.records)
        if max_records is None or max_records >= n:
            return [self]
        if max_records < 1:
            raise ValueError(
                f"batch split size must be >= 1, got {max_records}"
            )
        keys, hashes = self._keys, self._hashes
        return [
            RecordBatch(
                self.records[i:i + max_records],
                self.key_fields,
                _keys=None if keys is None else keys[i:i + max_records],
                _hashes=(
                    None if hashes is None else hashes[i:i + max_records]
                ),
            )
            for i in range(0, n, max_records)
        ]

    @classmethod
    def merge(cls, batches) -> "RecordBatch":
        """Concatenate batches (same key schema) into one.

        Cached vectors are concatenated when every input carries them;
        one cold batch makes the merged vector lazy again.
        """
        batches = list(batches)
        if not batches:
            return cls([], None)
        key_fields = batches[0].key_fields
        for batch in batches[1:]:
            if batch.key_fields != key_fields:
                raise ValueError(
                    f"cannot merge batches keyed on {batch.key_fields} "
                    f"into a batch keyed on {key_fields}"
                )
        records: list = []
        keys: list | None = []
        hashes: list | None = []
        for batch in batches:
            records.extend(batch.records)
            if keys is not None and batch._keys is not None:
                keys.extend(batch._keys)
            else:
                keys = None
            if hashes is not None and batch._hashes is not None:
                hashes.extend(batch._hashes)
            else:
                hashes = None
        fields = (
            tuple(key_fields) if key_fields is not None else None
        )
        return cls(records, fields, _keys=keys, _hashes=hashes)

    @classmethod
    def rechunk(cls, batches, max_records) -> list["RecordBatch"]:
        """Re-frame a batch sequence to a new chunk bound.

        Equivalent to ``merge(batches).split(max_records)``: the record
        stream is unchanged, only the framing moves.
        """
        return cls.merge(batches).split(max_records)


def iter_batches(records, key_fields, batch_size):
    """Frame a record list (or batch) into key-carrying chunks.

    The workhorse of the batched hot paths: yields
    :class:`RecordBatch` chunks of at most ``batch_size`` records
    (``None`` = one batch).  ``batch_size=1`` is the degenerate
    record-at-a-time framing.
    """
    yield from RecordBatch.wrap(records, key_fields).split(batch_size)
