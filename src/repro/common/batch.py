"""Record batches: the unit of movement on the data plane.

The paper's runtime ships serialized *buffers* between Nephele tasks
(Sections 3, 4.2) — records are framed into fixed-size chunks, and every
per-record cost (hashing, routing, serialization setup) is paid once per
buffer, amortized over its records.  A :class:`RecordBatch` is this
reproduction's buffer: an immutable chunk of tuple records that knows
its schema's key fields and lazily computes — and caches — the vector of
key values and the vector of their stable hash codes.

**Columnar v2.**  A batch now carries *two* physical representations
and materializes each lazily:

* the **row view** (``records``): the list of tuple records every UDF
  consumes, adopted at construction or transposed once from columns;
* the **column view** (``columns()``): a struct-of-arrays layout from
  :mod:`repro.common.columns` — one ``array('q')``/``array('d')``
  buffer per fixed-width field, an object list otherwise — built once
  from the rows or adopted from the wire via :meth:`from_columns`.

The key and hash vectors are just two more (virtual) columns: for a
single int key field the key column *is* the hash column
(``stable_hash(int) == int``), and :meth:`key_array` exposes it as an
int64 ndarray when numpy is present, which is what lets the hash
channel compute partition targets with one vectorized ``%`` and the
join drivers compute match indices with ``searchsorted`` instead of a
per-record dict probe.  Every vectorized path is gated twice — on the
``columnar`` runtime knob and on a strict type check — and falls back
to the row loops with bitwise-identical results.

Layers that move or group records (the shipping channels, the physical
join/aggregation drivers, the solution-set index, the SPMD fabric
framing) consume batches instead of looping a :class:`KeyExtractor` and
:func:`stable_hash` over individual records.  Setting ``batch_size=1``
degenerates to honest record-at-a-time execution — every record pays the
full per-batch framing overhead, which is exactly the regime the batched
data plane exists to escape (and what the ``dataplane`` microbenchmark
measures).

Batches are *immutable by contract*: after construction the record list
must not be mutated (the cached vectors would go stale).  Datasets at
rest remain plain partition lists — the partition-count contract and all
public APIs are unchanged; batches live inside the hot paths.
"""

from __future__ import annotations

from repro.common import columns as columnar
from repro.common.hashing import stable_hash
from repro.common.keys import KeyExtractor, normalize_key_fields

#: slot sentinel: "computed, not applicable" (vs ``None`` = "not yet")
_NA = False


def _rebuild_batch(records, key_fields, keys, hashes):
    """Unpickle hook: restore a batch with its cached vectors."""
    return RecordBatch(records, key_fields, _keys=keys, _hashes=hashes)


class RecordBatch:
    """An immutable chunk of records with cached key and hash vectors.

    ``records`` is adopted, not copied — the caller transfers ownership
    and must not mutate it afterwards.  ``keys[i]`` is the key value of
    ``records[i]`` under ``key_fields`` (bare value for single-field
    keys, tuple for composite keys — the :class:`KeyExtractor`
    convention); ``hashes[i]`` is ``stable_hash(keys[i])``.  Both
    vectors are computed on first access and cached, so a batch that is
    hashed for routing and again for an index build pays the hash pass
    once.
    """

    __slots__ = ("_records", "key_fields", "_keys", "_hashes",
                 "_columns", "_key_array")

    def __init__(self, records, key_fields=None, _keys=None, _hashes=None):
        self._records = records
        self.key_fields = (
            normalize_key_fields(key_fields) if key_fields is not None
            else None
        )
        self._keys = _keys
        self._hashes = _hashes
        self._columns = None
        self._key_array = None

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def wrap(cls, records, key_fields=None) -> "RecordBatch":
        """Adopt ``records`` (idempotent: re-wraps an existing batch).

        Re-wrapping a batch whose ``key_fields`` already match reuses
        its cached vectors; a different key schema drops the key/hash
        caches but keeps the column view (columns are schema-free).
        """
        if isinstance(records, RecordBatch):
            if key_fields is None:
                return records
            fields = normalize_key_fields(key_fields)
            if records.key_fields == fields:
                return records
            rewrapped = cls.__new__(cls)
            rewrapped._records = records._records
            rewrapped.key_fields = fields
            rewrapped._keys = None
            rewrapped._hashes = None
            rewrapped._columns = records._columns
            rewrapped._key_array = None
            return rewrapped
        return cls(list(records) if not isinstance(records, list)
                   else records, key_fields)

    @classmethod
    def from_columns(cls, length, cols, key_fields=None) -> "RecordBatch":
        """Adopt a struct-of-arrays payload; rows materialize lazily.

        ``cols`` is the ``[(typecode, buffer), ...]`` layout of
        :mod:`repro.common.columns` (as decoded off the wire or a spill
        file).  The row view is transposed on first ``records`` access,
        so a batch that is only re-shipped or counted never pays it.
        """
        batch = cls.__new__(cls)
        batch._records = None
        batch.key_fields = (
            normalize_key_fields(key_fields) if key_fields is not None
            else None
        )
        batch._keys = None
        batch._hashes = None
        batch._columns = (length, cols)
        batch._key_array = None
        return batch

    # ------------------------------------------------------------------
    # physical representations

    @property
    def records(self) -> list:
        """The row view (materialized from columns on first access)."""
        if self._records is None:
            length, cols = self._columns
            self._records = columnar.materialize_rows(cols, length)
        return self._records

    def columns(self):
        """The column view ``(length, [(typecode, buffer), ...])``.

        Built once from the rows (``None`` for irregular chunks — mixed
        arity or non-tuple records keep the row representation only).
        """
        if self._columns is None:
            transposed = columnar.columnarize(self._records)
            if transposed is None:
                self._columns = _NA
            else:
                _arity, cols = transposed
                self._columns = (len(self._records), cols)
        return self._columns if self._columns is not _NA else None

    def has_columns(self) -> bool:
        """True when the column view is already materialized."""
        return bool(self._columns) and self._columns is not _NA

    def nbytes(self) -> int | None:
        """Exact fixed-width payload bytes, ``None`` if any object column.

        Used by the chunked exchange to size frames arithmetically
        instead of pickling a probe copy.
        """
        layout = self.columns()
        if layout is None:
            return None
        length, cols = layout
        return columnar.frame_nbytes(cols, length)

    def key_array(self):
        """The key vector as an int64 ndarray, or ``None``.

        Available only for single-field keys whose values are all
        exactly ``int`` (bools excluded, 64-bit overflow demotes) with
        numpy importable.  Because ``stable_hash(int) == int``, this
        array doubles as the hash vector — partition targets are one
        vectorized ``%`` away.
        """
        if self._key_array is None:
            self._key_array = _NA
            if self.key_fields is not None and len(self.key_fields) == 1:
                if (
                    self.has_columns()
                    and self._keys is None
                    and columnar.HAVE_NUMPY
                ):
                    # zero-copy view over the key field's 'q' buffer
                    _length, cols = self._columns
                    field = self.key_fields[0]
                    if field < len(cols):
                        typecode, data = cols[field]
                        if typecode == "q":
                            self._key_array = columnar.int64_view(data)
                if self._key_array is _NA:
                    vector = columnar.int64_from_values(self.keys)
                    if vector is not None:
                        self._key_array = vector
        return self._key_array if self._key_array is not _NA else None

    # ------------------------------------------------------------------
    # cached vectors

    @property
    def keys(self) -> list:
        """The key value of every record (one extraction pass, cached)."""
        if self._keys is None:
            if self.key_fields is None:
                raise ValueError(
                    "this batch carries no key fields — keys are undefined"
                )
            if (
                self._records is None
                and len(self.key_fields) == 1
                and self.key_fields[0] < len(self._columns[1])
            ):
                # column-born batch: the key vector is the key column —
                # no row materialization needed to route or build
                _typecode, data = self._columns[1][self.key_fields[0]]
                self._keys = list(data)
            else:
                extract = KeyExtractor(self.key_fields)
                self._keys = [extract(record) for record in self.records]
        return self._keys

    @property
    def hashes(self) -> list[int]:
        """``stable_hash`` of every key (one hash pass, cached)."""
        if self._hashes is None:
            keys = self.keys
            if set(map(type, keys)) == {int}:
                # stable_hash(int) == int: the key vector IS the hash
                # vector, shared rather than copied
                self._hashes = keys
            else:
                self._hashes = [stable_hash(k) for k in keys]
        return self._hashes

    def partition_targets(self, parallelism: int,
                          columnar_mode: bool = False) -> list[int]:
        """The owning partition of every record (``hash % parallelism``).

        With ``columnar_mode`` and an int64 key column available, the
        hash and modulo run as one vectorized pass (numpy's ``%``
        matches Python's floored-division convention, so targets are
        bitwise identical to the row loop).
        """
        if columnar_mode:
            vector = self.key_array()
            if vector is not None:
                return (vector % parallelism).tolist()
        return [h % parallelism for h in self.hashes]

    # ------------------------------------------------------------------
    # sequence protocol

    def __len__(self):
        if self._records is None:
            return self._columns[0]
        return len(self._records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    def __eq__(self, other):
        if isinstance(other, RecordBatch):
            return self.records == other.records
        if isinstance(other, list):
            return self.records == other
        return NotImplemented

    def __repr__(self):
        return (f"RecordBatch({len(self)} records, "
                f"key_fields={self.key_fields})")

    def __reduce__(self):
        # checkpoints and the pool codec pickle partitions that may be
        # batches; round-trip the rows plus the key/hash caches
        return (
            _rebuild_batch,
            (self.records, self.key_fields, self._keys, self._hashes),
        )

    # ------------------------------------------------------------------
    # reshaping

    def split(self, max_records) -> list["RecordBatch"]:
        """Chunk into batches of at most ``max_records`` records.

        Record order is preserved across the chunk sequence; cached key
        and hash vectors are sliced, not recomputed.  ``None`` (or a
        bound covering the whole batch) returns ``[self]`` without
        copying.  A column-born batch splits by slicing its column
        buffers — the chunks stay column-born and no rows materialize.
        """
        n = len(self)
        if max_records is None or max_records >= n:
            return [self]
        if max_records < 1:
            raise ValueError(
                f"batch split size must be >= 1, got {max_records}"
            )
        if self._records is None:
            _length, cols = self._columns
            keys, hashes = self._keys, self._hashes
            shared = keys is not None and hashes is keys
            out = []
            for i in range(0, n, max_records):
                hi = min(i + max_records, n)
                sub = RecordBatch.from_columns(
                    hi - i,
                    [(typecode, data[i:hi]) for typecode, data in cols],
                    self.key_fields,
                )
                if keys is not None:
                    sub._keys = keys[i:hi]
                if hashes is not None:
                    sub._hashes = (
                        sub._keys if shared else hashes[i:hi]
                    )
                out.append(sub)
            return out
        records = self.records
        keys, hashes = self._keys, self._hashes
        shared = keys is not None and hashes is keys
        out = []
        for i in range(0, n, max_records):
            chunk_keys = None if keys is None else keys[i:i + max_records]
            out.append(RecordBatch(
                records[i:i + max_records],
                self.key_fields,
                _keys=chunk_keys,
                _hashes=(
                    chunk_keys if shared
                    else None if hashes is None
                    else hashes[i:i + max_records]
                ),
            ))
        return out

    def scatter(self, parallelism: int):
        """Hash-scatter a column-born batch column-at-a-time.

        Returns one column-born :class:`RecordBatch` per target
        partition — records grouped by ``hash % parallelism``, input
        order preserved within each group, exactly as the row scatter's
        append loop orders them — without materializing a single row:
        one vectorized modulo over the key column, one stable argsort,
        one fancy index per column buffer.  Requires the batch to be
        column-born (rows never materialized), every column fixed-width,
        and the key vector int64-viewable; returns ``None`` otherwise so
        the caller can fall back to the row loop.
        """
        if self._records is not None or not self.has_columns():
            return None
        vector = self.key_array()
        if vector is None:
            return None
        _length, cols = self._columns
        groups = columnar.scatter_fixed(cols, vector, parallelism)
        if groups is None:
            return None
        return [
            RecordBatch.from_columns(count, group, self.key_fields)
            for count, group in groups
        ]

    @classmethod
    def merge(cls, batches) -> "RecordBatch":
        """Concatenate batches (same key schema) into one.

        Cached vectors are concatenated when every input carries them;
        one cold batch makes the merged vector lazy again.  When every
        input is column-born with matching layouts and no input has
        materialized rows yet, the merge concatenates column buffers
        instead (the wire-receive path stays columnar end to end).
        """
        batches = list(batches)
        if not batches:
            return cls([], None)
        key_fields = batches[0].key_fields
        for batch in batches[1:]:
            if batch.key_fields != key_fields:
                raise ValueError(
                    f"cannot merge batches keyed on {batch.key_fields} "
                    f"into a batch keyed on {key_fields}"
                )
        merged_columns = cls._merge_columns(batches)
        if merged_columns is not None:
            return cls.from_columns(
                merged_columns[0], merged_columns[1], key_fields
            )
        records: list = []
        keys: list | None = []
        hashes: list | None = []
        for batch in batches:
            records.extend(batch.records)
            if keys is not None and batch._keys is not None:
                keys.extend(batch._keys)
            else:
                keys = None
            if hashes is not None and batch._hashes is not None:
                hashes.extend(batch._hashes)
            else:
                hashes = None
        fields = (
            tuple(key_fields) if key_fields is not None else None
        )
        return cls(records, fields, _keys=keys, _hashes=hashes)

    @staticmethod
    def _merge_columns(batches):
        """Column-wise concatenation, or ``None`` when rows are cheaper."""
        if not all(
            batch._records is None and batch.has_columns()
            for batch in batches
        ):
            return None
        layouts = [batch._columns for batch in batches]
        signature = tuple(t for t, _data in layouts[0][1])
        if any(
            tuple(t for t, _data in cols) != signature
            for _length, cols in layouts[1:]
        ):
            return None
        total = sum(length for length, _cols in layouts)
        merged = []
        for index, typecode in enumerate(signature):
            first = layouts[0][1][index][1]
            data = first[:] if typecode != columnar.OBJECT else list(first)
            for _length, cols in layouts[1:]:
                data.extend(cols[index][1])
            merged.append((typecode, data))
        return total, merged

    @classmethod
    def rechunk(cls, batches, max_records) -> list["RecordBatch"]:
        """Re-frame a batch sequence to a new chunk bound.

        Equivalent to ``merge(batches).split(max_records)``: the record
        stream is unchanged, only the framing moves.
        """
        return cls.merge(batches).split(max_records)


def iter_batches(records, key_fields, batch_size):
    """Frame a record list (or batch) into key-carrying chunks.

    The workhorse of the batched hot paths: yields
    :class:`RecordBatch` chunks of at most ``batch_size`` records
    (``None`` = one batch).  ``batch_size=1`` is the degenerate
    record-at-a-time framing.
    """
    yield from RecordBatch.wrap(records, key_fields).split(batch_size)
