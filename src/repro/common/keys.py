"""Key extraction over tuple records.

A key is an ordered selection of field positions.  ``KeyExtractor`` turns
that selection into a fast callable returning a hashable key value, used by
partitioners, join drivers, aggregations, and the solution-set index.
"""

from __future__ import annotations

import operator
from collections.abc import Iterable


def normalize_key_fields(key_fields) -> tuple[int, ...]:
    """Coerce a key specification into a canonical tuple of field positions.

    Accepts a single int or an iterable of ints.  Raises ``TypeError`` or
    ``ValueError`` for anything else, so authoring mistakes surface at plan
    construction time rather than mid-execution.
    """
    if isinstance(key_fields, bool):
        raise TypeError("key fields must be ints, not bool")
    if isinstance(key_fields, int):
        fields = (key_fields,)
    elif isinstance(key_fields, Iterable):
        fields = tuple(key_fields)
    else:
        raise TypeError(f"unsupported key specification: {key_fields!r}")
    if not fields:
        raise ValueError("key specification must name at least one field")
    for f in fields:
        if isinstance(f, bool) or not isinstance(f, int):
            raise TypeError(f"key field positions must be ints, got {f!r}")
        if f < 0:
            raise ValueError(f"key field positions must be non-negative, got {f}")
    if len(set(fields)) != len(fields):
        raise ValueError(f"duplicate key field in {fields}")
    return fields


class KeyExtractor:
    """Extracts the key value of a record for a fixed set of field positions.

    Single-field keys return the bare field value (cheap and hashable);
    composite keys return a tuple of field values.
    """

    __slots__ = ("fields", "_getter", "_single")

    def __init__(self, key_fields):
        self.fields = normalize_key_fields(key_fields)
        self._single = len(self.fields) == 1
        if self._single:
            self._getter = operator.itemgetter(self.fields[0])
        else:
            self._getter = operator.itemgetter(*self.fields)

    def __call__(self, record):
        return self._getter(record)

    @property
    def arity(self) -> int:
        return len(self.fields)

    def __eq__(self, other):
        return isinstance(other, KeyExtractor) and self.fields == other.fields

    def __hash__(self):
        return hash(self.fields)

    def __repr__(self):
        return f"KeyExtractor(fields={self.fields})"
