"""Exception hierarchy for the repro dataflow system."""


class DataflowError(Exception):
    """Base class for all errors raised by the repro system."""


class InvalidPlanError(DataflowError):
    """A logical or physical plan is structurally invalid.

    Raised for cycles outside iteration constructs, dangling inputs,
    key-arity mismatches between join sides, and similar authoring errors.
    """


class OptimizerError(DataflowError):
    """The optimizer could not produce an execution plan."""


class MicrostepViolation(DataflowError):
    """A delta iteration requested microstep execution but is not eligible.

    Section 5.2 of the paper lists the eligibility conditions: the step
    function must consist solely of record-at-a-time operators, the dynamic
    data path must be unbranched, and updates to the solution set must be
    partition-local (key constancy along the path from the solution set to
    the delta output).
    """


class InvariantViolation(DataflowError):
    """A runtime conservation law was broken (see repro.runtime.invariants).

    Raised by the opt-in invariant checker when the logical counters that
    carry the paper's comparisons stop obeying their defining laws: a
    shipping channel loses or fabricates records, local + remote shipped
    counts disagree with the channel input size, hash-shipped records land
    off their owning partition, superstep begin/end calls are unbalanced,
    or a solution-set delta application changes the set's size by anything
    other than accepted-minus-replaced records.
    """


class NotConvergedError(DataflowError):
    """An iteration reached its superstep budget without converging."""

    def __init__(self, iterations, message=None):
        self.iterations = iterations
        super().__init__(
            message or f"iteration did not converge within {iterations} supersteps"
        )
