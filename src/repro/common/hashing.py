"""Deterministic hashing for partition assignment.

Python's built-in ``hash`` is salted per process for strings, which
would make partition assignments (and therefore message counts and
plans) irreproducible across runs.  ``stable_hash`` is process-
independent; every partitioner in the system — channels, the solution-
set index, microstep queues — routes through :func:`partition_index`.
"""

from __future__ import annotations

import zlib


def stable_hash(value) -> int:
    """A process-independent hash for partitioning.

    Integers partition by value (keeping assignments stable and
    testable); strings and bytes use CRC32; tuples combine their
    elements.  Anything else falls back to ``hash``.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, bytes):
        return zlib.crc32(value)
    if isinstance(value, tuple):
        acc = 0x345678
        for item in value:
            acc = (acc * 1000003) ^ stable_hash(item)
        return acc & 0x7FFFFFFF
    if isinstance(value, float):
        return hash(value)
    return hash(value)


def partition_index(key_value, parallelism: int) -> int:
    """The partition that owns ``key_value`` under hash partitioning."""
    return stable_hash(key_value) % parallelism
