"""Deterministic hashing for partition assignment.

Python's built-in ``hash`` is salted per process for strings, which
would make partition assignments (and therefore message counts and
plans) irreproducible across runs.  ``stable_hash`` is process-
independent; every partitioner in the system — channels, the solution-
set index, microstep queues — routes through :func:`partition_index`.
"""

from __future__ import annotations

import zlib


def stable_hash(value) -> int:
    """A process-independent hash for partitioning.

    Integers partition by value (keeping assignments stable and
    testable); strings and bytes use CRC32; tuples combine their
    elements.  Anything else falls back to ``hash``.

    **Collision semantics for mixed-type keys.**  Numeric keys that
    compare equal hash equal, exactly as Python's ``hash`` does for
    dict keys: ``stable_hash(True) == stable_hash(1) ==
    stable_hash(1.0)`` (bools are ints by value, and the float branch
    delegates to ``hash``, which equals the int hash for whole
    numbers).  This coincidence is *required*, not incidental — the
    solution-set index stores records in plain dicts keyed by the key
    value, so a partitioner that separated ``1`` from ``1.0`` would
    route a delta record to a partition whose dict would still treat
    the two as the same key, corrupting the ∪̇ accounting.  The
    invariant ``a == b  ⇒  stable_hash(a) == stable_hash(b)`` (for
    hashable keys) keeps partition routing and dict equality aligned.
    Corollary: keys of *distinct* value but different types (``1`` vs
    ``"1"``) may or may not collide; benchmarks must not rely on
    cross-type separation, only on same-value agreement.  The exact
    assignments benchmarks depend on are pinned by regression tests in
    ``tests/common/test_hashing.py``.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, bytes):
        return zlib.crc32(value)
    if isinstance(value, tuple):
        acc = 0x345678
        for item in value:
            acc = (acc * 1000003) ^ stable_hash(item)
        return acc & 0x7FFFFFFF
    if isinstance(value, float):
        return hash(value)
    return hash(value)


def partition_index(key_value, parallelism: int) -> int:
    """The partition that owns ``key_value`` under hash partitioning."""
    return stable_hash(key_value) % parallelism
