"""Order-theoretic helpers: complete partial orders over partial solutions.

Section 2.1 of the paper grounds fixpoint iteration convergence in a
complete partial order (CPO) over the partial-solution domain, with the
step function producing a successor state on every application.  This
module provides a small ``PartialOrder`` protocol plus the concrete order
used by Connected Components (component IDs only ever decrease), so tests
and the fixpoint runner can check the convergence preconditions.
"""

from __future__ import annotations


class PartialOrder:
    """A partial order ``precedes`` over partial-solution states.

    Subclasses define :meth:`precedes`; ``strictly_precedes`` and
    ``comparable`` derive from it.  States may be any hashable or mapping
    type agreed upon by the subclass.
    """

    def precedes(self, a, b) -> bool:
        """Return True if ``a`` is at or below ``b`` in the order (a ⊑ b)."""
        raise NotImplementedError

    def strictly_precedes(self, a, b) -> bool:
        return self.precedes(a, b) and not self.precedes(b, a)

    def comparable(self, a, b) -> bool:
        return self.precedes(a, b) or self.precedes(b, a)


class ComponentOrder(PartialOrder):
    """The CPO used by Connected Components.

    States are mappings ``vertex -> component id``.  ``s' ⊑ s`` iff every
    vertex's component ID in ``s'`` is less than or equal to its ID in
    ``s``.  The supremum direction is *downward*: progress means component
    IDs decrease, with the all-zero mapping as a trivial bottom.

    Note the paper writes the order with later (smaller-ID) states as the
    successors; we adopt ``precedes(later, earlier)`` == progress.
    """

    def precedes(self, a, b) -> bool:
        if a.keys() != b.keys():
            return False
        return all(a[v] <= b[v] for v in a)


def is_chain_descending(order: PartialOrder, chain) -> bool:
    """Check that consecutive states of ``chain`` each precede the previous.

    This is the Kleene-chain progress condition of Section 2.1: every
    application of the step function must produce a successor state.
    Returns True for chains of length 0 or 1.
    """
    chain = list(chain)
    return all(
        order.precedes(later, earlier)
        for earlier, later in zip(chain, chain[1:])
    )
