"""Shared substrate: record model, key extraction, errors, and order theory.

Records throughout the system are plain Python tuples; keys are tuples of
field positions.  This mirrors the flat record model of the Stratosphere /
PACT system the paper builds on.
"""

from repro.common.batch import RecordBatch, iter_batches
from repro.common.errors import (
    DataflowError,
    InvalidPlanError,
    MicrostepViolation,
    NotConvergedError,
    OptimizerError,
)
from repro.common.keys import KeyExtractor, normalize_key_fields
from repro.common.ordering import ComponentOrder, PartialOrder, is_chain_descending

__all__ = [
    "ComponentOrder",
    "DataflowError",
    "InvalidPlanError",
    "KeyExtractor",
    "MicrostepViolation",
    "NotConvergedError",
    "OptimizerError",
    "PartialOrder",
    "RecordBatch",
    "is_chain_descending",
    "iter_batches",
    "normalize_key_fields",
]
