"""Compact immutable graph with CSR adjacency.

Vertices are ``0..n-1``.  The graph stores a symmetrized adjacency (each
undirected edge appears in both directions), matching the paper's
treatment of directed inputs as undirected for Connected Components and
the symmetric neighborhood table N of Section 5.1.  Edge counts follow
Table 2's convention: ``num_edges`` counts stored (directed) entries, so
``avg_degree == num_edges / num_vertices``.
"""

from __future__ import annotations

import numpy as np


class Graph:
    """Immutable graph over vertices ``0..n-1`` with CSR adjacency."""

    def __init__(self, num_vertices: int, edges, symmetrize: bool = True,
                 name: str = "graph"):
        """Build from an iterable/array of ``(src, dst)`` pairs.

        Self-loops are dropped and duplicate edges collapsed.  With
        ``symmetrize`` (default) each edge is stored in both directions.
        """
        self.name = name
        self.num_vertices = int(num_vertices)
        edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray)
                                else edges, dtype=np.int64)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise ValueError("edges must be (m, 2) pairs")
        if edge_array.size and (
            edge_array.min() < 0 or edge_array.max() >= num_vertices
        ):
            raise ValueError("edge endpoint out of vertex range")
        src, dst = edge_array[:, 0], edge_array[:, 1]
        keep = src != dst
        src, dst = src[keep], dst[keep]
        if symmetrize:
            src, dst = (
                np.concatenate([src, dst]),
                np.concatenate([dst, src]),
            )
        # collapse duplicates
        packed = src * np.int64(num_vertices) + dst
        packed = np.unique(packed)
        src = packed // num_vertices
        dst = packed % num_vertices
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        self.indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        counts = np.bincount(src, minlength=num_vertices)
        np.cumsum(counts, out=self.indptr[1:])
        self.indices = dst.copy()

    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Stored (directed) adjacency entries — Table 2's edge count."""
        return int(self.indices.size)

    @property
    def avg_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    # ------------------------------------------------------------------
    # record-oriented views for the dataflow engines

    def edge_tuples(self) -> list[tuple[int, int]]:
        """All stored ``(src, dst)`` pairs — the neighborhood table N."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64),
                        np.diff(self.indptr))
        return list(zip(src.tolist(), self.indices.tolist()))

    def vertex_tuples(self) -> list[tuple[int]]:
        return [(v,) for v in range(self.num_vertices)]

    def vertex_ids(self) -> range:
        return range(self.num_vertices)

    def __repr__(self):
        return (
            f"<Graph {self.name}: {self.num_vertices} vertices, "
            f"{self.num_edges} edges, avg degree {self.avg_degree:.2f}>"
        )
