"""Seeded synthetic graph generators.

Each generator targets one structural regime of the paper's datasets:

* :func:`rmat` — power-law web/social graphs (Wikipedia, Twitter roles);
* :func:`chained_communities` — huge-diameter crawl graphs (Webbase role,
  whose largest component needs 744 supersteps to converge);
* :func:`overlapping_cliques` — dense collaboration graphs (Hollywood
  role, avg degree ~115);
* :func:`foaf_like` — a social graph whose Connected Components work
  decays like Figure 2 (most vertices converge in early supersteps, a
  small tail keeps iterating);
* :func:`erdos_renyi`, :func:`preferential_attachment` — classical
  baselines for tests and property checks.

All generators are deterministic in their ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph


def erdos_renyi(num_vertices: int, avg_degree: float, seed: int = 0,
                name: str = "erdos_renyi") -> Graph:
    """G(n, m) random graph with ~``avg_degree`` stored entries per vertex."""
    rng = np.random.default_rng(seed)
    target_edges = int(num_vertices * avg_degree / 2)
    src = rng.integers(0, num_vertices, size=target_edges)
    dst = rng.integers(0, num_vertices, size=target_edges)
    return Graph(num_vertices, np.stack([src, dst], axis=1), name=name)


def preferential_attachment(num_vertices: int, edges_per_vertex: int,
                            seed: int = 0,
                            name: str = "preferential_attachment") -> Graph:
    """Barabási–Albert-style growth: new vertices attach to popular ones."""
    if edges_per_vertex < 1:
        raise ValueError("edges_per_vertex must be >= 1")
    rng = np.random.default_rng(seed)
    # repeated-endpoint list trick: sampling uniformly from it is
    # proportional to degree
    targets = list(range(min(edges_per_vertex, num_vertices)))
    repeated = list(targets)
    edges = []
    for v in range(len(targets), num_vertices):
        chosen = rng.choice(len(repeated), size=edges_per_vertex)
        for c in chosen:
            u = repeated[int(c)]
            edges.append((v, u))
            repeated.append(u)
        repeated.extend([v] * edges_per_vertex)
    return Graph(num_vertices, edges, name=name)


def rmat(scale: int, avg_degree: float, seed: int = 0,
         a: float = 0.57, b: float = 0.19, c: float = 0.19,
         name: str = "rmat") -> Graph:
    """Recursive-matrix (Kronecker) generator: power-law, small-world.

    ``scale`` is log2 of the vertex count.  Probabilities follow the
    Graph500 defaults; ``d = 1 - a - b - c``.
    """
    num_vertices = 1 << scale
    target_edges = int(num_vertices * avg_degree / 2)
    rng = np.random.default_rng(seed)
    src = np.zeros(target_edges, dtype=np.int64)
    dst = np.zeros(target_edges, dtype=np.int64)
    p_right = b + c  # probability mass in the right column blocks
    for bit in range(scale):
        r1 = rng.random(target_edges)
        r2 = rng.random(target_edges)
        go_right = r1 < p_right
        # conditional probability of the bottom row given the column
        p_bottom_given_right = c / p_right if p_right else 0.0
        p_bottom_given_left = (1.0 - a - b - c) / (1.0 - p_right)
        go_bottom = np.where(
            go_right, r2 < p_bottom_given_right, r2 < p_bottom_given_left
        )
        src = (src << 1) | go_bottom.astype(np.int64)
        dst = (dst << 1) | go_right.astype(np.int64)
    # permute vertex ids so degree does not correlate with id
    perm = rng.permutation(num_vertices)
    return Graph(num_vertices, np.stack([perm[src], perm[dst]], axis=1),
                 name=name)


def chained_communities(num_communities: int, community_size: int,
                        intra_degree: float = 12.0, bridges: int = 1,
                        seed: int = 0,
                        name: str = "chained_communities") -> Graph:
    """Communities arranged in a long chain — a huge-diameter graph.

    Adjacent communities are linked by ``bridges`` edges, so the graph's
    diameter is Θ(number of communities) and label-propagation style
    algorithms need that many supersteps to converge (the Webbase
    regime of Figure 10).
    """
    rng = np.random.default_rng(seed)
    num_vertices = num_communities * community_size
    edge_chunks = []
    per_community = int(community_size * intra_degree / 2)
    for block in range(num_communities):
        lo = block * community_size
        src = rng.integers(lo, lo + community_size, size=per_community)
        dst = rng.integers(lo, lo + community_size, size=per_community)
        edge_chunks.append(np.stack([src, dst], axis=1))
        if block + 1 < num_communities:
            next_lo = lo + community_size
            bsrc = rng.integers(lo, lo + community_size, size=bridges)
            bdst = rng.integers(next_lo, next_lo + community_size, size=bridges)
            edge_chunks.append(np.stack([bsrc, bdst], axis=1))
    # a ring edge within each community keeps communities connected
    for block in range(num_communities):
        lo = block * community_size
        ids = np.arange(lo, lo + community_size)
        ring = np.stack([ids, np.roll(ids, -1)], axis=1)
        edge_chunks.append(ring)
    # Permute vertex ids: with block-contiguous numbering every
    # community's minimum label would chase the global minimum down the
    # chain forever (waves travel at equal speed and are never caught),
    # keeping the whole graph churning in min-label algorithms.  Random
    # ids make community minima random, so trailing waves die quickly —
    # matching the fast-decay/long-tail behaviour of real crawl graphs.
    edges = np.concatenate(edge_chunks)
    perm = rng.permutation(num_vertices)
    return Graph(num_vertices, perm[edges], name=name)


def overlapping_cliques(num_vertices: int, clique_size: int,
                        cliques_per_vertex: float = 2.0, seed: int = 0,
                        name: str = "overlapping_cliques") -> Graph:
    """Dense collaboration graph: actors linked by shared movies.

    Samples ``num_vertices * cliques_per_vertex / clique_size`` cliques
    of uniformly random members; produces the Hollywood regime (average
    degree far above the web graphs)."""
    rng = np.random.default_rng(seed)
    num_cliques = max(1, int(num_vertices * cliques_per_vertex / clique_size))
    edge_chunks = []
    for _ in range(num_cliques):
        members = rng.choice(num_vertices, size=clique_size, replace=False)
        grid_a, grid_b = np.meshgrid(members, members)
        mask = grid_a < grid_b
        edge_chunks.append(
            np.stack([grid_a[mask], grid_b[mask]], axis=1)
        )
    # connect everything loosely so there is one dominant component
    ids = np.arange(num_vertices)
    spine = np.stack([ids[:-1], ids[1:]], axis=1)
    spine = spine[rng.random(len(spine)) < 0.05]
    edge_chunks.append(spine)
    return Graph(num_vertices, np.concatenate(edge_chunks), name=name)


def attach_tail(graph: Graph, tail_length: int, seed: int = 0,
                name: str = None) -> Graph:
    """Append a straggler chain of ``tail_length`` vertices to a graph.

    Real web and social graphs are not diameter-2 cores: their largest
    components carry long filaments, which is why the paper's Connected
    Components runs need 14 supersteps on Wikipedia/Twitter rather than
    a handful.  The chain hangs off a random core vertex, raising the
    convergence superstep count by ``tail_length`` without noticeably
    changing size or degree statistics.
    """
    rng = np.random.default_rng(seed)
    core = graph.num_vertices
    src = np.repeat(np.arange(core, dtype=np.int64), np.diff(graph.indptr))
    core_edges = np.stack([src, graph.indices], axis=1)
    tail_ids = np.arange(core, core + tail_length)
    chain = np.stack([
        np.concatenate([[rng.integers(0, core)], tail_ids[:-1]]),
        tail_ids,
    ], axis=1)
    return Graph(core + tail_length,
                 np.concatenate([core_edges, chain]),
                 name=name or graph.name)


def foaf_like(num_vertices: int, avg_degree: float = 11.0, seed: int = 0,
              name: str = "foaf_like") -> Graph:
    """Friend-of-a-friend-style graph reproducing Figure 2's work decay.

    A power-law core (most vertices, converging within a few supersteps)
    plus a sparse long tail of chained stragglers that keeps a small
    workset alive for tens of supersteps — matching the FOAF subgraph's
    behaviour where iteration 30+ still touches a handful of vertices.
    """
    rng = np.random.default_rng(seed)
    tail = max(16, num_vertices // 200)
    core = num_vertices - tail
    scale = max(4, int(np.ceil(np.log2(core))))
    core_graph = rmat(scale, avg_degree, seed=seed, name="core")
    edges = [
        np.stack([
            np.minimum(core_graph.indices, core - 1),
            np.minimum(
                np.repeat(np.arange(core_graph.num_vertices),
                          np.diff(core_graph.indptr)),
                core - 1,
            ),
        ], axis=1)
    ]
    # chain of stragglers hanging off the core
    tail_ids = np.arange(core, num_vertices)
    chain = np.stack([
        np.concatenate([[rng.integers(0, core)], tail_ids[:-1]]),
        tail_ids,
    ], axis=1)
    edges.append(chain)
    return Graph(num_vertices, np.concatenate(edges), name=name)
