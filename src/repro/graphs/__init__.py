"""Graph substrate: compact graphs, synthetic generators, dataset registry.

The paper evaluates on four web/social graphs (Table 2) plus a FOAF
subgraph (Figure 2).  Those datasets are not redistributable here, so
:mod:`repro.graphs.generators` provides seeded synthetic generators that
preserve the structural traits the evaluation depends on — degree
distribution, density, and diameter — and
:mod:`repro.graphs.datasets` registers scaled-down named datasets with
the same roles (see DESIGN.md, substitution table).
"""

from repro.graphs.graph import Graph
from repro.graphs.datasets import dataset_names, load_dataset
from repro.graphs.generators import (
    chained_communities,
    erdos_renyi,
    foaf_like,
    overlapping_cliques,
    preferential_attachment,
    rmat,
)
from repro.graphs.stats import GraphStats, compute_stats

__all__ = [
    "Graph",
    "GraphStats",
    "chained_communities",
    "compute_stats",
    "dataset_names",
    "erdos_renyi",
    "foaf_like",
    "load_dataset",
    "overlapping_cliques",
    "preferential_attachment",
    "rmat",
]
