"""Named datasets standing in for the paper's Table 2 graphs.

Each dataset is a seeded synthetic graph scaled down ~1000× from the
paper's, preserving the structural trait that drives its role in the
evaluation (see DESIGN.md).  ``load_dataset(name)`` memoizes, so the
benchmark suite generates each graph once per process.

==================  =========================  ==========================
name                paper counterpart          preserved trait
==================  =========================  ==========================
``wikipedia``       Wikipedia-EN (16.5M/220M)  power-law web graph,
                                               avg degree ~13
``webbase``         Webbase 2001 (116M/1.7B)   web crawl with a
                                               huge-diameter component
``hollywood``       Hollywood (2.0M/229M)      dense social graph,
                                               avg degree ~115
``twitter``         Twitter (41.7M/1.5B)       power-law follower graph,
                                               avg degree ~35
``foaf``            FOAF BTC subgraph          work-decay tail (Fig. 2)
==================  =========================  ==========================
"""

from __future__ import annotations

from functools import lru_cache

from repro.graphs import generators
from repro.graphs.graph import Graph

#: paper-reported properties, for the Table 2 report (vertices, edges)
PAPER_PROPERTIES = {
    "wikipedia": ("Wikipedia-EN", 16_513_969, 219_505_928, 13.29),
    "webbase": ("Webbase", 115_657_290, 1_736_677_821, 15.02),
    "hollywood": ("Hollywood", 1_985_306, 228_985_632, 115.34),
    "twitter": ("Twitter", 41_652_230, 1_468_365_182, 35.25),
}

_BUILDERS = {}


def _register(name):
    def deco(fn):
        _BUILDERS[name] = fn
        return fn
    return deco


@_register("wikipedia")
def _wikipedia(scale: int = 0) -> Graph:
    # RMAT collapses duplicate edges; request a higher degree so the
    # deduplicated graph lands near the paper's 13.3.  The straggler tail
    # reproduces the original graph's convergence profile: the paper's CC
    # runs need 14 supersteps on Wikipedia, not the ~6 a bare RMAT core
    # would give.
    core = generators.rmat(13 + scale, avg_degree=15.7, seed=11)
    return generators.attach_tail(core, tail_length=8, seed=11,
                                  name="wikipedia")


@_register("webbase")
def _webbase(scale: int = 0) -> Graph:
    return generators.chained_communities(
        num_communities=150 * (1 << scale), community_size=80,
        intra_degree=13.0, bridges=1, seed=22, name="webbase",
    )


@_register("hollywood")
def _hollywood(scale: int = 0) -> Graph:
    return generators.overlapping_cliques(
        num_vertices=1500 * (1 << scale), clique_size=40,
        cliques_per_vertex=3.0, seed=33, name="hollywood",
    )


@_register("twitter")
def _twitter(scale: int = 0) -> Graph:
    # like wikipedia: a straggler tail reproduces the paper's 14-superstep
    # convergence ("a large subset of the vertices finds its final
    # component ID within the first four iterations", Sec. 6.2)
    core = generators.rmat(13 + scale, avg_degree=47.0, seed=44)
    return generators.attach_tail(core, tail_length=9, seed=44,
                                  name="twitter")


@_register("foaf")
def _foaf(scale: int = 0) -> Graph:
    return generators.foaf_like(6000 * (1 << scale), avg_degree=11.0,
                                seed=55, name="foaf")


@_register("sample9")
def _sample9(scale: int = 0) -> Graph:
    """The 9-vertex example graph of Figure 1 (vertex ids shifted to 0-8)."""
    edges = [(0, 1), (1, 2), (0, 2), (2, 3), (4, 5), (5, 6), (6, 7),
             (7, 8), (6, 8)]
    return Graph(9, edges, name="sample9")


def dataset_names() -> list[str]:
    return sorted(_BUILDERS)


@lru_cache(maxsize=None)
def load_dataset(name: str, scale: int = 0) -> Graph:
    """Build (or return the cached) named dataset.

    ``scale`` doubles the vertex count per increment, for benchmarks
    that want to study scaling behaviour beyond the defaults.
    """
    builder = _BUILDERS.get(name)
    if builder is None:
        raise KeyError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        )
    return builder(scale=scale)
