"""Graph statistics: degrees, components, diameter estimates.

Used by the Table 2 reproduction (dataset property report) and by tests
that validate the generators hit their structural targets.  Everything
here is ground-truth computed with flat array algorithms (union-find,
BFS over CSR) — independent of the dataflow engines it validates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph


@dataclass
class GraphStats:
    name: str
    num_vertices: int
    num_edges: int
    avg_degree: float
    max_degree: int
    num_components: int
    largest_component: int
    diameter_lower_bound: int


def union_find_components(graph: Graph) -> np.ndarray:
    """Component label per vertex via weighted union-find with path halving.

    The labels are the minimum vertex id of each component, matching the
    fixpoint the Connected Components algorithms converge to.
    """
    parent = np.arange(graph.num_vertices, dtype=np.int64)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    src = np.repeat(np.arange(graph.num_vertices, dtype=np.int64),
                    np.diff(graph.indptr))
    for u, v in zip(src.tolist(), graph.indices.tolist()):
        ru, rv = find(u), find(v)
        if ru != rv:
            if ru < rv:
                parent[rv] = ru
            else:
                parent[ru] = rv
    # flatten to canonical minimum-id labels
    labels = np.empty(graph.num_vertices, dtype=np.int64)
    for v in range(graph.num_vertices):
        labels[v] = find(v)
    return labels


def bfs_eccentricity(graph: Graph, start: int) -> int:
    """Eccentricity of ``start`` within its component (levels of BFS)."""
    dist = np.full(graph.num_vertices, -1, dtype=np.int64)
    dist[start] = 0
    frontier = np.array([start], dtype=np.int64)
    level = 0
    while frontier.size:
        level_neighbors = []
        for v in frontier.tolist():
            level_neighbors.append(graph.neighbors(v))
        if level_neighbors:
            candidates = np.unique(np.concatenate(level_neighbors))
            fresh = candidates[dist[candidates] < 0]
        else:
            fresh = np.array([], dtype=np.int64)
        if fresh.size == 0:
            break
        level += 1
        dist[fresh] = level
        frontier = fresh
    return level


def estimate_diameter(graph: Graph, probes: int = 4, seed: int = 0) -> int:
    """Lower bound on the diameter via double-sweep BFS from random seeds."""
    if graph.num_vertices == 0:
        return 0
    rng = np.random.default_rng(seed)
    best = 0
    starts = rng.integers(0, graph.num_vertices, size=probes)
    for start in starts.tolist():
        ecc = bfs_eccentricity(graph, start)
        best = max(best, ecc)
        # double sweep: re-run from a farthest vertex
        dist = _bfs_distances(graph, start)
        farthest = int(np.argmax(np.where(dist < 0, -1, dist)))
        best = max(best, bfs_eccentricity(graph, farthest))
    return best


def _bfs_distances(graph: Graph, start: int) -> np.ndarray:
    dist = np.full(graph.num_vertices, -1, dtype=np.int64)
    dist[start] = 0
    frontier = [start]
    level = 0
    while frontier:
        level += 1
        next_frontier = []
        for v in frontier:
            for u in graph.neighbors(v).tolist():
                if dist[u] < 0:
                    dist[u] = level
                    next_frontier.append(u)
        frontier = next_frontier
    return dist


def compute_stats(graph: Graph, diameter_probes: int = 2) -> GraphStats:
    labels = union_find_components(graph)
    unique, counts = np.unique(labels, return_counts=True)
    degrees = graph.degrees()
    return GraphStats(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        avg_degree=graph.avg_degree,
        max_degree=int(degrees.max()) if degrees.size else 0,
        num_components=int(unique.size),
        largest_component=int(counts.max()) if counts.size else 0,
        diameter_lower_bound=estimate_diameter(graph, probes=diameter_probes),
    )
