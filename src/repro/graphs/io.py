"""Edge-list persistence for graphs.

The format is the ubiquitous whitespace-separated edge list used by SNAP
and the WebGraph-derived datasets of Table 2: one ``src dst`` pair per
line, ``#``-prefixed comment lines ignored.  Only one direction of each
undirected edge needs to be stored; :class:`~repro.graphs.Graph`
symmetrizes on load by default.
"""

from __future__ import annotations

import os

from repro.graphs.graph import Graph


def write_edge_list(graph: Graph, path: str, deduplicate: bool = True):
    """Write the graph as a ``src dst`` text file with a header comment."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# {graph.name}: {graph.num_vertices} vertices, "
                     f"{graph.num_edges} adjacency entries\n")
        handle.write(f"# vertices {graph.num_vertices}\n")
        for src, dst in graph.edge_tuples():
            if deduplicate and src > dst:
                continue  # store one direction; load symmetrizes
            handle.write(f"{src} {dst}\n")


def read_edge_list(path: str, num_vertices: int = None,
                   symmetrize: bool = True, name: str = None) -> Graph:
    """Read a ``src dst`` edge-list file.

    ``num_vertices`` defaults to the ``# vertices N`` header if present,
    else ``max endpoint + 1``.
    """
    edges = []
    header_vertices = None
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "vertices":
                    header_vertices = int(parts[1])
                continue
            src_text, dst_text = line.split()[:2]
            edges.append((int(src_text), int(dst_text)))
    if num_vertices is None:
        num_vertices = header_vertices
    if num_vertices is None:
        num_vertices = 1 + max(
            (max(s, d) for s, d in edges), default=-1
        )
    return Graph(num_vertices, edges, symmetrize=symmetrize,
                 name=name or os.path.splitext(os.path.basename(path))[0])
