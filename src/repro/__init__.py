"""repro — a reproduction of "Spinning Fast Iterative Data Flows" (VLDB 2012).

A parallel dataflow engine (in the Stratosphere/PACT tradition) with:

* bulk iterations embedded as dataflow operators (Section 4),
* incremental (workset) iterations with an indexed solution set, delta
  sets, and the ``∪̇`` merge (Section 5),
* microstep and asynchronous execution for eligible step functions
  (Section 5.2),
* a Volcano-style optimizer aware of dynamic/constant data paths and
  iteration-weighted costs (Section 4.3),

plus the baseline systems the paper evaluates against — a Spark-like RDD
engine and a Pregel/Giraph-like vertex-centric BSP engine — and the
graph workloads and benchmark harness that regenerate the paper's tables
and figures.

Quickstart::

    from repro import ExecutionEnvironment

    env = ExecutionEnvironment(parallelism=4)
    numbers = env.from_iterable((i,) for i in range(10))
    doubled = numbers.map(lambda r: (r[0] * 2,))
    print(doubled.collect())
"""

from repro.common.errors import (
    DataflowError,
    InvalidPlanError,
    MicrostepViolation,
    NotConvergedError,
    OptimizerError,
)
from repro.dataflow.dataset import DataSet
from repro.dataflow.environment import ExecutionEnvironment

__version__ = "1.0.0"

__all__ = [
    "DataSet",
    "DataflowError",
    "ExecutionEnvironment",
    "InvalidPlanError",
    "MicrostepViolation",
    "NotConvergedError",
    "OptimizerError",
    "__version__",
]
