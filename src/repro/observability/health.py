"""Worker heartbeats and the health monitor.

The pool backend's only liveness signal used to be the gather deadline:
a stalled worker surfaced as a :class:`WorkerCrash` minutes after the
stall began, with no indication of *which* rank or *why*.  This module
adds the early-warning layer:

* :class:`WorkerVitals` — one per worker process (module-global
  :data:`VITALS`), updated by the executor's superstep hooks via the
  telemetry registry.  Holds rank, pid, current job, current superstep,
  RSS, and a last-progress timestamp.
* heartbeats — small dicts sampled from the vitals by a background
  thread in each pool worker and shipped over the existing results
  control queue (``("hb", ...)`` messages) on a fixed cadence.
* :class:`HealthMonitor` — parent-side: ingests heartbeats, and on
  every gather poll answers "is anyone silent, stalled, or lagging?".
  Findings are emitted as **structured warnings**
  (:class:`HeartbeatLossWarning`, :class:`StallWarning`,
  :class:`StragglerWarning`) *before* the gather deadline escalates to
  a crash — each (rank, kind) pair warns once until the rank recovers.

All timestamps are ``time.perf_counter()`` — CLOCK_MONOTONIC, shared
across forked workers on Linux, and the same timebase the span tracer
and metric series use.
"""

from __future__ import annotations

import os
import threading
import time


class HealthWarningBase(UserWarning):
    """Base class for structured worker-health warnings."""

    def __init__(self, rank: int, detail: str):
        self.rank = rank
        self.detail = detail
        super().__init__(f"worker {rank}: {detail}")


class HeartbeatLossWarning(HealthWarningBase):
    """A worker's heartbeats stopped arriving."""


class StallWarning(HealthWarningBase):
    """A worker heartbeats but reports no execution progress."""


class StragglerWarning(HealthWarningBase):
    """A worker's superstep lags the rest of the gang."""


class WorkerVitals:
    """Per-process execution progress, sampled by the heartbeat thread.

    Written from the execution thread (superstep hooks), read from the
    heartbeat thread; single attribute stores are atomic under the GIL,
    so no lock is needed.
    """

    def __init__(self):
        self.rank = 0
        self.pid = os.getpid()
        self.job = None
        self.superstep = -1
        self.rss_bytes = 0
        self.last_progress_s = time.perf_counter()

    def configure(self, rank: int) -> None:
        self.rank = rank
        self.pid = os.getpid()

    def begin_job(self, job) -> None:
        self.job = job
        self.superstep = -1
        self.last_progress_s = time.perf_counter()

    def end_job(self) -> None:
        self.job = None
        self.last_progress_s = time.perf_counter()

    def progress(self, superstep: int, rss_bytes: int | None = None) -> None:
        self.superstep = superstep
        if rss_bytes is not None:
            self.rss_bytes = rss_bytes
        self.last_progress_s = time.perf_counter()

    def heartbeat(self, interval_s: float) -> dict:
        """One picklable heartbeat sample of the current vitals."""
        return {
            "rank": self.rank,
            "pid": self.pid,
            "job": self.job,
            "superstep": self.superstep,
            "rss_bytes": self.rss_bytes,
            "last_progress_s": self.last_progress_s,
            "sent_s": time.perf_counter(),
            "interval_s": interval_s,
        }


#: this process's vitals; pool workers configure it after fork
VITALS = WorkerVitals()


class HealthMonitor:
    """Parent-side heartbeat ledger and straggler/stall detector.

    Thresholds scale with the heartbeat cadence each sample reports:
    heartbeats older than ``loss_factor`` intervals mean the signal is
    lost; progress older than ``stall_after_s`` means the worker is
    stalled; a rank ``skew_threshold`` supersteps behind the front
    runner for at least ``skew_grace_s`` (while the gang progresses) is
    a straggler.  Both skew knobs absorb sampling jitter: heartbeats
    from different ranks are taken at different instants, so when
    supersteps are much faster than the cadence a healthy lockstep
    gang can *appear* many supersteps apart for up to one beat — the
    grace period makes the lag prove it persists before it warns.
    ``check`` returns *newly raised* findings only — a finding re-arms
    when its rank recovers.

    Thread-safe: the gather loop ingests while a monitor UI snapshots.
    """

    def __init__(self, size: int, loss_factor: float = 4.0,
                 stall_after_s: float = 2.0, skew_threshold: int = 4,
                 skew_grace_s: float = 0.5):
        self.size = size
        self.loss_factor = loss_factor
        self.stall_after_s = stall_after_s
        self.skew_threshold = skew_threshold
        self.skew_grace_s = skew_grace_s
        self._lock = threading.Lock()
        self._latest: dict[int, dict] = {}
        self._seen_s: dict[int, float] = {}
        self._active: dict[tuple, HealthWarningBase] = {}
        #: when each rank's superstep lag first crossed the threshold
        self._lag_since: dict[int, float] = {}

    @property
    def heartbeats_seen(self) -> bool:
        with self._lock:
            return bool(self._latest)

    def observe(self, heartbeat: dict, now: float | None = None) -> None:
        """Ingest one heartbeat message."""
        now = time.perf_counter() if now is None else now
        with self._lock:
            self._latest[heartbeat["rank"]] = heartbeat
            self._seen_s[heartbeat["rank"]] = now

    def _resolve(self, rank: int, cls) -> None:
        self._active.pop((rank, cls), None)

    def _raise_once(self, findings, rank, cls, detail) -> None:
        key = (rank, cls)
        if key not in self._active:
            warning = cls(rank, detail)
            self._active[key] = warning
            findings.append(warning)

    def check(self, now: float | None = None) -> list:
        """Evaluate current vitals; return newly raised warnings."""
        now = time.perf_counter() if now is None else now
        findings: list = []
        with self._lock:
            if not self._latest:
                return findings
            active_steps = [
                hb["superstep"] for hb in self._latest.values()
                if hb["job"] is not None
            ]
            front = max(active_steps, default=-1)
            for rank in sorted(self._latest):
                heartbeat = self._latest[rank]
                if heartbeat["job"] is None:
                    # idle ranks go silent on purpose: the sender is
                    # paused between jobs after a farewell beat, so
                    # neither silence nor progress age means anything
                    self._resolve(rank, HeartbeatLossWarning)
                    self._resolve(rank, StallWarning)
                    self._resolve(rank, StragglerWarning)
                    self._lag_since.pop(rank, None)
                    continue
                interval = heartbeat.get("interval_s") or 0.5
                beat_age = now - self._seen_s[rank]
                if beat_age > self.loss_factor * interval:
                    self._raise_once(
                        findings, rank, HeartbeatLossWarning,
                        f"no heartbeat for {beat_age:.1f}s "
                        f"(cadence {interval:.2f}s); last seen in job "
                        f"{heartbeat['job']} superstep "
                        f"{heartbeat['superstep']}",
                    )
                else:
                    self._resolve(rank, HeartbeatLossWarning)
                progress_age = now - heartbeat["last_progress_s"]
                if progress_age > self.stall_after_s:
                    self._raise_once(
                        findings, rank, StallWarning,
                        f"no progress for {progress_age:.1f}s in job "
                        f"{heartbeat['job']} (stuck at superstep "
                        f"{heartbeat['superstep']})",
                    )
                else:
                    self._resolve(rank, StallWarning)
                lag = front - heartbeat["superstep"]
                if lag >= self.skew_threshold:
                    lag_since = self._lag_since.setdefault(rank, now)
                    if now - lag_since >= self.skew_grace_s:
                        self._raise_once(
                            findings, rank, StragglerWarning,
                            f"superstep {heartbeat['superstep']} lags the "
                            f"front runner ({front}) by {lag} "
                            f"for {now - lag_since:.1f}s",
                        )
                else:
                    self._lag_since.pop(rank, None)
                    self._resolve(rank, StragglerWarning)
        return findings

    def emit(self, now: float | None = None) -> list:
        """Run :meth:`check` and ``warnings.warn`` each new finding."""
        import warnings as _warnings
        findings = self.check(now)
        for finding in findings:
            _warnings.warn(finding, stacklevel=2)
        return findings

    def context(self, now: float | None = None) -> str:
        """One-line health summary, appended to crash messages."""
        now = time.perf_counter() if now is None else now
        with self._lock:
            if not self._latest:
                return ""
            parts = []
            for rank in sorted(self._latest):
                heartbeat = self._latest[rank]
                beat_age = now - self._seen_s[rank]
                parts.append(
                    f"rank {rank}: superstep {heartbeat['superstep']}, "
                    f"heartbeat {beat_age:.1f}s ago"
                )
            return "; ".join(parts)

    def snapshot(self, now: float | None = None) -> list[dict]:
        """Per-rank status rows for the live monitor table."""
        now = time.perf_counter() if now is None else now
        with self._lock:
            rows = []
            for rank in range(self.size):
                heartbeat = self._latest.get(rank)
                if heartbeat is None:
                    rows.append({
                        "rank": rank, "pid": None, "job": None,
                        "superstep": None, "rss_bytes": 0,
                        "progress_age_s": None, "beat_age_s": None,
                        "status": "no heartbeat yet",
                    })
                    continue
                status = "ok" if heartbeat["job"] is not None else "idle"
                for (rank_key, cls), warning in self._active.items():
                    if rank_key == rank:
                        status = cls.__name__.replace("Warning", "").lower()
                rows.append({
                    "rank": rank,
                    "pid": heartbeat["pid"],
                    "job": heartbeat["job"],
                    "superstep": heartbeat["superstep"],
                    "rss_bytes": heartbeat["rss_bytes"],
                    "progress_age_s": now - heartbeat["last_progress_s"],
                    "beat_age_s": now - self._seen_s[rank],
                    "status": status,
                })
            return rows


class HeartbeatSender:
    """Background thread shipping vitals over a control queue.

    Daemonized and idempotent to start; ``pause``/``resume`` gate the
    sends so an idle worker does not flood the queue between jobs (the
    first beat after ``resume`` goes out immediately).  ``stop`` exists
    for fault-injection tests that simulate heartbeat loss.
    """

    def __init__(self, queue, vitals, interval_s: float = 0.5):
        self.queue = queue
        self.vitals = vitals
        self.interval_s = interval_s
        self._wake = threading.Event()
        self._stopped = threading.Event()
        self._sending = threading.Event()
        self._thread = None

    def start(self) -> None:
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="repro-heartbeat", daemon=True
            )
            self._thread.start()

    def resume(self, interval_s: float | None = None) -> None:
        if interval_s is not None:
            self.interval_s = interval_s
        self._sending.set()
        self._wake.set()
        self.start()

    def pause(self) -> None:
        self._sending.clear()

    def stop(self) -> None:
        self._stopped.set()
        self._wake.set()

    def _run(self) -> None:
        while not self._stopped.is_set():
            if self._sending.is_set():
                try:
                    self.queue.put(
                        ("hb", None, self.vitals.rank,
                         self.vitals.heartbeat(self.interval_s))
                    )
                except Exception:
                    return  # queue torn down: the pool is shutting down
            self._wake.wait(self.interval_s)
            self._wake.clear()
