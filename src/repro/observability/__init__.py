"""Span-based tracing, trace exporters, and per-operator profiling.

See :mod:`repro.observability.tracer` for the recording model,
:mod:`repro.observability.export` for the JSONL / Chrome-trace
consumers, and :mod:`repro.observability.profile` for the per-operator
profile report behind ``python -m repro.bench trace``.
"""

from repro.observability.export import (
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.observability.profile import operator_profile
from repro.observability.tracer import (
    LOGICAL_SPAN_COUNTERS,
    SPAN_COUNTERS,
    Span,
    Tracer,
    attach_tracer,
    canonical_name,
)

__all__ = [
    "LOGICAL_SPAN_COUNTERS",
    "SPAN_COUNTERS",
    "Span",
    "Tracer",
    "attach_tracer",
    "canonical_name",
    "operator_profile",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
