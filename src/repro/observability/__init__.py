"""Span-based tracing, live telemetry, exporters, and profiling.

See :mod:`repro.observability.tracer` for the recording model,
:mod:`repro.observability.telemetry` for the live metric registry and
resource ledger, :mod:`repro.observability.health` for worker
heartbeats and the straggler/stall monitor,
:mod:`repro.observability.export` for the JSONL / Chrome-trace
consumers, and :mod:`repro.observability.profile` for the per-operator
profile report behind ``python -m repro.bench trace``.
"""

from repro.observability.export import (
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.observability.health import (
    HealthMonitor,
    HealthWarningBase,
    HeartbeatLossWarning,
    HeartbeatSender,
    StallWarning,
    StragglerWarning,
    WorkerVitals,
)
from repro.observability.profile import operator_profile
from repro.observability.telemetry import (
    Counter,
    Gauge,
    Histogram,
    JobResources,
    MetricRegistry,
    ResourceLedger,
    attach_telemetry,
    prometheus_text,
    write_prometheus,
    write_series_jsonl,
)
from repro.observability.tracer import (
    LOGICAL_SPAN_COUNTERS,
    SPAN_COUNTERS,
    Span,
    Tracer,
    attach_tracer,
    canonical_name,
)

__all__ = [
    "LOGICAL_SPAN_COUNTERS",
    "SPAN_COUNTERS",
    "Counter",
    "Gauge",
    "HealthMonitor",
    "HealthWarningBase",
    "HeartbeatLossWarning",
    "HeartbeatSender",
    "Histogram",
    "JobResources",
    "MetricRegistry",
    "ResourceLedger",
    "Span",
    "StallWarning",
    "StragglerWarning",
    "Tracer",
    "WorkerVitals",
    "attach_telemetry",
    "attach_tracer",
    "canonical_name",
    "operator_profile",
    "prometheus_text",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
    "write_series_jsonl",
]
