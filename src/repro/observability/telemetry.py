"""Live telemetry: a typed metric registry and its exporters.

Tracing (:mod:`repro.observability.tracer`) explains a run *after* it
finished; this module is the engine's view of a run *while it runs*.
A :class:`MetricRegistry` holds three typed instruments —

* :class:`Counter` — monotonically increasing totals (frames sent,
  bytes spilled),
* :class:`Gauge` — instantaneous levels (resident bytes, free ring
  slots, memo residency),
* :class:`Histogram` — distributions over **fixed bucket bounds**, so
  that merging histograms from different ranks is a plain bucket-wise
  sum and therefore deterministic regardless of merge order —

plus an append-only *time series* of ``(t_s, name, labels, value)``
samples recorded on the same ``time.perf_counter`` timebase the span
tracer uses, which is what lets the Perfetto exporter draw counter
tracks under the span timeline.

Instrumented sites (executor, spill manager, fabric endpoints, pool
workers) hold a registry reference that is ``None`` when telemetry is
disabled — the disabled hot path is one attribute test.  Enablement is
``RuntimeConfig(telemetry=...)`` / ``REPRO_TELEMETRY``; results and
logical counters are bitwise identical either way (enforced by the
differential audit's telemetry leg).

Registries are per-process.  SPMD workers ship ``snapshot()`` dicts
home with their job payloads; the parent folds them in rank order with
:meth:`MetricRegistry.merge_snapshot` (counters and histogram buckets
sum, gauges take the elementwise max, label sets union) — per-rank
instruments carry a ``rank`` label, so nothing collides.

Consumers: :func:`prometheus_text` (Prometheus exposition format),
:func:`write_prometheus`, :func:`write_series_jsonl` (the JSONL
time-series artifact), and the live terminal monitor of
``python -m repro.bench monitor`` (see :mod:`repro.bench.monitor`).
"""

from __future__ import annotations

import json
import os
import time

#: default histogram bounds for superstep durations (seconds); chosen
#: once and fixed so cross-rank merges are bucket-wise sums
DURATION_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: soft cap on recorded time-series samples per registry; beyond it new
#: samples are dropped (and counted) instead of growing without bound
MAX_SERIES_SAMPLES = 200_000


def read_rss_bytes() -> int:
    """This process's current resident set size in bytes (0 if unknown).

    Linux: ``/proc/self/statm`` resident pages.  Fallback: the peak RSS
    from ``getrusage`` (coarser — a high-water mark, not a level).
    """
    try:
        with open("/proc/self/statm", "rb") as fh:
            fields = fh.read().split()
        return int(fields[1]) * (os.sysconf("SC_PAGE_SIZE") or 4096)
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource
        usage = resource.getrusage(resource.RUSAGE_SELF)
        return int(usage.ru_maxrss) * 1024
    except Exception:  # pragma: no cover - no resource module
        return 0


def read_peak_rss_bytes() -> int:
    """This process's peak resident set size in bytes (0 if unknown)."""
    try:
        import resource
        usage = resource.getrusage(resource.RUSAGE_SELF)
        return int(usage.ru_maxrss) * 1024
    except Exception:  # pragma: no cover - no resource module
        return 0


def _label_key(labels) -> tuple:
    """Canonical hashable encoding of a labels mapping."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (inc({amount}))"
            )
        self.value += amount


class Gauge:
    """An instantaneous level; ``set`` overwrites, ``add`` adjusts."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def add(self, amount) -> None:
        self.value += amount


class Histogram:
    """A distribution over fixed, ascending bucket upper bounds.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``
    (non-cumulative); observations above the last bound land in the
    implicit overflow bucket.  Because the bounds are fixed at creation
    and must match to merge, merging is a bucket-wise sum — the same
    totals whatever order ranks are folded in.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum")

    def __init__(self, name: str, bounds=DURATION_BUCKETS, labels: tuple = ()):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(
                f"histogram {name} needs ascending bucket bounds, "
                f"got {bounds!r}"
            )
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value) -> None:
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1


class MetricRegistry:
    """One process's live metrics: typed instruments plus a time series.

    Not thread-safe by design — each instrumented process mutates its
    own registry from its execution thread; cross-process aggregation
    goes through picklable :meth:`snapshot` dicts.
    """

    def __init__(self, rank: int = 0):
        self.rank = rank
        self._metrics: dict[tuple, object] = {}
        #: recorded time-series samples: dicts of t_s/name/labels/value
        self.series: list[dict] = []
        self.series_dropped = 0
        #: optional :class:`~repro.observability.health.WorkerVitals`
        #: mirror — superstep hooks keep it fresh for heartbeats
        self.vitals = None
        #: zero-argument callables returning {name: value} gauge samples,
        #: polled at every superstep boundary (executor residency, spill
        #: levels, fabric ring state)
        self._probes: list = []

    # ------------------------------------------------------------------
    # instruments

    def _instrument(self, cls, name, labels, **kwargs):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels=key[1], **kwargs)
            self._metrics[key] = metric
        elif metric.kind != cls.kind:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, labels=None) -> Counter:
        return self._instrument(Counter, name, labels)

    def gauge(self, name: str, labels=None) -> Gauge:
        return self._instrument(Gauge, name, labels)

    def histogram(self, name: str, bounds=DURATION_BUCKETS,
                  labels=None) -> Histogram:
        metric = self._instrument(Histogram, name, labels, bounds=bounds)
        if metric.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{metric.bounds}, got {tuple(bounds)}"
            )
        return metric

    def metrics(self):
        """All instruments, sorted by (name, labels) — deterministic."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def get(self, name: str, labels=None):
        """The instrument registered under (name, labels), or ``None``."""
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, labels=None, default=0):
        """Scalar value of a counter/gauge, or ``default`` if absent."""
        metric = self.get(name, labels)
        if metric is None:
            return default
        return metric.value

    def total(self, name: str) -> float:
        """Sum of a counter/gauge over every label set (0 if absent)."""
        return sum(
            m.value for m in self._metrics.values()
            if m.name == name and m.kind != "histogram"
        )

    # ------------------------------------------------------------------
    # time series

    def record(self, name: str, value, t_s: float | None = None,
               labels=None) -> None:
        """Append one time-series sample (perf_counter timebase)."""
        if len(self.series) >= MAX_SERIES_SAMPLES:
            self.series_dropped += 1
            return
        self.series.append({
            "t_s": time.perf_counter() if t_s is None else t_s,
            "name": name,
            "labels": dict(labels) if labels else {"rank": self.rank},
            "value": value,
        })

    def add_probe(self, probe) -> None:
        """Register a superstep-boundary sampler (``() -> {name: value}``)."""
        self._probes.append(probe)

    # ------------------------------------------------------------------
    # superstep hooks (called by MetricsCollector when attached)

    def note_superstep_begin(self, superstep: int) -> None:
        if self.vitals is not None:
            self.vitals.progress(superstep)

    def note_superstep_end(self, stats) -> None:
        """Fold one finished superstep into instruments and the series.

        ``stats`` is the superstep's
        :class:`~repro.runtime.metrics.IterationStats`.
        """
        duration = stats.duration_s
        self.histogram("executor.superstep_duration_s").observe(duration)
        self.gauge("executor.superstep").set(stats.superstep)
        now = time.perf_counter()
        if duration > 0:
            self.record("executor.records_per_s",
                        stats.records_processed / duration, t_s=now)
            self.record("executor.batches_per_s",
                        stats.batches_shipped / duration, t_s=now)
        self.record("executor.workset_size", stats.workset_size, t_s=now)
        rss = read_rss_bytes()
        self.gauge("worker.rss_bytes").set(rss)
        self.record("worker.rss_bytes", rss, t_s=now)
        for probe in self._probes:
            for name, value in probe().items():
                self.gauge(name).set(value)
                self.record(name, value, t_s=now)
        if self.vitals is not None:
            self.vitals.progress(stats.superstep, rss_bytes=rss)

    # ------------------------------------------------------------------
    # snapshots and deterministic merging

    def snapshot(self) -> dict:
        """A picklable view: every instrument plus the recorded series."""
        out = []
        for metric in self.metrics():
            entry = {
                "name": metric.name,
                "kind": metric.kind,
                "labels": dict(metric.labels),
            }
            if metric.kind == "histogram":
                entry["bounds"] = list(metric.bounds)
                entry["bucket_counts"] = list(metric.bucket_counts)
                entry["count"] = metric.count
                entry["sum"] = metric.sum
            else:
                entry["value"] = metric.value
            out.append(entry)
        return {
            "rank": self.rank,
            "metrics": out,
            "series": list(self.series),
            "series_dropped": self.series_dropped,
        }

    def merge_snapshot(self, snap: dict) -> "MetricRegistry":
        """Fold another registry's snapshot into this one.

        Deterministic by construction: counters and histogram buckets
        sum, gauges take the elementwise max (levels from different
        ranks are not additive), series samples append.  Histograms
        with mismatched bounds refuse to merge.
        """
        for entry in snap.get("metrics", ()):
            labels = entry.get("labels") or {}
            kind = entry["kind"]
            if kind == "counter":
                self.counter(entry["name"], labels).inc(entry["value"])
            elif kind == "gauge":
                gauge = self.gauge(entry["name"], labels)
                gauge.set(max(gauge.value, entry["value"]))
            else:
                hist = self.histogram(
                    entry["name"], bounds=entry["bounds"], labels=labels
                )
                if list(hist.bounds) != [float(b) for b in entry["bounds"]]:
                    raise ValueError(
                        f"histogram {entry['name']!r}: cannot merge "
                        f"bounds {entry['bounds']} into {list(hist.bounds)}"
                    )
                for index, count in enumerate(entry["bucket_counts"]):
                    hist.bucket_counts[index] += count
                hist.count += entry["count"]
                hist.sum += entry["sum"]
        for sample in snap.get("series", ()):
            if len(self.series) >= MAX_SERIES_SAMPLES:
                self.series_dropped += 1
            else:
                self.series.append(sample)
        self.series_dropped += snap.get("series_dropped", 0)
        return self


def attach_telemetry(metrics, rank: int = 0,
                     vitals=None) -> MetricRegistry:
    """Attach a fresh registry to a collector and return it (idempotent).

    Mirrors :func:`~repro.observability.tracer.attach_tracer`: superstep
    barriers then feed :meth:`MetricRegistry.note_superstep_end`, and
    ``vitals`` (a :class:`~repro.observability.health.WorkerVitals`)
    receives progress marks for the heartbeat thread to sample.
    """
    if metrics.telemetry is None:
        registry = MetricRegistry(rank=rank)
        registry.vitals = vitals
        metrics.telemetry = registry
    return metrics.telemetry


# ----------------------------------------------------------------------
# per-job resource accounting (admission-control input)


class JobResources:
    """One worker's resource bill for one job."""

    __slots__ = ("job", "rank", "wall_s", "cpu_s", "peak_rss_bytes",
                 "bytes_shipped", "bytes_spilled", "records_spilled")

    def __init__(self, job, rank, wall_s, cpu_s, peak_rss_bytes,
                 bytes_shipped=0, bytes_spilled=0, records_spilled=0):
        self.job = job
        self.rank = rank
        self.wall_s = wall_s
        self.cpu_s = cpu_s
        self.peak_rss_bytes = peak_rss_bytes
        self.bytes_shipped = bytes_shipped
        self.bytes_spilled = bytes_spilled
        self.records_spilled = records_spilled

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class ResourceLedger:
    """Per-job resource accounting across workers.

    The input the multi-tenant job manager (ROADMAP item 5) needs for
    admission control and per-job caps: for every job, cpu seconds
    (summed over ranks), peak RSS (max over ranks — budgets are
    per-process), and bytes shipped/spilled (summed).
    """

    def __init__(self):
        self.entries: list[JobResources] = []

    def add(self, entry: JobResources) -> None:
        self.entries.append(entry)

    @property
    def jobs(self) -> list:
        seen = []
        for entry in self.entries:
            if entry.job not in seen:
                seen.append(entry.job)
        return seen

    def job_totals(self, job) -> dict:
        mine = [e for e in self.entries if e.job == job]
        if not mine:
            raise KeyError(f"no resource entries for job {job!r}")
        return {
            "job": job,
            "workers": len(mine),
            "wall_s": max(e.wall_s for e in mine),
            "cpu_s": sum(e.cpu_s for e in mine),
            "peak_rss_bytes": max(e.peak_rss_bytes for e in mine),
            "bytes_shipped": sum(e.bytes_shipped for e in mine),
            "bytes_spilled": sum(e.bytes_spilled for e in mine),
            "records_spilled": sum(e.records_spilled for e in mine),
        }

    def totals(self) -> dict:
        """Aggregate over all jobs (peak RSS stays a max, not a sum)."""
        per_job = [self.job_totals(job) for job in self.jobs]
        return {
            "jobs": len(per_job),
            "wall_s": sum(t["wall_s"] for t in per_job),
            "cpu_s": sum(t["cpu_s"] for t in per_job),
            "peak_rss_bytes": max(
                (t["peak_rss_bytes"] for t in per_job), default=0
            ),
            "bytes_shipped": sum(t["bytes_shipped"] for t in per_job),
            "bytes_spilled": sum(t["bytes_spilled"] for t in per_job),
            "records_spilled": sum(t["records_spilled"] for t in per_job),
        }


def job_resources_from_metrics(job, rank, wall_s, cpu_s, metrics) -> dict:
    """Build a picklable :class:`JobResources` payload for one worker."""
    return JobResources(
        job=job, rank=rank, wall_s=wall_s, cpu_s=cpu_s,
        peak_rss_bytes=read_peak_rss_bytes(),
        bytes_shipped=metrics.bytes_shipped,
        bytes_spilled=metrics.bytes_spilled,
        records_spilled=metrics.records_spilled,
    ).as_dict()


# ----------------------------------------------------------------------
# exporters


def _prometheus_name(name: str) -> str:
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"repro_{sanitized}"


def _prometheus_labels(labels, extra=None) -> str:
    pairs = dict(labels)
    if extra:
        pairs.update(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{key}="{value}"' for key, value in sorted(pairs.items())
    )
    return "{" + body + "}"


def prometheus_text(registry: MetricRegistry) -> str:
    """Render the registry in the Prometheus exposition format."""
    lines = []
    seen_types = set()
    for metric in registry.metrics():
        name = _prometheus_name(metric.name)
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {metric.kind}")
        if metric.kind == "histogram":
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.bucket_counts):
                cumulative += count
                labels = _prometheus_labels(metric.labels, {"le": bound})
                lines.append(f"{name}_bucket{labels} {cumulative}")
            labels = _prometheus_labels(metric.labels, {"le": "+Inf"})
            lines.append(f"{name}_bucket{labels} {metric.count}")
            plain = _prometheus_labels(metric.labels)
            lines.append(f"{name}_sum{plain} {metric.sum}")
            lines.append(f"{name}_count{plain} {metric.count}")
        else:
            labels = _prometheus_labels(metric.labels)
            lines.append(f"{name}{labels} {metric.value}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: str, registry: MetricRegistry) -> str:
    """Write :func:`prometheus_text` output to ``path``; returns it."""
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(registry))
    return path


def write_series_jsonl(path: str, registry: MetricRegistry,
                       meta=None) -> str:
    """Write the recorded time series as JSONL; returns ``path``.

    One ``meta`` header line, then one JSON object per sample in
    recorded order — the machine-readable resource time-series artifact
    (the optimizer's and job manager's input).
    """
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        header = {
            "type": "meta",
            "samples": len(registry.series),
            "series_dropped": registry.series_dropped,
        }
        header.update(meta or {})
        handle.write(json.dumps(header) + "\n")
        for sample in registry.series:
            handle.write(json.dumps(sample) + "\n")
    return path
