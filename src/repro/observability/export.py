"""Trace consumers: JSONL event logs and Chrome/Perfetto timelines.

Both exporters consume *timelines* — ``(label, Tracer)`` pairs, one per
process whose spans should be rendered on its own row: the driver for a
simulated run, one row per worker for a multiprocess run.

* :func:`write_jsonl` — one JSON object per line: a leading ``meta``
  record, then every span in depth-first preorder with its timeline
  label, depth, timestamps, attributes, and counter deltas.  Grep-able,
  diff-able, and the machine-readable artifact CI uploads.
* :func:`to_chrome_trace` — the Trace Event Format understood by
  ``chrome://tracing`` and https://ui.perfetto.dev: complete (``X``)
  events for spans, instant (``i``) events for markers, with counter
  deltas and attributes in ``args``.  Timestamps are normalized to the
  earliest span so the timeline starts at zero.
"""

from __future__ import annotations

import json
import os


def _normalize_timelines(timelines):
    """Accept a Tracer, a list of Tracers, or (label, Tracer) pairs."""
    from repro.observability.tracer import Tracer
    if isinstance(timelines, Tracer):
        timelines = [timelines]
    out = []
    for entry in timelines:
        if isinstance(entry, Tracer):
            out.append((f"worker-{entry.rank}", entry))
        else:
            label, tracer = entry
            out.append((str(label), tracer))
    return out


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def write_jsonl(path, timelines, meta=None) -> str:
    """Write timelines as a JSONL event log; returns ``path``."""
    timelines = _normalize_timelines(timelines)
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        header = {
            "type": "meta",
            "timelines": [label for label, _tracer in timelines],
        }
        header.update(_jsonable(meta or {}))
        handle.write(json.dumps(header) + "\n")
        for label, tracer in timelines:
            for record in _span_records(label, tracer):
                handle.write(json.dumps(record) + "\n")
    return path


def _span_records(label, tracer):
    def walk(span, depth):
        yield {
            "type": "instant" if span.is_instant else "span",
            "timeline": label,
            "rank": tracer.rank,
            "name": span.name,
            "category": span.category,
            "depth": depth,
            "start_s": span.start_s,
            "end_s": span.end_s,
            "duration_s": span.duration_s,
            "attributes": _jsonable(span.attributes),
            "counters": dict(span.counters),
        }
        for child in span.children:
            yield from walk(child, depth + 1)

    for root in tracer.roots:
        yield from walk(root, 0)


def to_chrome_trace(timelines, series=None) -> dict:
    """Encode timelines in the ``chrome://tracing`` Trace Event Format.

    ``series`` optionally carries telemetry time-series samples (the
    dicts of :attr:`~repro.observability.telemetry.MetricRegistry.series`);
    they are rendered as counter (``C``) tracks.  Spans and samples
    share the ``perf_counter`` timebase, so spill bytes, ring occupancy,
    and worker RSS line up under the span timeline in the Perfetto UI.
    """
    timelines = _normalize_timelines(timelines)
    series = series or []
    starts = [
        span.start_s
        for _label, tracer in timelines
        for span in tracer.iter_spans()
    ] + [sample["t_s"] for sample in series]
    origin = min(starts) if starts else 0.0
    events = [{
        "ph": "M", "name": "process_name", "pid": 0,
        "args": {"name": "repro"},
    }]

    def micros(seconds):
        return (seconds - origin) * 1e6

    for tid, (label, tracer) in enumerate(timelines):
        events.append({
            "ph": "M", "name": "thread_name", "pid": 0, "tid": tid,
            "args": {"name": label},
        })
        for span in tracer.iter_spans():
            args = {**_jsonable(span.attributes), **dict(span.counters)}
            if span.is_instant:
                events.append({
                    "name": span.name, "cat": span.category, "ph": "i",
                    "s": "t", "pid": 0, "tid": tid,
                    "ts": micros(span.start_s), "args": args,
                })
            else:
                end_s = span.end_s if span.end_s is not None else span.start_s
                events.append({
                    "name": span.name, "cat": span.category, "ph": "X",
                    "pid": 0, "tid": tid, "ts": micros(span.start_s),
                    "dur": max(micros(end_s) - micros(span.start_s), 0.001),
                    "args": args,
                })
    for sample in series:
        labels = sample.get("labels") or {}
        suffix = "".join(
            f"[{key}={labels[key]}]" for key in sorted(labels)
        )
        events.append({
            "name": f"{sample['name']}{suffix}", "cat": "telemetry",
            "ph": "C", "pid": 0, "ts": micros(sample["t_s"]),
            "args": {"value": sample["value"]},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, timelines, series=None) -> str:
    """Write :func:`to_chrome_trace` output as JSON; returns ``path``."""
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(timelines, series=series), handle)
    return path
