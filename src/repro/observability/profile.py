"""Per-operator profiles computed from a span tree.

Aggregates a merged trace by ``(category, name)``: self time (span
duration minus child span durations — the time actually spent in that
phase, not in nested phases), records processed, throughput, bytes put
on the wire, and cache behavior.  This is the paper-style "where did
the time and the records go" attribution the flat counters cannot give.
"""

from __future__ import annotations


def operator_profile(tracer, top: int | None = None) -> dict:
    """Aggregate ``tracer`` into per-phase profile rows.

    Returns ``{"wall_s": total root wall time, "rows": [row, ...]}``
    with rows sorted by self time descending; each row carries name,
    category, count, self_s, share, processed, records_per_s,
    shipped_remote, bytes_shipped, cache_hits, cache_builds,
    records_spilled, bytes_spilled.
    """
    buckets: dict[tuple, dict] = {}

    def visit(span):
        child_time = sum(
            child.duration_s for child in span.children
            if not child.is_instant
        )
        self_s = max(span.duration_s - child_time, 0.0)

        def self_counter(name):
            total = span.counters.get(name, 0)
            nested = sum(child.counters.get(name, 0)
                         for child in span.children)
            return max(total - nested, 0)

        key = (span.category, span.name)
        row = buckets.setdefault(key, {
            "name": span.name,
            "category": span.category,
            "count": 0,
            "self_s": 0.0,
            "processed": 0,
            "shipped_remote": 0,
            "bytes_shipped": 0,
            "cache_hits": 0,
            "cache_builds": 0,
            "records_spilled": 0,
            "bytes_spilled": 0,
        })
        row["count"] += 1
        row["self_s"] += self_s
        row["processed"] += self_counter("records_processed")
        row["shipped_remote"] += self_counter("records_shipped_remote")
        row["bytes_shipped"] += self_counter("bytes_shipped")
        row["cache_hits"] += self_counter("cache_hits")
        row["cache_builds"] += self_counter("cache_builds")
        row["records_spilled"] += self_counter("records_spilled")
        row["bytes_spilled"] += self_counter("bytes_spilled")
        for child in span.children:
            visit(child)

    for root in tracer.roots:
        visit(root)

    wall_s = sum(root.duration_s for root in tracer.roots)
    rows = sorted(buckets.values(), key=lambda r: r["self_s"], reverse=True)
    for row in rows:
        row["share"] = (row["self_s"] / wall_s) if wall_s > 0 else 0.0
        row["records_per_s"] = (
            row["processed"] / row["self_s"] if row["self_s"] > 0 else 0.0
        )
    if top is not None:
        rows = rows[:top]
    return {"wall_s": wall_s, "rows": rows}
