"""Span-based tracing for the runtime's execution phases.

A :class:`Tracer` records a forest of :class:`Span` trees: optimizer
phases, per-operator driver execution, channel ships, superstep
barriers, cache builds/hits.  Spans carry wall-clock timestamps *and*
logical counter deltas sampled from the bound
:class:`~repro.runtime.metrics.MetricsCollector` at begin/end — so a
span answers both "how long" and "how many records" for its subtree.

Two properties make traces comparable across execution backends:

* **Canonical names.**  Logical node names carry globally unique
  ``#<id>`` suffixes; :func:`canonical_name` strips them, so the same
  program traced in two environments produces the same span names.
* **Deterministic structure.**  Spans are only emitted at code points
  executed identically by the in-process simulator and every SPMD
  worker (operator dispatch, channel ships, superstep barriers) — never
  inside backend-specific branches.  Per-worker span trees are
  therefore structurally identical, which is what lets
  :meth:`Tracer.merge` fold them pairwise like
  ``MetricsCollector.merge`` folds counters: names and nesting must
  match, counters sum, durations take the slowest worker.

Well-nestedness is enforced: ``end`` must close the innermost open
span, and the invariant checker's trace law
(:meth:`~repro.runtime.invariants.InvariantChecker.check_trace`)
verifies at every quiescent point that the forest is closed and that
superstep-span counter deltas reconcile with ``iteration_log``.
"""

from __future__ import annotations

import re
import time
from contextlib import contextmanager

from repro.common.errors import InvariantViolation

_ID_SUFFIX = re.compile(r"#\d+")

#: collector totals sampled at span begin/end; a span's ``counters``
#: holds the (non-zero) deltas between the two samples
SPAN_COUNTERS = (
    "records_processed",
    "records_shipped_local",
    "records_shipped_remote",
    "solution_accesses",
    "solution_updates",
    "bytes_shipped",
    "batches_shipped",
    "cache_hits",
    "cache_builds",
    "records_spilled",
    "bytes_spilled",
    "columns_zero_copied",
    "bytes_zero_copied",
)

#: the counters that must be identical across backends (physical
#: quantities — bytes, cache, durations — legitimately differ between
#: the simulator and real workers); used for structural comparisons
LOGICAL_SPAN_COUNTERS = (
    "records_processed",
    "records_shipped_local",
    "records_shipped_remote",
    "solution_accesses",
    "solution_updates",
    "workset_size",
    "delta_size",
)


def canonical_name(name) -> str:
    """Strip the ``#<node id>`` uniquifiers from a logical name."""
    return _ID_SUFFIX.sub("", str(name))


class Span:
    """One timed phase: a name, a category, attributes, counter deltas."""

    __slots__ = ("name", "category", "attributes", "counters", "children",
                 "start_s", "end_s", "_begin_sample")

    def __init__(self, name, category, attributes=None):
        self.name = name
        self.category = category
        self.attributes = dict(attributes) if attributes else {}
        self.counters: dict = {}
        self.children: list = []
        self.start_s = 0.0
        self.end_s = None
        self._begin_sample = None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    @property
    def is_instant(self) -> bool:
        return self.end_s == self.start_s

    def __repr__(self):
        state = "open" if self.end_s is None else f"{self.duration_s:.6f}s"
        return (f"<Span {self.category}:{self.name} {state} "
                f"children={len(self.children)}>")


def _copy_span(span: Span) -> Span:
    out = Span(span.name, span.category, span.attributes)
    out.counters = dict(span.counters)
    out.start_s = span.start_s
    out.end_s = span.end_s
    out.children = [_copy_span(child) for child in span.children]
    return out


class Tracer:
    """Records a forest of well-nested spans for one collector.

    Bind to a :class:`MetricsCollector` via :func:`attach_tracer`; the
    collector opens/closes superstep spans from its barrier hooks and
    the runtime layers wrap their phases with :meth:`span`.
    """

    def __init__(self, rank: int = 0):
        self.rank = rank
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._metrics = None

    # ------------------------------------------------------------------
    # recording

    def bind(self, metrics):
        """Sample counter deltas from ``metrics`` at span boundaries."""
        self._metrics = metrics
        return self

    def _sample(self):
        m = self._metrics
        if m is None:
            return None
        return (
            m.total_processed,
            m.records_shipped_local,
            m.records_shipped_remote,
            m.solution_accesses,
            m.solution_updates,
            m.bytes_shipped,
            m.batches_shipped,
            m.cache_hits,
            m.cache_builds,
            m.records_spilled,
            m.bytes_spilled,
            m.columns_zero_copied,
            m.bytes_zero_copied,
        )

    def begin(self, name, category: str = "runtime", **attributes) -> Span:
        span = Span(canonical_name(name), category, attributes)
        span._begin_sample = self._sample()
        span.start_s = time.perf_counter()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span | None = None, counters=None,
            **attributes) -> Span:
        if not self._stack:
            raise InvariantViolation(
                "end() without an open span — spans must be well-nested"
            )
        top = self._stack[-1]
        if span is not None and top is not span:
            raise InvariantViolation(
                f"span {span.name!r} ended while {top.name!r} is the "
                "innermost open span — spans must be well-nested"
            )
        self._stack.pop()
        top.end_s = time.perf_counter()
        begin_sample = top._begin_sample
        end_sample = self._sample()
        if begin_sample is not None and end_sample is not None:
            for key, before, after in zip(SPAN_COUNTERS, begin_sample,
                                          end_sample):
                delta = after - before
                if delta:
                    top.counters[key] = delta
        top._begin_sample = None
        if counters:
            for key, value in counters.items():
                top.counters[key] = top.counters.get(key, 0) + value
        if attributes:
            top.attributes.update(attributes)
        return top

    @contextmanager
    def span(self, name, category: str = "runtime", **attributes):
        opened = self.begin(name, category, **attributes)
        try:
            yield opened
        finally:
            self.end(opened)

    def instant(self, name, category: str = "runtime", **attributes) -> Span:
        """A zero-duration marker attached to the innermost open span."""
        span = Span(canonical_name(name), category, attributes)
        span.start_s = span.end_s = time.perf_counter()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    # ------------------------------------------------------------------
    # views

    def iter_spans(self):
        """All spans in depth-first preorder (the deterministic order)."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def structure(self, counter_names=()) -> tuple:
        """A hashable (name, category, counters, children) encoding.

        Timestamps are excluded; pass ``LOGICAL_SPAN_COUNTERS`` to also
        pin the backend-invariant counter deltas.
        """
        def encode(span):
            return (
                span.name,
                span.category,
                tuple((c, span.counters.get(c, 0)) for c in counter_names),
                tuple(encode(child) for child in span.children),
            )
        return tuple(encode(root) for root in self.roots)

    def snapshot(self) -> "Tracer":
        """An independent structural copy (used to keep per-worker
        timelines before the aligned merge mutates worker 0's tree)."""
        if self._stack:
            raise InvariantViolation(
                "cannot snapshot a tracer with open spans"
            )
        out = Tracer(rank=self.rank)
        out.roots = [_copy_span(root) for root in self.roots]
        return out

    def reset(self):
        if self._stack:
            raise InvariantViolation("cannot reset a tracer with open spans")
        self.roots.clear()

    # ------------------------------------------------------------------
    # merging (mirrors MetricsCollector.merge)

    def merge(self, other: "Tracer", align: bool = True) -> "Tracer":
        """Fold another tracer's forest into this one.

        ``align=True`` pairs the forests of *parallel* workers that
        traced the same program: structures must match span for span,
        counters sum, time windows widen to cover both workers.
        ``align=False`` appends a *sequential* phase's roots.
        """
        if self._stack or other._stack:
            raise InvariantViolation("cannot merge tracers with open spans")
        if not align:
            self.roots.extend(other.roots)
            return self
        if len(self.roots) != len(other.roots):
            raise InvariantViolation(
                f"cannot align trace forests: {len(self.roots)} roots here "
                f"vs {len(other.roots)} in the other tracer — the workers "
                "did not trace the same program"
            )
        for mine, theirs in zip(self.roots, other.roots):
            _merge_span(mine, theirs)
        return self


def _merge_span(mine: Span, theirs: Span):
    if mine.name != theirs.name or mine.category != theirs.category:
        raise InvariantViolation(
            f"cannot merge span {theirs.category}:{theirs.name!r} into "
            f"{mine.category}:{mine.name!r} — workers produced different "
            "span trees"
        )
    if len(mine.children) != len(theirs.children):
        raise InvariantViolation(
            f"span {mine.name!r}: {len(mine.children)} children here vs "
            f"{len(theirs.children)} in the other worker's trace"
        )
    for key, value in theirs.counters.items():
        mine.counters[key] = mine.counters.get(key, 0) + value
    for key, value in theirs.attributes.items():
        mine.attributes.setdefault(key, value)
    was_instant = mine.is_instant and theirs.is_instant
    mine.start_s = min(mine.start_s, theirs.start_s)
    if mine.end_s is not None and theirs.end_s is not None:
        mine.end_s = max(mine.end_s, theirs.end_s)
    if was_instant:
        # the workers' markers happened at skewed wall-clock moments;
        # widening would turn the instant into a fake duration
        mine.end_s = mine.start_s
    for mine_child, theirs_child in zip(mine.children, theirs.children):
        _merge_span(mine_child, theirs_child)


def attach_tracer(metrics, rank: int = 0) -> Tracer:
    """Attach a fresh tracer to ``metrics`` and return it (idempotent)."""
    if metrics.tracer is None:
        metrics.tracer = Tracer(rank=rank).bind(metrics)
    return metrics.tracer
