"""Plan rendering: Graphviz (DOT) drawings and textual explain reports.

``plan_to_dot`` draws the operator DAG with iteration bodies as
clusters; when an :class:`~repro.runtime.plan.ExecutionPlan` is
supplied, edges carry their shipping strategies and nodes their local
strategies — the same information ``ExecutionPlan.describe`` prints,
but in a shape suitable for papers and debugging sessions:

    dot = plan_to_dot(env.last_plan.logical_plan, env.last_plan)
    open("plan.dot", "w").write(dot)   # render with `dot -Tsvg`

Passing ``env`` additionally labels every operator with its *estimated*
cardinality and — when the environment's
:class:`~repro.optimizer.observer.CardinalityObserver` has measured the
operator in a previous run — the *observed* one, so a stale estimate
that steered the optimizer wrong is visible at a glance.

``explain_plan`` prints the same information as an indented text
report; ``DataSet.explain()`` is the fluent entry point (compile, don't
execute, describe).
"""

from __future__ import annotations

from repro.dataflow.contracts import Contract
from repro.dataflow.graph import iteration_body_nodes, topological_order
from repro.optimizer.statistics import Statistics


def _plan_stats(env) -> Statistics:
    observer = getattr(env, "observer", None) if env is not None else None
    return Statistics(
        observed=getattr(observer, "sizes", None),
        selectivities=getattr(observer, "selectivities", None),
    )


def _cardinality_note(node, stats, observed) -> str:
    """``est=N`` or ``est=N obs=M`` for one operator."""
    note = f"est={stats.size(node):g}"
    measured = observed.get(node.name)
    if measured is not None:
        note += f" obs={measured:g}"
    return note

_SHAPES = {
    Contract.SOURCE: "cylinder",
    Contract.SINK: "cds",
    Contract.BULK_ITERATION: "doubleoctagon",
    Contract.DELTA_ITERATION: "doubleoctagon",
    Contract.PARTIAL_SOLUTION: "invhouse",
    Contract.WORKSET: "invhouse",
    Contract.SOLUTION_SET: "house",
}


def _escape(text: str) -> str:
    return text.replace('"', r"\"")


def _node_line(node, exec_plan, stats=None, observed=None) -> str:
    shape = _SHAPES.get(node.contract, "box")
    label = node.name
    if exec_plan is not None:
        ann = exec_plan.annotations.get(node.id)
        if ann is not None and ann.local.value != "none":
            label += f"\\n[{ann.local.value}]"
    if stats is not None and not node.is_placeholder():
        label += "\\n" + _cardinality_note(node, stats, observed or {})
    return f'  n{node.id} [label="{_escape(label)}", shape={shape}];'


def _edge_line(producer, consumer, input_index, exec_plan) -> str:
    attrs = ""
    if exec_plan is not None:
        ann = exec_plan.annotations.get(consumer.id)
        if ann is not None and input_index in ann.ship:
            strategy = ann.ship[input_index].describe()
            if strategy != "forward":
                attrs = f' [label="{_escape(strategy)}"]'
    return f"  n{producer.id} -> n{consumer.id}{attrs};"


def plan_to_dot(logical_plan, exec_plan=None, env=None) -> str:
    """Render a plan (optionally with physical annotations) as DOT text.

    With ``env``, nodes additionally carry estimated (and, when the
    environment observed the operator in a previous run, measured)
    cardinalities.
    """
    stats = _plan_stats(env) if env is not None else None
    observer = getattr(env, "observer", None) if env is not None else None
    observed = getattr(observer, "sizes", {}) or {}
    lines = [
        "digraph plan {",
        "  rankdir=BT;",
        '  node [fontname="Helvetica", fontsize=10];',
        '  edge [fontname="Helvetica", fontsize=9];',
    ]
    emitted: set[int] = set()
    edges: list[str] = []

    def emit(node, indent="  "):
        if node.id in emitted:
            return
        emitted.add(node.id)
        lines.append(
            indent + _node_line(node, exec_plan, stats, observed).strip()
        )
        for idx, producer in enumerate(node.inputs):
            edges.append(_edge_line(producer, node, idx, exec_plan))

    outer = topological_order(logical_plan.sinks)
    iterations = [n for n in outer if n.is_iteration()]
    for node in outer:
        if not node.is_iteration():
            emit(node)
        else:
            emit(node)  # the complex operator itself
    for iteration in iterations:
        lines.append(f"  subgraph cluster_{iteration.id} {{")
        lines.append(f'    label="{_escape(iteration.name)} body";')
        lines.append("    style=dashed;")
        for body_node in iteration_body_nodes(iteration):
            emit(body_node, indent="    ")
        lines.append("  }")
    lines.extend(sorted(set(edges)))
    lines.append("}")
    return "\n".join(lines)


def explain_plan(exec_plan, env=None) -> str:
    """Indented text report of a compiled plan.

    One block per operator (outer region first, then each iteration
    body): the chosen local strategy, estimated vs observed
    cardinality, and per input edge the chosen ship strategy plus any
    optimizer-v2 rewrites riding on it — a pushed-down filter, or an
    adaptive switch candidate with its baseline→switch strategies.
    """
    stats = _plan_stats(env)
    observer = getattr(env, "observer", None) if env is not None else None
    observed = getattr(observer, "sizes", {}) or {}
    outer = topological_order(exec_plan.logical_plan.sinks)
    lines: list[str] = []

    def describe(node, indent=""):
        ann = exec_plan.annotations.get(node.id)
        local = ann.local.value if ann is not None else "none"
        note = ("" if node.is_placeholder()
                else "  " + _cardinality_note(node, stats, observed))
        lines.append(
            f"{indent}{node.name} ({node.contract.value}): {local}{note}"
        )
        pushed = exec_plan.pushed_filters.get(node.id)
        spec = exec_plan.adaptive.get(node.id)
        for idx, producer in enumerate(node.inputs):
            ship = ann.ship.get(idx) if ann is not None else None
            marks = []
            if pushed is not None and pushed.side == idx:
                marks.append(f"pushdown:{pushed.filter_node.name}")
            if spec is not None and spec.probe_index == idx:
                marks.append(
                    f"adaptive:{spec.baseline_kind.value}"
                    f"→{spec.switch_kind.value}"
                )
            mark = f"  [{', '.join(marks)}]" if marks else ""
            lines.append(
                f"{indent}  in{idx} ← {producer.name}: "
                f"{ship.describe() if ship is not None else 'forward'}{mark}"
            )

    for node in outer:
        describe(node)
    for iteration in outer:
        if not iteration.is_iteration():
            continue
        mode = exec_plan.iteration_modes.get(iteration.id)
        lines.append(
            f"{iteration.name} body"
            + (f" (mode={mode})" if mode else "") + ":"
        )
        for body_node in iteration_body_nodes(iteration):
            describe(body_node, indent="  ")
    return "\n".join(lines)
