"""Graphviz (DOT) rendering of logical and physical plans.

``plan_to_dot`` draws the operator DAG with iteration bodies as
clusters; when an :class:`~repro.runtime.plan.ExecutionPlan` is
supplied, edges carry their shipping strategies and nodes their local
strategies — the same information ``ExecutionPlan.describe`` prints,
but in a shape suitable for papers and debugging sessions:

    dot = plan_to_dot(env.last_plan.logical_plan, env.last_plan)
    open("plan.dot", "w").write(dot)   # render with `dot -Tsvg`
"""

from __future__ import annotations

from repro.dataflow.contracts import Contract
from repro.dataflow.graph import iteration_body_nodes, topological_order

_SHAPES = {
    Contract.SOURCE: "cylinder",
    Contract.SINK: "cds",
    Contract.BULK_ITERATION: "doubleoctagon",
    Contract.DELTA_ITERATION: "doubleoctagon",
    Contract.PARTIAL_SOLUTION: "invhouse",
    Contract.WORKSET: "invhouse",
    Contract.SOLUTION_SET: "house",
}


def _escape(text: str) -> str:
    return text.replace('"', r"\"")


def _node_line(node, exec_plan) -> str:
    shape = _SHAPES.get(node.contract, "box")
    label = node.name
    if exec_plan is not None:
        ann = exec_plan.annotations.get(node.id)
        if ann is not None and ann.local.value != "none":
            label += f"\\n[{ann.local.value}]"
    return f'  n{node.id} [label="{_escape(label)}", shape={shape}];'


def _edge_line(producer, consumer, input_index, exec_plan) -> str:
    attrs = ""
    if exec_plan is not None:
        ann = exec_plan.annotations.get(consumer.id)
        if ann is not None and input_index in ann.ship:
            strategy = ann.ship[input_index].describe()
            if strategy != "forward":
                attrs = f' [label="{_escape(strategy)}"]'
    return f"  n{producer.id} -> n{consumer.id}{attrs};"


def plan_to_dot(logical_plan, exec_plan=None) -> str:
    """Render a plan (optionally with physical annotations) as DOT text."""
    lines = [
        "digraph plan {",
        "  rankdir=BT;",
        '  node [fontname="Helvetica", fontsize=10];',
        '  edge [fontname="Helvetica", fontsize=9];',
    ]
    emitted: set[int] = set()
    edges: list[str] = []

    def emit(node, indent="  "):
        if node.id in emitted:
            return
        emitted.add(node.id)
        lines.append(indent + _node_line(node, exec_plan).strip())
        for idx, producer in enumerate(node.inputs):
            edges.append(_edge_line(producer, node, idx, exec_plan))

    outer = topological_order(logical_plan.sinks)
    iterations = [n for n in outer if n.is_iteration()]
    for node in outer:
        if not node.is_iteration():
            emit(node)
        else:
            emit(node)  # the complex operator itself
    for iteration in iterations:
        lines.append(f"  subgraph cluster_{iteration.id} {{")
        lines.append(f'    label="{_escape(iteration.name)} body";')
        lines.append("    style=dashed;")
        for body_node in iteration_body_nodes(iteration):
            emit(body_node, indent="    ")
        lines.append("  }")
    lines.extend(sorted(set(edges)))
    lines.append("}")
    return "\n".join(lines)
