"""Volcano-style plan enumeration with iteration-aware costing.

For every operator the enumerator generates physical alternatives —
shipping strategies per input (forward / hash-partition / broadcast) and
local strategies (hash vs sort-merge join and build-side choice, hash vs
sort aggregation, combiners) — tracks the physical properties each
alternative establishes, and keeps a Pareto frontier of (cost,
properties) candidates per operator output.

Iteration bodies are enumerated in a nested context (Section 4.3): costs
of dynamic-data-path work are weighted by the expected superstep count,
while constant-path work (cached at the dynamic/constant boundary) is
paid once.  Interesting properties are propagated with the two-pass
feedback traversal, generating plan candidates that establish a
downstream-useful partitioning early on the constant path — this is what
makes the optimizer discover both PageRank plans of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import OptimizerError
from repro.dataflow.contracts import Contract
from repro.dataflow.graph import (
    dynamic_path_nodes,
    iteration_body_nodes,
    topological_order,
)
from repro.optimizer import costs
from repro.optimizer.properties import (
    NO_PROPS,
    PhysicalProps,
    REPLICATED,
    map_fields_forward,
    propagate_interesting_properties,
    props_through,
)
from repro.optimizer.statistics import Statistics
from repro.runtime.plan import (
    BROADCAST,
    FORWARD,
    GATHER,
    LocalStrategy,
    ShipKind,
    ShipStrategy,
    partition_on,
)

_MAX_CANDIDATES = 8


@dataclass
class Candidate:
    """One physical alternative for an operator's output."""

    node: object
    props: PhysicalProps
    cost: float
    local: LocalStrategy = LocalStrategy.NONE
    ships: dict[int, ShipStrategy] = field(default_factory=dict)
    children: tuple = ()
    combiner: bool = False
    #: nested iteration-body plans: [(node, Candidate | annotation work)]
    nested: tuple = ()


def _prune(candidates: list[Candidate]) -> list[Candidate]:
    """Keep the Pareto frontier by (cost, properties), capped in size."""
    frontier: list[Candidate] = []
    for cand in sorted(candidates, key=lambda c: c.cost):
        dominated = any(
            other.cost <= cand.cost and _covers(other.props, cand.props)
            for other in frontier
        )
        if not dominated:
            frontier.append(cand)
        if len(frontier) >= _MAX_CANDIDATES:
            break
    return frontier


def _covers(a: PhysicalProps, b: PhysicalProps) -> bool:
    """True if properties ``a`` are at least as useful as ``b``."""
    if b.partitioned_on is not None and a.partitioned_on != b.partitioned_on:
        if not a.replicated:
            return False
    if b.replicated and not a.replicated:
        return False
    if b.sorted_on is not None and a.sorted_on != b.sorted_on:
        return False
    return True


class Enumerator:
    """Enumerates one plan region (the outer plan or an iteration body)."""

    def __init__(self, parallelism, weights, stats, interesting=None,
                 dynamic_ids=frozenset(), iteration_weight=1.0,
                 placeholder_props=None, tracer=None, chaining=True,
                 pushdown=None):
        self.parallelism = parallelism
        self.weights = weights
        self.stats = stats
        self.interesting = interesting or {}
        self.dynamic_ids = dynamic_ids
        self.iteration_weight = iteration_weight
        self.placeholder_props = placeholder_props or {}
        self.tracer = tracer
        #: {match id: PushedFilter} from repro.optimizer.pushdown — the
        #: pushed side's records are filtered before shipping, so match
        #: costing discounts that side by the filter's selectivity
        self.pushdown = pushdown or {}
        #: when chain fusion is on, forward edges that will fuse away
        #: (see :mod:`repro.optimizer.chaining`) stop paying the
        #: per-edge materialization overhead — plan selection can then
        #: prefer fusable shapes
        self.chaining = chaining
        self._memo: dict[int, list[Candidate]] = {}
        self._consumer_counts: dict[int, int] = {}

    # ------------------------------------------------------------------

    def count_consumers(self, nodes):
        for node in nodes:
            for inp in node.inputs:
                self._consumer_counts[inp.id] = (
                    self._consumer_counts.get(inp.id, 0) + 1
                )

    def _node_weight(self, node) -> float:
        return self.iteration_weight if node.id in self.dynamic_ids else 1.0

    def _edge_weight(self, consumer, producer) -> float:
        """Shipping repeats every superstep only on dynamic→dynamic edges;
        constant→dynamic edges are cached after the first superstep."""
        if consumer.id not in self.dynamic_ids:
            return 1.0
        if producer.id in self.dynamic_ids or producer.is_placeholder():
            return self.iteration_weight
        return 1.0

    def _forward_overhead(self, consumer, producer, size) -> float:
        """Edge-weighted materialization overhead of one forward edge.

        Zero when chain fusion will collapse the edge: both endpoints
        record-wise, single consumer, and the same constant/dynamic
        classification — mirroring the fusability rule of
        :mod:`repro.optimizer.chaining` as far as this region can see.
        """
        from repro.optimizer.chaining import CHAINABLE_CONTRACTS
        if (
            self.chaining
            and producer.contract in CHAINABLE_CONTRACTS
            and consumer.contract in CHAINABLE_CONTRACTS
            and self._consumer_counts.get(producer.id, 0) <= 1
            and (consumer.id in self.dynamic_ids)
            == (producer.id in self.dynamic_ids)
        ):
            return 0.0
        return self._edge_weight(consumer, producer) * (
            costs.forward_edge_cost(size, self.weights)
        )

    # ------------------------------------------------------------------

    def candidates(self, node) -> list[Candidate]:
        cached = self._memo.get(node.id)
        if cached is not None:
            return cached
        cands = _prune(self._enumerate(node))
        if not cands:
            raise OptimizerError(f"no physical plan for {node.name}")
        # Shared (multi-consumer) outputs are finalized to one choice so
        # different consumers cannot demand conflicting physical plans.
        if self._consumer_counts.get(node.id, 0) > 1:
            cands = [min(cands, key=lambda c: c.cost)]
        self._memo[node.id] = cands
        return cands

    def _enumerate(self, node) -> list[Candidate]:
        contract = node.contract
        if contract is Contract.SOURCE:
            return [Candidate(node, NO_PROPS, 0.0)]
        if node.is_placeholder():
            props = self.placeholder_props.get(node.id, NO_PROPS)
            return [Candidate(node, props, 0.0)]
        if contract is Contract.SINK:
            return self._enumerate_sink(node)
        if contract in (Contract.MAP, Contract.FLAT_MAP, Contract.FILTER):
            return self._enumerate_streaming(node)
        if contract is Contract.UNION:
            return self._enumerate_union(node)
        if contract in (Contract.REDUCE, Contract.REDUCE_GROUP):
            return self._enumerate_reduce(node)
        if contract is Contract.MATCH:
            return self._enumerate_match(node)
        if contract in (Contract.COGROUP, Contract.INNER_COGROUP):
            return self._enumerate_cogroup(node)
        if contract is Contract.CROSS:
            return self._enumerate_cross(node)
        if contract in (Contract.SOLUTION_JOIN, Contract.SOLUTION_COGROUP):
            return self._enumerate_solution_access(node)
        if contract in (Contract.BULK_ITERATION, Contract.DELTA_ITERATION):
            return self._enumerate_iteration(node)
        raise OptimizerError(f"cannot enumerate contract {contract.value}")

    # ------------------------------------------------------------------
    # per-contract enumeration

    def _enumerate_sink(self, node):
        out = []
        size = self.stats.size(node.inputs[0])
        for child in self.candidates(node.inputs[0]):
            cost = child.cost + costs.ship_cost(
                ShipKind.GATHER, size, self.parallelism, self.weights
            )
            out.append(Candidate(node, NO_PROPS, cost,
                                 ships={0: GATHER}, children=(child,)))
        return out

    def _enumerate_streaming(self, node):
        out = []
        size = self.stats.size(node.inputs[0])
        weight = self._node_weight(node)
        edge_overhead = self._forward_overhead(node, node.inputs[0], size)
        for child in self.candidates(node.inputs[0]):
            props = props_through(node, 0, child.props)
            cost = (
                child.cost + edge_overhead
                + weight * costs.streaming_cost(size, self.weights)
            )
            out.append(Candidate(node, props, cost,
                                 ships={0: FORWARD}, children=(child,)))
        return out

    def _enumerate_union(self, node):
        out = []
        weight = self._node_weight(node)
        size = self.stats.size(node)
        edge_overhead = self._forward_overhead(
            node, node.inputs[0], self.stats.size(node.inputs[0])
        ) + self._forward_overhead(
            node, node.inputs[1], self.stats.size(node.inputs[1])
        )
        for lc in self.candidates(node.inputs[0]):
            for rc in self.candidates(node.inputs[1]):
                if (
                    lc.props.partitioned_on is not None
                    and lc.props.partitioned_on == rc.props.partitioned_on
                ):
                    props = PhysicalProps(partitioned_on=lc.props.partitioned_on)
                else:
                    props = NO_PROPS
                cost = (
                    lc.cost + rc.cost + edge_overhead
                    + weight * costs.streaming_cost(size, self.weights)
                )
                out.append(Candidate(node, props, cost,
                                     ships={0: FORWARD, 1: FORWARD},
                                     children=(lc, rc)))
        return out

    def _enumerate_reduce(self, node):
        out = []
        key = node.key_fields[0]
        producer = node.inputs[0]
        in_size = self.stats.size(producer)
        out_size = self.stats.size(node)
        weight = self._node_weight(node)
        edge_weight = self._edge_weight(node, producer)
        combinable = node.contract is Contract.REDUCE and node.combinable
        for child in self.candidates(producer):
            options = []
            if child.props.satisfies_partitioning(key):
                options.append((FORWARD, 0.0, in_size, False))
            if combinable:
                # a combiner emits at most one record per key per
                # partition: min(half the input, |output| per partition)
                shipped_size = min(in_size * 0.5,
                                   out_size * self.parallelism)
            else:
                shipped_size = in_size
            ship_c = costs.ship_cost(
                ShipKind.PARTITION_HASH, shipped_size, self.parallelism,
                self.weights,
            )
            if combinable:
                # the pre-shuffle combine pass touches the full input
                ship_c += costs.hash_build_cost(in_size, self.weights)
            options.append((partition_on(key), ship_c, shipped_size, combinable))
            for ship, ship_c, local_size, use_combiner in options:
                agg_base = child.cost + edge_weight * ship_c
                # hash aggregation
                hash_cost = agg_base + weight * (
                    costs.hash_build_cost(local_size, self.weights)
                )
                out.append(Candidate(
                    node,
                    PhysicalProps(partitioned_on=key),
                    hash_cost,
                    local=LocalStrategy.HASH_AGGREGATE,
                    ships={0: ship},
                    children=(child,),
                    combiner=use_combiner,
                ))
                if node.contract is Contract.REDUCE:
                    sort_c = 0.0
                    if not (ship.kind is ShipKind.FORWARD
                            and child.props.satisfies_sort(key)):
                        sort_c = costs.sort_cost(
                            local_size, self.parallelism, self.weights
                        )
                    out.append(Candidate(
                        node,
                        PhysicalProps(partitioned_on=key, sorted_on=key),
                        agg_base + weight * (
                            sort_c + costs.streaming_cost(local_size, self.weights)
                        ),
                        local=LocalStrategy.SORT_AGGREGATE,
                        ships={0: ship},
                        children=(child,),
                        combiner=use_combiner,
                    ))
        return out

    def _join_output_props(self, node, lprops, rprops, probe_side=None):
        """Map surviving input partitionings to the join output."""
        partitioned = None
        if lprops.partitioned_on is not None:
            partitioned = map_fields_forward(node, 0, lprops.partitioned_on)
        if partitioned is None and rprops.partitioned_on is not None:
            partitioned = map_fields_forward(node, 1, rprops.partitioned_on)
        sorted_on = None
        if probe_side is not None:
            probe_props = (lprops, rprops)[probe_side]
            if probe_props.sorted_on is not None:
                sorted_on = map_fields_forward(
                    node, probe_side, probe_props.sorted_on
                )
        return PhysicalProps(partitioned_on=partitioned, sorted_on=sorted_on)

    def _enumerate_match(self, node):
        out = []
        lkey, rkey = node.key_fields
        lsize = self.stats.size(node.inputs[0])
        rsize = self.stats.size(node.inputs[1])
        pushed = self.pushdown.get(node.id)
        if pushed is not None:
            # a pushed-down filter thins this side before it ships
            selectivity = self.stats.filter_selectivity(pushed.filter_node)
            if pushed.side == 0:
                lsize *= selectivity
            else:
                rsize *= selectivity
        weight = self._node_weight(node)
        for lc in self.candidates(node.inputs[0]):
            for rc in self.candidates(node.inputs[1]):
                out.extend(self._match_partitioned(
                    node, lc, rc, lkey, rkey, lsize, rsize, weight))
                out.extend(self._match_broadcast(
                    node, lc, rc, lkey, rkey, lsize, rsize, weight,
                    broadcast_side=0))
                out.extend(self._match_broadcast(
                    node, lc, rc, lkey, rkey, lsize, rsize, weight,
                    broadcast_side=1))
        return out

    def _ship_for(self, node, side, child, key, size):
        """(strategy, cost) to make ``child`` partitioned on ``key``."""
        if child.props.satisfies_partitioning(key):
            return FORWARD, 0.0
        return partition_on(key), costs.ship_cost(
            ShipKind.PARTITION_HASH, size, self.parallelism, self.weights
        )

    def _match_partitioned(self, node, lc, rc, lkey, rkey, lsize, rsize,
                           weight):
        lship, lcost = self._ship_for(node, 0, lc, lkey, lsize)
        rship, rcost = self._ship_for(node, 1, rc, rkey, rsize)
        lw = self._edge_weight(node, node.inputs[0])
        rw = self._edge_weight(node, node.inputs[1])
        base = lc.cost + rc.cost + lw * lcost + rw * rcost
        lprops = PhysicalProps(partitioned_on=lkey)
        rprops = PhysicalProps(partitioned_on=rkey)
        if lship.kind is ShipKind.FORWARD:
            lprops = lc.props
        if rship.kind is ShipKind.FORWARD:
            rprops = rc.props
        results = []
        for local, extra, probe_side in self._join_locals(
            node, lsize, rsize, lprops, rprops, weight, lw, rw
        ):
            results.append(Candidate(
                node,
                self._join_output_props(node, lprops, rprops, probe_side),
                base + extra,
                local=local,
                ships={0: lship, 1: rship},
                children=(lc, rc),
            ))
        return results

    def _match_broadcast(self, node, lc, rc, lkey, rkey, lsize, rsize,
                         weight, broadcast_side):
        """Broadcast one side; the other side may establish an interesting
        partitioning instead of staying put (the Figure 4 left plan)."""
        bc_child, other_child = (lc, rc) if broadcast_side == 0 else (rc, lc)
        bc_size = lsize if broadcast_side == 0 else rsize
        if bc_size > self.weights.broadcast_limit:
            return []  # the replica would not fit in one node's memory
        other_size = rsize if broadcast_side == 0 else lsize
        other_side = 1 - broadcast_side
        bc_producer = node.inputs[broadcast_side]
        other_producer = node.inputs[other_side]
        bw = self._edge_weight(node, bc_producer)
        ow = self._edge_weight(node, other_producer)
        bc_cost = costs.ship_cost(
            ShipKind.BROADCAST, bc_size, self.parallelism, self.weights
        )
        # options for the non-broadcast side: keep layout, or establish an
        # interesting partitioning announced by downstream consumers
        other_options = [(FORWARD, 0.0, other_child.props)]
        for ip in self.interesting.get(other_producer.id, ()):
            if other_child.props.satisfies_partitioning(ip):
                continue
            other_options.append((
                partition_on(ip),
                costs.ship_cost(ShipKind.PARTITION_HASH, other_size,
                                self.parallelism, self.weights),
                PhysicalProps(partitioned_on=tuple(ip)),
            ))
        build_broadcast = (
            LocalStrategy.HASH_BUILD_LEFT if broadcast_side == 0
            else LocalStrategy.HASH_BUILD_RIGHT
        )
        build_other = (
            LocalStrategy.HASH_BUILD_LEFT if other_side == 0
            else LocalStrategy.HASH_BUILD_RIGHT
        )
        results = []
        for oship, ocost, oprops in other_options:
            bc_props = REPLICATED
            lprops = bc_props if broadcast_side == 0 else oprops
            rprops = oprops if broadcast_side == 0 else bc_props
            ships = {broadcast_side: BROADCAST, other_side: oship}
            # Orientation 1 — build over the replica, probe the resident
            # side.  The replicated build table is cached across
            # supersteps when the broadcast side is constant (bw == 1);
            # a dynamic side is re-broadcast and re-built every
            # superstep (bw == weight).
            base = (
                lc.cost + rc.cost + bw * bc_cost + ow * ocost
                + bw * costs.hash_build_cost(bc_size * self.parallelism,
                                             self.weights)
                + weight * costs.probe_cost(other_size, self.weights)
            )
            results.append(Candidate(
                node,
                self._join_output_props(node, lprops, rprops,
                                        probe_side=other_side),
                base,
                local=build_broadcast,
                ships=ships,
                children=(lc, rc),
            ))
            # Orientation 2 — build over the resident side, probe the
            # replica.  Every match pair is still emitted exactly once
            # (each resident record lives in one partition), and a small
            # *dynamic* probe side meets a constant build table that is
            # built once and cached — the shape the adaptive layer can
            # later re-ship as a hash join when the measured probe side
            # outgrows the broadcast crossover.
            base = (
                lc.cost + rc.cost + bw * bc_cost + ow * ocost
                + ow * costs.hash_build_cost(other_size, self.weights)
                + weight * costs.probe_cost(bc_size * self.parallelism,
                                            self.weights)
            )
            results.append(Candidate(
                node,
                self._join_output_props(node, lprops, rprops,
                                        probe_side=broadcast_side),
                base,
                local=build_other,
                ships=ships,
                children=(lc, rc),
            ))
        return results

    def _join_locals(self, node, lsize, rsize, lprops, rprops, weight,
                     lweight=None, rweight=None):
        """(local strategy, extra cost, probe side) options for a join.

        ``lweight``/``rweight`` are the edge weights of the two inputs:
        the executor caches hash tables built over constant inputs
        across supersteps (Section 4.3), so a constant build side pays
        its build cost once (edge weight 1) while probing repeats every
        superstep.  Sort-merge has no such cache, so it pays per
        superstep on the dynamic path.
        """
        lweight = weight if lweight is None else lweight
        rweight = weight if rweight is None else rweight
        options = [
            (
                LocalStrategy.HASH_BUILD_LEFT,
                lweight * costs.hash_build_cost(lsize, self.weights)
                + weight * costs.probe_cost(rsize, self.weights),
                1,
            ),
            (
                LocalStrategy.HASH_BUILD_RIGHT,
                rweight * costs.hash_build_cost(rsize, self.weights)
                + weight * costs.probe_cost(lsize, self.weights),
                0,
            ),
        ]
        lsort = 0.0 if lprops.satisfies_sort(node.key_fields[0]) else (
            costs.sort_cost(lsize, self.parallelism, self.weights))
        rsort = 0.0 if rprops.satisfies_sort(node.key_fields[1]) else (
            costs.sort_cost(rsize, self.parallelism, self.weights))
        options.append((
            LocalStrategy.SORT_MERGE,
            weight * (lsort + rsort
                      + costs.streaming_cost(lsize + rsize, self.weights)),
            None,
        ))
        return options

    def _enumerate_cogroup(self, node):
        out = []
        lkey, rkey = node.key_fields
        lsize = self.stats.size(node.inputs[0])
        rsize = self.stats.size(node.inputs[1])
        weight = self._node_weight(node)
        for lc in self.candidates(node.inputs[0]):
            for rc in self.candidates(node.inputs[1]):
                lship, lcost = self._ship_for(node, 0, lc, lkey, lsize)
                rship, rcost = self._ship_for(node, 1, rc, rkey, rsize)
                lw = self._edge_weight(node, node.inputs[0])
                rw = self._edge_weight(node, node.inputs[1])
                cost = (
                    lc.cost + rc.cost + lw * lcost + rw * rcost
                    + weight * (
                        costs.sort_cost(lsize + rsize, self.parallelism,
                                        self.weights)
                    )
                )
                out.append(Candidate(
                    node,
                    PhysicalProps(partitioned_on=None),
                    cost,
                    local=LocalStrategy.SORT_COGROUP,
                    ships={0: lship, 1: rship},
                    children=(lc, rc),
                ))
        return out

    def _enumerate_cross(self, node):
        out = []
        lsize = self.stats.size(node.inputs[0])
        rsize = self.stats.size(node.inputs[1])
        weight = self._node_weight(node)
        pair_cost = weight * costs.streaming_cost(lsize * rsize, self.weights)
        for lc in self.candidates(node.inputs[0]):
            for rc in self.candidates(node.inputs[1]):
                for bc_side in (0, 1):
                    bc_size = lsize if bc_side == 0 else rsize
                    if (
                        bc_size > self.weights.broadcast_limit
                        and min(lsize, rsize) <= self.weights.broadcast_limit
                    ):
                        continue  # replicate the side that fits instead
                    bw = self._edge_weight(node, node.inputs[bc_side])
                    cost = (
                        lc.cost + rc.cost
                        + bw * costs.ship_cost(
                            ShipKind.BROADCAST, bc_size, self.parallelism,
                            self.weights,
                        )
                        + pair_cost
                    )
                    ships = {bc_side: BROADCAST, 1 - bc_side: FORWARD}
                    out.append(Candidate(
                        node, NO_PROPS, cost,
                        local=LocalStrategy.NESTED_LOOP,
                        ships=ships, children=(lc, rc),
                    ))
        return out

    def _enumerate_solution_access(self, node):
        out = []
        key = node.key_fields[0]
        producer = node.inputs[0]
        size = self.stats.size(producer)
        weight = self._node_weight(node)
        edge_weight = self._edge_weight(node, producer)
        local = (
            LocalStrategy.SOLUTION_PROBE
            if node.contract is Contract.SOLUTION_JOIN
            else LocalStrategy.SOLUTION_GROUP
        )
        for child in self.candidates(producer):
            ship, ship_c = self._ship_for(node, 0, child, key, size)
            props_in = (
                child.props if ship.kind is ShipKind.FORWARD
                else PhysicalProps(partitioned_on=key)
            )
            cost = (
                child.cost + edge_weight * ship_c
                + weight * costs.probe_cost(size, self.weights)
            )
            partitioned = map_fields_forward(node, 0, key)
            out.append(Candidate(
                node,
                PhysicalProps(partitioned_on=partitioned),
                cost,
                local=local,
                ships={0: ship},
                children=(child, None),
            ))
        return out

    # ------------------------------------------------------------------
    # iterations: nested enumeration (Section 4.3)

    def _enumerate_iteration(self, node):
        from repro.optimizer.naive import resolve_iteration_mode

        input_cands = [self.candidates(inp) for inp in node.inputs]
        best_inputs = [min(cands, key=lambda c: c.cost) for cands in input_cands]
        if self.tracer is not None:
            with self.tracer.span("optimizer:body", category="optimizer",
                                  iteration=node.name):
                body_plans, body_cost, out_props = _optimize_body(
                    node, self.parallelism, self.weights, self.stats,
                    tracer=self.tracer, chaining=self.chaining,
                )
        else:
            body_plans, body_cost, out_props = _optimize_body(
                node, self.parallelism, self.weights, self.stats,
                chaining=self.chaining,
            )
        total = sum(c.cost for c in best_inputs) + body_cost
        ships = {}
        if node.contract is Contract.DELTA_ITERATION:
            out_props = PhysicalProps(partitioned_on=node.solution_key)
        return [Candidate(
            node, out_props, total,
            ships=ships, children=tuple(best_inputs),
            nested=tuple(body_plans),
        )]


def _optimize_body(iteration, parallelism, weights, outer_stats,
                   tracer=None, chaining=True):
    """Optimize an iteration's step function in a nested context.

    Returns ``(list of (node, Candidate) picks, body cost, output props)``.
    """
    body = iteration_body_nodes(iteration)
    dynamic = {n.id for n in dynamic_path_nodes(iteration)}
    expected = min(float(iteration.max_iterations),
                   weights.expected_iterations)

    if iteration.contract is Contract.BULK_ITERATION:
        roots = [iteration.body_output]
        if iteration.termination is not None:
            roots.append(iteration.termination)
        feedback = (iteration.placeholder, iteration.body_output)
        placeholder_sizes = {
            iteration.placeholder.id: outer_stats.size(iteration.inputs[0]),
        }
    else:
        roots = [iteration.delta_output, iteration.workset_output]
        feedback = (iteration.workset_placeholder, iteration.workset_output)
        placeholder_sizes = {
            iteration.solution_placeholder.id:
                outer_stats.size(iteration.inputs[0]),
            iteration.workset_placeholder.id:
                outer_stats.size(iteration.inputs[1]),
        }

    # observed cardinalities thread through by *name*; body nodes are
    # never ingested by the observer, but constant-path chains shared
    # with the outer program keep their measured sizes
    stats = Statistics(
        placeholder_sizes=placeholder_sizes,
        observed=outer_stats.observed,
        selectivities=outer_stats.selectivities,
    )
    interesting = propagate_interesting_properties(
        body, feedback=feedback
    )
    enumerator = Enumerator(
        parallelism, weights, stats,
        interesting=interesting,
        dynamic_ids=dynamic,
        iteration_weight=expected,
        tracer=tracer,
        chaining=chaining,
    )
    enumerator.count_consumers(body)

    picks = []
    total = 0.0
    out_props = NO_PROPS
    for root in roots:
        best = min(enumerator.candidates(root), key=lambda c: c.cost)
        picks.append((root, best))
        total += best.cost
        if iteration.contract is Contract.BULK_ITERATION and (
            root is iteration.body_output
        ):
            out_props = best.props
    return picks, total, out_props
