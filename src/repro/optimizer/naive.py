"""Naive (rule-based) planner: always-correct default strategies.

This is the no-optimizer baseline: hash-partition every keyed input,
build hash tables on the right join side, broadcast cross inputs, and
gather at sinks.  The cost-based optimizer produces the same annotation
structure with better choices; keeping this planner separate makes the
optimizer's improvements measurable (see the Figure 4 benchmark).
"""

from __future__ import annotations

from repro.dataflow.contracts import Contract
from repro.iterations.microstep import analyze_microstep
from repro.runtime.plan import (
    BROADCAST,
    ExecutionPlan,
    FORWARD,
    GATHER,
    LocalStrategy,
    partition_on,
)


def annotate_node_naive(node, exec_plan):
    """Assign default strategies for one logical node."""
    ann = exec_plan.annotation(node)
    contract = node.contract
    if contract is Contract.SINK:
        ann.ship[0] = GATHER
    elif contract in (Contract.REDUCE, Contract.REDUCE_GROUP):
        ann.ship[0] = partition_on(node.key_fields[0])
        if contract is Contract.REDUCE:
            ann.local = LocalStrategy.HASH_AGGREGATE
            ann.combiner = node.combinable
    elif contract is Contract.MATCH:
        ann.ship[0] = partition_on(node.key_fields[0])
        ann.ship[1] = partition_on(node.key_fields[1])
        ann.local = LocalStrategy.HASH_BUILD_RIGHT
    elif contract in (Contract.COGROUP, Contract.INNER_COGROUP):
        ann.ship[0] = partition_on(node.key_fields[0])
        ann.ship[1] = partition_on(node.key_fields[1])
        ann.local = LocalStrategy.SORT_COGROUP
    elif contract is Contract.CROSS:
        ann.ship[0] = FORWARD
        ann.ship[1] = BROADCAST
        ann.local = LocalStrategy.NESTED_LOOP
    elif contract in (Contract.SOLUTION_JOIN, Contract.SOLUTION_COGROUP):
        ann.ship[0] = partition_on(node.key_fields[0])
        ann.local = (
            LocalStrategy.SOLUTION_PROBE
            if contract is Contract.SOLUTION_JOIN
            else LocalStrategy.SOLUTION_GROUP
        )
    else:
        for idx in range(len(node.inputs)):
            ann.ship[idx] = FORWARD
    return ann


def resolve_iteration_mode(node) -> str:
    """Resolve a delta iteration's execution mode ('auto' picks by analysis)."""
    if node.mode == "auto":
        report = analyze_microstep(node)
        return "microstep" if report.eligible else "superstep"
    return node.mode


def naive_plan(logical_plan, parallelism) -> ExecutionPlan:
    """Annotate every node (iteration bodies included) with defaults."""
    from repro.optimizer import _fixup_microstep
    exec_plan = ExecutionPlan(logical_plan)
    for node in logical_plan.nodes():
        annotate_node_naive(node, exec_plan)
        if node.contract is Contract.DELTA_ITERATION:
            mode = resolve_iteration_mode(node)
            exec_plan.iteration_modes[node.id] = mode
            if mode in ("microstep", "async"):
                _fixup_microstep(exec_plan, node)
    return exec_plan
