"""Adaptive re-optimization between supersteps (optimizer v2).

Static plans price a delta iteration's dynamic edges with
``CostWeights.expected_iterations`` and a guessed workset size.  Both
guesses are usually wrong: worksets shrink (often geometrically) as the
computation converges, so the ship strategy that was right for the
first superstep can be badly wrong for the twentieth.  This module
implements the paper's Section 6 idea of weighting the dynamic data
path separately — but *live*: at every superstep boundary the executor
re-costs an eligible match's probe edge with the superstep's **measured**
global probe cardinality and switches the physical ship strategy once
the cumulative saving clears the switch overhead.

Observational invisibility
--------------------------
A switch changes only *physical* counters (bytes, batches).  Results
stay bitwise identical, logical counters (records processed / shipped
local / remote, cache hits) keep their baseline values, and span trees
keep their baseline structure plus one ``plan_switch`` instant.  The
executor guarantees this by virtualizing counters against the baseline
plan and — for a broadcast→hash switch — re-assembling the join output
into the exact partitions *and order* the baseline would have produced
(see ``Executor._probe_switched_hash``).  The cross-backend bitwise
audit therefore holds with adaptivity on or off, and the two modes are
distinguishable only through physical transport counters and the
``plan_switches`` count.

Eligibility (computed at compile time by :func:`annotate_adaptive`):

* the match sits on the dynamic path of a superstep-mode delta
  iteration, with a locally hash-built **constant** side (its table is
  cached across supersteps) and a **dynamic** probe side;
* baseline probe ship BROADCAST → may switch to PARTITION_HASH on the
  probe key (profitable once the workset shrinks past the crossover:
  broadcast ships ``n·(p-1)`` and probes ``n·p`` records per superstep,
  hash ships ``~n·(p-1)/p`` and probes ``n``);
* baseline probe ship PARTITION_HASH with the build side hash-placed on
  the build key → may switch to BROADCAST.  This direction is never
  profitable under the honest cost model (broadcast strictly dominates
  on ship volume *and* probe volume for a replicated probe); it exists
  for the ``force_at_superstep`` hook so parity tests can exercise both
  switch directions.

The decision itself (:func:`decide`) is a pure function of the
superstep's measured cardinality, so all SPMD workers — which see the
same allreduced count — take the same branch deterministically.
"""

from __future__ import annotations

from repro.dataflow.contracts import Contract
from repro.dataflow.graph import dynamic_path_nodes, iteration_body_nodes
from repro.optimizer import costs
from repro.optimizer.statistics import Statistics
from repro.runtime.plan import AdaptiveSpec, LocalStrategy, ShipKind

#: a switch must promise at least this multiple of its one-time overhead
#: in remaining savings — guards against flapping near the crossover on
#: noisy trajectories (the switch itself is one-way, this just delays it
#: until the evidence is decisive)
HYSTERESIS = 1.3


def decide(spec, n_probe, superstep, parallelism, weights,
           hysteresis=HYSTERESIS) -> bool:
    """Should the probe edge switch strategy *now*?

    Pure in its inputs: ``n_probe`` is the superstep's global probe-side
    cardinality (allreduced, hence identical on every SPMD worker), so
    every worker takes the same branch.
    """
    if spec.force_at_superstep is not None:
        return superstep >= spec.force_at_superstep
    if spec.baseline_kind is not ShipKind.BROADCAST:
        # hash→broadcast never wins honestly: a replicated probe ships
        # strictly more and probes strictly more than a partitioned one
        return False
    n = float(n_probe)
    if n <= 0.0:
        return False
    baseline_step = (
        costs.ship_cost(ShipKind.BROADCAST, n, parallelism, weights)
        + costs.probe_cost(n * parallelism, weights)
    )
    switched_step = (
        # hash-route the probe records...
        costs.ship_cost(ShipKind.PARTITION_HASH, n, parallelism, weights)
        # ...probe each once at its owner...
        + costs.probe_cost(n, weights)
        # ...and route the emissions back to their baseline partitions
        + costs.ship_cost(ShipKind.PARTITION_HASH, n, parallelism, weights)
    )
    saving = baseline_step - switched_step
    if saving <= 0.0:
        return False
    # one-time switch overhead: silently re-shipping and re-building the
    # constant side's hash tables, origin-tagged, at their key owners
    overhead = (
        costs.ship_cost(ShipKind.PARTITION_HASH, spec.est_build_size,
                        parallelism, weights)
        + costs.hash_build_cost(spec.est_build_size, weights)
    )
    remaining = max(1.0, weights.expected_iterations - superstep)
    return saving * remaining > hysteresis * overhead


def annotate_adaptive(exec_plan, env) -> None:
    """Record adaptive eligibility on ``exec_plan`` (see module docstring).

    Called by ``ExecutionEnvironment._compile`` after plan overrides are
    applied (so the specs describe the plan that will actually run,
    forced experiment plans included) and before chain fusion.  The
    specs are recorded unconditionally — the *plan* is identical with
    adaptivity on or off; the executor consults ``config.adaptive``.
    """
    logical_plan = exec_plan.logical_plan
    observer = getattr(env, "observer", None)
    stats = Statistics(
        observed=getattr(observer, "sizes", None),
        selectivities=getattr(observer, "selectivities", None),
    )
    for iteration in logical_plan.nodes():
        if iteration.contract is not Contract.DELTA_ITERATION:
            continue
        if exec_plan.iteration_modes.get(iteration.id) != "superstep":
            continue
        dynamic_ids = {n.id for n in dynamic_path_nodes(iteration)}
        for node in iteration_body_nodes(iteration):
            if node.contract is not Contract.MATCH:
                continue
            if node.id not in dynamic_ids:
                continue  # constant subplans never re-execute
            spec = _eligible(exec_plan, iteration, node, dynamic_ids, stats)
            if spec is not None:
                exec_plan.adaptive[node.id] = spec


def _eligible(exec_plan, iteration, node, dynamic_ids, stats):
    """Build the :class:`AdaptiveSpec` for one match, or ``None``."""
    ann = exec_plan.annotations.get(node.id)
    if ann is None:
        return None
    if ann.local is LocalStrategy.HASH_BUILD_LEFT:
        build_idx = 0
    elif ann.local is LocalStrategy.HASH_BUILD_RIGHT:
        build_idx = 1
    else:
        return None
    probe_idx = 1 - build_idx
    build_producer = node.inputs[build_idx]
    probe_producer = node.inputs[probe_idx]
    # the build side must be constant (its tables are cached across
    # supersteps — the executor's cached-match path) and the probe side
    # dynamic (re-shipped every superstep: that edge is what a switch
    # re-prices)
    if build_producer.id in dynamic_ids or build_producer.is_placeholder():
        return None
    if not (probe_producer.id in dynamic_ids
            or probe_producer.is_placeholder()):
        return None
    probe_ship = ann.ship.get(probe_idx)
    if probe_ship is None:
        return None
    probe_key = node.key_fields[probe_idx]
    build_key = node.key_fields[build_idx]
    if probe_key is None or build_key is None:
        return None
    if probe_ship.kind is ShipKind.BROADCAST:
        switch_kind = ShipKind.PARTITION_HASH
    elif probe_ship.kind is ShipKind.PARTITION_HASH:
        # hash→broadcast is only sound when the build tables are
        # key-partitioned: a replicated probe record then finds each
        # match at exactly one partition (its key's owner)
        build_ship = ann.ship.get(build_idx)
        if build_ship is None or build_ship.kind is not ShipKind.PARTITION_HASH:
            return None
        if tuple(build_ship.key_fields) != tuple(build_key):
            return None
        if tuple(probe_ship.key_fields or ()) != tuple(probe_key):
            return None
        switch_kind = ShipKind.BROADCAST
    else:
        return None
    return AdaptiveSpec(
        iteration_id=iteration.id,
        node_id=node.id,
        probe_index=probe_idx,
        build_index=build_idx,
        baseline_kind=probe_ship.kind,
        switch_kind=switch_kind,
        probe_key=tuple(probe_key),
        build_key=tuple(build_key),
        est_build_size=stats.size(build_producer),
        force_at_superstep=getattr(node, "force_switch_at", None),
    )
