"""Physical data properties and interesting-property propagation.

Physical properties describe how a dataset is laid out across and within
partitions: hash-partitioned on some fields, fully replicated, and/or
sorted within each partition.  The optimizer tracks them to avoid
redundant shipping and sorting (Section 4.3).

*Interesting properties* (IPs) flow top-down: an operator that would
benefit from its input being partitioned or sorted on certain fields
announces that; the announcement is translated through producing
operators via their forwarded-field declarations, and finally serves as
a hint to create plan candidates that establish the property early —
ideally on the constant data path, where it is paid once (the left-hand
PageRank plan of Figure 4).  For iteration bodies, the paper's two-pass
scheme applies: IPs arriving at the partial-solution input ``I`` are fed
back to the body output ``O`` and propagated a second time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.contracts import Contract


@dataclass(frozen=True)
class PhysicalProps:
    """Layout of a dataset: partitioning and intra-partition sort order."""

    partitioned_on: tuple[int, ...] | None = None
    replicated: bool = False
    sorted_on: tuple[int, ...] | None = None

    def satisfies_partitioning(self, key_fields) -> bool:
        """True if records key-equal on ``key_fields`` are colocated.

        Hash partitioning on a subset of the key fields colocates every
        key group of the full key, so a subset suffices.  Replication
        trivially colocates everything.
        """
        if self.replicated:
            return True
        if self.partitioned_on is None:
            return False
        return set(self.partitioned_on).issubset(set(key_fields))

    def satisfies_sort(self, key_fields) -> bool:
        if self.sorted_on is None:
            return False
        prefix = self.sorted_on[: len(key_fields)]
        return prefix == tuple(key_fields)


NO_PROPS = PhysicalProps()
REPLICATED = PhysicalProps(replicated=True)


def map_fields_forward(node, input_index, fields):
    """Translate input field positions to output positions, or None."""
    if node.contract is Contract.FILTER:
        return tuple(fields)
    mapping = node.forwarded_fields.get(input_index, {})
    out = []
    for f in fields:
        if f not in mapping:
            return None
        out.append(mapping[f])
    return tuple(out)


def map_fields_backward(node, input_index, fields):
    """Translate output field positions to input positions, or None."""
    if node.contract is Contract.FILTER:
        return tuple(fields)
    mapping = node.forwarded_fields.get(input_index, {})
    inverse = {dst: src for src, dst in mapping.items()}
    out = []
    for f in fields:
        if f not in inverse:
            return None
        out.append(inverse[f])
    return tuple(out)


def props_through(node, input_index, props: PhysicalProps) -> PhysicalProps:
    """Properties of the node's output given one input's properties."""
    partitioned = None
    if props.partitioned_on is not None:
        partitioned = map_fields_forward(node, input_index, props.partitioned_on)
    sorted_on = None
    if props.sorted_on is not None:
        mapped = map_fields_forward(node, input_index, props.sorted_on)
        # sort order survives only order-preserving, record-at-a-time ops
        if mapped is not None and node.contract in (
            Contract.MAP, Contract.FLAT_MAP, Contract.FILTER,
        ):
            sorted_on = mapped
    return PhysicalProps(
        partitioned_on=partitioned,
        replicated=props.replicated and node.contract is Contract.FILTER,
        sorted_on=sorted_on,
    )


# ----------------------------------------------------------------------
# interesting properties


def required_partitionings(node) -> list[tuple[int, tuple[int, ...]]]:
    """(input index, fields) pairs the operator itself wants partitioned."""
    wants = []
    contract = node.contract
    if contract in (Contract.REDUCE, Contract.REDUCE_GROUP):
        wants.append((0, node.key_fields[0]))
    elif contract in (Contract.MATCH, Contract.COGROUP, Contract.INNER_COGROUP):
        wants.append((0, node.key_fields[0]))
        wants.append((1, node.key_fields[1]))
    elif contract in (Contract.SOLUTION_JOIN, Contract.SOLUTION_COGROUP):
        wants.append((0, node.key_fields[0]))
    return wants


def propagate_interesting_properties(nodes, seeds=None, passes=1,
                                     feedback=None):
    """Compute interesting partitionings per node output.

    ``nodes`` is the operator set (an iteration body or a whole plan
    region); ``seeds`` optionally maps node id -> set of field tuples
    interesting *at that node's output*.  ``feedback`` is an optional
    ``(placeholder_node, output_node)`` pair implementing the paper's
    two-pass iteration trick: after each pass, IPs that reached the
    placeholder's output are seeded onto the body output.

    Returns ``{node id: set of field tuples}`` — partitionings that some
    downstream consumer could exploit if established at that output.
    """
    by_id = {n.id: n for n in nodes}
    interesting: dict[int, set] = {nid: set() for nid in by_id}
    if seeds:
        for nid, fields in seeds.items():
            if nid in interesting:
                interesting[nid].update(fields)

    total_passes = passes + (1 if feedback is not None else 0)
    for pass_no in range(total_passes):
        order = _reverse_topological(nodes)
        for node in order:
            created = set(interesting[node.id])
            for input_index, fields in required_partitionings(node):
                producer = node.inputs[input_index]
                if producer.id in interesting:
                    interesting[producer.id].add(tuple(fields))
            # inherit: IPs at this node's output map backward to inputs
            for ip in created:
                for input_index, producer in enumerate(node.inputs):
                    if producer.id not in interesting:
                        continue
                    mapped = map_fields_backward(node, input_index, ip)
                    if mapped is not None:
                        interesting[producer.id].add(mapped)
        if feedback is not None:
            placeholder, output = feedback
            if placeholder.id in interesting and output.id in interesting:
                interesting[output.id].update(interesting[placeholder.id])
    return interesting


def _reverse_topological(nodes):
    from repro.dataflow.graph import topological_order
    by_id = {n.id: n for n in nodes}
    roots = [
        n for n in nodes
        if not any(
            n in other.inputs for other in nodes
        )
    ]
    order = []
    seen = set()
    for node in topological_order(roots or nodes):
        if node.id in by_id and node.id not in seen:
            seen.add(node.id)
            order.append(node)
    # include any stragglers (cyclic-free guarantee upstream)
    for node in nodes:
        if node.id not in seen:
            order.append(node)
    return list(reversed(order))
