"""Cardinality estimation for the cost model.

Sources carry exact sizes (they are in-memory collections); everything
else uses textbook default selectivities, overridable per operator with
``DataSet.with_estimated_size``.  The estimates only steer strategy
choices — correctness never depends on them.

Three refinements over the textbook defaults (optimizer v2):

* **Observed cardinalities.**  When the environment has executed a plan
  before, the :class:`~repro.optimizer.observer.CardinalityObserver`
  hands measured per-operator output sizes (and filter selectivities)
  to the next compilation, keyed by operator *name*.  Measured truth is
  preferred over every static rule, including user hints — give your
  operators stable names (``name=...``) to benefit across program
  rebuilds.  Part-store sources already arrive with exact sizes: the
  manifest's per-part cardinality stats rows are summed into
  ``estimated_size`` at :meth:`ExecutionEnvironment.from_store` time.
* **Chain-composed filter selectivity.**  Stacked record-wise filters
  are fused into one :class:`~repro.runtime.plan.FusedChain` by the
  chainer, but sizes used to be estimated per logical node, compounding
  ``0.5`` per filter — a run of four filters was charged ``0.0625``
  even though stacked predicates are almost always correlated.  We now
  estimate through the run as a single composed selectivity with
  exponential backoff: the *d*-th consecutive filter contributes
  ``FILTER_SELECTIVITY ** (CHAIN_BACKOFF ** d)``, so four stacked
  filters compose to ``≈0.27`` instead of ``0.0625``.
* **Placeholder sizes** for iteration bodies are injected by the
  enumerator (the dynamic path is re-costed per superstep by the
  adaptive layer, not estimated here).
"""

from __future__ import annotations

from repro.dataflow.contracts import Contract

#: default output/input ratio per contract
FILTER_SELECTIVITY = 0.5
FLAT_MAP_EXPANSION = 2.0
REDUCE_COMPRESSION = 0.5
JOIN_MATCH_RATE = 1.0  # FK-join assumption: |out| ~ max(|L|, |R|)

DEFAULT_SIZE = 1_000.0

#: exponential backoff for stacked filters in one record-wise run: the
#: d-th consecutive filter is damped to ``FILTER_SELECTIVITY ** (CHAIN_BACKOFF ** d)``
CHAIN_BACKOFF = 0.5

#: contracts the chainer may fuse into a record-wise run
_RECORD_WISE = (Contract.MAP, Contract.FLAT_MAP, Contract.FILTER)


class Statistics:
    """Memoized size estimator over a logical plan region.

    Parameters
    ----------
    placeholder_sizes:
        Injected sizes per placeholder node id (iteration bodies).
    observed:
        Measured output cardinality per operator *name*, from a
        previous run's :class:`CardinalityObserver`.  Preferred over
        every static rule.
    selectivities:
        Measured output/input ratio per FILTER name; used when the
        filter itself has no observed output size (e.g. its input size
        changed between runs).
    """

    def __init__(self, placeholder_sizes=None, observed=None,
                 selectivities=None):
        self._memo: dict[int, float] = {}
        self.placeholder_sizes = placeholder_sizes or {}
        self.observed: dict[str, float] = dict(observed or {})
        self.selectivities: dict[str, float] = dict(selectivities or {})

    def size(self, node) -> float:
        cached = self._memo.get(node.id)
        if cached is not None:
            return cached
        estimate = self._estimate(node)
        self._memo[node.id] = estimate
        return estimate

    def _estimate(self, node) -> float:
        if not node.is_placeholder():
            measured = self.observed.get(node.name)
            if measured is not None:
                return float(measured)
        if node.estimated_size is not None:
            return float(node.estimated_size)
        contract = node.contract
        if node.is_placeholder():
            return float(self.placeholder_sizes.get(node.id, DEFAULT_SIZE))
        if contract is Contract.SOURCE:
            return float(len(node.data or ()))
        if contract is Contract.SINK:
            return self.size(node.inputs[0])
        if contract in (Contract.BULK_ITERATION, Contract.DELTA_ITERATION):
            return self.size(node.inputs[0])
        if contract is Contract.MAP:
            return self.size(node.inputs[0])
        if contract is Contract.FLAT_MAP:
            return self.size(node.inputs[0]) * FLAT_MAP_EXPANSION
        if contract is Contract.FILTER:
            upstream = node.inputs[0]
            selectivity = self.selectivities.get(node.name)
            if selectivity is None:
                depth = self._chain_filter_depth(upstream)
                selectivity = FILTER_SELECTIVITY ** (CHAIN_BACKOFF ** depth)
            return self.size(upstream) * selectivity
        if contract in (Contract.REDUCE, Contract.REDUCE_GROUP):
            return max(1.0, self.size(node.inputs[0]) * REDUCE_COMPRESSION)
        if contract is Contract.UNION:
            return self.size(node.inputs[0]) + self.size(node.inputs[1])
        if contract is Contract.CROSS:
            return self.size(node.inputs[0]) * self.size(node.inputs[1])
        if contract in (Contract.MATCH, Contract.SOLUTION_JOIN):
            left = self.size(node.inputs[0])
            right = self._input_or_default(node, 1, left)
            return max(left, right) * JOIN_MATCH_RATE
        if contract in (
            Contract.COGROUP, Contract.INNER_COGROUP, Contract.SOLUTION_COGROUP,
        ):
            left = self.size(node.inputs[0])
            right = self._input_or_default(node, 1, left)
            return max(1.0, max(left, right) * REDUCE_COMPRESSION)
        return DEFAULT_SIZE

    def filter_selectivity(self, filter_node) -> float:
        """Best selectivity estimate for one FILTER node in isolation.

        Observed ratio when a previous run measured it, else the
        textbook default.  Used by the enumerator to discount the size
        of a join input whose ship a filter was pushed below.
        """
        measured = self.selectivities.get(filter_node.name)
        if measured is not None:
            return float(measured)
        return FILTER_SELECTIVITY

    def _chain_filter_depth(self, node) -> int:
        """Filters already applied upstream in the same record-wise run.

        Walks the unary record-wise run the chainer would fuse; stacked
        filters in one run share one composed selectivity instead of
        compounding ``FILTER_SELECTIVITY`` per node.
        """
        depth = 0
        while node.contract in _RECORD_WISE and node.inputs:
            if node.contract is Contract.FILTER:
                depth += 1
            node = node.inputs[0]
        return depth

    def _input_or_default(self, node, index, default) -> float:
        if index >= len(node.inputs):
            return default
        producer = node.inputs[index]
        if producer.contract is Contract.SOLUTION_SET:
            return float(self.placeholder_sizes.get(producer.id, default))
        return self.size(producer)
