"""Cardinality estimation for the cost model.

Sources carry exact sizes (they are in-memory collections); everything
else uses textbook default selectivities, overridable per operator with
``DataSet.with_estimated_size``.  The estimates only steer strategy
choices — correctness never depends on them.
"""

from __future__ import annotations

from repro.dataflow.contracts import Contract

#: default output/input ratio per contract
FILTER_SELECTIVITY = 0.5
FLAT_MAP_EXPANSION = 2.0
REDUCE_COMPRESSION = 0.5
JOIN_MATCH_RATE = 1.0  # FK-join assumption: |out| ~ max(|L|, |R|)

DEFAULT_SIZE = 1_000.0


class Statistics:
    """Memoized size estimator over a logical plan region."""

    def __init__(self, placeholder_sizes=None):
        self._memo: dict[int, float] = {}
        self.placeholder_sizes = placeholder_sizes or {}

    def size(self, node) -> float:
        cached = self._memo.get(node.id)
        if cached is not None:
            return cached
        estimate = self._estimate(node)
        self._memo[node.id] = estimate
        return estimate

    def _estimate(self, node) -> float:
        if node.estimated_size is not None:
            return float(node.estimated_size)
        contract = node.contract
        if node.is_placeholder():
            return float(self.placeholder_sizes.get(node.id, DEFAULT_SIZE))
        if contract is Contract.SOURCE:
            return float(len(node.data or ()))
        if contract is Contract.SINK:
            return self.size(node.inputs[0])
        if contract in (Contract.BULK_ITERATION, Contract.DELTA_ITERATION):
            return self.size(node.inputs[0])
        if contract is Contract.MAP:
            return self.size(node.inputs[0])
        if contract is Contract.FLAT_MAP:
            return self.size(node.inputs[0]) * FLAT_MAP_EXPANSION
        if contract is Contract.FILTER:
            return self.size(node.inputs[0]) * FILTER_SELECTIVITY
        if contract in (Contract.REDUCE, Contract.REDUCE_GROUP):
            return max(1.0, self.size(node.inputs[0]) * REDUCE_COMPRESSION)
        if contract is Contract.UNION:
            return self.size(node.inputs[0]) + self.size(node.inputs[1])
        if contract is Contract.CROSS:
            return self.size(node.inputs[0]) * self.size(node.inputs[1])
        if contract in (Contract.MATCH, Contract.SOLUTION_JOIN):
            left = self.size(node.inputs[0])
            right = self._input_or_default(node, 1, left)
            return max(left, right) * JOIN_MATCH_RATE
        if contract in (
            Contract.COGROUP, Contract.INNER_COGROUP, Contract.SOLUTION_COGROUP,
        ):
            left = self.size(node.inputs[0])
            right = self._input_or_default(node, 1, left)
            return max(1.0, max(left, right) * REDUCE_COMPRESSION)
        return DEFAULT_SIZE

    def _input_or_default(self, node, index, default) -> float:
        if index >= len(node.inputs):
            return default
        producer = node.inputs[index]
        if producer.contract is Contract.SOLUTION_SET:
            return float(self.placeholder_sizes.get(producer.id, default))
        return self.size(producer)
