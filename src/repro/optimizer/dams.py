"""Dam (materialization-barrier) placement for iterations (Section 4.2).

Pipelined execution of an iterative dataflow risks two hazards:

1. **Premature feedback**: the body output ``O`` may receive records
   before the termination criterion ``T`` has decided whether another
   superstep happens.  A dam must hold ``O``'s records back — unless the
   operator consuming the partial solution ``I`` materializes its input
   anyway (a sort buffer or hash table), in which case that
   materialization point serves as the dam.
2. **Superstep overlap**: with feedback-channel execution, an operator
   could receive records of superstep ``i+1`` while still processing
   superstep ``i``.  The feedback channel must dam the flow unless the
   dynamic data path already contains at least two materializing
   operators.

This module analyzes an annotated plan and reports which dams are
required; the executor's operator-at-a-time evaluation implicitly
materializes everything (every dam is trivially satisfied), so the
analysis exists to make the paper's placement rules explicit and
testable, and to annotate plans for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataflow.contracts import Contract
from repro.dataflow.graph import dynamic_path_nodes
from repro.runtime.plan import LocalStrategy


@dataclass
class DamReport:
    """Where an iteration's plan needs materialization barriers."""

    #: (node, input index) pairs on the dynamic path whose local strategy
    #: materializes that input (hash-table build sides, sort buffers, ...)
    materialization_points: list = field(default_factory=list)
    #: the feedback channel must fully materialize each superstep's result
    feedback_dam: bool = False
    #: an extra dam must hold the body output until T decides
    output_dam: bool = False

    @property
    def num_materializing(self) -> int:
        return len(self.materialization_points)


def materializing_inputs(node, local: LocalStrategy) -> tuple[int, ...]:
    """Input slots that the local strategy materializes before producing."""
    if local is LocalStrategy.HASH_BUILD_LEFT:
        return (0,)
    if local is LocalStrategy.HASH_BUILD_RIGHT:
        return (1,)
    if local is LocalStrategy.SORT_MERGE:
        return (0, 1)
    if local in (LocalStrategy.HASH_AGGREGATE, LocalStrategy.SORT_AGGREGATE):
        return (0,)
    if local is LocalStrategy.SORT_COGROUP:
        return (0, 1)
    if local is LocalStrategy.SOLUTION_GROUP:
        return (0,)
    if node.contract in (Contract.REDUCE_GROUP, Contract.COGROUP,
                         Contract.INNER_COGROUP):
        # grouping always materializes, whatever the flavour
        return tuple(range(len(node.inputs)))
    return ()


def analyze_dams(iteration, exec_plan) -> DamReport:
    """Apply the Section 4.2 placement rules to a bulk iteration's plan."""
    report = DamReport()
    dynamic = dynamic_path_nodes(iteration)
    dynamic_ids = {n.id for n in dynamic}

    for node in dynamic:
        if node.is_placeholder():
            continue
        ann = exec_plan.annotation(node)
        for input_index in materializing_inputs(node, ann.local):
            producer = node.inputs[input_index]
            if producer.id in dynamic_ids:
                report.materialization_points.append((node, input_index))

    # Rule 2: fewer than two materializing operators on the dynamic path
    # means records of consecutive supersteps could overlap in a pipeline.
    report.feedback_dam = report.num_materializing < 2

    # Rule 1: with a termination criterion, O must not emit into the next
    # superstep before T decides — unless I's consumer materializes.
    termination = getattr(iteration, "termination", None)
    if termination is not None:
        report.output_dam = not _placeholder_consumer_materializes(
            iteration, exec_plan
        )
        if report.output_dam:
            ann = exec_plan.annotation(iteration.body_output)
            ann.dams.add(0)
    return report


def _placeholder_consumer_materializes(iteration, exec_plan) -> bool:
    """True if *every* consumer of ``I`` materializes its placeholder
    input — those materialization points then serve as the dam.  A single
    streaming consumer would let next-superstep records leak in early,
    so it forces an explicit dam at ``O``."""
    placeholder = iteration.placeholder
    found_consumer = False
    for node in dynamic_path_nodes(iteration):
        for input_index, producer in enumerate(node.inputs):
            if producer.id != placeholder.id:
                continue
            found_consumer = True
            ann = exec_plan.annotation(node)
            if input_index not in materializing_inputs(node, ann.local):
                return False
    return found_consumer
