"""Cost-based optimizer gateway.

``optimize_plan`` enumerates physical alternatives (see
:mod:`repro.optimizer.enumerator`), picks the cheapest candidate per
sink, and materializes the winning choices into an
:class:`~repro.runtime.plan.ExecutionPlan`.  ``naive_plan`` (in
:mod:`repro.optimizer.naive`) provides the rule-based fallback used when
an environment is created with ``optimize=False``.
"""

from __future__ import annotations

from repro.dataflow.contracts import Contract
from repro.iterations.microstep import analyze_microstep
from repro.optimizer.costs import DEFAULT_WEIGHTS, CostWeights
from repro.optimizer.enumerator import Candidate, Enumerator
from repro.optimizer.naive import naive_plan, resolve_iteration_mode
from repro.optimizer.pushdown import plan_pushdown
from repro.optimizer.statistics import Statistics
from repro.runtime.plan import BROADCAST, ExecutionPlan, partition_on

__all__ = [
    "CostWeights",
    "DEFAULT_WEIGHTS",
    "naive_plan",
    "optimize_plan",
]


def _calibrated_weights(env) -> CostWeights:
    """Default weights tuned to the session's data-plane batch size.

    The per-batch framing overhead amortizes over
    ``RuntimeConfig.batch_size``, so a record-at-a-time session
    (``batch_size=1``) prices every shipped record at the full
    per-frame cost while the default batched plane pays almost none.
    Explicit ``env.cost_weights`` always win — this only fills in the
    default.
    """
    import dataclasses

    config = getattr(env, "config", None)
    if config is None:
        return DEFAULT_WEIGHTS
    columnar = 1.0 if config.columnar else 0.0
    if (
        config.batch_size == int(DEFAULT_WEIGHTS.batch_size)
        and columnar == DEFAULT_WEIGHTS.columnar
    ):
        return DEFAULT_WEIGHTS
    return dataclasses.replace(
        DEFAULT_WEIGHTS,
        batch_size=float(config.batch_size),
        columnar=columnar,
    )


def optimize_plan(logical_plan, env) -> ExecutionPlan:
    """Produce the cost-optimal execution plan for ``logical_plan``."""
    tracer = env.metrics.tracer
    if tracer is None:
        return _optimize_plan(logical_plan, env, None)
    with tracer.span("optimizer:plan", category="optimizer",
                     sinks=len(logical_plan.sinks)) as span:
        exec_plan = _optimize_plan(logical_plan, env, tracer)
        span.attributes["cost"] = exec_plan.estimated_cost
    return exec_plan


def _optimize_plan(logical_plan, env, tracer) -> ExecutionPlan:
    weights = env.cost_weights or _calibrated_weights(env)
    # measured truth from previous runs in this environment (optimizer
    # v2): the observer is only attached when RuntimeConfig.adaptive is
    # on, so REPRO_ADAPTIVE=0 sees the static defaults
    observer = getattr(env, "observer", None)
    if observer is not None:
        stats = Statistics(observed=observer.sizes,
                           selectivities=observer.selectivities)
    else:
        stats = Statistics()
    pushdown = plan_pushdown(logical_plan)
    config = getattr(env, "config", None)
    chaining = config.chaining if config is not None else True
    enumerator = Enumerator(env.parallelism, weights, stats, tracer=tracer,
                            chaining=chaining, pushdown=pushdown)
    outer_nodes = _outer_region(logical_plan)
    enumerator.count_consumers(outer_nodes)

    exec_plan = ExecutionPlan(logical_plan)
    exec_plan.pushed_filters = dict(pushdown)
    total_cost = 0.0
    applied: set[int] = set()
    for sink in logical_plan.sinks:
        if tracer is not None:
            with tracer.span("optimizer:enumerate", category="optimizer",
                             sink=sink.name) as enum_span:
                candidates = list(enumerator.candidates(sink))
                enum_span.attributes["candidates"] = len(candidates)
        else:
            candidates = enumerator.candidates(sink)
        best = min(candidates, key=lambda c: c.cost)
        if tracer is not None:
            with tracer.span("optimizer:select", category="optimizer",
                             sink=sink.name, cost=best.cost):
                _apply_candidate(best, exec_plan, applied)
        else:
            _apply_candidate(best, exec_plan, applied)
        total_cost += best.cost
    exec_plan.estimated_cost = total_cost

    if tracer is not None:
        with tracer.span("optimizer:modes", category="optimizer"):
            _resolve_modes(logical_plan, exec_plan)
    else:
        _resolve_modes(logical_plan, exec_plan)
    return exec_plan


def _resolve_modes(logical_plan, exec_plan):
    for node in logical_plan.nodes():
        if node.contract is Contract.DELTA_ITERATION:
            mode = resolve_iteration_mode(node)
            exec_plan.iteration_modes[node.id] = mode
            if mode in ("microstep", "async"):
                _fixup_microstep(exec_plan, node)


def _outer_region(logical_plan):
    """Nodes of the outermost region (iteration bodies excluded)."""
    from repro.dataflow.graph import topological_order
    return topological_order(logical_plan.sinks)


def _apply_candidate(cand: Candidate, exec_plan: ExecutionPlan,
                     applied: set):
    if cand is None or cand.node.id in applied:
        return
    applied.add(cand.node.id)
    ann = exec_plan.annotation(cand.node)
    ann.local = cand.local
    ann.ship = dict(cand.ships)
    ann.combiner = cand.combiner
    for child in cand.children:
        _apply_candidate(child, exec_plan, applied)
    for _root, pick in cand.nested:
        _apply_candidate(pick, exec_plan, applied)


def _fixup_microstep(exec_plan: ExecutionPlan, iteration):
    """Force microstep-compatible strategies on the compiled chains.

    Per-element execution routes dynamic records through queues
    partitioned like the solution set.  A constant-side Match table may
    stay hash-partitioned on its own join key only when the dynamic
    record's join-key *value* provably determines its current partition
    — i.e. when the dynamic join fields coincide (through forwarded
    fields) with the fields that routed the record.  Otherwise the
    constant side must be replicated; constant cross inputs always are.
    """
    report = analyze_microstep(iteration)
    if not report.eligible:
        return
    # the fields that determine a record's partition on each chain
    route_fields = iteration.solution_key
    for op in report.chain_to_delta:
        if op.contract in (Contract.SOLUTION_JOIN, Contract.SOLUTION_COGROUP):
            route_fields = op.key_fields[0]
            break
    _fixup_chain(exec_plan, iteration, report.chain_to_delta, route_fields)
    _fixup_chain(exec_plan, iteration, report.chain_to_workset,
                 iteration.solution_key)


def _fixup_chain(exec_plan, iteration, chain, tracked_fields):
    from repro.iterations.microstep import _forward_fields

    chain_ids = {op.id for op in chain}
    dynamic_ids = chain_ids | {
        iteration.workset_placeholder.id,
        iteration.solution_placeholder.id,
        iteration.delta_output.id,
    }
    for op in chain:
        ann = exec_plan.annotation(op)
        if op.contract in (Contract.MATCH, Contract.CROSS):
            const_idx = _constant_input_index(op, chain_ids, iteration)
            dyn_idx = 1 - const_idx
            local_join = (
                op.contract is Contract.MATCH
                and tracked_fields is not None
                and op.key_fields[dyn_idx] == tracked_fields
            )
            if local_join:
                ann.ship[const_idx] = partition_on(op.key_fields[const_idx])
            else:
                ann.ship[const_idx] = BROADCAST
        # trace how the routing fields survive this operator's UDF
        if tracked_fields is not None:
            dyn_input = 0
            for idx, producer in enumerate(op.inputs):
                if producer.id in dynamic_ids:
                    dyn_input = idx
                    break
            tracked_fields = _forward_fields(op, dyn_input, tracked_fields)


def _constant_input_index(op, chain_ids, iteration) -> int:
    placeholders = {
        iteration.workset_placeholder.id,
        iteration.solution_placeholder.id,
        iteration.delta_output.id,
    }
    for idx, producer in enumerate(op.inputs):
        if producer.id not in chain_ids and producer.id not in placeholders:
            return idx
    return 1
