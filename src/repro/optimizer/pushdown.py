"""Filter pushdown below a match's ship (optimizer v2 rewrites).

A record-wise filter sitting directly on top of a join can often be
evaluated *before* the join's inputs are shipped: when every field the
predicate reads is identity-forwarded from one join input, a record that
the filter would discard post-join can be discarded pre-ship — it pays
neither network nor probe cost.  This is the classic
selection-below-join rewrite, restricted here to the shapes where it is
provably safe for tuples-as-records:

* the filter's UDF is **deterministic** (``DataSet.filter`` default;
  ``deterministic=False`` fences it off) — a stateful predicate may not
  be evaluated a different number of times or in a different order,
* the filter **declares its read fields** (``fields=...``); without the
  declaration nothing is known about what the predicate touches and it
  is never moved,
* the match forwards every read field **identity-mapped** (input
  position ``f`` → output position ``f``) from exactly one input side —
  if both sides qualify the rewrite would be ambiguous and is skipped,
* the match has **no other consumer** — another consumer sees the
  unfiltered join output, so the join must still produce it,
* only the **outer region** is rewritten; dynamic edges inside
  iteration bodies are re-costed live by :mod:`repro.optimizer.adaptive`
  instead.

Execution model: the executor applies the pushed predicate *silently*
(no spans, no logical counters) to the chosen input side just before
shipping it, and the filter node itself still runs normally post-join.
Filters are idempotent, so re-filtering the surviving records is a
no-op semantically; leaving the node in place keeps its operator span,
processed counts, and any fused chain it belongs to exactly where the
un-pushed plan has them.  The only observable differences are physical:
fewer records shipped and probed.  Dams are never crossed: the rewrite
moves the predicate *down* from a join consumer onto the join's own
input edge — it never relocates a filter past a materializing operator
such as a REDUCE, because such a filter does not sit on a MATCH in the
first place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.contracts import Contract
from repro.dataflow.graph import topological_order


@dataclass(frozen=True)
class PushedFilter:
    """One filter pushed below one match input's ship.

    ``side`` is the match input slot whose records the predicate can be
    applied to pre-ship; ``filter_node`` is the FILTER logical node
    (still executed post-join).
    """

    side: int
    filter_node: object


def plan_pushdown(logical_plan) -> dict:
    """Map of {match node id: :class:`PushedFilter`} for the outer region."""
    outer = topological_order(logical_plan.sinks)
    consumers: dict[int, list] = {}
    for node in outer:
        for producer in node.inputs:
            consumers.setdefault(producer.id, []).append(node)

    pushed: dict[int, PushedFilter] = {}
    for node in outer:
        if node.contract is not Contract.FILTER:
            continue
        side = _pushable_side(node, consumers)
        if side is not None:
            pushed[node.inputs[0].id] = PushedFilter(side, node)
    return pushed


def _pushable_side(filter_node, consumers):
    """The unique match input slot ``filter_node`` can move below, or None."""
    if not getattr(filter_node, "deterministic", True):
        return None
    read_fields = getattr(filter_node, "read_fields", None)
    if read_fields is None:
        return None
    if len(filter_node.inputs) != 1:
        return None
    match = filter_node.inputs[0]
    if match.contract is not Contract.MATCH:
        return None
    match_consumers = consumers.get(match.id, [])
    if len(match_consumers) != 1 or match_consumers[0] is not filter_node:
        return None
    qualifying = [
        idx
        for idx in range(len(match.inputs))
        if all(
            match.forwarded_fields.get(idx, {}).get(field) == field
            for field in read_fields
        )
    ]
    if len(qualifying) != 1:
        return None  # no side proves the fields, or both sides do (ambiguous)
    return qualifying[0]
