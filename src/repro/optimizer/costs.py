"""The optimizer's cost model.

Costs are abstract units combining network transfer (dominant, as in any
shared-nothing system), per-record CPU work, hash-table builds, and
sorting.  Weights are configurable per environment so benchmarks can
study the optimizer's sensitivity; the defaults make network roughly 4×
as expensive as touching a record locally, which suffices to reproduce
the broadcast-vs-repartition crossover of Figure 4.

Inside an iteration, costs on the dynamic data path are weighted by the
expected number of supersteps, while constant-path costs (cached after
the first superstep, Section 4.3) are paid once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.runtime.plan import ShipKind


@dataclass(frozen=True)
class CostWeights:
    """Relative strategy costs.

    Like the Nephele/PACT optimizer this model is *network-dominated*:
    shipping a record across partitions costs 1.0 while touching it
    locally costs cents.  The CPU terms exist as tie-breakers — they
    decide build sides and hash-vs-sort without ever outvoting a
    difference in shipped volume, mirroring the original system's
    network/disk-only cost model.
    """

    network: float = 1.0
    cpu: float = 0.01
    hash_build: float = 0.02
    sort: float = 0.01
    #: supersteps assumed when weighting dynamic-path costs; the plan with
    #: expensive work on the constant path wins under this multiplier
    expected_iterations: float = 10.0
    #: memory budget: a side larger than this many records cannot be
    #: replicated to every partition (a 1.7B-edge matrix does not fit in
    #: one node's heap, whatever the network cost says)
    broadcast_limit: float = 50_000.0


DEFAULT_WEIGHTS = CostWeights()


def ship_cost(kind: ShipKind, size: float, parallelism: int,
              weights: CostWeights) -> float:
    """Network cost of moving ``size`` records under a shipping strategy."""
    if kind is ShipKind.FORWARD:
        return 0.0
    if kind is ShipKind.PARTITION_HASH:
        remote = size * (parallelism - 1) / parallelism
        return weights.network * remote
    if kind is ShipKind.BROADCAST:
        return weights.network * size * (parallelism - 1)
    if kind is ShipKind.GATHER:
        return weights.network * size * (parallelism - 1) / parallelism
    raise ValueError(f"unknown ship kind {kind}")


def sort_cost(size: float, parallelism: int, weights: CostWeights) -> float:
    per_partition = max(1.0, size / parallelism)
    return weights.sort * size * math.log2(per_partition + 1.0)


def hash_build_cost(size: float, weights: CostWeights) -> float:
    return weights.hash_build * size


def probe_cost(size: float, weights: CostWeights) -> float:
    return weights.cpu * size


def streaming_cost(size: float, weights: CostWeights) -> float:
    return weights.cpu * size
