"""The optimizer's cost model.

Costs are abstract units combining network transfer (dominant, as in any
shared-nothing system), per-record CPU work, hash-table builds, and
sorting.  Weights are configurable per environment so benchmarks can
study the optimizer's sensitivity; the defaults make network roughly 4×
as expensive as touching a record locally, which suffices to reproduce
the broadcast-vs-repartition crossover of Figure 4.

Inside an iteration, costs on the dynamic data path are weighted by the
expected number of supersteps, while constant-path costs (cached after
the first superstep, Section 4.3) are paid once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.runtime.plan import ShipKind


@dataclass(frozen=True)
class CostWeights:
    """Relative strategy costs.

    Like the Nephele/PACT optimizer this model is *network-dominated*:
    shipping a record across partitions costs 1.0 while touching it
    locally costs cents.  The CPU terms exist as tie-breakers — they
    decide build sides and hash-vs-sort without ever outvoting a
    difference in shipped volume, mirroring the original system's
    network/disk-only cost model.
    """

    network: float = 1.0
    cpu: float = 0.01
    hash_build: float = 0.02
    sort: float = 0.01
    #: supersteps assumed when weighting dynamic-path costs; the plan with
    #: expensive work on the constant path wins under this multiplier
    expected_iterations: float = 10.0
    #: memory budget: a side larger than this many records cannot be
    #: replicated to every partition (a 1.7B-edge matrix does not fit in
    #: one node's heap, whatever the network cost says)
    broadcast_limit: float = 50_000.0
    #: data-plane framing: every record a channel moves pays a small
    #: handling cost, and every :class:`~repro.common.batch.RecordBatch`
    #: chunk pays a fixed framing cost.  The per-batch term is amortized
    #: over ``batch_size`` records, so the effective per-record overhead
    #: is ``per_record_overhead + per_batch_overhead / batch_size`` —
    #: large at ``batch_size=1`` (record-at-a-time, one frame per
    #: record), near ``per_record_overhead`` at the default 1024.  The
    #: optimizer calibrates ``batch_size`` from the session's
    #: :class:`~repro.runtime.config.RuntimeConfig` unless explicit
    #: weights are supplied.
    per_record_overhead: float = 0.001
    per_batch_overhead: float = 0.5
    batch_size: float = 1024.0
    #: columnar data plane (``REPRO_COLUMNAR``): all-fixed-width batches
    #: leave as raw column buffers, so per-record serialization handling
    #: shrinks to ``per_record_overhead * columnar_record_factor`` while
    #: every batch pays a per-column encode term
    #: (``per_column_overhead * assumed_columns``) on top of its frame
    #: cost.  ``columnar`` is 1.0 when the session runs the columnar
    #: plane, 0.0 (the context-free default) otherwise.
    columnar: float = 0.0
    columnar_record_factor: float = 0.25
    per_column_overhead: float = 0.05
    assumed_columns: float = 3.0


DEFAULT_WEIGHTS = CostWeights()


def amortized_overhead(weights: CostWeights) -> float:
    """Effective per-record data-plane overhead under ``weights``.

    Row plane: ``per_record + per_batch / batch_size``.  Columnar plane:
    the per-record handling is vectorized (one encode per column buffer
    instead of one pickle visit per record), so the record term scales
    by ``columnar_record_factor`` and the batch term grows by the
    per-column encode cost.
    """
    if weights.columnar:
        return (
            weights.per_record_overhead * weights.columnar_record_factor
            + (
                weights.per_batch_overhead
                + weights.per_column_overhead * weights.assumed_columns
            ) / max(1.0, weights.batch_size)
        )
    return weights.per_record_overhead + (
        weights.per_batch_overhead / max(1.0, weights.batch_size)
    )


def _framed_records(kind: ShipKind, size: float, parallelism: int) -> float:
    """How many records a ship frames into batches (broadcast frames one
    copy per destination; forward never reframes)."""
    if kind is ShipKind.FORWARD:
        return 0.0
    if kind is ShipKind.BROADCAST:
        return size * parallelism
    return size  # PARTITION_HASH, GATHER


def framing_cost(kind: ShipKind, size: float, parallelism: int,
                 weights: CostWeights) -> float:
    """Amortized batch-framing cost of a ship.

    Kept linear in ``size`` (the per-batch term is spread over the
    configured batch size rather than rounded up per chunk), so the
    model stays comparable across cardinalities while still charging
    record-at-a-time plans the full per-frame price.
    """
    return _framed_records(kind, size, parallelism) * amortized_overhead(
        weights
    )


def ship_cost(kind: ShipKind, size: float, parallelism: int,
              weights: CostWeights) -> float:
    """Cost of moving ``size`` records under a shipping strategy:
    network transfer plus batch-framing overhead."""
    if kind is ShipKind.FORWARD:
        return 0.0
    framing = framing_cost(kind, size, parallelism, weights)
    if kind is ShipKind.PARTITION_HASH:
        remote = size * (parallelism - 1) / parallelism
        return weights.network * remote + framing
    if kind is ShipKind.BROADCAST:
        return weights.network * size * (parallelism - 1) + framing
    if kind is ShipKind.GATHER:
        return weights.network * size * (parallelism - 1) / parallelism + framing
    raise ValueError(f"unknown ship kind {kind}")


def forward_edge_cost(size: float, weights: CostWeights) -> float:
    """Materialization-and-reframing overhead of an *unfused* forward edge.

    A forward edge never moves records between partitions, but in the
    node-at-a-time interpreter it still costs work: the producer's
    output is materialized into the memo, copied by the forward ship,
    and reframed into batches by the consumer.  Chain fusion
    (:mod:`repro.optimizer.chaining`) eliminates exactly this overhead,
    so the enumerator charges it only on forward edges that will *not*
    be fused away — which is what lets plan selection prefer fusable
    shapes when chaining is enabled.
    """
    return size * amortized_overhead(weights)


def sort_cost(size: float, parallelism: int, weights: CostWeights) -> float:
    per_partition = max(1.0, size / parallelism)
    return weights.sort * size * math.log2(per_partition + 1.0)


def hash_build_cost(size: float, weights: CostWeights) -> float:
    return weights.hash_build * size


def probe_cost(size: float, weights: CostWeights) -> float:
    return weights.cpu * size


def streaming_cost(size: float, weights: CostWeights) -> float:
    return weights.cpu * size
