"""Operator chain fusion: compile forward pipelines into fused drivers.

The paper's runtime pipelines record-wise operators and only
materializes at dams (Sections 3, 4.2); the node-at-a-time interpreter
instead materializes every operator's output into the memo and pays a
full forward ship per edge.  This planner recovers the pipelining:
after physical planning it walks the selected
:class:`~repro.runtime.plan.ExecutionPlan` and collapses *maximal runs*
of record-wise, forward-shipped operators (Map, FlatMap, Filter, Union
spines, and the per-record side of combinable Reduces) into
:class:`~repro.runtime.plan.FusedChain` entries that the executor runs
as single batch-at-a-time drivers (:mod:`repro.runtime.fusion`).

An edge ``producer → consumer`` is fused away only when every one of
the following holds, which is exactly what keeps fused execution
bitwise identical to unfused execution:

* both endpoints are chainable record-wise contracts (Map, FlatMap,
  Filter, Union);
* the edge ships ``FORWARD`` — any repartitioning, broadcast, or
  gather is a real channel and must stay one;
* the consumer has no *dam* on that input slot (a dam demands full
  materialization before consumption);
* the producer has exactly one consumer, counting sinks, iteration
  roots (body output, termination criterion, delta output, workset
  output), and plan sinks as consumers — a branch point ends a chain,
  and a node the executor references directly must keep its memo entry;
* both endpoints live in the same plan region with the same
  constant/dynamic data-path classification (Section 4.3) — a chain
  never straddles the caching boundary, so constant-path edge caching
  at the chain head's inputs keeps working unchanged;
* the surrounding delta iteration (if any) executes in ``superstep``
  mode — microstep and async bodies use the per-record pipeline of
  :func:`repro.runtime.executor._compile_chain` instead.

A chain may additionally absorb the per-record combine pass of a
combinable Reduce tail: when the spine's sole consumer is a REDUCE
annotated with ``combiner=True``, the pre-shuffle partial aggregation
runs in-stream on the spine's output (the reduce itself still ships and
aggregates as an ordinary operator).

Fusion never changes results or logical counters; it only removes memo
entries, operator spans, and forward-ship round trips for the interior
of each chain.  ``RuntimeConfig.chaining`` (``REPRO_NO_CHAIN=1``)
disables it entirely.
"""

from __future__ import annotations

from repro.dataflow.contracts import Contract
from repro.dataflow.graph import dynamic_path_nodes, iteration_body_nodes
from repro.runtime.plan import FusedChain, ShipKind

#: contracts a chain spine may consist of: record-wise, forward-friendly
CHAINABLE_CONTRACTS = frozenset({
    Contract.MAP,
    Contract.FLAT_MAP,
    Contract.FILTER,
    Contract.UNION,
})

#: region key of the outermost plan region (no iteration, constant)
_OUTER_REGION = (None, False)

#: region key for nodes claimed by more than one iteration body — such
#: nodes never fuse (their consumer count is >1 anyway, but keeping the
#: key distinct makes the rule independent of counting)
_AMBIGUOUS_REGION = ("ambiguous",)


def iteration_roots(node):
    """The body nodes an iteration's executor references directly."""
    if node.contract is Contract.BULK_ITERATION:
        roots = [node.body_output]
        if node.termination is not None:
            roots.append(node.termination)
        return roots
    return [node.delta_output, node.workset_output]


def _resolved_mode(exec_plan, iteration) -> str:
    """The delta iteration's execution mode as the executor will see it."""
    mode = exec_plan.iteration_modes.get(iteration.id)
    if mode is None:
        from repro.optimizer.naive import resolve_iteration_mode
        mode = resolve_iteration_mode(iteration)
    return mode


def _classify_regions(logical_plan, exec_plan):
    """Per-node region keys plus the ids of never-fusable nodes.

    Returns ``(regions, unfusable)``: ``regions[node.id]`` is a
    ``(iteration id, is_dynamic)`` key (missing ids are outer-region),
    and ``unfusable`` holds ids that must not participate in any chain
    (microstep/async delta bodies, nodes shared between bodies).
    """
    regions: dict[int, tuple] = {}
    unfusable: set[int] = set()
    for node in logical_plan.nodes():
        if not node.is_iteration():
            continue
        if node.contract is Contract.DELTA_ITERATION:
            if _resolved_mode(exec_plan, node) != "superstep":
                # per-record bodies keep the microstep pipeline compiler
                unfusable.update(n.id for n in iteration_body_nodes(node))
                continue
        dynamic = {n.id for n in dynamic_path_nodes(node)}
        for member in iteration_body_nodes(node):
            key = (node.id, member.id in dynamic)
            if regions.setdefault(member.id, key) != key:
                regions[member.id] = _AMBIGUOUS_REGION
    return regions, unfusable


def _consumer_counts(logical_plan):
    """Global consumer counts, including the executor's direct references.

    Every edge counts one consumer; iteration roots and plan sinks count
    an extra one because the executor evaluates them by name (a fused-away
    node must have its successor as its *only* reader).
    """
    counts: dict[int, int] = {}

    def bump(node):
        counts[node.id] = counts.get(node.id, 0) + 1

    for node in logical_plan.nodes():
        for producer in node.inputs:
            bump(producer)
        if node.is_iteration():
            for root in iteration_roots(node):
                bump(root)
    for sink in logical_plan.sinks:
        bump(sink)
    return counts


def _edge_fusable(exec_plan, consumer, idx, producer, counts, regions,
                  unfusable) -> bool:
    """True if the ``producer → consumer`` edge can be fused away."""
    if producer.contract not in CHAINABLE_CONTRACTS:
        return False
    if consumer.contract not in CHAINABLE_CONTRACTS:
        return False
    if producer.id in unfusable or consumer.id in unfusable:
        return False
    if counts.get(producer.id, 0) != 1:
        return False
    ann = exec_plan.annotation(consumer)
    if idx in ann.dams:
        return False
    if exec_plan.ship_strategy(consumer, idx).kind is not ShipKind.FORWARD:
        return False
    producer_region = regions.get(producer.id, _OUTER_REGION)
    consumer_region = regions.get(consumer.id, _OUTER_REGION)
    if producer_region is _AMBIGUOUS_REGION:
        return False
    return producer_region == consumer_region


def _combine_tail(exec_plan, tail, counts, regions, unfusable):
    """The combinable REDUCE absorbing ``tail``'s output in-stream, if any.

    The combiner branch of the executor evaluates the reduce's input
    *raw* (ships only the combined output), so the pre-combine edge is
    effectively forward regardless of the reduce's ship annotation —
    fusability needs only single-consumership, no dam, and matching
    region classification.
    """
    if tail.contract not in CHAINABLE_CONTRACTS:
        return None
    if tail.id in unfusable or counts.get(tail.id, 0) != 1:
        return None
    consumer = _sole_edge_consumer(exec_plan.logical_plan, tail)
    if consumer is None or consumer.contract is not Contract.REDUCE:
        return None
    ann = exec_plan.annotation(consumer)
    if not ann.combiner or 0 in ann.dams or consumer.id in unfusable:
        return None
    tail_region = regions.get(tail.id, _OUTER_REGION)
    if tail_region is _AMBIGUOUS_REGION:
        return None
    if tail_region != regions.get(consumer.id, _OUTER_REGION):
        return None
    return consumer


def _sole_edge_consumer(logical_plan, producer):
    """The unique node consuming ``producer`` through an edge, or None."""
    found = None
    for node in logical_plan.nodes():
        for inp in node.inputs:
            if inp.id == producer.id:
                if found is not None and found.id != node.id:
                    return None
                found = node
    return found


def plan_chains(exec_plan) -> None:
    """Annotate ``exec_plan`` with fused operator chains (in place).

    Populates :attr:`~repro.runtime.plan.ExecutionPlan.chains` (keyed by
    tail node id) and :attr:`~repro.runtime.plan.ExecutionPlan.fused_ids`
    (head and interior ids the executor must never evaluate directly).
    Idempotent on re-planning: previous chains are discarded first.
    """
    logical_plan = exec_plan.logical_plan
    exec_plan.chains = {}
    exec_plan.fused_ids = frozenset()

    counts = _consumer_counts(logical_plan)
    regions, unfusable = _classify_regions(logical_plan, exec_plan)

    # one fused successor per producer; a union with two fusable inputs
    # keeps only the lowest slot as its spine — the other side stays a
    # normally shipped tap
    links: dict[int, tuple] = {}  # producer id -> (consumer, input slot)
    has_spine: dict[int, int] = {}  # consumer id -> chosen spine slot
    nodes_by_id = {}
    for consumer in logical_plan.nodes():
        nodes_by_id[consumer.id] = consumer
        for idx, producer in enumerate(consumer.inputs):
            if consumer.id in has_spine:
                break
            if _edge_fusable(exec_plan, consumer, idx, producer, counts,
                             regions, unfusable):
                links[producer.id] = (consumer, idx)
                has_spine[consumer.id] = idx

    # maximal paths: walk forward from every head (a linked producer
    # that no fused edge feeds)
    chains: dict[int, FusedChain] = {}
    fused: set[int] = set()
    for producer_id, (first_consumer, first_idx) in links.items():
        if producer_id in has_spine:
            continue  # interior of a longer chain; its head walks it
        spine = [nodes_by_id[producer_id]]
        spine_inputs = []
        consumer, idx = first_consumer, first_idx
        while True:
            spine.append(consumer)
            spine_inputs.append(idx)
            nxt = links.get(consumer.id)
            if nxt is None:
                break
            consumer, idx = nxt
        combine = _combine_tail(exec_plan, spine[-1], counts, regions,
                                unfusable)
        chain = FusedChain(
            nodes=tuple(spine),
            spine_inputs=tuple(spine_inputs),
            combine_node=combine,
        )
        chains[chain.tail.id] = chain
        fused.update(node.id for node in spine)
        if combine is None:
            fused.discard(spine[-1].id)  # the tail keeps its identity

    # single-operator combine chains: a lone record-wise node whose sole
    # consumer is a combinable reduce still fuses away its memo entry
    for node in logical_plan.nodes():
        if node.contract not in CHAINABLE_CONTRACTS or node.id in fused:
            continue
        if node.id in links or node.id in has_spine:
            continue
        combine = _combine_tail(exec_plan, node, counts, regions, unfusable)
        if combine is None or combine.id in chains:
            continue
        chain = FusedChain(nodes=(node,), spine_inputs=(),
                           combine_node=combine)
        chains[combine.id] = chain
        fused.add(node.id)

    exec_plan.chains = chains
    exec_plan.fused_ids = frozenset(fused)
