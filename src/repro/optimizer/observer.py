"""Runtime cardinality observation: measured stats for the next plan.

The :class:`CardinalityObserver` closes the loop between execution and
optimization (ROADMAP item 3): after every run the environment feeds the
executed plan and the session's merged
:class:`~repro.runtime.metrics.MetricsCollector` into
:meth:`CardinalityObserver.ingest`, which derives per-operator observed
output cardinalities, distinct-key counts, and filter selectivities.
The next compilation in the same environment hands them to
:class:`~repro.optimizer.statistics.Statistics`, where measured truth
replaces the textbook defaults.

Design constraints, in order:

* **Near-zero overhead.**  Nothing runs on the data path.  The observer
  piggybacks entirely on counters the runtime already maintains —
  ``records_processed`` is keyed by operator name, and records *into*
  an operator are records *out of* its producer, so output sizes fall
  out of the existing bookkeeping at ingest time (one dict pass per
  run, driver-side only).
* **Backend invariance.**  Only *logical* counters are consulted.  They
  are bitwise identical across the simulated / multiprocess / pool
  backends, so a warm environment compiles the same plan no matter
  where the previous run executed — the cross-backend audit holds even
  for multi-submission sessions.
* **Off-path when disabled.**  The environment only instantiates an
  observer when ``RuntimeConfig.adaptive`` is on; under
  ``REPRO_ADAPTIVE=0`` no observation happens and every compilation
  sees the static defaults.

Iteration bodies are deliberately *excluded* from ingestion: their
processed counts are summed over supersteps, which would mislead the
static estimator.  The dynamic path is instead re-costed live, per
superstep, by :mod:`repro.optimizer.adaptive`; the observer keeps the
per-superstep workset/delta trajectory for inspection only.

Observations are keyed by operator *name* so they survive program
rebuilds (node ids do not).  Default names embed the node id — give
operators stable names (``name=...``) to carry stats across
resubmissions of a rebuilt pipeline.
"""

from __future__ import annotations

from collections import Counter

from repro.dataflow.contracts import Contract
from repro.dataflow.graph import iteration_body_nodes

#: unary record-wise contracts: their processed count equals their sole
#: input's output cardinality, which makes them reliable probes
_RECORD_WISE = (Contract.MAP, Contract.FLAT_MAP, Contract.FILTER)

#: keyed aggregations: their output cardinality equals the distinct key
#: count of their input
_KEYED_AGGREGATIONS = (
    Contract.REDUCE,
    Contract.REDUCE_GROUP,
    Contract.COGROUP,
    Contract.INNER_COGROUP,
)


class CardinalityObserver:
    """Derives observed per-operator statistics from logical counters.

    Attributes
    ----------
    sizes:
        Observed output cardinality per operator name (last run wins).
    selectivities:
        Observed output/input ratio per FILTER name.
    key_counts:
        Observed distinct-key counts per keyed-aggregation name (the
        aggregation's output size *is* its input's key count).
    superstep_log:
        ``(superstep, workset_size, delta_size)`` trajectory of the last
        run's iterations, for explain()/visualize and the crossover
        experiments — never fed back into static estimation.
    """

    def __init__(self):
        self._last_processed: Counter = Counter()
        self._last_log_len = 0
        self.sizes: dict[str, float] = {}
        self.selectivities: dict[str, float] = {}
        self.key_counts: dict[str, int] = {}
        self.superstep_log: list[tuple[int, int, int]] = []
        self.runs = 0

    def ingest(self, exec_plan, metrics) -> None:
        """Fold one finished run's counters into the observed stats.

        ``metrics`` accumulates across runs, so ingestion works on the
        delta since the previous ingest; keys present with a zero delta
        still count as observed (an operator that ran and produced
        nothing is a real measurement, e.g. a fully selective filter).
        """
        logical_plan = exec_plan.logical_plan
        current = metrics.records_processed
        delta = {
            name: total - self._last_processed.get(name, 0)
            for name, total in current.items()
        }
        self._last_processed = Counter(current)
        new_steps = metrics.iteration_log[self._last_log_len:]
        self._last_log_len = len(metrics.iteration_log)
        if new_steps:
            self.superstep_log = [
                (s.superstep, s.workset_size, s.delta_size)
                for s in new_steps
            ]

        nodes = logical_plan.nodes()
        body_ids: set[int] = set()
        for node in nodes:
            if node.is_iteration():
                body_ids.update(b.id for b in iteration_body_nodes(node))
        outer = [n for n in nodes if n.id not in body_ids]
        consumers: dict[int, list] = {}
        for node in outer:
            for producer in node.inputs:
                consumers.setdefault(producer.id, []).append(node)

        for node in outer:
            node_consumers = consumers.get(node.id, [])
            if len(node_consumers) != 1:
                continue  # multi-consumer counts are not attributable
            consumer = node_consumers[0]
            if consumer.contract not in _RECORD_WISE:
                continue
            observed_out = delta.get(consumer.name)
            if observed_out is None or observed_out < 0:
                continue
            self.sizes[node.name] = float(observed_out)
            if node.contract in _KEYED_AGGREGATIONS:
                self.key_counts[node.name] = int(observed_out)
            if node.contract is Contract.FILTER:
                observed_in = delta.get(node.name)
                if observed_in:
                    self.selectivities[node.name] = (
                        observed_out / observed_in
                    )
        self.runs += 1

    def snapshot(self) -> dict:
        """Plain-dict view for explain()/visualize and tests."""
        return {
            "runs": self.runs,
            "sizes": dict(self.sizes),
            "selectivities": dict(self.selectivities),
            "key_counts": dict(self.key_counts),
            "superstep_log": list(self.superstep_log),
        }
