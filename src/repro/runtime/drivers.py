"""Per-partition physical operator implementations (local strategies).

Each driver consumes the partition-local input record lists of one
operator and produces the partition-local output list.  Drivers are pure
with respect to the partition: all cross-partition movement has already
happened in the shipping channel, exactly as in a shared-nothing engine.

Join and aggregation drivers come in hash- and sort-based flavours; the
optimizer picks between them (Section 4.3), and the sort-based flavours
establish sort order as a physical property downstream operators can
reuse.

Keyed drivers are **batch-at-a-time**: each consumes its input as
:class:`~repro.common.batch.RecordBatch` chunks of ``batch_size``
records and works from the chunk's cached key vector — one extraction
pass per chunk instead of one :class:`KeyExtractor` call per probe,
build insert, or sort comparison.  ``batch_size=None`` processes the
whole partition as one chunk; any value produces identical outputs in
identical order, because chunking only changes how the key vectors are
materialized, never the record order they are consumed in.

**Columnar kernels.**  With the ``columnar`` knob on, the keyed
drivers route through vectorized kernels whenever the key vector is an
int64 column (:meth:`RecordBatch.key_array`): the hash join computes
match indices with a stable-sorted ``searchsorted`` instead of a
per-record dict probe, and the sort-based drivers take ``argsort``
permutations instead of Python comparison sorts.  Both reproduce the
row kernels' output order bit for bit — the stable sort preserves
arrival order within equal keys, which is exactly the dict-insertion
order the hash table iterates — and any batch whose keys are not
strictly ``int`` (bools, floats, composites, >64-bit) falls back to
the row kernel.  The fold-based drivers (hash aggregate, reduce-group,
cogroup) keep their dict loops: a fold's per-record UDF call dominates
and dict insertion order is the contract, so there is nothing left to
vectorize without changing observable order.
"""

from __future__ import annotations

from collections import defaultdict

from repro.common import columns as columnar_mod
from repro.common.batch import RecordBatch
from repro.common.errors import InvalidPlanError
from repro.dataflow.contracts import Contract
from repro.runtime.plan import LocalStrategy


def _emit_join_result(result, flat, out):
    if result is None:
        return
    if flat:
        out.extend(result)
    else:
        out.append(result)


def _key_chunks(records, key_fields, batch_size):
    """Yield ``(records, keys)`` pairs, one per batch chunk."""
    if not records:
        return
    for chunk in RecordBatch.wrap(records, key_fields).split(batch_size):
        yield chunk.records, chunk.keys


def _entry_stream(records, key_fields, batch_size):
    """Yield ``(seq, key, record)`` triples for the spilled algorithms.

    ``seq`` is the arrival index within this input — the tag the
    out-of-core algorithms use to reassemble the exact record order the
    in-memory drivers produce.  Extraction is still chunk-wise, so the
    batched data plane's key-vector framing (and its audit) is
    identical on both paths.
    """
    seq = 0
    for chunk, keys in _key_chunks(records, key_fields, batch_size):
        for k, record in zip(keys, chunk):
            yield seq, k, record
            seq += 1


def _keyed(records, key_fields, batch_size):
    """The full ``(records, keys)`` vectors, extracted chunk-wise.

    Sort-based drivers need the whole partition's key vector at once
    (a sort is global); this concatenates the per-chunk vectors so the
    extraction still happens one batch at a time.
    """
    recs: list = []
    keys: list = []
    for chunk_records, chunk_keys in _key_chunks(
        records, key_fields, batch_size
    ):
        recs.extend(chunk_records)
        keys.extend(chunk_keys)
    return recs, keys


# ----------------------------------------------------------------------
# columnar kernels (struct-of-arrays fast paths)


def _int64_side(records, key_fields):
    """``(records, int64 key array)`` for one driver input, or ``None``.

    ``None`` means the side does not qualify for a vectorized kernel
    (numpy missing, non-int keys, composite keys, 64-bit overflow) and
    the caller must take the row path.
    """
    batch = RecordBatch.wrap(records, key_fields)
    vector = batch.key_array()
    if vector is None:
        return None
    return batch.records, vector


def _stable_order(vector) -> list[int]:
    """Ascending-key stable permutation (ties keep arrival order)."""
    np = columnar_mod.numpy_module()
    return np.argsort(vector, kind="stable").tolist()


def _join_pairs(build_vector, probe_vector):
    """Vectorized equi-join index computation.

    Returns ``(build_indices, probe_indices)`` (numpy int arrays) in
    probe-major order: all matches of probe 0, then probe 1, …; within
    one probe, build matches ascend in arrival order.  That is exactly
    the emission order of the row kernel's ``for probe: for build in
    table[k]`` loop, because the stable sort keeps equal-key builds in
    insertion order.
    """
    np = columnar_mod.numpy_module()
    order = np.argsort(build_vector, kind="stable")
    sorted_keys = build_vector[order]
    left = np.searchsorted(sorted_keys, probe_vector, side="left")
    right = np.searchsorted(sorted_keys, probe_vector, side="right")
    counts = right - left
    if int(counts.max(initial=0)) <= 1:
        hit = counts.astype(bool)
        build_idx = order[left[hit]]
        if bool(hit.all()):
            probe_idx = None  # every probe matched exactly once, in order
        else:
            probe_idx = np.flatnonzero(hit)
        return build_idx, probe_idx
    # general expansion: probe p owns counts[p] consecutive output pairs
    probe_idx = np.repeat(np.arange(len(probe_vector)), counts)
    offsets = np.arange(int(counts.sum())) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    build_idx = order[np.repeat(left, counts) + offsets]
    return build_idx, probe_idx


def _emit_pairs(fn, build_records, build_idx, probe_records, probe_idx,
                build_left, flat, out):
    """Run the join UDF over matched index pairs at C speed.

    ``map`` drives the UDF without per-pair bytecode; ``None`` results
    are dropped and ``flat`` results extended, matching
    :func:`_emit_join_result` exactly.
    """
    builds = map(build_records.__getitem__, build_idx.tolist())
    if probe_idx is None:
        probes = iter(probe_records)
    else:
        probes = map(probe_records.__getitem__, probe_idx.tolist())
    if build_left:
        results = map(fn, builds, probes)
    else:
        results = map(fn, probes, builds)
    if flat:
        for result in results:
            if result is not None:
                out.extend(result)
        return
    chunk = list(results)
    if None in chunk:
        chunk = [result for result in chunk if result is not None]
    out.extend(chunk)


def _columnar_hash_join(build_in, build_fields, probe_in, probe_fields,
                        fn, build_left, flat):
    """The hash join as an index join over int64 key columns.

    Returns the output list, or ``None`` when either side's keys do not
    vectorize (caller falls back to the dict kernel).
    """
    build_side = _int64_side(build_in, build_fields)
    if build_side is None:
        return None
    probe_side = _int64_side(probe_in, probe_fields)
    if probe_side is None:
        return None
    build_records, build_vector = build_side
    probe_records, probe_vector = probe_side
    out: list = []
    if not build_records or not probe_records:
        return out
    build_idx, probe_idx = _join_pairs(build_vector, probe_vector)
    _emit_pairs(fn, build_records, build_idx, probe_records, probe_idx,
                build_left, flat, out)
    return out


class ColumnarBuildSide:
    """A cached, key-sorted build side for repeated vectorized probes.

    The executor's constant-edge build-table cache (Fig. 4) keeps one
    of these per partition alongside the dict table: supersteps probe
    the same sorted key column over and over, paying the stable sort
    once.  ``None`` from :meth:`of` means the partition's keys do not
    vectorize and only the dict is usable.
    """

    __slots__ = ("records", "sorted_keys", "order")

    @classmethod
    def of(cls, records, key_fields):
        side = _int64_side(records, key_fields)
        if side is None:
            return None
        np = columnar_mod.numpy_module()
        rows, vector = side
        built = cls.__new__(cls)
        built.records = rows
        built.order = np.argsort(vector, kind="stable")
        built.sorted_keys = vector[built.order]
        return built

    def probe(self, chunk_records, chunk_vector, fn, build_left, flat, out):
        """Probe one chunk's key column; emits in row-kernel order."""
        np = columnar_mod.numpy_module()
        left = np.searchsorted(self.sorted_keys, chunk_vector, side="left")
        right = np.searchsorted(self.sorted_keys, chunk_vector, side="right")
        counts = right - left
        if int(counts.max(initial=0)) <= 1:
            hit = counts.astype(bool)
            build_idx = self.order[left[hit]]
            probe_idx = None if bool(hit.all()) else np.flatnonzero(hit)
        else:
            probe_idx = np.repeat(np.arange(len(chunk_vector)), counts)
            offsets = np.arange(int(counts.sum())) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            build_idx = self.order[np.repeat(left, counts) + offsets]
        _emit_pairs(fn, self.records, build_idx, chunk_records, probe_idx,
                    build_left, flat, out)


# ----------------------------------------------------------------------
# record-at-a-time drivers


def run_map(node, inputs, metrics, columnar=False):
    records = inputs[0]
    metrics.add_processed(node.name, len(records))
    fn = node.udf
    if columnar:
        column_fn = getattr(node, "columnar_udf", None)
        if column_fn is not None and records:
            cols = columnar_mod.columnarize(
                records if isinstance(records, list) else list(records)
            )
            if cols is not None:
                _arity, columns = cols
                out_columns, out_length = column_fn(columns, len(records))
                return columnar_mod.materialize_rows(
                    out_columns, out_length
                )
    return [fn(record) for record in records]


def run_flat_map(node, inputs, metrics):
    records = inputs[0]
    metrics.add_processed(node.name, len(records))
    fn = node.udf
    out = []
    for record in records:
        out.extend(fn(record))
    return out


def run_filter(node, inputs, metrics):
    records = inputs[0]
    metrics.add_processed(node.name, len(records))
    fn = node.udf
    return [record for record in records if fn(record)]


def run_union(node, inputs, metrics):
    left, right = inputs
    metrics.add_processed(node.name, len(left) + len(right))
    return list(left) + list(right)


# ----------------------------------------------------------------------
# joins


def run_hash_join(node, inputs, metrics, build_left: bool,
                  batch_size=None, spill=None, columnar=False):
    left, right = inputs
    metrics.add_processed(node.name, len(left) + len(right))
    fn = node.udf
    flat = getattr(node, "flat", False)
    out = []
    if build_left:
        build_in, build_fields = left, node.key_fields[0]
        probe_in, probe_fields = right, node.key_fields[1]
    else:
        build_in, build_fields = right, node.key_fields[1]
        probe_in, probe_fields = left, node.key_fields[0]
    if columnar and spill is None:
        vectorized = _columnar_hash_join(
            build_in, build_fields, probe_in, probe_fields,
            fn, build_left, flat,
        )
        if vectorized is not None:
            return vectorized
    if spill is not None:
        from repro.storage.hashtable import spilled_hash_join

        if build_left:
            def emit(build, probe, results):
                _emit_join_result(fn(build, probe), flat, results)
        else:
            def emit(build, probe, results):
                _emit_join_result(fn(probe, build), flat, results)
        return spilled_hash_join(
            spill, node.name,
            _entry_stream(build_in, build_fields, batch_size),
            _entry_stream(probe_in, probe_fields, batch_size),
            emit,
        )
    table = defaultdict(list)
    for records, keys in _key_chunks(build_in, build_fields, batch_size):
        for k, record in zip(keys, records):
            table[k].append(record)
    lookup = table.get
    for records, keys in _key_chunks(probe_in, probe_fields, batch_size):
        if build_left:
            for k, probe in zip(keys, records):
                for build in lookup(k, ()):
                    _emit_join_result(fn(build, probe), flat, out)
        else:
            for k, probe in zip(keys, records):
                for build in lookup(k, ()):
                    _emit_join_result(fn(probe, build), flat, out)
    return out


def _sort_permutation(keys, columnar):
    """The driver's sort order: stable ascending by key.

    With ``columnar`` and an all-int key vector this is one vectorized
    ``argsort``; otherwise a Python comparison sort.  Both are stable,
    so the permutations — and every downstream emission — are
    identical.
    """
    if columnar:
        vector = columnar_mod.int64_from_values(keys)
        if vector is not None:
            return _stable_order(vector)
    return sorted(range(len(keys)), key=keys.__getitem__)


def run_sort_merge_join(node, inputs, metrics, batch_size=None, spill=None,
                        columnar=False):
    left, right = inputs
    metrics.add_processed(node.name, len(left) + len(right))
    fn = node.udf
    flat = getattr(node, "flat", False)
    if spill is not None:
        from repro.storage.external_sort import spilled_sort_merge_join

        return spilled_sort_merge_join(
            spill, node.name,
            _entry_stream(left, node.key_fields[0], batch_size),
            _entry_stream(right, node.key_fields[1], batch_size),
            fn, flat,
        )
    lrecs, lkeys = _keyed(left, node.key_fields[0], batch_size)
    rrecs, rkeys = _keyed(right, node.key_fields[1], batch_size)
    lorder = _sort_permutation(lkeys, columnar)
    rorder = _sort_permutation(rkeys, columnar)
    lsorted = [lrecs[i] for i in lorder]
    lsk = [lkeys[i] for i in lorder]
    rsorted = [rrecs[i] for i in rorder]
    rsk = [rkeys[i] for i in rorder]
    out = []
    i = j = 0
    nl, nr = len(lsorted), len(rsorted)
    while i < nl and j < nr:
        lk = lsk[i]
        rk = rsk[j]
        if lk < rk:
            i += 1
        elif rk < lk:
            j += 1
        else:
            i_end = i
            while i_end < nl and lsk[i_end] == lk:
                i_end += 1
            j_end = j
            while j_end < nr and rsk[j_end] == rk:
                j_end += 1
            for a in range(i, i_end):
                for b in range(j, j_end):
                    _emit_join_result(fn(lsorted[a], rsorted[b]), flat, out)
            i, j = i_end, j_end
    return out


# ----------------------------------------------------------------------
# aggregations and groupings


def run_hash_aggregate(node, inputs, metrics, batch_size=None, spill=None):
    """Combinable REDUCE via an updateable hash table."""
    records = inputs[0]
    metrics.add_processed(node.name, len(records))
    fn = node.udf
    if spill is not None:
        from repro.storage.hashtable import spilled_hash_aggregate

        return spilled_hash_aggregate(
            spill, node.name,
            _entry_stream(records, node.key_fields[0], batch_size), fn,
        )
    table = {}
    get = table.get
    for chunk, keys in _key_chunks(records, node.key_fields[0], batch_size):
        for k, record in zip(keys, chunk):
            held = get(k)
            table[k] = record if held is None else fn(held, record)
    return list(table.values())


def run_sort_aggregate(node, inputs, metrics, batch_size=None, spill=None,
                       columnar=False):
    """Combinable REDUCE over key-sorted runs; output is key-sorted."""
    records = inputs[0]
    metrics.add_processed(node.name, len(records))
    fn = node.udf
    if spill is not None:
        from repro.storage.external_sort import spilled_sort_aggregate

        return spilled_sort_aggregate(
            spill, node.name,
            _entry_stream(records, node.key_fields[0], batch_size), fn,
        )
    recs, keys = _keyed(records, node.key_fields[0], batch_size)
    order = _sort_permutation(keys, columnar)
    out = []
    current_key = object()
    acc = None
    for index in order:
        k = keys[index]
        record = recs[index]
        if k != current_key:
            if acc is not None:
                out.append(acc)
            current_key, acc = k, record
        else:
            acc = fn(acc, record)
    if acc is not None:
        out.append(acc)
    return out


def run_reduce_group(node, inputs, metrics, batch_size=None, spill=None):
    records = inputs[0]
    metrics.add_processed(node.name, len(records))
    fn = node.udf
    if spill is not None:
        from repro.storage.hashtable import spilled_reduce_group

        return spilled_reduce_group(
            spill, node.name,
            _entry_stream(records, node.key_fields[0], batch_size), fn,
        )
    groups = defaultdict(list)
    for chunk, keys in _key_chunks(records, node.key_fields[0], batch_size):
        for k, record in zip(keys, chunk):
            groups[k].append(record)
    out = []
    for k, group in groups.items():
        out.extend(fn(k, group))
    return out


def run_cogroup(node, inputs, metrics, inner: bool, batch_size=None,
                spill=None):
    left, right = inputs
    metrics.add_processed(node.name, len(left) + len(right))
    fn = node.udf
    if spill is not None:
        from repro.storage.hashtable import spilled_cogroup

        return spilled_cogroup(
            spill, node.name,
            _entry_stream(left, node.key_fields[0], batch_size),
            _entry_stream(right, node.key_fields[1], batch_size),
            fn, inner,
        )
    left_groups = defaultdict(list)
    for chunk, keys in _key_chunks(left, node.key_fields[0], batch_size):
        for k, record in zip(keys, chunk):
            left_groups[k].append(record)
    right_groups = defaultdict(list)
    for chunk, keys in _key_chunks(right, node.key_fields[1], batch_size):
        for k, record in zip(keys, chunk):
            right_groups[k].append(record)
    if inner:
        keys = left_groups.keys() & right_groups.keys()
    else:
        keys = left_groups.keys() | right_groups.keys()
    out = []
    for k in keys:
        out.extend(fn(k, left_groups.get(k, []), right_groups.get(k, [])))
    return out


def run_cross(node, inputs, metrics):
    left, right = inputs
    metrics.add_processed(node.name, len(left) * max(1, len(right)))
    fn = node.udf
    out = []
    for a in left:
        for b in right:
            result = fn(a, b)
            if result is not None:
                out.append(result)
    return out


# ----------------------------------------------------------------------
# combiner (pre-shuffle partial aggregation for combinable REDUCE)


def apply_combiner(node, partitions, metrics, batch_size=None):
    """Partially aggregate each partition before shipping (Sec. 6.1)."""
    fn = node.udf
    combined = []
    for part in partitions:
        table = {}
        get = table.get
        for chunk, keys in _key_chunks(part, node.key_fields[0], batch_size):
            for k, record in zip(keys, chunk):
                held = get(k)
                table[k] = record if held is None else fn(held, record)
        metrics.add_processed(f"{node.name}.combine", len(part))
        combined.append(list(table.values()))
    return combined


# ----------------------------------------------------------------------
# dispatch


def run_driver(node, local_strategy, inputs, metrics, batch_size=None,
               spill=None, columnar=False):
    """Run one operator on one partition's inputs.

    ``batch_size`` frames the keyed drivers' key-vector extraction in
    record-batch chunks (outputs are identical at any setting).

    ``columnar`` engages the vectorized join/sort kernels (see the
    module docstring); outputs, output order, and counters are
    identical in both modes.

    ``spill`` is the session's :class:`~repro.storage.spill.SpillManager`
    when a memory budget is configured; the keyed drivers then route
    through the out-of-core algorithms in :mod:`repro.storage`, which
    produce bit-identical outputs at any budget.

    When an invariant checker is attached to ``metrics``, the output
    record count is audited against the contract's conservation bound
    (Map: one out per in; Filter: never grows; Union: bag sum;
    combinable Reduce: at most one record per input).
    """
    out = _dispatch(node, local_strategy, inputs, metrics, batch_size, spill,
                    columnar)
    checker = metrics.invariants if metrics is not None else None
    if checker is not None:
        checker.check_driver(
            node.name, node.contract, [len(i) for i in inputs], len(out)
        )
    return out


def _dispatch(node, local_strategy, inputs, metrics, batch_size=None,
              spill=None, columnar=False):
    contract = node.contract
    if contract is Contract.MAP:
        return run_map(node, inputs, metrics, columnar=columnar)
    if contract is Contract.FLAT_MAP:
        return run_flat_map(node, inputs, metrics)
    if contract is Contract.FILTER:
        return run_filter(node, inputs, metrics)
    if contract is Contract.UNION:
        return run_union(node, inputs, metrics)
    if contract is Contract.MATCH:
        if local_strategy is LocalStrategy.HASH_BUILD_LEFT:
            return run_hash_join(
                node, inputs, metrics, build_left=True, batch_size=batch_size,
                spill=spill, columnar=columnar,
            )
        if local_strategy is LocalStrategy.HASH_BUILD_RIGHT:
            return run_hash_join(
                node, inputs, metrics, build_left=False, batch_size=batch_size,
                spill=spill, columnar=columnar,
            )
        if local_strategy is LocalStrategy.SORT_MERGE:
            return run_sort_merge_join(
                node, inputs, metrics, batch_size=batch_size, spill=spill,
                columnar=columnar,
            )
        raise InvalidPlanError(f"{node.name}: no join strategy assigned")
    if contract is Contract.REDUCE:
        if local_strategy is LocalStrategy.SORT_AGGREGATE:
            return run_sort_aggregate(
                node, inputs, metrics, batch_size=batch_size, spill=spill,
                columnar=columnar,
            )
        return run_hash_aggregate(
            node, inputs, metrics, batch_size=batch_size, spill=spill
        )
    if contract is Contract.REDUCE_GROUP:
        return run_reduce_group(
            node, inputs, metrics, batch_size=batch_size, spill=spill
        )
    if contract is Contract.COGROUP:
        return run_cogroup(
            node, inputs, metrics, inner=False, batch_size=batch_size,
            spill=spill,
        )
    if contract is Contract.INNER_COGROUP:
        return run_cogroup(
            node, inputs, metrics, inner=True, batch_size=batch_size,
            spill=spill,
        )
    if contract is Contract.CROSS:
        return run_cross(node, inputs, metrics)
    raise InvalidPlanError(f"no driver for contract {contract.value}")
