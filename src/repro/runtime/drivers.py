"""Per-partition physical operator implementations (local strategies).

Each driver consumes the partition-local input record lists of one
operator and produces the partition-local output list.  Drivers are pure
with respect to the partition: all cross-partition movement has already
happened in the shipping channel, exactly as in a shared-nothing engine.

Join and aggregation drivers come in hash- and sort-based flavours; the
optimizer picks between them (Section 4.3), and the sort-based flavours
establish sort order as a physical property downstream operators can
reuse.

Keyed drivers are **batch-at-a-time**: each consumes its input as
:class:`~repro.common.batch.RecordBatch` chunks of ``batch_size``
records and works from the chunk's cached key vector — one extraction
pass per chunk instead of one :class:`KeyExtractor` call per probe,
build insert, or sort comparison.  ``batch_size=None`` processes the
whole partition as one chunk; any value produces identical outputs in
identical order, because chunking only changes how the key vectors are
materialized, never the record order they are consumed in.
"""

from __future__ import annotations

from collections import defaultdict

from repro.common.batch import RecordBatch
from repro.common.errors import InvalidPlanError
from repro.dataflow.contracts import Contract
from repro.runtime.plan import LocalStrategy


def _emit_join_result(result, flat, out):
    if result is None:
        return
    if flat:
        out.extend(result)
    else:
        out.append(result)


def _key_chunks(records, key_fields, batch_size):
    """Yield ``(records, keys)`` pairs, one per batch chunk."""
    if not records:
        return
    for chunk in RecordBatch.wrap(records, key_fields).split(batch_size):
        yield chunk.records, chunk.keys


def _entry_stream(records, key_fields, batch_size):
    """Yield ``(seq, key, record)`` triples for the spilled algorithms.

    ``seq`` is the arrival index within this input — the tag the
    out-of-core algorithms use to reassemble the exact record order the
    in-memory drivers produce.  Extraction is still chunk-wise, so the
    batched data plane's key-vector framing (and its audit) is
    identical on both paths.
    """
    seq = 0
    for chunk, keys in _key_chunks(records, key_fields, batch_size):
        for k, record in zip(keys, chunk):
            yield seq, k, record
            seq += 1


def _keyed(records, key_fields, batch_size):
    """The full ``(records, keys)`` vectors, extracted chunk-wise.

    Sort-based drivers need the whole partition's key vector at once
    (a sort is global); this concatenates the per-chunk vectors so the
    extraction still happens one batch at a time.
    """
    recs: list = []
    keys: list = []
    for chunk_records, chunk_keys in _key_chunks(
        records, key_fields, batch_size
    ):
        recs.extend(chunk_records)
        keys.extend(chunk_keys)
    return recs, keys


# ----------------------------------------------------------------------
# record-at-a-time drivers


def run_map(node, inputs, metrics):
    records = inputs[0]
    metrics.add_processed(node.name, len(records))
    fn = node.udf
    return [fn(record) for record in records]


def run_flat_map(node, inputs, metrics):
    records = inputs[0]
    metrics.add_processed(node.name, len(records))
    fn = node.udf
    out = []
    for record in records:
        out.extend(fn(record))
    return out


def run_filter(node, inputs, metrics):
    records = inputs[0]
    metrics.add_processed(node.name, len(records))
    fn = node.udf
    return [record for record in records if fn(record)]


def run_union(node, inputs, metrics):
    left, right = inputs
    metrics.add_processed(node.name, len(left) + len(right))
    return list(left) + list(right)


# ----------------------------------------------------------------------
# joins


def run_hash_join(node, inputs, metrics, build_left: bool,
                  batch_size=None, spill=None):
    left, right = inputs
    metrics.add_processed(node.name, len(left) + len(right))
    fn = node.udf
    flat = getattr(node, "flat", False)
    out = []
    if build_left:
        build_in, build_fields = left, node.key_fields[0]
        probe_in, probe_fields = right, node.key_fields[1]
    else:
        build_in, build_fields = right, node.key_fields[1]
        probe_in, probe_fields = left, node.key_fields[0]
    if spill is not None:
        from repro.storage.hashtable import spilled_hash_join

        if build_left:
            def emit(build, probe, results):
                _emit_join_result(fn(build, probe), flat, results)
        else:
            def emit(build, probe, results):
                _emit_join_result(fn(probe, build), flat, results)
        return spilled_hash_join(
            spill, node.name,
            _entry_stream(build_in, build_fields, batch_size),
            _entry_stream(probe_in, probe_fields, batch_size),
            emit,
        )
    table = defaultdict(list)
    for records, keys in _key_chunks(build_in, build_fields, batch_size):
        for k, record in zip(keys, records):
            table[k].append(record)
    lookup = table.get
    for records, keys in _key_chunks(probe_in, probe_fields, batch_size):
        if build_left:
            for k, probe in zip(keys, records):
                for build in lookup(k, ()):
                    _emit_join_result(fn(build, probe), flat, out)
        else:
            for k, probe in zip(keys, records):
                for build in lookup(k, ()):
                    _emit_join_result(fn(probe, build), flat, out)
    return out


def run_sort_merge_join(node, inputs, metrics, batch_size=None, spill=None):
    left, right = inputs
    metrics.add_processed(node.name, len(left) + len(right))
    fn = node.udf
    flat = getattr(node, "flat", False)
    if spill is not None:
        from repro.storage.external_sort import spilled_sort_merge_join

        return spilled_sort_merge_join(
            spill, node.name,
            _entry_stream(left, node.key_fields[0], batch_size),
            _entry_stream(right, node.key_fields[1], batch_size),
            fn, flat,
        )
    lrecs, lkeys = _keyed(left, node.key_fields[0], batch_size)
    rrecs, rkeys = _keyed(right, node.key_fields[1], batch_size)
    lorder = sorted(range(len(lrecs)), key=lkeys.__getitem__)
    rorder = sorted(range(len(rrecs)), key=rkeys.__getitem__)
    lsorted = [lrecs[i] for i in lorder]
    lsk = [lkeys[i] for i in lorder]
    rsorted = [rrecs[i] for i in rorder]
    rsk = [rkeys[i] for i in rorder]
    out = []
    i = j = 0
    nl, nr = len(lsorted), len(rsorted)
    while i < nl and j < nr:
        lk = lsk[i]
        rk = rsk[j]
        if lk < rk:
            i += 1
        elif rk < lk:
            j += 1
        else:
            i_end = i
            while i_end < nl and lsk[i_end] == lk:
                i_end += 1
            j_end = j
            while j_end < nr and rsk[j_end] == rk:
                j_end += 1
            for a in range(i, i_end):
                for b in range(j, j_end):
                    _emit_join_result(fn(lsorted[a], rsorted[b]), flat, out)
            i, j = i_end, j_end
    return out


# ----------------------------------------------------------------------
# aggregations and groupings


def run_hash_aggregate(node, inputs, metrics, batch_size=None, spill=None):
    """Combinable REDUCE via an updateable hash table."""
    records = inputs[0]
    metrics.add_processed(node.name, len(records))
    fn = node.udf
    if spill is not None:
        from repro.storage.hashtable import spilled_hash_aggregate

        return spilled_hash_aggregate(
            spill, node.name,
            _entry_stream(records, node.key_fields[0], batch_size), fn,
        )
    table = {}
    get = table.get
    for chunk, keys in _key_chunks(records, node.key_fields[0], batch_size):
        for k, record in zip(keys, chunk):
            held = get(k)
            table[k] = record if held is None else fn(held, record)
    return list(table.values())


def run_sort_aggregate(node, inputs, metrics, batch_size=None, spill=None):
    """Combinable REDUCE over key-sorted runs; output is key-sorted."""
    records = inputs[0]
    metrics.add_processed(node.name, len(records))
    fn = node.udf
    if spill is not None:
        from repro.storage.external_sort import spilled_sort_aggregate

        return spilled_sort_aggregate(
            spill, node.name,
            _entry_stream(records, node.key_fields[0], batch_size), fn,
        )
    recs, keys = _keyed(records, node.key_fields[0], batch_size)
    order = sorted(range(len(recs)), key=keys.__getitem__)
    out = []
    current_key = object()
    acc = None
    for index in order:
        k = keys[index]
        record = recs[index]
        if k != current_key:
            if acc is not None:
                out.append(acc)
            current_key, acc = k, record
        else:
            acc = fn(acc, record)
    if acc is not None:
        out.append(acc)
    return out


def run_reduce_group(node, inputs, metrics, batch_size=None, spill=None):
    records = inputs[0]
    metrics.add_processed(node.name, len(records))
    fn = node.udf
    if spill is not None:
        from repro.storage.hashtable import spilled_reduce_group

        return spilled_reduce_group(
            spill, node.name,
            _entry_stream(records, node.key_fields[0], batch_size), fn,
        )
    groups = defaultdict(list)
    for chunk, keys in _key_chunks(records, node.key_fields[0], batch_size):
        for k, record in zip(keys, chunk):
            groups[k].append(record)
    out = []
    for k, group in groups.items():
        out.extend(fn(k, group))
    return out


def run_cogroup(node, inputs, metrics, inner: bool, batch_size=None,
                spill=None):
    left, right = inputs
    metrics.add_processed(node.name, len(left) + len(right))
    fn = node.udf
    if spill is not None:
        from repro.storage.hashtable import spilled_cogroup

        return spilled_cogroup(
            spill, node.name,
            _entry_stream(left, node.key_fields[0], batch_size),
            _entry_stream(right, node.key_fields[1], batch_size),
            fn, inner,
        )
    left_groups = defaultdict(list)
    for chunk, keys in _key_chunks(left, node.key_fields[0], batch_size):
        for k, record in zip(keys, chunk):
            left_groups[k].append(record)
    right_groups = defaultdict(list)
    for chunk, keys in _key_chunks(right, node.key_fields[1], batch_size):
        for k, record in zip(keys, chunk):
            right_groups[k].append(record)
    if inner:
        keys = left_groups.keys() & right_groups.keys()
    else:
        keys = left_groups.keys() | right_groups.keys()
    out = []
    for k in keys:
        out.extend(fn(k, left_groups.get(k, []), right_groups.get(k, [])))
    return out


def run_cross(node, inputs, metrics):
    left, right = inputs
    metrics.add_processed(node.name, len(left) * max(1, len(right)))
    fn = node.udf
    out = []
    for a in left:
        for b in right:
            result = fn(a, b)
            if result is not None:
                out.append(result)
    return out


# ----------------------------------------------------------------------
# combiner (pre-shuffle partial aggregation for combinable REDUCE)


def apply_combiner(node, partitions, metrics, batch_size=None):
    """Partially aggregate each partition before shipping (Sec. 6.1)."""
    fn = node.udf
    combined = []
    for part in partitions:
        table = {}
        get = table.get
        for chunk, keys in _key_chunks(part, node.key_fields[0], batch_size):
            for k, record in zip(keys, chunk):
                held = get(k)
                table[k] = record if held is None else fn(held, record)
        metrics.add_processed(f"{node.name}.combine", len(part))
        combined.append(list(table.values()))
    return combined


# ----------------------------------------------------------------------
# dispatch


def run_driver(node, local_strategy, inputs, metrics, batch_size=None,
               spill=None):
    """Run one operator on one partition's inputs.

    ``batch_size`` frames the keyed drivers' key-vector extraction in
    record-batch chunks (outputs are identical at any setting).

    ``spill`` is the session's :class:`~repro.storage.spill.SpillManager`
    when a memory budget is configured; the keyed drivers then route
    through the out-of-core algorithms in :mod:`repro.storage`, which
    produce bit-identical outputs at any budget.

    When an invariant checker is attached to ``metrics``, the output
    record count is audited against the contract's conservation bound
    (Map: one out per in; Filter: never grows; Union: bag sum;
    combinable Reduce: at most one record per input).
    """
    out = _dispatch(node, local_strategy, inputs, metrics, batch_size, spill)
    checker = metrics.invariants if metrics is not None else None
    if checker is not None:
        checker.check_driver(
            node.name, node.contract, [len(i) for i in inputs], len(out)
        )
    return out


def _dispatch(node, local_strategy, inputs, metrics, batch_size=None,
              spill=None):
    contract = node.contract
    if contract is Contract.MAP:
        return run_map(node, inputs, metrics)
    if contract is Contract.FLAT_MAP:
        return run_flat_map(node, inputs, metrics)
    if contract is Contract.FILTER:
        return run_filter(node, inputs, metrics)
    if contract is Contract.UNION:
        return run_union(node, inputs, metrics)
    if contract is Contract.MATCH:
        if local_strategy is LocalStrategy.HASH_BUILD_LEFT:
            return run_hash_join(
                node, inputs, metrics, build_left=True, batch_size=batch_size,
                spill=spill,
            )
        if local_strategy is LocalStrategy.HASH_BUILD_RIGHT:
            return run_hash_join(
                node, inputs, metrics, build_left=False, batch_size=batch_size,
                spill=spill,
            )
        if local_strategy is LocalStrategy.SORT_MERGE:
            return run_sort_merge_join(
                node, inputs, metrics, batch_size=batch_size, spill=spill
            )
        raise InvalidPlanError(f"{node.name}: no join strategy assigned")
    if contract is Contract.REDUCE:
        if local_strategy is LocalStrategy.SORT_AGGREGATE:
            return run_sort_aggregate(
                node, inputs, metrics, batch_size=batch_size, spill=spill
            )
        return run_hash_aggregate(
            node, inputs, metrics, batch_size=batch_size, spill=spill
        )
    if contract is Contract.REDUCE_GROUP:
        return run_reduce_group(
            node, inputs, metrics, batch_size=batch_size, spill=spill
        )
    if contract is Contract.COGROUP:
        return run_cogroup(
            node, inputs, metrics, inner=False, batch_size=batch_size,
            spill=spill,
        )
    if contract is Contract.INNER_COGROUP:
        return run_cogroup(
            node, inputs, metrics, inner=True, batch_size=batch_size,
            spill=spill,
        )
    if contract is Contract.CROSS:
        return run_cross(node, inputs, metrics)
    raise InvalidPlanError(f"no driver for contract {contract.value}")
