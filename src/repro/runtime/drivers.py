"""Per-partition physical operator implementations (local strategies).

Each driver consumes the partition-local input record lists of one
operator and produces the partition-local output list.  Drivers are pure
with respect to the partition: all cross-partition movement has already
happened in the shipping channel, exactly as in a shared-nothing engine.

Join and aggregation drivers come in hash- and sort-based flavours; the
optimizer picks between them (Section 4.3), and the sort-based flavours
establish sort order as a physical property downstream operators can
reuse.
"""

from __future__ import annotations

from collections import defaultdict

from repro.common.errors import InvalidPlanError
from repro.common.keys import KeyExtractor
from repro.dataflow.contracts import Contract
from repro.runtime.plan import LocalStrategy


def _emit_join_result(result, flat, out):
    if result is None:
        return
    if flat:
        out.extend(result)
    else:
        out.append(result)


# ----------------------------------------------------------------------
# record-at-a-time drivers


def run_map(node, inputs, metrics):
    records = inputs[0]
    metrics.add_processed(node.name, len(records))
    fn = node.udf
    return [fn(record) for record in records]


def run_flat_map(node, inputs, metrics):
    records = inputs[0]
    metrics.add_processed(node.name, len(records))
    fn = node.udf
    out = []
    for record in records:
        out.extend(fn(record))
    return out


def run_filter(node, inputs, metrics):
    records = inputs[0]
    metrics.add_processed(node.name, len(records))
    fn = node.udf
    return [record for record in records if fn(record)]


def run_union(node, inputs, metrics):
    left, right = inputs
    metrics.add_processed(node.name, len(left) + len(right))
    return list(left) + list(right)


# ----------------------------------------------------------------------
# joins


def run_hash_join(node, inputs, metrics, build_left: bool):
    left, right = inputs
    metrics.add_processed(node.name, len(left) + len(right))
    left_key = KeyExtractor(node.key_fields[0])
    right_key = KeyExtractor(node.key_fields[1])
    fn = node.udf
    flat = getattr(node, "flat", False)
    out = []
    if build_left:
        table = defaultdict(list)
        for record in left:
            table[left_key(record)].append(record)
        for probe in right:
            for build in table.get(right_key(probe), ()):
                _emit_join_result(fn(build, probe), flat, out)
    else:
        table = defaultdict(list)
        for record in right:
            table[right_key(record)].append(record)
        for probe in left:
            for build in table.get(left_key(probe), ()):
                _emit_join_result(fn(probe, build), flat, out)
    return out


def run_sort_merge_join(node, inputs, metrics):
    left, right = inputs
    metrics.add_processed(node.name, len(left) + len(right))
    left_key = KeyExtractor(node.key_fields[0])
    right_key = KeyExtractor(node.key_fields[1])
    fn = node.udf
    flat = getattr(node, "flat", False)
    lsorted = sorted(left, key=left_key)
    rsorted = sorted(right, key=right_key)
    out = []
    i = j = 0
    nl, nr = len(lsorted), len(rsorted)
    while i < nl and j < nr:
        lk = left_key(lsorted[i])
        rk = right_key(rsorted[j])
        if lk < rk:
            i += 1
        elif rk < lk:
            j += 1
        else:
            i_end = i
            while i_end < nl and left_key(lsorted[i_end]) == lk:
                i_end += 1
            j_end = j
            while j_end < nr and right_key(rsorted[j_end]) == rk:
                j_end += 1
            for a in range(i, i_end):
                for b in range(j, j_end):
                    _emit_join_result(fn(lsorted[a], rsorted[b]), flat, out)
            i, j = i_end, j_end
    return out


# ----------------------------------------------------------------------
# aggregations and groupings


def run_hash_aggregate(node, inputs, metrics):
    """Combinable REDUCE via an updateable hash table."""
    records = inputs[0]
    metrics.add_processed(node.name, len(records))
    key = KeyExtractor(node.key_fields[0])
    fn = node.udf
    table = {}
    for record in records:
        k = key(record)
        held = table.get(k)
        table[k] = record if held is None else fn(held, record)
    return list(table.values())


def run_sort_aggregate(node, inputs, metrics):
    """Combinable REDUCE over key-sorted runs; output is key-sorted."""
    records = inputs[0]
    metrics.add_processed(node.name, len(records))
    key = KeyExtractor(node.key_fields[0])
    fn = node.udf
    out = []
    current_key = _SENTINEL = object()
    acc = None
    for record in sorted(records, key=key):
        k = key(record)
        if k != current_key:
            if acc is not None:
                out.append(acc)
            current_key, acc = k, record
        else:
            acc = fn(acc, record)
    if acc is not None:
        out.append(acc)
    return out


def run_reduce_group(node, inputs, metrics):
    records = inputs[0]
    metrics.add_processed(node.name, len(records))
    key = KeyExtractor(node.key_fields[0])
    fn = node.udf
    groups = defaultdict(list)
    for record in records:
        groups[key(record)].append(record)
    out = []
    for k, group in groups.items():
        out.extend(fn(k, group))
    return out


def run_cogroup(node, inputs, metrics, inner: bool):
    left, right = inputs
    metrics.add_processed(node.name, len(left) + len(right))
    left_key = KeyExtractor(node.key_fields[0])
    right_key = KeyExtractor(node.key_fields[1])
    fn = node.udf
    left_groups = defaultdict(list)
    for record in left:
        left_groups[left_key(record)].append(record)
    right_groups = defaultdict(list)
    for record in right:
        right_groups[right_key(record)].append(record)
    if inner:
        keys = left_groups.keys() & right_groups.keys()
    else:
        keys = left_groups.keys() | right_groups.keys()
    out = []
    for k in keys:
        out.extend(fn(k, left_groups.get(k, []), right_groups.get(k, [])))
    return out


def run_cross(node, inputs, metrics):
    left, right = inputs
    metrics.add_processed(node.name, len(left) * max(1, len(right)))
    fn = node.udf
    out = []
    for a in left:
        for b in right:
            result = fn(a, b)
            if result is not None:
                out.append(result)
    return out


# ----------------------------------------------------------------------
# combiner (pre-shuffle partial aggregation for combinable REDUCE)


def apply_combiner(node, partitions, metrics):
    """Partially aggregate each partition before shipping (Sec. 6.1)."""
    key = KeyExtractor(node.key_fields[0])
    fn = node.udf
    combined = []
    for part in partitions:
        table = {}
        for record in part:
            k = key(record)
            held = table.get(k)
            table[k] = record if held is None else fn(held, record)
        metrics.add_processed(f"{node.name}.combine", len(part))
        combined.append(list(table.values()))
    return combined


# ----------------------------------------------------------------------
# dispatch


def run_driver(node, local_strategy, inputs, metrics):
    """Run one operator on one partition's inputs.

    When an invariant checker is attached to ``metrics``, the output
    record count is audited against the contract's conservation bound
    (Map: one out per in; Filter: never grows; Union: bag sum;
    combinable Reduce: at most one record per input).
    """
    out = _dispatch(node, local_strategy, inputs, metrics)
    checker = metrics.invariants if metrics is not None else None
    if checker is not None:
        checker.check_driver(
            node.name, node.contract, [len(i) for i in inputs], len(out)
        )
    return out


def _dispatch(node, local_strategy, inputs, metrics):
    contract = node.contract
    if contract is Contract.MAP:
        return run_map(node, inputs, metrics)
    if contract is Contract.FLAT_MAP:
        return run_flat_map(node, inputs, metrics)
    if contract is Contract.FILTER:
        return run_filter(node, inputs, metrics)
    if contract is Contract.UNION:
        return run_union(node, inputs, metrics)
    if contract is Contract.MATCH:
        if local_strategy is LocalStrategy.HASH_BUILD_LEFT:
            return run_hash_join(node, inputs, metrics, build_left=True)
        if local_strategy is LocalStrategy.HASH_BUILD_RIGHT:
            return run_hash_join(node, inputs, metrics, build_left=False)
        if local_strategy is LocalStrategy.SORT_MERGE:
            return run_sort_merge_join(node, inputs, metrics)
        raise InvalidPlanError(f"{node.name}: no join strategy assigned")
    if contract is Contract.REDUCE:
        if local_strategy is LocalStrategy.SORT_AGGREGATE:
            return run_sort_aggregate(node, inputs, metrics)
        return run_hash_aggregate(node, inputs, metrics)
    if contract is Contract.REDUCE_GROUP:
        return run_reduce_group(node, inputs, metrics)
    if contract is Contract.COGROUP:
        return run_cogroup(node, inputs, metrics, inner=False)
    if contract is Contract.INNER_COGROUP:
        return run_cogroup(node, inputs, metrics, inner=True)
    if contract is Contract.CROSS:
        return run_cross(node, inputs, metrics)
    raise InvalidPlanError(f"no driver for contract {contract.value}")
