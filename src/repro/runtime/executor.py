"""The plan interpreter: runs annotated plans over simulated partitions.

Non-iterative parts execute operator-at-a-time in topological order.
Iterations follow the feedback-channel scheme of Section 4.2: the step
function's subplan is evaluated once per superstep with fresh memoization
for the *dynamic data path*, while the *constant data path* is evaluated
once and its shipped results (and hash-join build tables) are cached at
the point where the constant path meets the dynamic path (Section 4.3).

Delta iterations (Section 5) keep the solution set in a partitioned
primary hash index (:class:`~repro.iterations.solution_set.SolutionSetIndex`).
Three execution modes are supported, mirroring Section 5.3:

* ``superstep`` — batch-incremental: Δ runs as a set-at-a-time dataflow,
  delta records are staged during the superstep and merged at the barrier.
* ``microstep`` — per-element execution with *supersteps*: each workset
  element flows through the compiled record-at-a-time pipeline and updates
  the solution set immediately, but produced workset records are buffered
  for the next superstep (the buffering queues of Figure 6).
* ``async`` — per-element execution without barriers: queues pass records
  through FIFO; termination is detected by acknowledgement counting.
"""

from __future__ import annotations

from collections import deque

from repro.cluster.context import LOCAL
from repro.common.batch import RecordBatch
from repro.common.errors import InvalidPlanError, MicrostepViolation
from repro.common.keys import KeyExtractor
from repro.dataflow.contracts import Contract
from repro.dataflow.graph import dynamic_path_nodes, iteration_body_nodes
from repro.iterations.microstep import analyze_microstep
from repro.iterations.solution_set import SolutionSetIndex
from repro.iterations.termination import AsyncTerminationDetector
from repro.runtime import channels, drivers, fusion
from repro.common.hashing import partition_index
from repro.runtime.plan import (
    BROADCAST,
    FORWARD,
    GATHER,
    LocalStrategy,
    ShipKind,
    partition_on,
)


class _AdaptiveMatchState:
    """Mutable per-iteration state of one adaptively eligible match.

    Created per :class:`~repro.runtime.plan.AdaptiveSpec` when a
    superstep-mode delta iteration starts (and only when
    ``RuntimeConfig.adaptive`` is on).  ``switched`` latches: the switch
    is one-way — once the workset crosses the crossover it does not come
    back, and the hysteresis in :func:`repro.optimizer.adaptive.decide`
    keeps the decision from firing on noise.  ``tables`` holds the
    origin-tagged build tables a broadcast→hash switch silently rebuilds
    (key-partitioned, each entry ``(origin_partition, record)``).
    """

    __slots__ = ("spec", "switched", "tables")

    def __init__(self, spec):
        self.spec = spec
        self.switched = False
        self.tables = None


class _IterationScope:
    """Per-iteration execution state: bindings, caches, path classification."""

    def __init__(self, iteration, bindings, solution_index=None):
        self.iteration = iteration
        self.bindings = bindings
        self.solution_index = solution_index
        self.body_ids = {n.id for n in iteration_body_nodes(iteration)}
        self.dynamic_ids = {n.id for n in dynamic_path_nodes(iteration)}
        self.iter_memo: dict[int, list] = {}
        self.edge_cache: dict = {}
        self.table_cache: dict = {}
        #: {match id: _AdaptiveMatchState} — populated for superstep-mode
        #: delta iterations when RuntimeConfig.adaptive is on
        self.adaptive: dict = {}


class IterationSummary:
    """Recorded outcome of one iteration construct's execution."""

    def __init__(self, name, supersteps, converged):
        self.name = name
        self.supersteps = supersteps
        self.converged = converged

    def __repr__(self):
        state = "converged" if self.converged else "NOT converged"
        return f"<{self.name}: {self.supersteps} supersteps, {state}>"


class Executor:
    """Interprets an :class:`~repro.runtime.plan.ExecutionPlan`."""

    def __init__(self, env):
        from repro.runtime.config import RuntimeConfig

        self.env = env
        self.parallelism = env.parallelism
        self.metrics = env.metrics
        self.tracer = env.metrics.tracer
        #: data-plane framing knobs; every ship, keyed driver, and SPMD
        #: exchange frames its work in batches of this many records
        self.config = getattr(env, "config", None) or RuntimeConfig()
        self.batch_size = self.config.batch_size
        self.max_frame_bytes = self.config.max_frame_bytes
        #: struct-of-arrays mode: vectorized hash scatter / join / sort
        #: kernels and raw column framing on the SPMD fabric.  Purely
        #: physical — results, logical counters, and span trees are
        #: bitwise identical with it on or off
        self.columnar = self.config.columnar
        #: where this executor runs: the local simulator context, or one
        #: SPMD worker's view of its forked peers (multiprocess backend)
        self.cluster = getattr(env, "cluster", None) or LOCAL
        #: out-of-core substrate: a SpillManager when a memory budget is
        #: configured (every keyed driver and the solution set then run
        #: their spillable code paths), else None — no budget, no change
        self.spill = None
        if self.config.memory_budget_bytes:
            from repro.storage.session import StorageSession
            from repro.storage.spill import SpillManager

            session = getattr(env, "storage_session", None)
            if session is None:
                session = StorageSession()
                env.storage_session = session
            if not self.cluster.is_local:
                # each SPMD worker spills under its own subdirectory of
                # the parent session, so parent cleanup sweeps workers
                # that died mid-spill
                session = session.worker_view(self.cluster.rank)
            self.spill = SpillManager(
                self.config.memory_budget_bytes, session,
                metrics=self.metrics,
            )
        self._memo: dict[int, list] = {}
        self.iteration_summaries: list[IterationSummary] = []
        #: live metric registry when telemetry is enabled, else None —
        #: the disabled path is a single attribute test per hook
        self.telemetry = self.metrics.telemetry
        #: step-memo residency after the most recent superstep (sampled
        #: by the telemetry probe: how many dynamic-path nodes held
        #: materialized partitions at the barrier)
        self._superstep_memo_nodes = 0
        if self.telemetry is not None:
            self.telemetry.add_probe(self._telemetry_probe)
            if self.spill is not None:
                self.telemetry.add_probe(self.spill.telemetry_probe)
            endpoint = getattr(self.cluster, "endpoint", None)
            if endpoint is not None:
                endpoint.enable_telemetry(self.telemetry)
                self.telemetry.add_probe(endpoint.telemetry_probe)

    def _telemetry_probe(self) -> dict:
        """Memo-residency gauges, polled at every superstep barrier."""
        return {
            "executor.memo_nodes": len(self._memo),
            "executor.step_memo_nodes": self._superstep_memo_nodes,
        }

    # ------------------------------------------------------------------
    # entry point

    def run(self, exec_plan) -> dict[int, list]:
        """Execute the plan; returns {sink node id: merged record list}."""
        self.plan = exec_plan
        results = {}
        for sink in exec_plan.logical_plan.sinks:
            parts = self._evaluate(sink, self._memo, scope=None)
            results[sink.id] = channels.merge(parts)
        # the run ends at a barrier, so the attribution totals must be
        # consistent: per-superstep counters + out-of-superstep remainder
        # sum to the global collector totals
        self.metrics.verify_invariants()
        return results

    # ------------------------------------------------------------------
    # recursive evaluation

    def _evaluate(self, node, step_memo, scope):
        memo = self._memo_for(node, step_memo, scope)
        cached = memo.get(node.id)
        if cached is not None:
            if memo is step_memo:
                self._note_step_read(node, step_memo, scope)
            return cached
        result = self._compute(node, step_memo, scope)
        memo[node.id] = result
        if memo is step_memo:
            self._note_step_read(node, step_memo, scope)
        return result

    def _memo_for(self, node, step_memo, scope):
        if scope is not None and node.id in scope.body_ids:
            if node.id in scope.dynamic_ids:
                return step_memo
            return scope.iter_memo
        return self._memo

    # ------------------------------------------------------------------
    # superstep-memo eviction
    #
    # The step memo would otherwise keep every dynamic node's full output
    # alive until the superstep barrier.  Each superstep starts with a
    # consumer-refcount per node (how many times the interpreter will
    # read it); the last read evicts the partitions immediately.  The
    # template may only ever *over*count reads (an unread entry is merely
    # retained until the barrier) — an undercount would evict live data
    # and recompute it, inflating logical counters.

    def _note_step_read(self, node, step_memo, scope):
        if scope is None:
            return
        counts = getattr(scope, "step_refcounts", None)
        if counts is None:
            return
        remaining = counts.get(node.id)
        if remaining is None:
            return
        if remaining <= 1:
            del counts[node.id]
            step_memo.pop(node.id, None)
        else:
            counts[node.id] = remaining - 1

    def _step_refcount_template(self, scope):
        cached = getattr(scope, "_refcount_template", None)
        if cached is not None:
            return cached
        counts: dict[int, int] = {}

        def bump(producer):
            # only dynamic body nodes live in the step memo (constant
            # nodes sit in iter_memo across supersteps, outer nodes in
            # the run-wide memo) — nothing else is evictable
            if (producer.id in scope.dynamic_ids
                    and producer.id in scope.body_ids):
                counts[producer.id] = counts.get(producer.id, 0) + 1

        for member in iteration_body_nodes(scope.iteration):
            if member.id in self.plan.fused_ids:
                continue  # never evaluated: fused into a chain interior
            chain = self.plan.chains.get(member.id)
            if chain is not None:
                # a chain tail reads its head's inputs and union taps
                reads = fusion.chain_reads(chain)
            else:
                reads = [
                    p for p in member.inputs
                    if p.contract is not Contract.SOLUTION_SET
                ]
            for producer in reads:
                bump(producer)
        # the executor reads iteration roots by name once per superstep
        iteration = scope.iteration
        if iteration.contract is Contract.BULK_ITERATION:
            bump(iteration.body_output)
            if iteration.termination is not None:
                bump(iteration.termination)
        else:
            bump(iteration.delta_output)
            bump(iteration.workset_output)
        scope._refcount_template = counts
        return counts

    def _compute(self, node, step_memo, scope):
        contract = node.contract
        if contract is Contract.SOURCE:
            return self._load_source(node)
        if node.is_placeholder():
            return self._resolve_placeholder(node, scope)
        chain = self.plan.chains.get(node.id)
        if chain is not None and chain.combine_node is None:
            # the tail of a fused chain: one chain span replaces the
            # operator span (combine chains key on the reduce and run
            # inside its combiner branch instead)
            return fusion.run_fused_chain(self, chain, step_memo, scope)
        # sources and placeholders stay span-free (pure memo/binding
        # lookups); everything else is a traced operator execution
        if self.tracer is None:
            return self._compute_node(node, step_memo, scope)
        span = self.tracer.begin(
            f"operator:{node.name}", category="operator",
            contract=contract.value,
        )
        try:
            return self._compute_node(node, step_memo, scope)
        finally:
            self.tracer.end(span)

    def _compute_node(self, node, step_memo, scope):
        contract = node.contract
        if contract is Contract.SINK:
            inputs = self._shipped_inputs(node, step_memo, scope, default=GATHER)
            return inputs[0]
        if contract is Contract.BULK_ITERATION:
            return self._run_bulk_iteration(node, step_memo, scope)
        if contract is Contract.DELTA_ITERATION:
            return self._run_delta_iteration(node, step_memo, scope)
        if contract is Contract.SOLUTION_JOIN:
            return self._run_solution_join(node, step_memo, scope)
        if contract is Contract.SOLUTION_COGROUP:
            return self._run_solution_cogroup(node, step_memo, scope)
        if contract is Contract.MATCH:
            return self._run_match(node, step_memo, scope)
        return self._run_generic(node, step_memo, scope)

    def _load_source(self, node):
        if node.data is None:
            raise InvalidPlanError(f"source {node.name} has no data")
        return self.cluster.localize(
            channels.round_robin(node.data, self.parallelism)
        )

    def _ship(self, partitions, strategy):
        """Ship through this executor's cluster context."""
        return channels.ship(
            partitions, strategy, self.parallelism, self.metrics,
            cluster=self.cluster, batch_size=self.batch_size,
            max_frame_bytes=self.max_frame_bytes, columnar=self.columnar,
        )

    def _resolve_placeholder(self, node, scope):
        found_scope = scope
        while found_scope is not None and node.id not in found_scope.bindings:
            found_scope = getattr(found_scope, "parent", None)
        if found_scope is None:
            raise InvalidPlanError(
                f"placeholder {node.name} evaluated outside its iteration"
            )
        return found_scope.bindings[node.id]

    # ------------------------------------------------------------------
    # shipping with constant-path edge caching

    def _shipped_inputs(self, node, step_memo, scope, default=FORWARD):
        ann = self.plan.annotation(node)
        pushed = self.plan.pushed_filters.get(node.id)
        shipped = []
        for idx, producer in enumerate(node.inputs):
            if producer.contract is Contract.SOLUTION_SET:
                shipped.append(None)
                continue
            strategy = ann.ship.get(idx, default)
            cacheable = self._edge_is_constant(node, producer, scope)
            cache_key = (node.id, idx)
            if cacheable and cache_key in scope.edge_cache:
                self.metrics.add_cache_hit()
                shipped.append(scope.edge_cache[cache_key])
                continue
            parts = self._evaluate(producer, step_memo, scope)
            if pushed is not None and pushed.side == idx:
                # filter pushdown: drop records the post-join filter
                # would discard anyway, before they pay ship and probe
                # cost.  Silent by design — the filter node still runs
                # post-join (filters are idempotent), so operator spans
                # and logical counters sit where the un-pushed plan has
                # them (see repro.optimizer.pushdown)
                predicate = pushed.filter_node.udf
                parts = [
                    [record for record in part if predicate(record)]
                    for part in parts
                ]
            routed = self._ship(parts, strategy)
            if cacheable:
                scope.edge_cache[cache_key] = routed
                self.metrics.add_cache_build()
            shipped.append(routed)
        return shipped

    def _edge_is_constant(self, consumer, producer, scope) -> bool:
        """True if the producer's data is constant across supersteps while
        the consumer re-executes — the caching point of Section 4.3."""
        return (
            scope is not None
            and consumer.id in scope.dynamic_ids
            and producer.id not in scope.dynamic_ids
            and not producer.is_placeholder()
        )

    # ------------------------------------------------------------------
    # operator execution

    def _run_generic(self, node, step_memo, scope):
        ann = self.plan.annotation(node)
        if ann.combiner and node.contract is Contract.REDUCE:
            # combiners run *before* shipping, so only the pre-aggregated
            # (smaller) data pays network cost (cf. Combiners, Sec. 6.1)
            chain = self.plan.chains.get(node.id)
            if chain is not None:
                # fused upstream spine: the combine pass runs in-stream
                combined = fusion.run_fused_chain(
                    self, chain, step_memo, scope
                )
            else:
                raw = self._evaluate(node.inputs[0], step_memo, scope)
                combined = drivers.apply_combiner(
                    node, raw, self.metrics, batch_size=self.batch_size
                )
            strategy = ann.ship.get(0, FORWARD)
            shipped = [self._ship(combined, strategy)]
        else:
            shipped = self._shipped_inputs(node, step_memo, scope)
        out = []
        for p in range(self.parallelism):
            inputs = [s[p] for s in shipped]
            out.append(drivers.run_driver(
                node, ann.local, inputs, self.metrics,
                batch_size=self.batch_size, spill=self.spill,
                columnar=self.columnar,
            ))
        return out

    def _run_match(self, node, step_memo, scope):
        """Match with optional constant-side build-table caching (Fig. 4)."""
        ann = self.plan.annotation(node)
        build_left = ann.local is LocalStrategy.HASH_BUILD_LEFT
        build_right = ann.local is LocalStrategy.HASH_BUILD_RIGHT
        if not (build_left or build_right) or scope is None:
            return self._run_generic(node, step_memo, scope)
        build_idx = 0 if build_left else 1
        producer = node.inputs[build_idx]
        if not self._edge_is_constant(node, producer, scope):
            return self._run_generic(node, step_memo, scope)

        cached = scope.table_cache.get(node.id)
        if cached is None:
            shipped = self._ship_one_input(node, build_idx, step_memo, scope)
            build_fields = node.key_fields[build_idx]
            tables = []
            sides = []
            for part in shipped:
                table = {}
                for records, keys in drivers._key_chunks(
                    part, build_fields, self.batch_size
                ):
                    for k, record in zip(keys, records):
                        table.setdefault(k, []).append(record)
                tables.append(table)
                # the sorted column rides the cache next to the dict:
                # supersteps re-probe it, paying the stable sort once.
                # The dict stays the fallback for probe chunks whose
                # keys don't vectorize
                sides.append(
                    drivers.ColumnarBuildSide.of(part, build_fields)
                    if self.columnar else None
                )
            scope.table_cache[node.id] = (tables, sides)
            self.metrics.add_cache_build()
            self.metrics.add_processed(node.name, sum(len(p) for p in shipped))
        else:
            tables, sides = cached
            self.metrics.add_cache_hit()

        probe_idx = 1 - build_idx
        adaptive_states = getattr(scope, "adaptive", None)
        state = adaptive_states.get(node.id) if adaptive_states else None
        if state is not None:
            return self._probe_adaptive(
                node, state, tables, sides, build_left, probe_idx,
                step_memo, scope,
            )
        probe_parts = self._ship_one_input(node, probe_idx, step_memo, scope)
        return self._probe_tables(
            node, tables, sides, build_left, probe_parts,
            node.key_fields[probe_idx],
        )

    def _probe_tables(self, node, tables, sides, build_left, probe_parts,
                      probe_fields):
        """The cached-match probe loop over already-shipped probe parts."""
        fn = node.udf
        flat = getattr(node, "flat", False)
        out = []
        for p in range(self.parallelism):
            table = tables[p]
            side = sides[p]
            lookup = table.get
            results = []
            self.metrics.add_processed(node.name, len(probe_parts[p]))
            if not probe_parts[p]:
                out.append(results)
                continue
            wrapped = RecordBatch.wrap(probe_parts[p], probe_fields)
            for chunk in wrapped.split(self.batch_size):
                vector = chunk.key_array() if side is not None else None
                if vector is not None:
                    side.probe(chunk.records, vector, fn, build_left,
                               flat, results)
                    continue
                for k, probe in zip(chunk.keys, chunk.records):
                    for build in lookup(k, ()):
                        if build_left:
                            drivers._emit_join_result(
                                fn(build, probe), flat, results
                            )
                        else:
                            drivers._emit_join_result(
                                fn(probe, build), flat, results
                            )
            out.append(results)
        return out

    # ------------------------------------------------------------------
    # adaptive mid-iteration plan switching (repro.optimizer.adaptive)

    def _adaptive_weights(self):
        """Cost weights for superstep-boundary re-costing.

        Deterministic across SPMD workers: explicit ``env.cost_weights``
        and the config both ship to workers with the environment.
        """
        weights = getattr(self, "_adaptive_weights_cache", None)
        if weights is None:
            weights = getattr(self.env, "cost_weights", None)
            if weights is None:
                from repro.optimizer import _calibrated_weights
                weights = _calibrated_weights(self.env)
            self._adaptive_weights_cache = weights
        return weights

    def _probe_adaptive(self, node, state, tables, sides, build_left,
                        probe_idx, step_memo, scope):
        """Probe phase of an adaptively eligible match.

        Re-costs the probe edge with its measured global cardinality at
        every superstep boundary; past the crossover it switches the
        physical ship strategy while staying observationally identical
        to the static plan — bitwise results, baseline logical counters,
        baseline span structure plus one ``plan_switch`` instant (see
        :mod:`repro.optimizer.adaptive`).
        """
        spec = state.spec
        # the probe edge is dynamic (never edge-cached), so evaluating
        # here instead of through _ship_one_input reads the memo exactly
        # as often as the baseline path does
        parts = self._evaluate(node.inputs[probe_idx], step_memo, scope)
        n_here = sum(len(p) for p in parts)
        n_probe = self.cluster.allreduce_sum(n_here)
        if not state.switched:
            open_step = self.metrics._open_superstep
            superstep = open_step.superstep if open_step is not None else 1
            from repro.optimizer.adaptive import decide
            if decide(spec, n_probe, superstep, self.parallelism,
                      self._adaptive_weights()):
                self._switch_plan(node, state, superstep, scope)
        if not state.switched:
            strategy = self.plan.annotation(node).ship.get(probe_idx, FORWARD)
            probe_parts = self._ship(parts, strategy)
            return self._probe_tables(
                node, tables, sides, build_left, probe_parts,
                node.key_fields[probe_idx],
            )
        if spec.baseline_kind is ShipKind.BROADCAST:
            return self._probe_switched_hash(
                node, state, parts, n_here, n_probe, build_left,
            )
        return self._probe_switched_broadcast(
            node, state, tables, parts, build_left,
        )

    def _switch_plan(self, node, state, superstep, scope):
        """Install the switched strategy (one-way, physical-only)."""
        spec = state.spec
        self.metrics.add_plan_switch(
            node=node.name,
            superstep=superstep,
            baseline=spec.baseline_kind.value,
            switched=spec.switch_kind.value,
        )
        if spec.baseline_kind is ShipKind.BROADCAST:
            # rebuild the constant side's tables at their key owners,
            # origin-tagged, from the cached build edge.  Silent: this
            # is switch overhead, not plan work — no spans, no logical
            # counters (wire bytes are still recorded, they're physical)
            cached = scope.edge_cache.get((node.id, spec.build_index))
            if cached is None:
                raise InvalidPlanError(
                    f"{node.name}: adaptive switch before the constant "
                    "build edge was cached"
                )
            routed = self._silent_rehash(cached, spec.build_key,
                                         tag_origin=True)
            key_of = KeyExtractor(spec.build_key)
            tagged_tables = []
            for part in routed:
                table = {}
                for origin, record in part:
                    table.setdefault(key_of(record), []).append(
                        (origin, record)
                    )
                tagged_tables.append(table)
            state.tables = tagged_tables
        state.switched = True

    def _silent_rehash(self, partitions, key_fields, tag_origin=False):
        """Hash-route records without spans, logical counters, or audits.

        The invisible data movement behind an adaptive switch.  With
        ``tag_origin`` each routed entry is ``(origin_partition,
        record)``; origin-major, position-minor arrival order is
        preserved on both backends (sources are visited in rank order).
        """
        out = [[] for _ in range(self.parallelism)]
        for origin, part in enumerate(partitions):
            if not part:
                continue
            batch = RecordBatch.wrap(list(part), key_fields)
            targets = batch.partition_targets(self.parallelism)
            if tag_origin:
                for target, record in zip(targets, batch.records):
                    out[target].append((origin, record))
            else:
                for target, record in zip(targets, batch.records):
                    out[target].append(record)
        if self.cluster.is_local or self.cluster.size <= 1:
            return out
        received = self.cluster.exchange(
            out, batch_size=self.batch_size,
            max_frame_bytes=self.max_frame_bytes,
        )
        merged = [[] for _ in range(self.parallelism)]
        merged[self.cluster.rank] = [
            record for frame in received for record in frame
        ]
        return merged

    def _probe_switched_hash(self, node, state, parts, n_here, n_probe,
                             build_left):
        """Broadcast→hash switched probe with baseline re-assembly.

        Probe records ship hash-on-key, tagged with their global
        ``(source, position)``; each is probed once at its key's owner
        against the origin-tagged tables, and every emission lands in a
        bucket for the *origin* partition of its build record.  Routing
        the buckets back and stable-sorting by tag reproduces the exact
        partition contents and order of the baseline broadcast probe:
        baseline output at partition q is (probe-global-order)-major /
        (q's build-insertion-order)-minor, and both orders survive the
        detour — probes keep their global order in the tags, and builds
        of one origin keep their relative order inside every owner
        table.  Counters are virtualized against the baseline plan: the
        ship books broadcast local/remote splits, and every owned
        partition books the full replica as processed.
        """
        spec = state.spec
        parallelism = self.parallelism
        tagged = [
            [(src, pos) + tuple(record) for pos, record in enumerate(part)]
            for src, part in enumerate(parts)
        ]
        shifted_key = tuple(f + 2 for f in spec.probe_key)
        routed = channels.ship(
            tagged, partition_on(shifted_key), parallelism, self.metrics,
            cluster=self.cluster, batch_size=self.batch_size,
            max_frame_bytes=self.max_frame_bytes, columnar=False,
            count_as=BROADCAST,
            baseline_split=(n_here, n_here * (parallelism - 1)),
        )
        fn = node.udf
        flat = getattr(node, "flat", False)
        key_of = KeyExtractor(spec.probe_key)
        is_local = self.cluster.is_local
        rank = self.cluster.rank
        buckets = [[] for _ in range(parallelism)]
        for p in range(parallelism):
            if is_local or p == rank:
                # the baseline plan probes the full replica at every
                # partition this worker owns
                self.metrics.add_processed(node.name, n_probe)
            part = routed[p]
            if not part:
                continue
            lookup = state.tables[p].get
            for entry in part:
                tag = (entry[0], entry[1])
                record = entry[2:]
                for origin, build in lookup(key_of(record), ()):
                    result = (fn(build, record) if build_left
                              else fn(record, build))
                    if result is None:
                        continue
                    if flat:
                        for item in result:
                            buckets[origin].append((tag, item))
                    else:
                        buckets[origin].append((tag, result))
        if is_local or self.cluster.size <= 1:
            out = []
            for q in range(parallelism):
                entries = buckets[q]
                entries.sort(key=lambda e: e[0])
                out.append([item for _tag, item in entries])
            return out
        received = self.cluster.exchange(
            buckets, batch_size=self.batch_size,
            max_frame_bytes=self.max_frame_bytes,
        )
        mine = [entry for frame in received for entry in frame]
        mine.sort(key=lambda e: e[0])
        out = [[] for _ in range(parallelism)]
        out[rank] = [item for _tag, item in mine]
        return out

    def _probe_switched_broadcast(self, node, state, tables, parts,
                                  build_left):
        """Hash→broadcast switched probe (``force_at_superstep`` only).

        Sound because eligibility requires key-partitioned build tables:
        a replicated probe record finds matches only at its key's owner
        partition, so per-partition output equals the baseline
        hash-routed probe in content *and* order (broadcast preserves
        the global source-major record order the hash ship would deliver
        owners a subsequence of).  Counters are virtualized against the
        baseline hash plan: per-record local/remote splits and owned
        counts are computed from the records' key owners before the
        physical broadcast.
        """
        spec = state.spec
        parallelism = self.parallelism
        owned_counts = [0] * parallelism
        baseline_local = 0
        for src, part in enumerate(parts):
            if not part:
                continue
            targets = RecordBatch.wrap(
                list(part), spec.probe_key
            ).partition_targets(parallelism)
            for target in targets:
                owned_counts[target] += 1
                if target == src:
                    baseline_local += 1
        total = sum(owned_counts)
        routed = channels.ship(
            parts, BROADCAST, parallelism, self.metrics,
            cluster=self.cluster, batch_size=self.batch_size,
            max_frame_bytes=self.max_frame_bytes, columnar=False,
            count_as=partition_on(spec.probe_key),
            baseline_split=(baseline_local, total - baseline_local),
        )
        if not self.cluster.is_local:
            # every worker broadcast its own records; the baseline
            # processed count at this worker's partition is the number
            # of records — across all workers — whose key it owns
            # (element-wise allreduce of the target-count vectors)
            rank = self.cluster.rank
            vectors = self.cluster.allgather(owned_counts)
            globally_owned = sum(vector[rank] for vector in vectors)
            owned_counts = [0] * parallelism
            owned_counts[rank] = globally_owned
        fn = node.udf
        flat = getattr(node, "flat", False)
        key_of = KeyExtractor(spec.probe_key)
        out = []
        for p in range(parallelism):
            self.metrics.add_processed(node.name, owned_counts[p])
            results = []
            lookup = tables[p].get
            for record in routed[p]:
                for build in lookup(key_of(record), ()):
                    if build_left:
                        drivers._emit_join_result(
                            fn(build, record), flat, results
                        )
                    else:
                        drivers._emit_join_result(
                            fn(record, build), flat, results
                        )
            out.append(results)
        return out

    def _ship_one_input(self, node, idx, step_memo, scope, default=FORWARD):
        ann = self.plan.annotation(node)
        strategy = ann.ship.get(idx, default)
        producer = node.inputs[idx]
        cacheable = self._edge_is_constant(node, producer, scope)
        cache_key = (node.id, idx)
        if cacheable and cache_key in scope.edge_cache:
            self.metrics.add_cache_hit()
            return scope.edge_cache[cache_key]
        parts = self._evaluate(producer, step_memo, scope)
        routed = self._ship(parts, strategy)
        if cacheable:
            scope.edge_cache[cache_key] = routed
            self.metrics.add_cache_build()
        return routed

    # ------------------------------------------------------------------
    # stateful solution-set operators (Section 5.3)

    def _solution_scope(self, node, scope):
        iteration = getattr(node, "enclosing_iteration", None)
        found = scope
        while found is not None and (
            found.solution_index is None or found.iteration is not iteration
        ):
            found = getattr(found, "parent", None)
        if found is None:
            raise InvalidPlanError(
                f"{node.name}: solution set accessed outside its iteration"
            )
        return found

    def _run_solution_join(self, node, step_memo, scope):
        owner = self._solution_scope(node, scope)
        index = owner.solution_index
        probe_parts = self._ship_one_input(
            node, 0, step_memo, scope,
            default=partition_on(node.key_fields[0]),
        )
        probe_key = KeyExtractor(node.key_fields[0])
        fn = node.udf
        flat = getattr(node, "flat", False)
        out = []
        for p in range(self.parallelism):
            results = []
            self.metrics.add_processed(node.name, len(probe_parts[p]))
            for probe in probe_parts[p]:
                stored = index.lookup(p, probe_key(probe))
                if stored is None:
                    continue
                drivers._emit_join_result(fn(probe, stored), flat, results)
            out.append(results)
        return out

    def _run_solution_cogroup(self, node, step_memo, scope):
        owner = self._solution_scope(node, scope)
        index = owner.solution_index
        probe_parts = self._ship_one_input(
            node, 0, step_memo, scope,
            default=partition_on(node.key_fields[0]),
        )
        probe_key = KeyExtractor(node.key_fields[0])
        fn = node.udf
        inner = getattr(node, "inner", True)
        out = []
        for p in range(self.parallelism):
            groups: dict = {}
            for record in probe_parts[p]:
                groups.setdefault(probe_key(record), []).append(record)
            self.metrics.add_processed(node.name, len(probe_parts[p]))
            results = []
            for key_value, group in groups.items():
                stored = index.lookup(p, key_value)
                if stored is None:
                    if inner:
                        continue  # InnerCoGroup semantics (Fig. 5)
                    results.extend(fn(key_value, group, []))
                else:
                    results.extend(fn(key_value, group, [stored]))
            out.append(results)
        return out

    # ------------------------------------------------------------------
    # recovery wiring (Section 4.2)

    def _recovery_hooks(self):
        """(checkpoint store or None, failure injector or None) per env."""
        from repro.runtime.recovery import CheckpointStore

        store = None
        interval = getattr(self.env, "checkpoint_interval", 0)
        if interval:
            part_store = None
            if self.spill is not None:
                from repro.storage.partstore import PartStore

                # parts live inside the spill session, so checkpoint
                # files share the session's cleanup guarantees
                part_store = PartStore(
                    self.spill.session.subdir("checkpoints")
                )
            store = CheckpointStore(interval, part_store=part_store)
            self.env.last_checkpoint_store = store
        injector = getattr(self.env, "failure_injector", None)
        return store, injector

    # ------------------------------------------------------------------
    # bulk iterations (Section 4)

    def _run_bulk_iteration(self, node, outer_memo, outer_scope):
        from repro.runtime.recovery import SimulatedFailure

        current = self._evaluate(node.inputs[0], outer_memo, outer_scope)
        scope = _IterationScope(node, bindings={node.placeholder.id: current})
        scope.parent = outer_scope

        store, injector = self._recovery_hooks()

        converged = False
        steps = 0
        step = 1
        while step <= node.max_iterations:
            if store is not None and store.due(step):
                store.take(step, current, None)
            steps = max(steps, step)
            self.metrics.begin_superstep(step)
            try:
                if injector is not None:
                    injector(step)
                step_memo = {}
                scope.step_refcounts = dict(
                    self._step_refcount_template(scope)
                )
                new_parts = self._evaluate(node.body_output, step_memo, scope)
                stop = False
                if node.termination is not None:
                    term_parts = self._evaluate(
                        node.termination, step_memo, scope
                    )
                    # barrier vote: the criterion's global record count
                    stop = self.cluster.allreduce_sum(
                        sum(len(p) for p in term_parts)
                    ) == 0
                    if self.tracer is not None:
                        self.tracer.instant(
                            "iteration:termination", category="iteration",
                            stop=stop,
                        )
                elif node.convergence_check is not None:
                    stop = node.convergence_check(
                        self.cluster.merge_global(current),
                        self.cluster.merge_global(new_parts),
                    )
                    if self.tracer is not None:
                        self.tracer.instant(
                            "iteration:convergence", category="iteration",
                            stop=stop,
                        )
            except SimulatedFailure as failure:
                self.metrics.end_superstep()
                if store is None:
                    raise RuntimeError(
                        "machine failure without checkpointing enabled"
                    ) from failure
                checkpoint = store.restore(failure.superstep)
                current = checkpoint.state
                scope.bindings[node.placeholder.id] = current
                step = checkpoint.superstep
                continue
            if self.telemetry is not None:
                self._superstep_memo_nodes = len(step_memo)
            self.metrics.end_superstep(
                delta_size=sum(len(p) for p in new_parts)
            )
            current = new_parts
            scope.bindings[node.placeholder.id] = current
            step += 1
            if stop:
                converged = True
                break
        fixed_trip_count = (
            node.termination is None and node.convergence_check is None
        )
        self.iteration_summaries.append(
            IterationSummary(node.name, steps, converged or fixed_trip_count)
        )
        return current

    # ------------------------------------------------------------------
    # delta iterations (Section 5)

    def _run_delta_iteration(self, node, outer_memo, outer_scope):
        mode = self.plan.iteration_modes.get(node.id) or self._resolve_mode(node)
        sol_parts = self._evaluate(node.inputs[0], outer_memo, outer_scope)
        # route the initial solution set into its index partitioning
        routed = self._ship(sol_parts, partition_on(node.solution_key))
        if self.spill is not None:
            from repro.iterations.solution_set import (
                DiskBackedSolutionSetIndex,
            )

            index = DiskBackedSolutionSetIndex.build(
                routed, node.solution_key, self.parallelism,
                metrics=self.metrics, should_replace=node.should_replace,
                batch_size=self.batch_size, columnar=self.columnar,
                manager=self.spill,
            )
        else:
            index = SolutionSetIndex.build(
                routed, node.solution_key, self.parallelism,
                metrics=self.metrics, should_replace=node.should_replace,
                batch_size=self.batch_size, columnar=self.columnar,
            )
        workset = self._evaluate(node.inputs[1], outer_memo, outer_scope)
        scope = _IterationScope(
            node,
            bindings={node.workset_placeholder.id: workset},
            solution_index=index,
        )
        scope.parent = outer_scope
        if mode == "superstep" and self.config.adaptive:
            scope.adaptive = {
                nid: _AdaptiveMatchState(spec)
                for nid, spec in self.plan.adaptive.items()
                if spec.iteration_id == node.id
            }
        if mode == "superstep":
            converged, steps = self._delta_supersteps(node, scope, index)
        else:
            converged, steps = self._delta_microsteps(
                node, scope, index, synchronous=(mode == "microstep")
            )
        self.iteration_summaries.append(
            IterationSummary(node.name, steps, converged)
        )
        return index.to_partitions()

    def _resolve_mode(self, node) -> str:
        mode = node.mode
        if mode == "auto":
            report = analyze_microstep(node)
            return "microstep" if report.eligible else "superstep"
        if mode in ("microstep", "async"):
            analyze_microstep(node).raise_if_ineligible()
        return mode

    def _delta_supersteps(self, node, scope, index):
        from repro.runtime.recovery import SimulatedFailure

        store, injector = self._recovery_hooks()

        converged = False
        steps = 0
        step = 1
        while step <= node.max_iterations:
            workset = scope.bindings[node.workset_placeholder.id]
            # barrier vote (Section 5.3): global workset size
            workset_size = self.cluster.allreduce_sum(
                sum(len(p) for p in workset)
            )
            if self.tracer is not None:
                self.tracer.instant(
                    "iteration:workset-vote", category="iteration",
                    size=workset_size,
                )
            if workset_size == 0:
                converged = True
                break
            if store is not None and store.due(step):
                store.take(step, index._partitions, workset)
            steps = max(steps, step)
            self.metrics.begin_superstep(step)
            try:
                if injector is not None:
                    injector(step)
                next_workset, applied = self._delta_one_superstep(
                    node, scope, index
                )
            except SimulatedFailure as failure:
                # recovery (Section 4.2): restore the latest logged
                # superstep and replay from there
                self.metrics.end_superstep()
                if store is None:
                    raise RuntimeError(
                        "machine failure without checkpointing enabled"
                    ) from failure
                checkpoint = store.restore(failure.superstep)
                index._partitions = checkpoint.state
                scope.bindings[node.workset_placeholder.id] = (
                    checkpoint.workset
                )
                step = checkpoint.superstep
                continue
            next_size = sum(len(p) for p in next_workset)
            self.metrics.end_superstep(
                workset_size=next_size, delta_size=applied
            )
            scope.bindings[node.workset_placeholder.id] = next_workset
            step += 1
        else:
            converged = self.cluster.allreduce_sum(sum(
                len(p) for p in scope.bindings[node.workset_placeholder.id]
            )) == 0
        return converged, steps

    def _delta_one_superstep(self, node, scope, index):
        """Evaluate Δ once: returns (next workset, applied delta count)."""
        step_memo = {}
        scope.step_refcounts = dict(self._step_refcount_template(scope))
        delta_parts = self._evaluate(node.delta_output, step_memo, scope)
        # Stage the delta: route by solution key, resolve collisions
        # with the comparator, but do not mutate S until the barrier.
        routed = self._ship(delta_parts, partition_on(node.solution_key))
        staged, accepted_parts = self._stage_delta(node, index, routed)
        # The next workset observes only the records that will make it
        # into S (Section 5.1: dropped records are discarded from D).
        step_memo[node.delta_output.id] = accepted_parts
        next_workset = self._evaluate(node.workset_output, step_memo, scope)
        applied = self._commit_delta(index, staged)
        if self.telemetry is not None:
            self._superstep_memo_nodes = len(step_memo)
        return next_workset, applied

    def _stage_delta(self, node, index, routed_parts):
        """Resolve ∪̇ winners per partition without touching S yet."""
        staged = []
        accepted_parts = []
        for p, part in enumerate(routed_parts):
            winners: dict = {}
            for records, keys in drivers._key_chunks(
                part, node.solution_key, self.batch_size
            ):
                for k, record in zip(keys, records):
                    incumbent = winners.get(k)
                    if incumbent is None:
                        incumbent = index.lookup(p, k)
                    if (
                        incumbent is not None
                        and node.should_replace is not None
                        and not node.should_replace(record, incumbent)
                    ):
                        continue
                    winners[k] = record
            staged.append(winners)
            accepted_parts.append(list(winners.values()))
        return staged, accepted_parts

    def _commit_delta(self, index, staged) -> int:
        checker = self.metrics.invariants
        size_before = len(index) if checker is not None else 0
        applied = 0
        replaced = 0
        for p, winners in enumerate(staged):
            part = index._partitions[p]
            for k, record in winners.items():
                if checker is not None and k in part:
                    replaced += 1
                part[k] = record
                applied += 1
        if applied:
            self.metrics.add_solution_update(applied)
        if checker is not None:
            checker.check_delta_application(
                "commit_delta", size_before, len(index),
                accepted=applied, replaced=replaced,
            )
        return applied

    # ------------------------------------------------------------------
    # microstep execution (Section 5.2, Figure 6)

    def _delta_microsteps(self, node, scope, index, synchronous):
        report = analyze_microstep(node).raise_if_ineligible()
        if self.tracer is not None:
            self.tracer.instant(
                "microstep:analysis", category="iteration",
                **report.span_attributes(),
            )
        # chain compilation ships the constant sides (Match/Cross build
        # tables) — under SPMD every worker runs these collectives in
        # lockstep before any queue exists
        to_delta = _compile_chain(self, node, scope, report.chain_to_delta)
        to_workset = _compile_chain(self, node, scope, report.chain_to_workset)
        route_fields = report.workset_route_fields or node.solution_key
        route_key = KeyExtractor(route_fields)

        if not self.cluster.is_local and self.cluster.size > 1:
            if synchronous:
                return self._spmd_micro_supersteps(
                    node, scope, index, route_key, route_fields,
                    to_delta, to_workset,
                )
            return self._spmd_micro_async(
                node, scope, index, route_key, to_delta, to_workset
            )

        queues = [deque() for _ in range(self.parallelism)]
        detector = AsyncTerminationDetector(self.parallelism)

        def enqueue(record, source_partition):
            target = partition_index(route_key(record), self.parallelism)
            queues[target].append(record)
            detector.sent()
            if target == source_partition:
                self.metrics.add_shipped(local=1, remote=0)
            else:
                self.metrics.add_shipped(local=0, remote=1)

        # seed the queues batch-at-a-time: one hash vector per chunk,
        # same queue contents and counter totals as per-record enqueue
        initial = scope.bindings[node.workset_placeholder.id]
        for p, part in enumerate(initial):
            if not part:
                continue
            for chunk in RecordBatch.wrap(part, route_fields).split(
                self.batch_size
            ):
                targets = chunk.partition_targets(
                    self.parallelism, columnar_mode=self.columnar
                )
                for target, record in zip(targets, chunk.records):
                    queues[target].append(record)
                detector.sent(len(targets))
                here = targets.count(p)
                self.metrics.add_shipped(
                    local=here, remote=len(targets) - here
                )

        if synchronous:
            return self._micro_supersteps(node, index, queues, route_key,
                                          to_delta, to_workset)
        return self._micro_async(node, index, queues, detector,
                                 to_delta, to_workset, enqueue)

    def _drain_queue(self, queue, partition, index, to_delta, to_workset,
                     emit, limit=None):
        """Process up to ``limit`` elements of one partition's queue.

        This is the microstep hot loop; per-element work is kept to the
        compiled pipeline stages and the immediate ∪̇ point update.
        Returns the number of elements processed.
        """
        processed = 0
        apply_record = index.apply_record
        popleft = queue.popleft
        if len(to_delta) == 1 and len(to_workset) == 1:
            # fast path for the common shape (one update operator, one
            # workset operator — e.g. the CC/SSSP Match plans)
            delta_stage = to_delta[0]
            workset_stage = to_workset[0]
            while queue and (limit is None or processed < limit):
                record = popleft()
                processed += 1
                for delta_record in delta_stage(partition, record):
                    accepted = apply_record(delta_record)
                    if accepted is None:
                        continue
                    for produced in workset_stage(partition, accepted):
                        emit(produced, partition)
            return processed
        while queue and (limit is None or processed < limit):
            record = popleft()
            processed += 1
            deltas = _run_chain(to_delta, partition, [record])
            for delta_record in deltas:
                accepted = apply_record(delta_record)
                if accepted is None:
                    continue
                for produced in _run_chain(to_workset, partition, [accepted]):
                    emit(produced, partition)
        return processed

    def _micro_supersteps(self, node, index, queues, route_key,
                          to_delta, to_workset):
        """Per-element processing with superstep-buffered queues (Fig. 6).

        Supports the same checkpoint/recovery protocol as the batch
        modes: a snapshot logs the solution-set partitions plus the
        buffered queues, and a failure replays from the latest log.
        """
        from repro.runtime.recovery import SimulatedFailure

        store, injector = self._recovery_hooks()

        steps = 0
        label = f"{node.name}.microstep"
        parallelism = self.parallelism
        step = 1
        while step <= node.max_iterations:
            pending = sum(len(q) for q in queues)
            if pending == 0:
                return True, steps
            if store is not None and store.due(step):
                store.take(step, index._partitions,
                           [list(q) for q in queues])
            steps = max(steps, step)
            self.metrics.begin_superstep(step)
            buffers = [[] for _ in range(parallelism)]
            shipped = [0, 0]  # local, remote

            def emit(record, source):
                target = partition_index(route_key(record), parallelism)
                buffers[target].append(record)
                shipped[target != source] += 1

            updates_before = self.metrics.solution_updates
            try:
                if injector is not None:
                    injector(step)
                for p in range(parallelism):
                    count = self._drain_queue(
                        queues[p], p, index, to_delta, to_workset, emit
                    )
                    self.metrics.add_processed(label, count)
            except SimulatedFailure as failure:
                self.metrics.end_superstep()
                if store is None:
                    raise RuntimeError(
                        "machine failure without checkpointing enabled"
                    ) from failure
                checkpoint = store.restore(failure.superstep)
                index._partitions = checkpoint.state
                for p in range(parallelism):
                    queues[p].clear()
                    queues[p].extend(checkpoint.workset[p])
                step = checkpoint.superstep
                continue
            self.metrics.add_shipped(local=shipped[0], remote=shipped[1])
            next_size = sum(len(b) for b in buffers)
            self.metrics.end_superstep(
                workset_size=next_size,
                delta_size=self.metrics.solution_updates - updates_before,
            )
            for p in range(parallelism):
                queues[p].extend(buffers[p])
            step += 1
        return sum(len(q) for q in queues) == 0, steps

    def _micro_async(self, node, index, queues, detector,
                     to_delta, to_workset, enqueue):
        """Fully asynchronous FIFO execution with termination detection.

        Partitions are polled round-robin, each draining a bounded batch
        per poll — an interleaving that a real asynchronous cluster could
        produce.  Rounds are recorded as pseudo-supersteps for reporting.

        Checkpoints snapshot the solution-set partitions plus the queues
        *and* the termination detector's counters — restoring the queues
        without the matching sent/acked state would deadlock or
        terminate early.
        """
        from repro.runtime.recovery import SimulatedFailure

        store, injector = self._recovery_hooks()

        batch = self.config.async_poll_batch
        rounds = 0
        label = f"{node.name}.microstep"
        max_rounds = node.max_iterations * max(
            1, (sum(len(q) for q in queues) or 1)
        )
        while not detector.terminated:
            rounds += 1
            if rounds > max_rounds:
                break
            if store is not None and store.due(rounds):
                store.take(
                    rounds, index._partitions,
                    ([list(q) for q in queues], detector.snapshot_state()),
                )
            self.metrics.begin_superstep(rounds)
            updates_before = self.metrics.solution_updates
            try:
                if injector is not None:
                    injector(rounds)
                for p in range(self.parallelism):
                    queue = queues[p]
                    detector.set_idle(p, False)
                    taken = self._drain_queue(
                        queue, p, index, to_delta, to_workset, enqueue,
                        limit=batch,
                    )
                    self.metrics.add_processed(label, taken)
                    detector.acked(taken)
                    detector.set_idle(p, len(queue) == 0)
            except SimulatedFailure as failure:
                self.metrics.end_superstep()
                if store is None:
                    raise RuntimeError(
                        "machine failure without checkpointing enabled"
                    ) from failure
                checkpoint = store.restore(failure.superstep)
                index._partitions = checkpoint.state
                saved_queues, detector_state = checkpoint.workset
                for p in range(self.parallelism):
                    queues[p].clear()
                    queues[p].extend(saved_queues[p])
                detector.restore_state(detector_state)
                rounds = checkpoint.superstep - 1
                continue
            self.metrics.end_superstep(
                workset_size=sum(len(q) for q in queues),
                delta_size=self.metrics.solution_updates - updates_before,
            )
        return detector.terminated, rounds

    # ------------------------------------------------------------------
    # SPMD microstep execution (multiprocess backend)

    def _spmd_micro_supersteps(self, node, scope, index, route_key,
                               route_fields, to_delta, to_workset):
        """One worker's side of microstep-with-supersteps execution.

        The worker owns one buffering queue; produced records are framed
        by their routing key and exchanged at the superstep barrier.
        Concatenating received frames in source-rank order reproduces the
        simulator's queue contents record for record.
        """
        from repro.runtime.recovery import SimulatedFailure

        cluster = self.cluster
        rank = cluster.rank
        parallelism = self.parallelism
        label = f"{node.name}.microstep"

        store, injector = self._recovery_hooks()

        # seeding: route the localized initial workset through one
        # exchange so the queue starts in source-ascending order — own
        # records travel through the worker's own frame slot, exactly
        # where the simulator's partition scan would place them
        initial = scope.bindings[node.workset_placeholder.id]
        frames = [[] for _ in range(parallelism)]
        seed_local = seed_remote = 0
        if initial[rank]:
            for chunk in RecordBatch.wrap(initial[rank], route_fields).split(
                self.batch_size
            ):
                targets = chunk.partition_targets(
                    parallelism, columnar_mode=self.columnar
                )
                for target, record in zip(targets, chunk.records):
                    frames[target].append(record)
                here = targets.count(rank)
                seed_local += here
                seed_remote += len(targets) - here
        queue = deque()
        bytes_before = cluster.bytes_sent
        for frame in cluster.exchange(
            frames, batch_size=self.batch_size,
            max_frame_bytes=self.max_frame_bytes,
            columnar=self.columnar, key_fields=route_fields,
        ):
            queue.extend(frame)
        self.metrics.add_bytes_shipped(cluster.bytes_sent - bytes_before)
        self.metrics.add_shipped(local=seed_local, remote=seed_remote)

        steps = 0
        step = 1
        while step <= node.max_iterations:
            pending = cluster.allreduce_sum(len(queue))
            if pending == 0:
                return True, steps
            if store is not None and store.due(step):
                store.take(step, index._partitions, list(queue))
            steps = max(steps, step)
            self.metrics.begin_superstep(step)
            buffers = [[] for _ in range(parallelism)]
            shipped = [0, 0]  # local, remote

            def emit(record, source):
                target = partition_index(route_key(record), parallelism)
                buffers[target].append(record)
                shipped[target != source] += 1

            updates_before = self.metrics.solution_updates
            try:
                # the injector fires in every worker at the same
                # superstep, before any communication — all workers take
                # the restore path together, no straggler blocks a
                # collective
                if injector is not None:
                    injector(step)
                count = self._drain_queue(
                    queue, rank, index, to_delta, to_workset, emit
                )
                self.metrics.add_processed(label, count)
            except SimulatedFailure as failure:
                self.metrics.end_superstep()
                if store is None:
                    raise RuntimeError(
                        "machine failure without checkpointing enabled"
                    ) from failure
                checkpoint = store.restore(failure.superstep)
                index._partitions = checkpoint.state
                queue.clear()
                queue.extend(checkpoint.workset)
                step = checkpoint.superstep
                continue
            self.metrics.add_shipped(local=shipped[0], remote=shipped[1])
            bytes_before = cluster.bytes_sent
            for frame in cluster.exchange(
                buffers, batch_size=self.batch_size,
                max_frame_bytes=self.max_frame_bytes,
                columnar=self.columnar, key_fields=route_fields,
            ):
                queue.extend(frame)
            self.metrics.add_bytes_shipped(cluster.bytes_sent - bytes_before)
            self.metrics.end_superstep(
                workset_size=sum(len(b) for b in buffers),
                delta_size=self.metrics.solution_updates - updates_before,
            )
            step += 1
        return cluster.allreduce_sum(len(queue)) == 0, steps

    def _spmd_micro_async(self, node, scope, index, route_key,
                          to_delta, to_workset):
        """One worker's side of asynchronous execution: a token ring.

        Workers take turns in rank order; the circulating token carries
        the in-flight records (tagged with the round they were emitted
        in), the termination detector's counters, and the round number.
        Exactly one worker is active at a time, so the execution is a
        deterministic serialization of the asynchronous protocol — and a
        record-for-record replay of the simulator's round-robin polling:
        a record emitted by worker ``s`` in round ``k`` reaches worker
        ``r`` within round ``k`` iff ``s < r``, which is precisely when
        the simulator's partition scan would have made it visible.

        Each worker's round-``k`` superstep stays open until its round-
        ``k+1`` turn: only then have the late (higher-rank) round-``k``
        emissions arrived, so only then is the end-of-round queue length
        known.  The stop token closes the last open supersteps.
        """
        cluster = self.cluster
        rank = cluster.rank
        size = cluster.size
        parallelism = self.parallelism
        label = f"{node.name}.microstep"
        batch = self.config.async_poll_batch

        if getattr(self.env, "checkpoint_interval", 0) or \
                getattr(self.env, "failure_injector", None) is not None:
            raise InvalidPlanError(
                "checkpoint/failure injection is not supported for "
                "async delta iterations on the multiprocess backend — "
                "use mode='superstep' or 'microstep', or the simulated "
                "backend"
            )

        detector = AsyncTerminationDetector(parallelism)
        queue = deque()
        open_round = None
        last_updates = 0

        def ring_send(target, token):
            """Pass the token on, attributing its wire bytes here."""
            bytes_before = cluster.bytes_sent
            cluster.send_to(target, token, tag="ring")
            self.metrics.add_bytes_shipped(cluster.bytes_sent - bytes_before)

        def take_mine(pending, max_seq):
            """Pop records destined to this rank with seq <= max_seq,
            preserving the token's chronological order."""
            mine, rest = [], []
            for entry in pending:
                if entry[2] == rank and entry[0] <= max_seq:
                    mine.append(entry[3])
                else:
                    rest.append(entry)
            pending[:] = rest
            return mine

        def my_turn(token, round_number):
            """Stage A: settle the previous round; stage B: run this one."""
            nonlocal open_round, last_updates
            pending = token["pending"]
            # stage A — ingest last round's late emissions, then close
            # the superstep they belong to at its true queue length
            queue.extend(take_mine(pending, round_number - 1))
            if open_round is not None:
                self.metrics.end_superstep(
                    workset_size=len(queue), delta_size=last_updates
                )
                open_round = None
            # stage B — ingest this round's earlier emissions and drain
            queue.extend(take_mine(pending, round_number))
            detector.restore_state(token["detector"])
            self.metrics.begin_superstep(round_number)
            open_round = round_number
            detector.set_idle(rank, False)
            shipped = [0, 0]  # local, remote

            def emit(record, source):
                target = partition_index(route_key(record), parallelism)
                detector.sent()
                shipped[target != source] += 1
                if target == rank:
                    queue.append(record)
                else:
                    pending.append((round_number, rank, target, record))

            updates_before = self.metrics.solution_updates
            taken = self._drain_queue(
                queue, rank, index, to_delta, to_workset, emit, limit=batch
            )
            self.metrics.add_processed(label, taken)
            self.metrics.add_shipped(local=shipped[0], remote=shipped[1])
            detector.acked(taken)
            detector.set_idle(rank, len(queue) == 0)
            last_updates = self.metrics.solution_updates - updates_before
            token["detector"] = detector.snapshot_state()

        def seed_turn(token):
            """Ingest earlier ranks' seeds, then route the local ones."""
            pending = token["pending"]
            queue.extend(take_mine(pending, 0))
            detector.restore_state(token["detector"])
            shipped = [0, 0]
            for record in scope.bindings[node.workset_placeholder.id][rank]:
                target = partition_index(route_key(record), parallelism)
                detector.sent()
                shipped[target != rank] += 1
                if target == rank:
                    queue.append(record)
                else:
                    pending.append((0, rank, target, record))
            self.metrics.add_shipped(local=shipped[0], remote=shipped[1])
            token["detector"] = detector.snapshot_state()

        def stop_turn(token):
            """Drain remaining deliveries and close the open superstep."""
            queue.extend(take_mine(token["pending"], token["round"]))
            if open_round is not None:
                self.metrics.end_superstep(
                    workset_size=len(queue), delta_size=last_updates
                )

        next_rank = (rank + 1) % size
        prev_rank = (rank - 1) % size
        if rank == 0:
            token = {"phase": "seed", "pending": [],
                     "detector": detector.snapshot_state()}
            seed_turn(token)
            ring_send(next_rank, token)
            token = cluster.recv_from(prev_rank, tag="ring")
            detector.restore_state(token["detector"])
            # mirrors the simulator's cap on detector-starved runs
            max_rounds = node.max_iterations * max(1, detector._sent or 1)
            rounds = 0
            while True:
                if detector.terminated:
                    terminated = True
                    break
                rounds += 1
                if rounds > max_rounds:
                    terminated = False
                    break
                token["phase"] = "round"
                token["round"] = rounds
                my_turn(token, rounds)
                ring_send(next_rank, token)
                token = cluster.recv_from(prev_rank, tag="ring")
                detector.restore_state(token["detector"])
            token["phase"] = "stop"
            token["round"] = rounds
            token["terminated"] = terminated
            stop_turn(token)
            ring_send(next_rank, token)
            cluster.recv_from(prev_rank, tag="ring")
            return terminated, rounds
        while True:
            token = cluster.recv_from(prev_rank, tag="ring")
            phase = token["phase"]
            if phase == "seed":
                seed_turn(token)
            elif phase == "round":
                my_turn(token, token["round"])
            else:  # stop
                stop_turn(token)
                terminated = token["terminated"]
                rounds = token["round"]
                ring_send(next_rank, token)
                return terminated, rounds
            ring_send(next_rank, token)


# ----------------------------------------------------------------------
# microstep pipeline compilation


def _compile_chain(executor, iteration, scope, chain):
    """Compile a record-at-a-time operator chain into per-record stages.

    Constant-side inputs of binary operators (e.g. the topology table N)
    are shipped once per their plan annotation and materialized as
    per-partition hash tables (Match) or record lists (Cross).
    """
    stages = []
    chain_ids = {op.id for op in chain}
    for op in chain:
        stages.append(_compile_stage(executor, iteration, scope, op, chain_ids))
    return stages


def _compile_stage(executor, iteration, scope, op, chain_ids):
    contract = op.contract
    metrics = executor.metrics
    if contract is Contract.MAP:
        fn = op.udf
        return lambda p, rec: (fn(rec),)
    if contract is Contract.FLAT_MAP:
        fn = op.udf
        return lambda p, rec: tuple(fn(rec))
    if contract is Contract.FILTER:
        fn = op.udf
        return lambda p, rec: (rec,) if fn(rec) else ()
    if contract is Contract.SOLUTION_JOIN:
        index = scope.solution_index
        probe_key = KeyExtractor(op.key_fields[0])
        fn = op.udf
        flat = getattr(op, "flat", False)

        def solution_stage(p, rec):
            stored = index.lookup(p, probe_key(rec))
            if stored is None:
                return ()
            result = fn(rec, stored)
            if result is None:
                return ()
            return tuple(result) if flat else (result,)

        return solution_stage
    if contract is Contract.MATCH:
        return _compile_match_stage(executor, scope, op, chain_ids)
    if contract is Contract.CROSS:
        return _compile_cross_stage(executor, scope, op, chain_ids)
    raise MicrostepViolation(
        f"{op.name}: contract {contract.value} cannot run as a microstep stage"
    )


def _dynamic_input_of(scope, op) -> int:
    """The input slot carrying the per-record (dynamic-path) stream.

    Placeholders and all dynamic-path nodes — including the delta output,
    which seeds the workset chain — qualify; the other side is constant.
    """
    first = op.inputs[0]
    if first.is_placeholder() or first.id in scope.dynamic_ids:
        return 0
    return 1


def _compile_match_stage(executor, scope, op, chain_ids):
    dyn_idx = _dynamic_input_of(scope, op)
    const_idx = 1 - dyn_idx
    shipped = executor._ship_one_input(op, const_idx, scope.iter_memo, scope)
    tables = []
    for part in shipped:
        table: dict = {}
        for records, keys in drivers._key_chunks(
            part, op.key_fields[const_idx], executor.batch_size
        ):
            for k, record in zip(keys, records):
                table.setdefault(k, []).append(record)
        tables.append(table)
    dyn_key = KeyExtractor(op.key_fields[dyn_idx])
    fn = op.udf
    flat = getattr(op, "flat", False)

    def match_stage(p, rec):
        out = []
        for other in tables[p].get(dyn_key(rec), ()):
            pair = (other, rec) if const_idx == 0 else (rec, other)
            result = fn(*pair)
            if result is None:
                continue
            if flat:
                out.extend(result)
            else:
                out.append(result)
        return out

    return match_stage


def _compile_cross_stage(executor, scope, op, chain_ids):
    dyn_idx = _dynamic_input_of(scope, op)
    const_idx = 1 - dyn_idx
    shipped = executor._ship_one_input(op, const_idx, scope.iter_memo, scope)
    fn = op.udf

    def cross_stage(p, rec):
        out = []
        for other in shipped[p]:
            pair = (other, rec) if const_idx == 0 else (rec, other)
            result = fn(*pair)
            if result is not None:
                out.append(result)
        return out

    return cross_stage


def _run_chain(stages, partition, records):
    current = records
    for stage in stages:
        produced = []
        for record in current:
            produced.extend(stage(partition, record))
        current = produced
        if not current:
            break
    return current
