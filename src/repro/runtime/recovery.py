"""Failure injection and superstep checkpointing (Section 4.2).

Iterative dataflows can log intermediate results for recovery like
non-iterative ones, with one twist: a fresh log version per logged
superstep.  This module provides that log plus a failure injector, so
the recovery path is exercisable in tests and benchmarks:

* :class:`CheckpointStore` snapshots an iteration's state (partial
  solution / solution set + workset) every ``interval`` supersteps.
* :class:`FailureInjector` raises :class:`SimulatedFailure` at a chosen
  superstep, once.
* The executor catches the failure, restores the latest snapshot, and
  replays from there; the metrics record how many supersteps were
  re-executed.

Enable via ``env.checkpoint_interval`` and ``env.failure_injector``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field


class SimulatedFailure(Exception):
    """An injected machine failure during a superstep."""

    def __init__(self, superstep: int):
        self.superstep = superstep
        super().__init__(f"simulated failure in superstep {superstep}")


class FailureInjector:
    """Raises once when the iteration reaches ``fail_at_superstep``."""

    def __init__(self, fail_at_superstep: int):
        self.fail_at_superstep = fail_at_superstep
        self.fired = False

    def __call__(self, superstep: int):
        if not self.fired and superstep == self.fail_at_superstep:
            self.fired = True
            raise SimulatedFailure(superstep)


@dataclass
class Checkpoint:
    superstep: int
    state: object
    workset: object


@dataclass
class CheckpointStore:
    """Keeps the latest snapshot; ``interval=k`` logs every k supersteps."""

    interval: int
    latest: Checkpoint | None = None
    snapshots_taken: int = 0
    recoveries: int = 0
    supersteps_replayed: int = 0

    def due(self, superstep: int) -> bool:
        return self.interval > 0 and (superstep - 1) % self.interval == 0

    def take(self, superstep: int, state, workset):
        self.latest = Checkpoint(
            superstep=superstep,
            state=copy.deepcopy(state),
            workset=copy.deepcopy(workset),
        )
        self.snapshots_taken += 1

    def restore(self, failed_superstep: int) -> Checkpoint:
        if self.latest is None:
            raise RuntimeError(
                "failure before the first checkpoint; cannot recover"
            )
        self.recoveries += 1
        self.supersteps_replayed += failed_superstep - self.latest.superstep
        return Checkpoint(
            superstep=self.latest.superstep,
            state=copy.deepcopy(self.latest.state),
            workset=copy.deepcopy(self.latest.workset),
        )
