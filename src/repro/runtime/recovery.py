"""Failure injection and superstep checkpointing (Section 4.2).

Iterative dataflows can log intermediate results for recovery like
non-iterative ones, with one twist: a fresh log version per logged
superstep.  This module provides that log plus a failure injector, so
the recovery path is exercisable in tests and benchmarks:

* :class:`CheckpointStore` snapshots an iteration's state (partial
  solution / solution set + workset) every ``interval`` supersteps.
* :class:`FailureInjector` raises :class:`SimulatedFailure` at a chosen
  superstep, once.
* The executor catches the failure, restores the latest snapshot, and
  replays from there; the metrics record how many supersteps were
  re-executed.

Snapshots are pickle round-trips, not in-memory ``deepcopy``: a real
recovery log serializes to stable storage, so taking a checkpoint here
pays the serialization cost (``checkpoint_bytes``/``total_bytes`` track
it) and guarantees the checkpointed state is actually picklable — the
same property the multiprocess backend needs of every record.

Enable via ``env.checkpoint_interval`` and ``env.failure_injector``.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field


class SimulatedFailure(Exception):
    """An injected machine failure during a superstep."""

    def __init__(self, superstep: int):
        self.superstep = superstep
        super().__init__(f"simulated failure in superstep {superstep}")


class FailureInjector:
    """Raises once when the iteration reaches ``fail_at_superstep``."""

    def __init__(self, fail_at_superstep: int):
        self.fail_at_superstep = fail_at_superstep
        self.fired = False

    def __call__(self, superstep: int):
        if not self.fired and superstep == self.fail_at_superstep:
            self.fired = True
            raise SimulatedFailure(superstep)


@dataclass
class Checkpoint:
    superstep: int
    state: object
    workset: object


def _classify_partition(part):
    """(kind tag, records) for one checkpointed state partition.

    The tag tells ``restore`` what shape to rebuild: a solution-set
    hash partition (``dict``), its disk-backed twin (``diskdict``), or
    a plain partial-solution / queue record list (``list``).
    """
    if isinstance(part, dict):
        return "dict", list(part.items())
    if hasattr(part, "items"):
        return "diskdict", list(part.items())
    return "list", list(part)


def _rebuild_partition(kind: str, records):
    if kind == "dict":
        return dict(records)
    if kind == "diskdict":
        from repro.storage.diskdict import _restore

        return _restore(records)
    return records


@dataclass
class CheckpointStore:
    """Keeps the latest snapshot; ``interval=k`` logs every k supersteps.

    The snapshot is held as a pickled blob: ``take`` serializes, and
    every ``restore`` (and every read of :attr:`latest`) deserializes a
    fresh, independent copy — exactly the isolation a log on stable
    storage provides.

    With a :class:`~repro.storage.partstore.PartStore` attached, state
    partitions are logged as kind-tagged *parts* instead of riding in
    the blob: the store's content-hash dedup means consecutive
    checkpoints rewrite only the partitions that actually changed
    (incremental checkpointing), and ``checkpoint_bytes`` counts only
    the newly written bytes.  The workset is small and always changing,
    so it stays in the pickled blob.
    """

    interval: int
    part_store: object = None
    snapshots_taken: int = 0
    recoveries: int = 0
    supersteps_replayed: int = 0
    #: serialized size of the latest snapshot / all snapshots taken
    checkpoint_bytes: int = 0
    total_bytes: int = 0
    _blob: bytes | None = field(default=None, repr=False)
    _state_parts: list | None = field(default=None, repr=False)
    _superstep: int = 0

    def due(self, superstep: int) -> bool:
        return self.interval > 0 and (superstep - 1) % self.interval == 0

    def take(self, superstep: int, state, workset):
        state_parts = None
        part_bytes = 0
        if self.part_store is not None and isinstance(state, list):
            state_parts = []
            for part in state:
                kind, records = _classify_partition(part)
                written_before = self.part_store.parts_written
                part_id = self.part_store.put_part(records)
                if self.part_store.parts_written > written_before:
                    part_bytes += self.part_store.part_stats(part_id)["bytes"]
                state_parts.append((kind, part_id))
            payload = (None, workset)
        else:
            payload = (state, workset)
        try:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise TypeError(
                f"checkpoint of superstep {superstep} is not "
                f"serializable: {exc} — iteration state must be "
                "picklable to be recoverable"
            ) from exc
        self._blob = blob
        self._state_parts = state_parts
        self._superstep = superstep
        self.checkpoint_bytes = len(blob) + part_bytes
        self.total_bytes += len(blob) + part_bytes
        self.snapshots_taken += 1

    def _materialize(self):
        state, workset = pickle.loads(self._blob)
        if self._state_parts is not None:
            state = [
                _rebuild_partition(kind, self.part_store.load_part(part_id))
                for kind, part_id in self._state_parts
            ]
        return state, workset

    @property
    def latest(self) -> Checkpoint | None:
        if self._blob is None:
            return None
        state, workset = self._materialize()
        return Checkpoint(
            superstep=self._superstep, state=state, workset=workset
        )

    def restore(self, failed_superstep: int) -> Checkpoint:
        if self._blob is None:
            raise RuntimeError(
                "failure before the first checkpoint; cannot recover"
            )
        self.recoveries += 1
        self.supersteps_replayed += failed_superstep - self._superstep
        state, workset = self._materialize()
        return Checkpoint(
            superstep=self._superstep, state=state, workset=workset
        )
