"""Failure injection and superstep checkpointing (Section 4.2).

Iterative dataflows can log intermediate results for recovery like
non-iterative ones, with one twist: a fresh log version per logged
superstep.  This module provides that log plus a failure injector, so
the recovery path is exercisable in tests and benchmarks:

* :class:`CheckpointStore` snapshots an iteration's state (partial
  solution / solution set + workset) every ``interval`` supersteps.
* :class:`FailureInjector` raises :class:`SimulatedFailure` at a chosen
  superstep, once.
* The executor catches the failure, restores the latest snapshot, and
  replays from there; the metrics record how many supersteps were
  re-executed.

Snapshots are pickle round-trips, not in-memory ``deepcopy``: a real
recovery log serializes to stable storage, so taking a checkpoint here
pays the serialization cost (``checkpoint_bytes``/``total_bytes`` track
it) and guarantees the checkpointed state is actually picklable — the
same property the multiprocess backend needs of every record.

Enable via ``env.checkpoint_interval`` and ``env.failure_injector``.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field


class SimulatedFailure(Exception):
    """An injected machine failure during a superstep."""

    def __init__(self, superstep: int):
        self.superstep = superstep
        super().__init__(f"simulated failure in superstep {superstep}")


class FailureInjector:
    """Raises once when the iteration reaches ``fail_at_superstep``."""

    def __init__(self, fail_at_superstep: int):
        self.fail_at_superstep = fail_at_superstep
        self.fired = False

    def __call__(self, superstep: int):
        if not self.fired and superstep == self.fail_at_superstep:
            self.fired = True
            raise SimulatedFailure(superstep)


@dataclass
class Checkpoint:
    superstep: int
    state: object
    workset: object


@dataclass
class CheckpointStore:
    """Keeps the latest snapshot; ``interval=k`` logs every k supersteps.

    The snapshot is held as a pickled blob: ``take`` serializes, and
    every ``restore`` (and every read of :attr:`latest`) deserializes a
    fresh, independent copy — exactly the isolation a log on stable
    storage provides.
    """

    interval: int
    snapshots_taken: int = 0
    recoveries: int = 0
    supersteps_replayed: int = 0
    #: serialized size of the latest snapshot / all snapshots taken
    checkpoint_bytes: int = 0
    total_bytes: int = 0
    _blob: bytes | None = field(default=None, repr=False)
    _superstep: int = 0

    def due(self, superstep: int) -> bool:
        return self.interval > 0 and (superstep - 1) % self.interval == 0

    def take(self, superstep: int, state, workset):
        try:
            blob = pickle.dumps(
                (state, workset), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception as exc:
            raise TypeError(
                f"checkpoint of superstep {superstep} is not "
                f"serializable: {exc} — iteration state must be "
                "picklable to be recoverable"
            ) from exc
        self._blob = blob
        self._superstep = superstep
        self.checkpoint_bytes = len(blob)
        self.total_bytes += len(blob)
        self.snapshots_taken += 1

    @property
    def latest(self) -> Checkpoint | None:
        if self._blob is None:
            return None
        state, workset = pickle.loads(self._blob)
        return Checkpoint(
            superstep=self._superstep, state=state, workset=workset
        )

    def restore(self, failed_superstep: int) -> Checkpoint:
        if self._blob is None:
            raise RuntimeError(
                "failure before the first checkpoint; cannot recover"
            )
        self.recoveries += 1
        self.supersteps_replayed += failed_superstep - self._superstep
        state, workset = pickle.loads(self._blob)
        return Checkpoint(
            superstep=self._superstep, state=state, workset=workset
        )
