"""Debug-mode invariant checking for the runtime's logical counters.

The paper's comparisons (Figures 2, 7-12) are carried in this
reproduction by *deterministic logical counters* — records shipped
locally/remotely, solution-set accesses and updates, workset sizes.  An
accounting bug silently corrupts every figure, so this module turns the
counters from trusted-by-convention into machine-checked: an
:class:`InvariantChecker` attached to a
:class:`~repro.runtime.metrics.MetricsCollector` (via
``RuntimeConfig(check_invariants=True)``; on by default under pytest)
audits every channel ship, driver call, superstep barrier, and
solution-set delta application against its conservation law, raising
:class:`~repro.common.errors.InvariantViolation` at the first breach.

Enforced laws:

* **Channel conservation** — records out of a ship equal records in
  (times ``parallelism`` for broadcast); ``local + remote`` shipped
  equals the input size; the local/remote split matches an independent
  per-record recomputation; hash-shipped records land on
  ``partition_index(key)``; gather leaves partitions 1.. empty; forward
  keeps every partition's size.
* **Partition-count contract** — datasets at rest always hold exactly
  ``parallelism`` partitions; a ship whose input disagrees is rejected
  (this is the contract that makes ``target == source_index`` a valid
  locality test in the hash channel).
* **Driver conservation** — Map emits exactly one record per input,
  Filter never grows its input, Union emits the sum of its inputs,
  combinable Reduce never emits more records than it consumed.
* **Superstep balance** — ``begin_superstep``/``end_superstep`` calls
  alternate strictly; an unbalanced call raises instead of silently
  corrupting the per-iteration log.
* **Solution-set accounting** — every point lookup probes the partition
  that owns the key; a delta application changes ``|S|`` by exactly
  accepted-minus-replaced records and counts one solution access per
  probed delta record.
* **Spill conservation** — every out-of-core partition or sort pass
  ends with ``resident + spilled == routed``: a record crossing the
  memory budget lands in memory or on disk exactly once
  (``check_spill``).
* **Attribution totals** — the per-superstep counters in
  ``iteration_log`` plus the out-of-superstep remainder sum exactly to
  the global collector totals (``verify_totals``).
* **Trace reconciliation** — when a tracer is attached, span trees are
  well-nested (no span left open at a quiescent point) and the counter
  deltas sampled inside each superstep span equal the counters the
  barrier logged into ``iteration_log`` (``check_trace``).

The checker recomputes expectations independently of the code under
audit (e.g. the hash channel's locality split is re-derived per record
from the key extractor), so re-introducing a known accounting bug — the
``apply_record`` probe undercount, the ``_ship_hash`` locality mislabel —
trips a check rather than skewing a benchmark.
"""

from __future__ import annotations

from repro.common.errors import InvariantViolation
from repro.common.hashing import partition_index
from repro.common.keys import KeyExtractor
from repro.dataflow.contracts import Contract
from repro.runtime.plan import ShipKind

#: counters subject to attribution auditing, keyed by the shadow name
ATTRIBUTED_COUNTERS = (
    "shipped_local",
    "shipped_remote",
    "processed",
    "solution_accesses",
    "solution_updates",
    "bytes_shipped",
    "batches_shipped",
    "cache_hits",
    "cache_builds",
    "records_spilled",
    "bytes_spilled",
    "columns_zero_copied",
    "bytes_zero_copied",
)

#: (span counter key, IterationStats field) pairs the trace law
#: reconciles between a superstep span and its logged stats
_TRACE_RECONCILED = (
    ("records_processed", "records_processed"),
    ("records_shipped_local", "records_shipped_local"),
    ("records_shipped_remote", "records_shipped_remote"),
    ("solution_accesses", "solution_accesses"),
    ("solution_updates", "solution_updates"),
    ("bytes_shipped", "bytes_shipped"),
    ("batches_shipped", "batches_shipped"),
    ("cache_hits", "cache_hits"),
    ("cache_builds", "cache_builds"),
    ("records_spilled", "records_spilled"),
    ("bytes_spilled", "bytes_spilled"),
    ("columns_zero_copied", "columns_zero_copied"),
    ("bytes_zero_copied", "bytes_zero_copied"),
    ("workset_size", "workset_size"),
    ("delta_size", "delta_size"),
)


class InvariantChecker:
    """Audit layer enforcing the counter conservation laws.

    Attach one checker per :class:`MetricsCollector` (the collector calls
    back into it from every counter hook); the runtime layers then invoke
    the ``check_*`` methods with enough context to recompute each law
    independently.  All methods raise
    :class:`~repro.common.errors.InvariantViolation` on the first breach.
    """

    def __init__(self):
        #: counter amounts attributed to an open superstep vs outside one,
        #: mirrored independently of the collector's own bookkeeping
        self._inside = dict.fromkeys(ATTRIBUTED_COUNTERS, 0)
        self._outside = dict.fromkeys(ATTRIBUTED_COUNTERS, 0)
        self._superstep_open = False
        #: how many ship audits ran (lets tests assert coverage)
        self.ship_checks = 0
        self.driver_checks = 0
        self.delta_checks = 0
        self.trace_checks = 0
        self.batch_checks = 0
        self.spill_checks = 0

    def reset(self):
        self._inside = dict.fromkeys(ATTRIBUTED_COUNTERS, 0)
        self._outside = dict.fromkeys(ATTRIBUTED_COUNTERS, 0)
        self._superstep_open = False

    @staticmethod
    def _fail(message: str):
        raise InvariantViolation(message)

    # ------------------------------------------------------------------
    # collector callbacks (shadow attribution + superstep balance)

    def on_counter(self, name: str, amount: int, in_superstep: bool):
        """Mirror one counter increment for the attribution audit."""
        if amount < 0:
            self._fail(f"counter {name} incremented by negative {amount}")
        if in_superstep:
            self._inside[name] += amount
        else:
            self._outside[name] += amount

    def on_begin_superstep(self, superstep: int):
        if self._superstep_open:
            self._fail(
                f"begin_superstep({superstep}) while a superstep is still "
                "open — barriers must alternate begin/end"
            )
        self._superstep_open = True

    def on_end_superstep(self):
        if not self._superstep_open:
            self._fail("end_superstep without a matching begin_superstep")
        self._superstep_open = False

    # ------------------------------------------------------------------
    # channel audit

    def check_ship(self, strategy, in_parts, out_parts, parallelism,
                   local, remote):
        """Audit one completed ship against its conservation law.

        ``local``/``remote`` are the counts the channel *claimed* (and
        added to the collector); the expected split is recomputed here
        per record, independently of the channel's own logic.
        """
        self.ship_checks += 1
        kind = strategy.kind
        n_in = sum(len(p) for p in in_parts)
        n_out = sum(len(p) for p in out_parts)
        if len(in_parts) != parallelism:
            self._fail(
                f"{kind.value} ship consumed {len(in_parts)} partitions on a "
                f"{parallelism}-way cluster — datasets at rest must hold "
                "exactly one partition per worker"
            )
        if len(out_parts) != parallelism:
            self._fail(
                f"{kind.value} ship produced {len(out_parts)} partitions, "
                f"expected {parallelism}"
            )

        if kind is ShipKind.FORWARD:
            expected_out = n_in
            expected_local, expected_remote = n_in, 0
            for p, (src, dst) in enumerate(zip(in_parts, out_parts)):
                if len(src) != len(dst):
                    self._fail(
                        f"forward ship changed partition {p} from "
                        f"{len(src)} to {len(dst)} records"
                    )
        elif kind is ShipKind.PARTITION_HASH:
            expected_out = n_in
            extract = KeyExtractor(strategy.key_fields)
            expected_local = 0
            for p, part in enumerate(in_parts):
                for record in part:
                    if partition_index(extract(record), parallelism) == p:
                        expected_local += 1
            expected_remote = n_in - expected_local
            for p, part in enumerate(out_parts):
                for record in part:
                    owner = partition_index(extract(record), parallelism)
                    if owner != p:
                        self._fail(
                            f"hash ship placed record {record!r} on "
                            f"partition {p}, but its key owns partition "
                            f"{owner}"
                        )
        elif kind is ShipKind.BROADCAST:
            expected_out = n_in * parallelism
            expected_local = n_in
            expected_remote = n_in * (parallelism - 1)
            for p, part in enumerate(out_parts):
                if len(part) != n_in:
                    self._fail(
                        f"broadcast gave partition {p} {len(part)} records, "
                        f"expected all {n_in}"
                    )
        elif kind is ShipKind.GATHER:
            expected_out = n_in
            expected_local = len(in_parts[0]) if in_parts else 0
            expected_remote = n_in - expected_local
            for p, part in enumerate(out_parts[1:], start=1):
                if part:
                    self._fail(
                        f"gather left {len(part)} records on partition {p}"
                    )
        else:  # pragma: no cover - new kinds must add a law here
            self._fail(f"no conservation law registered for ship kind {kind}")

        if n_out != expected_out:
            self._fail(
                f"{kind.value} ship consumed {n_in} records but emitted "
                f"{n_out} (expected {expected_out}) — records were "
                "lost or fabricated in transit"
            )
        if local + remote != expected_local + expected_remote:
            self._fail(
                f"{kind.value} ship counted local={local} + remote={remote} "
                f"= {local + remote} shipped records for an input of "
                f"{expected_local + expected_remote}"
            )
        if local != expected_local or remote != expected_remote:
            self._fail(
                f"{kind.value} ship labelled local={local}, remote={remote}; "
                f"per-record recomputation gives local={expected_local}, "
                f"remote={expected_remote} — locality accounting is wrong"
            )

    def check_exchange(self, strategy, local_in, frames, received,
                       parallelism, rank, local, remote):
        """Audit one SPMD ship from a single worker's perspective.

        The global conservation law of :meth:`check_ship` needs every
        partition's contents, which no SPMD worker has; this is the
        per-worker projection of the same law, checked *without* an
        extra collective: the outgoing frames must partition the local
        input (placement recomputed per record), the claimed local/
        remote split must match an independent recomputation, and every
        received record must be owned by this rank.
        """
        self.ship_checks += 1
        kind = strategy.kind
        n_in = len(local_in)
        n_framed = sum(len(frame) for frame in frames)
        if kind is ShipKind.PARTITION_HASH:
            extract = KeyExtractor(strategy.key_fields)
            expected_local = sum(
                1 for record in local_in
                if partition_index(extract(record), parallelism) == rank
            )
            expected_remote = n_in - expected_local
            if n_framed != n_in:
                self._fail(
                    f"hash exchange framed {n_framed} records for an "
                    f"input of {n_in} — records were lost or fabricated "
                    "before transport"
                )
            for target, frame in enumerate(frames):
                for record in frame:
                    owner = partition_index(extract(record), parallelism)
                    if owner != target:
                        self._fail(
                            f"hash exchange framed record {record!r} for "
                            f"worker {target}, but its key owns worker "
                            f"{owner}"
                        )
            for record in received:
                if partition_index(extract(record), parallelism) != rank:
                    self._fail(
                        f"worker {rank} received record {record!r} whose "
                        "key it does not own — a peer misrouted a frame"
                    )
        elif kind is ShipKind.BROADCAST:
            expected_local = n_in
            expected_remote = n_in * (parallelism - 1)
            for target, frame in enumerate(frames):
                if len(frame) != n_in:
                    self._fail(
                        f"broadcast exchange framed {len(frame)} records "
                        f"for worker {target}, expected all {n_in}"
                    )
        elif kind is ShipKind.GATHER:
            expected_local = n_in if rank == 0 else 0
            expected_remote = 0 if rank == 0 else n_in
            if len(frames[0]) != n_in or n_framed != n_in:
                self._fail(
                    f"gather exchange framed {n_framed} records "
                    f"({len(frames[0])} for worker 0) for an input of "
                    f"{n_in}"
                )
            if rank != 0 and received:
                self._fail(
                    f"worker {rank} received {len(received)} gathered "
                    "records — gather must land everything on worker 0"
                )
        else:  # pragma: no cover - new kinds must add a law here
            self._fail(f"no exchange law registered for ship kind {kind}")
        if local != expected_local or remote != expected_remote:
            self._fail(
                f"{kind.value} exchange labelled local={local}, "
                f"remote={remote}; per-record recomputation gives "
                f"local={expected_local}, remote={expected_remote} — "
                "locality accounting is wrong"
            )

    # ------------------------------------------------------------------
    # batch audit

    def check_batch(self, batch):
        """A batch's cached key/hash vectors match per-record recomputation.

        The batched data plane routes through
        :class:`~repro.common.batch.RecordBatch` vectors computed in one
        pass; this law re-derives both vectors record by record with the
        plain :class:`KeyExtractor`/:func:`stable_hash` machinery —
        independent of the batch's own caching — so a stale or misaligned
        vector (e.g. a mutated batch) trips a check instead of silently
        misrouting records.
        """
        from repro.common.hashing import stable_hash

        self.batch_checks += 1
        if batch.key_fields is None:
            self._fail("audited batch carries no key fields")
        extract = KeyExtractor(batch.key_fields)
        expected_keys = [extract(record) for record in batch.records]
        if batch.keys != expected_keys:
            self._fail(
                f"batch key vector diverges from per-record extraction "
                f"on fields {batch.key_fields} — the cached vector is "
                "stale or misaligned"
            )
        expected_hashes = [stable_hash(k) for k in expected_keys]
        if batch.hashes != expected_hashes:
            self._fail(
                "batch hash vector diverges from per-record stable_hash "
                "recomputation — the cached vector is stale or misaligned"
            )

    # ------------------------------------------------------------------
    # driver audit

    def check_driver(self, name, contract, input_sizes, output_size):
        """Record-count bounds for per-partition driver calls."""
        self.driver_checks += 1
        n_in = sum(input_sizes)
        if contract is Contract.MAP and output_size != n_in:
            self._fail(
                f"Map driver {name} emitted {output_size} records for "
                f"{n_in} inputs — Map is one-in/one-out"
            )
        elif contract is Contract.FILTER and output_size > n_in:
            self._fail(
                f"Filter driver {name} emitted {output_size} records for "
                f"{n_in} inputs — Filter cannot grow its input"
            )
        elif contract is Contract.UNION and output_size != n_in:
            self._fail(
                f"Union driver {name} emitted {output_size} records for "
                f"{n_in} inputs — Union is bag union"
            )
        elif contract is Contract.REDUCE and output_size > n_in:
            self._fail(
                f"Reduce driver {name} emitted {output_size} records for "
                f"{n_in} inputs — combinable Reduce emits at most one "
                "record per distinct key"
            )

    # ------------------------------------------------------------------
    # spill audit

    def check_spill(self, label, routed, resident, spilled):
        """One partition/sort pass conserved its records across the dam.

        Every record an out-of-core pass routed must end the pass either
        resident in memory or written to a spill file — exactly once:
        ``resident + spilled == routed``.  A record dropped on the way
        to disk (or double-written) breaks the balance here before it
        can surface as a wrong result.
        """
        self.spill_checks += 1
        if routed < 0 or resident < 0 or spilled < 0:
            self._fail(
                f"{label}: negative spill accounting (routed={routed}, "
                f"resident={resident}, spilled={spilled})"
            )
        if resident + spilled != routed:
            self._fail(
                f"{label}: spill pass routed {routed} records but ended "
                f"with resident({resident}) + spilled({spilled}) = "
                f"{resident + spilled} — records were lost or duplicated "
                "crossing the memory budget"
            )

    # ------------------------------------------------------------------
    # solution-set audit

    def check_solution_lookup(self, partition, key_value, parallelism):
        """A point probe must hit the partition that owns the key."""
        owner = partition_index(key_value, parallelism)
        if owner != partition:
            self._fail(
                f"solution-set probe for key {key_value!r} hit partition "
                f"{partition}, but the key owns partition {owner} — "
                "the probe stream is misrouted"
            )

    def check_delta_application(self, label, size_before, size_after,
                                accepted, replaced, probed=None,
                                accesses_counted=None):
        """Audit one ∪̇ batch: |S| moves by accepted - replaced.

        When ``probed``/``accesses_counted`` are supplied, also verify
        that every probed delta record was counted as a solution access
        (the Figure 2/9 'vertices inspected' series).
        """
        self.delta_checks += 1
        if size_after - size_before != accepted - replaced:
            self._fail(
                f"{label}: solution set grew by {size_after - size_before} "
                f"records, but accepted({accepted}) - replaced({replaced}) "
                f"= {accepted - replaced}"
            )
        if replaced > accepted:
            self._fail(
                f"{label}: replaced {replaced} records but only accepted "
                f"{accepted}"
            )
        if probed is not None and accesses_counted is not None:
            if accesses_counted != probed:
                self._fail(
                    f"{label}: probed {probed} delta records but counted "
                    f"{accesses_counted} solution accesses — the index "
                    "probe accounting is wrong"
                )

    # ------------------------------------------------------------------
    # attribution totals

    def verify_totals(self, metrics):
        """Per-superstep counters + out-of-superstep remainder == totals.

        Call at a quiescent point (no superstep open).  Catches counters
        mutated without going through the collector's hooks, supersteps
        dropped from the log, and double-attributed increments.
        """
        if metrics._open_superstep is not None:
            self._fail(
                "verify_totals called while a superstep is open — totals "
                "can only be audited at a barrier"
            )
        log = metrics.iteration_log
        logged = {
            "shipped_local": sum(s.records_shipped_local for s in log),
            "shipped_remote": sum(s.records_shipped_remote for s in log),
            "processed": sum(s.records_processed for s in log),
            "solution_accesses": sum(s.solution_accesses for s in log),
            "solution_updates": sum(s.solution_updates for s in log),
            "bytes_shipped": sum(s.bytes_shipped for s in log),
            "batches_shipped": sum(s.batches_shipped for s in log),
            "cache_hits": sum(s.cache_hits for s in log),
            "cache_builds": sum(s.cache_builds for s in log),
            "records_spilled": sum(s.records_spilled for s in log),
            "bytes_spilled": sum(s.bytes_spilled for s in log),
            "columns_zero_copied": sum(s.columns_zero_copied for s in log),
            "bytes_zero_copied": sum(s.bytes_zero_copied for s in log),
        }
        totals = {
            "shipped_local": metrics.records_shipped_local,
            "shipped_remote": metrics.records_shipped_remote,
            "processed": metrics.total_processed,
            "solution_accesses": metrics.solution_accesses,
            "solution_updates": metrics.solution_updates,
            "bytes_shipped": metrics.bytes_shipped,
            "batches_shipped": metrics.batches_shipped,
            "cache_hits": metrics.cache_hits,
            "cache_builds": metrics.cache_builds,
            "records_spilled": metrics.records_spilled,
            "bytes_spilled": metrics.bytes_spilled,
            "columns_zero_copied": metrics.columns_zero_copied,
            "bytes_zero_copied": metrics.bytes_zero_copied,
        }
        for name in ATTRIBUTED_COUNTERS:
            if logged[name] != self._inside[name]:
                self._fail(
                    f"iteration_log sums {logged[name]} {name} inside "
                    f"supersteps, but {self._inside[name]} were attributed "
                    "— a superstep was dropped or double-logged"
                )
            if logged[name] + self._outside[name] != totals[name]:
                self._fail(
                    f"global {name} total is {totals[name]}, but "
                    f"per-superstep sum {logged[name]} + out-of-superstep "
                    f"{self._outside[name]} = "
                    f"{logged[name] + self._outside[name]} — a counter was "
                    "mutated outside the collector hooks"
                )

    # ------------------------------------------------------------------
    # trace audit

    def check_trace(self, tracer, metrics):
        """Span trees are well-nested and reconcile with the barrier log.

        Two laws, checked at a quiescent point:

        * the trace forest is closed (no span left open — a crash path
          that skipped an ``end`` would leave a dangling span);
        * the superstep-category spans, in depth-first preorder, pair
          one-to-one with ``metrics.iteration_log``, and every counter
          delta sampled inside a superstep span equals the counter the
          barrier logged for that superstep.  Since spans sample the
          collector totals while ``IterationStats`` accumulates through
          the hooks, any counter mutated without its hook (or any span
          crossing a barrier) breaks the reconciliation.
        """
        self.trace_checks += 1
        if tracer.open_depth:
            self._fail(
                f"{tracer.open_depth} span(s) still open at a quiescent "
                "point — every begin must have a matching end"
            )
        spans = [s for s in tracer.iter_spans()
                 if s.category == "superstep"]
        log = metrics.iteration_log
        if len(spans) != len(log):
            self._fail(
                f"trace holds {len(spans)} superstep spans but "
                f"iteration_log holds {len(log)} entries — a barrier was "
                "traced without being logged (or vice versa)"
            )
        for span, stats in zip(spans, log):
            if span.attributes.get("superstep") != stats.superstep:
                self._fail(
                    f"superstep span {span.name!r} (superstep "
                    f"{span.attributes.get('superstep')}) paired with "
                    f"logged superstep {stats.superstep} — trace and log "
                    "disagree on barrier order"
                )
            for counter, fieldname in _TRACE_RECONCILED:
                sampled = span.counters.get(counter, 0)
                logged = getattr(stats, fieldname)
                if sampled != logged:
                    self._fail(
                        f"superstep {stats.superstep}: span sampled "
                        f"{counter}={sampled} but the barrier logged "
                        f"{logged} — a counter bypassed its collector "
                        "hook inside the superstep"
                    )

    def absorb(self, other: "InvariantChecker"):
        """Fold another checker's shadows into this one.

        Used when merging per-worker collectors: the attribution shadows
        and audit-coverage counts must sum so that ``verify_totals`` on
        the merged collector still balances.
        """
        if self._superstep_open or other._superstep_open:
            self._fail("cannot absorb a checker while a superstep is open")
        for name in ATTRIBUTED_COUNTERS:
            self._inside[name] += other._inside[name]
            self._outside[name] += other._outside[name]
        self.ship_checks += other.ship_checks
        self.driver_checks += other.driver_checks
        self.delta_checks += other.delta_checks
        self.trace_checks += other.trace_checks
        self.batch_checks += other.batch_checks
        self.spill_checks += other.spill_checks
        return self


def attach_checker(metrics) -> InvariantChecker:
    """Attach a fresh checker to ``metrics`` and return it (idempotent)."""
    if metrics.invariants is None:
        metrics.invariants = InvariantChecker()
    return metrics.invariants
