"""Execution metrics: logical cost counters and per-superstep snapshots.

Wall-clock numbers from a single-process simulator are noisy and scale-
dependent; the *logical* counters here (records shipped locally/remotely,
records processed per operator, solution-set accesses and updates, workset
sizes) are deterministic and carry the paper's comparisons exactly.  The
benchmark harness reports both.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field

from repro.common.errors import InvariantViolation


@dataclass
class IterationStats:
    """Counters scoped to one superstep of an iteration."""

    superstep: int
    duration_s: float = 0.0
    records_processed: int = 0
    records_shipped_local: int = 0
    records_shipped_remote: int = 0
    workset_size: int = 0
    delta_size: int = 0
    solution_accesses: int = 0
    solution_updates: int = 0
    #: serialized bytes this superstep put on the wire (multiprocess
    #: backend only — the simulator never serializes records)
    bytes_shipped: int = 0
    #: :class:`~repro.common.batch.RecordBatch` chunks the channels
    #: framed this superstep (physical, like bytes: the chunking depends
    #: on the backend's partition localization)
    batches_shipped: int = 0
    cache_hits: int = 0
    cache_builds: int = 0
    #: records written to spill files this superstep (physical, like
    #: bytes: spill decisions depend on each process's resident share)
    records_spilled: int = 0
    #: bytes written to spill files this superstep
    bytes_spilled: int = 0
    #: fixed-width column buffers that crossed the shm ring as raw
    #: memcpy this superstep (physical: only the pool/multiprocess
    #: backends' columnar frames take the zero-copy path)
    columns_zero_copied: int = 0
    #: payload bytes of those zero-copied buffers
    bytes_zero_copied: int = 0

    @property
    def messages(self) -> int:
        """Cross-partition record transfers — the paper's 'messages sent'."""
        return self.records_shipped_remote

    def as_dict(self) -> dict:
        """Plain-dict view, used by ``MetricsCollector.snapshot``."""
        return {
            "superstep": self.superstep,
            "duration_s": self.duration_s,
            "records_processed": self.records_processed,
            "records_shipped_local": self.records_shipped_local,
            "records_shipped_remote": self.records_shipped_remote,
            "workset_size": self.workset_size,
            "delta_size": self.delta_size,
            "solution_accesses": self.solution_accesses,
            "solution_updates": self.solution_updates,
            "bytes_shipped": self.bytes_shipped,
            "batches_shipped": self.batches_shipped,
            "cache_hits": self.cache_hits,
            "cache_builds": self.cache_builds,
            "records_spilled": self.records_spilled,
            "bytes_spilled": self.bytes_spilled,
            "columns_zero_copied": self.columns_zero_copied,
            "bytes_zero_copied": self.bytes_zero_copied,
            "messages": self.messages,
        }


@dataclass
class MetricsCollector:
    """Accumulates counters for one environment; cheap enough to always run."""

    records_processed: Counter = field(default_factory=Counter)
    records_shipped_local: int = 0
    records_shipped_remote: int = 0
    solution_accesses: int = 0
    solution_updates: int = 0
    supersteps: int = 0
    cache_hits: int = 0
    cache_builds: int = 0
    #: serialized bytes actually put on the wire (multiprocess backend
    #: only; the in-process simulator never serializes records)
    bytes_shipped: int = 0
    #: RecordBatch chunks framed by the shipping channels (physical:
    #: per-worker localization changes how records fall into chunks)
    batches_shipped: int = 0
    #: records / bytes written to spill files by the out-of-core
    #: substrate (physical: whether state crosses the budget depends on
    #: each process's resident share, so backends may differ)
    records_spilled: int = 0
    bytes_spilled: int = 0
    #: column buffers / payload bytes the SPMD fabric shipped as raw
    #: shm memcpy without pickling (physical: the simulator never
    #: serializes, and chunk framing differs per backend)
    columns_zero_copied: int = 0
    bytes_zero_copied: int = 0
    #: mid-iteration ship-strategy switches the adaptive layer performed
    #: (physical, like cache counters: ``REPRO_ADAPTIVE=0`` runs have
    #: zero, and SPMD workers each count their own lockstep switch)
    plan_switches: int = 0
    iteration_log: list[IterationStats] = field(default_factory=list)
    #: optional :class:`~repro.runtime.invariants.InvariantChecker`; when
    #: attached (``RuntimeConfig.check_invariants``), every counter hook
    #: mirrors into it and the runtime layers audit their conservation laws
    invariants: object | None = None
    #: optional :class:`~repro.observability.Tracer`; when attached
    #: (``RuntimeConfig.trace``), superstep barriers open/close spans and
    #: cache events emit instant markers
    tracer: object | None = None
    #: optional :class:`~repro.observability.telemetry.MetricRegistry`;
    #: when attached (``RuntimeConfig.telemetry``), superstep barriers
    #: feed the live instruments and resource time series.  Unlike the
    #: checker and tracer it never influences results or logical
    #: counters, so ``merge`` ignores it (workers detach their registry
    #: and ship a snapshot instead)
    telemetry: object | None = None
    _open_superstep: IterationStats | None = None
    _superstep_started: float = 0.0
    _superstep_span: object | None = None

    # ------------------------------------------------------------------
    # raw counter hooks (called by channels / drivers / solution set)

    def add_processed(self, operator_name: str, count: int = 1):
        self.records_processed[operator_name] += count
        if self._open_superstep is not None:
            self._open_superstep.records_processed += count
        if self.invariants is not None:
            self.invariants.on_counter(
                "processed", count, self._open_superstep is not None
            )

    def add_shipped(self, local: int, remote: int):
        self.records_shipped_local += local
        self.records_shipped_remote += remote
        if self._open_superstep is not None:
            self._open_superstep.records_shipped_local += local
            self._open_superstep.records_shipped_remote += remote
        if self.invariants is not None:
            in_step = self._open_superstep is not None
            self.invariants.on_counter("shipped_local", local, in_step)
            self.invariants.on_counter("shipped_remote", remote, in_step)

    def add_solution_access(self, count: int = 1):
        self.solution_accesses += count
        if self._open_superstep is not None:
            self._open_superstep.solution_accesses += count
        if self.invariants is not None:
            self.invariants.on_counter(
                "solution_accesses", count, self._open_superstep is not None
            )

    def add_solution_update(self, count: int = 1):
        self.solution_updates += count
        if self._open_superstep is not None:
            self._open_superstep.solution_updates += count
        if self.invariants is not None:
            self.invariants.on_counter(
                "solution_updates", count, self._open_superstep is not None
            )

    def add_bytes_shipped(self, count: int):
        """Serialized wire bytes, attributed to the open superstep."""
        self.bytes_shipped += count
        if self._open_superstep is not None:
            self._open_superstep.bytes_shipped += count
        if self.invariants is not None:
            self.invariants.on_counter(
                "bytes_shipped", count, self._open_superstep is not None
            )

    def add_batches_shipped(self, count: int = 1):
        """RecordBatch chunks framed on a channel (the batched data
        plane's per-batch overhead unit; the cost model's
        ``per_batch_overhead`` term prices exactly these)."""
        self.batches_shipped += count
        if self._open_superstep is not None:
            self._open_superstep.batches_shipped += count
        if self.invariants is not None:
            self.invariants.on_counter(
                "batches_shipped", count, self._open_superstep is not None
            )

    def add_cache_hit(self, count: int = 1):
        self.cache_hits += count
        if self._open_superstep is not None:
            self._open_superstep.cache_hits += count
        if self.invariants is not None:
            self.invariants.on_counter(
                "cache_hits", count, self._open_superstep is not None
            )
        if self.tracer is not None:
            self.tracer.instant("cache:hit", category="cache")

    def add_cache_build(self, count: int = 1):
        self.cache_builds += count
        if self._open_superstep is not None:
            self._open_superstep.cache_builds += count
        if self.invariants is not None:
            self.invariants.on_counter(
                "cache_builds", count, self._open_superstep is not None
            )
        if self.tracer is not None:
            self.tracer.instant("cache:build", category="cache")

    def add_spilled(self, records: int, nbytes: int):
        """One spill-file frame written by the out-of-core substrate."""
        self.records_spilled += records
        self.bytes_spilled += nbytes
        if self._open_superstep is not None:
            self._open_superstep.records_spilled += records
            self._open_superstep.bytes_spilled += nbytes
        if self.invariants is not None:
            in_step = self._open_superstep is not None
            self.invariants.on_counter("records_spilled", records, in_step)
            self.invariants.on_counter("bytes_spilled", nbytes, in_step)

    def add_zero_copied(self, columns: int, nbytes: int):
        """Column buffers the fabric memcpy'd into shm without pickling."""
        self.columns_zero_copied += columns
        self.bytes_zero_copied += nbytes
        if self._open_superstep is not None:
            self._open_superstep.columns_zero_copied += columns
            self._open_superstep.bytes_zero_copied += nbytes
        if self.invariants is not None:
            in_step = self._open_superstep is not None
            self.invariants.on_counter("columns_zero_copied", columns,
                                       in_step)
            self.invariants.on_counter("bytes_zero_copied", nbytes, in_step)

    def add_plan_switch(self, **attributes):
        """One adaptive mid-iteration plan switch; emits the
        ``plan_switch`` instant marker the trace contract promises."""
        self.plan_switches += 1
        if self.tracer is not None:
            self.tracer.instant(
                "plan_switch", category="optimizer", **attributes
            )

    # ------------------------------------------------------------------
    # superstep scoping

    def begin_superstep(self, superstep: int):
        if self._open_superstep is not None:
            raise InvariantViolation(
                f"begin_superstep({superstep}) while superstep "
                f"{self._open_superstep.superstep} is still open — the "
                "previous barrier was never closed"
            )
        if self.invariants is not None:
            self.invariants.on_begin_superstep(superstep)
        if self.tracer is not None:
            self._superstep_span = self.tracer.begin(
                f"superstep:{superstep}", category="superstep",
                superstep=superstep,
            )
        self._open_superstep = IterationStats(superstep=superstep)
        if self.telemetry is not None:
            self.telemetry.note_superstep_begin(superstep)
        self._superstep_started = time.perf_counter()

    def end_superstep(self, workset_size: int = 0, delta_size: int = 0):
        stats = self._open_superstep
        if stats is None:
            raise InvariantViolation(
                "end_superstep without a matching begin_superstep — "
                "superstep barriers must be balanced"
            )
        if self.invariants is not None:
            self.invariants.on_end_superstep()
        stats.duration_s = time.perf_counter() - self._superstep_started
        stats.workset_size = workset_size
        stats.delta_size = delta_size
        self.iteration_log.append(stats)
        self.supersteps += 1
        self._open_superstep = None
        if self.tracer is not None and self._superstep_span is not None:
            # sizes are barrier outputs, not counter deltas: record them
            # on the span explicitly so the trace law can reconcile them
            self.tracer.end(
                self._superstep_span,
                counters={"workset_size": workset_size,
                          "delta_size": delta_size},
            )
            self._superstep_span = None
        if self.telemetry is not None:
            self.telemetry.note_superstep_end(stats)
        return stats

    def verify_invariants(self):
        """Audit attribution totals if a checker is attached (else no-op)."""
        if self.invariants is not None:
            self.invariants.verify_totals(self)
            if self.tracer is not None:
                self.invariants.check_trace(self.tracer, self)

    # ------------------------------------------------------------------
    # merging collectors across workers / phases

    def merge(self, other: "MetricsCollector",
              align_supersteps: bool = True) -> "MetricsCollector":
        """Fold another collector's counters into this one.

        ``align_supersteps=True`` merges collectors of *parallel* workers
        that executed the same supersteps in lockstep: their iteration
        logs are paired index by index (counters and sizes sum, the
        barrier duration is the slowest worker's) and the superstep count
        stays that of one worker.  ``align_supersteps=False`` absorbs a
        *sequential* phase: the other log is appended and superstep
        counts add.
        """
        if self._open_superstep is not None or \
                other._open_superstep is not None:
            raise InvariantViolation(
                "cannot merge collectors while a superstep is open"
            )
        if (self.invariants is None) != (other.invariants is None):
            raise InvariantViolation(
                "cannot merge collectors when only one carries an "
                "invariant checker — attribution shadows would diverge"
            )
        if (self.tracer is None) != (other.tracer is None):
            raise InvariantViolation(
                "cannot merge collectors when only one carries a tracer — "
                "the merged trace would silently drop spans"
            )
        # Counter.update (not +=): iadd drops zero entries, and operator
        # keys with zero counts must survive for cross-backend equality
        self.records_processed.update(other.records_processed)
        self.records_shipped_local += other.records_shipped_local
        self.records_shipped_remote += other.records_shipped_remote
        self.solution_accesses += other.solution_accesses
        self.solution_updates += other.solution_updates
        self.cache_hits += other.cache_hits
        self.cache_builds += other.cache_builds
        self.bytes_shipped += other.bytes_shipped
        self.batches_shipped += other.batches_shipped
        self.records_spilled += other.records_spilled
        self.bytes_spilled += other.bytes_spilled
        self.columns_zero_copied += other.columns_zero_copied
        self.bytes_zero_copied += other.bytes_zero_copied
        self.plan_switches += other.plan_switches
        if align_supersteps:
            if len(self.iteration_log) != len(other.iteration_log) or \
                    self.supersteps != other.supersteps:
                raise InvariantViolation(
                    f"cannot align supersteps: {len(self.iteration_log)} "
                    f"logged here vs {len(other.iteration_log)} in the "
                    "other collector — the workers were not in lockstep"
                )
            for mine, theirs in zip(self.iteration_log,
                                    other.iteration_log):
                if mine.superstep != theirs.superstep:
                    raise InvariantViolation(
                        f"superstep numbering diverged while aligning: "
                        f"{mine.superstep} vs {theirs.superstep}"
                    )
                mine.records_processed += theirs.records_processed
                mine.records_shipped_local += theirs.records_shipped_local
                mine.records_shipped_remote += theirs.records_shipped_remote
                mine.workset_size += theirs.workset_size
                mine.delta_size += theirs.delta_size
                mine.solution_accesses += theirs.solution_accesses
                mine.solution_updates += theirs.solution_updates
                mine.bytes_shipped += theirs.bytes_shipped
                mine.batches_shipped += theirs.batches_shipped
                mine.cache_hits += theirs.cache_hits
                mine.cache_builds += theirs.cache_builds
                mine.records_spilled += theirs.records_spilled
                mine.bytes_spilled += theirs.bytes_spilled
                mine.columns_zero_copied += theirs.columns_zero_copied
                mine.bytes_zero_copied += theirs.bytes_zero_copied
                mine.duration_s = max(mine.duration_s, theirs.duration_s)
        else:
            self.iteration_log.extend(other.iteration_log)
            self.supersteps += other.supersteps
        if self.invariants is not None and other.invariants is not None:
            self.invariants.absorb(other.invariants)
        if self.tracer is not None and other.tracer is not None:
            self.tracer.merge(other.tracer, align=align_supersteps)
        return self

    # ------------------------------------------------------------------

    @property
    def total_processed(self) -> int:
        return sum(self.records_processed.values())

    @property
    def messages(self) -> int:
        return self.records_shipped_remote

    def reset(self):
        self.records_processed.clear()
        self.records_shipped_local = 0
        self.records_shipped_remote = 0
        self.solution_accesses = 0
        self.solution_updates = 0
        self.supersteps = 0
        self.cache_hits = 0
        self.cache_builds = 0
        self.bytes_shipped = 0
        self.batches_shipped = 0
        self.records_spilled = 0
        self.bytes_spilled = 0
        self.columns_zero_copied = 0
        self.bytes_zero_copied = 0
        self.plan_switches = 0
        self.iteration_log.clear()
        self._open_superstep = None
        self._superstep_span = None
        if self.invariants is not None:
            self.invariants.reset()
        if self.tracer is not None:
            self.tracer.reset()

    def snapshot(self) -> dict:
        """A plain-dict view for reports and assertions."""
        return {
            "records_processed": dict(self.records_processed),
            "total_processed": self.total_processed,
            "records_shipped_local": self.records_shipped_local,
            "records_shipped_remote": self.records_shipped_remote,
            "messages": self.messages,
            "solution_accesses": self.solution_accesses,
            "solution_updates": self.solution_updates,
            "supersteps": self.supersteps,
            "cache_hits": self.cache_hits,
            "cache_builds": self.cache_builds,
            "bytes_shipped": self.bytes_shipped,
            "batches_shipped": self.batches_shipped,
            "records_spilled": self.records_spilled,
            "bytes_spilled": self.bytes_spilled,
            "columns_zero_copied": self.columns_zero_copied,
            "bytes_zero_copied": self.bytes_zero_copied,
            "plan_switches": self.plan_switches,
            "iteration_log": [s.as_dict() for s in self.iteration_log],
        }
