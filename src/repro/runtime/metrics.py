"""Execution metrics: logical cost counters and per-superstep snapshots.

Wall-clock numbers from a single-process simulator are noisy and scale-
dependent; the *logical* counters here (records shipped locally/remotely,
records processed per operator, solution-set accesses and updates, workset
sizes) are deterministic and carry the paper's comparisons exactly.  The
benchmark harness reports both.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field


@dataclass
class IterationStats:
    """Counters scoped to one superstep of an iteration."""

    superstep: int
    duration_s: float = 0.0
    records_processed: int = 0
    records_shipped_local: int = 0
    records_shipped_remote: int = 0
    workset_size: int = 0
    delta_size: int = 0
    solution_accesses: int = 0
    solution_updates: int = 0

    @property
    def messages(self) -> int:
        """Cross-partition record transfers — the paper's 'messages sent'."""
        return self.records_shipped_remote


@dataclass
class MetricsCollector:
    """Accumulates counters for one environment; cheap enough to always run."""

    records_processed: Counter = field(default_factory=Counter)
    records_shipped_local: int = 0
    records_shipped_remote: int = 0
    solution_accesses: int = 0
    solution_updates: int = 0
    supersteps: int = 0
    cache_hits: int = 0
    cache_builds: int = 0
    iteration_log: list[IterationStats] = field(default_factory=list)
    _open_superstep: IterationStats | None = None
    _superstep_started: float = 0.0

    # ------------------------------------------------------------------
    # raw counter hooks (called by channels / drivers / solution set)

    def add_processed(self, operator_name: str, count: int = 1):
        self.records_processed[operator_name] += count
        if self._open_superstep is not None:
            self._open_superstep.records_processed += count

    def add_shipped(self, local: int, remote: int):
        self.records_shipped_local += local
        self.records_shipped_remote += remote
        if self._open_superstep is not None:
            self._open_superstep.records_shipped_local += local
            self._open_superstep.records_shipped_remote += remote

    def add_solution_access(self, count: int = 1):
        self.solution_accesses += count
        if self._open_superstep is not None:
            self._open_superstep.solution_accesses += count

    def add_solution_update(self, count: int = 1):
        self.solution_updates += count
        if self._open_superstep is not None:
            self._open_superstep.solution_updates += count

    # ------------------------------------------------------------------
    # superstep scoping

    def begin_superstep(self, superstep: int):
        self._open_superstep = IterationStats(superstep=superstep)
        self._superstep_started = time.perf_counter()

    def end_superstep(self, workset_size: int = 0, delta_size: int = 0):
        stats = self._open_superstep
        if stats is None:
            return None
        stats.duration_s = time.perf_counter() - self._superstep_started
        stats.workset_size = workset_size
        stats.delta_size = delta_size
        self.iteration_log.append(stats)
        self.supersteps += 1
        self._open_superstep = None
        return stats

    # ------------------------------------------------------------------

    @property
    def total_processed(self) -> int:
        return sum(self.records_processed.values())

    @property
    def messages(self) -> int:
        return self.records_shipped_remote

    def reset(self):
        self.records_processed.clear()
        self.records_shipped_local = 0
        self.records_shipped_remote = 0
        self.solution_accesses = 0
        self.solution_updates = 0
        self.supersteps = 0
        self.cache_hits = 0
        self.cache_builds = 0
        self.iteration_log.clear()
        self._open_superstep = None

    def snapshot(self) -> dict:
        """A plain-dict view for reports and assertions."""
        return {
            "records_processed": dict(self.records_processed),
            "total_processed": self.total_processed,
            "records_shipped_local": self.records_shipped_local,
            "records_shipped_remote": self.records_shipped_remote,
            "solution_accesses": self.solution_accesses,
            "solution_updates": self.solution_updates,
            "supersteps": self.supersteps,
            "cache_hits": self.cache_hits,
            "cache_builds": self.cache_builds,
        }
